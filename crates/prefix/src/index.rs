//! Inverted tag index: the auctioneer-side matching accelerator.
//!
//! The membership predicate `x ∈ [a, b] ⇔ H(G(x)) ∩ H(Q([a,b])) ≠ ∅`
//! is a *set intersection*, and the naive auction loops evaluate it for
//! every pair of bidders — `O(n² · w)` probes for the conflict graph.
//! This module turns the quadratic pair loop into a linear index pass:
//! insert every range-cover tag into a [`TagIndex`] keyed by tag, then
//! probe each bidder's point-family tags once. A probe hit names exactly
//! the candidate pairs whose sets intersect; everything else is never
//! touched.
//!
//! Owner lists are short in practice (a tag is shared only by the
//! bidders whose ranges contain the same dyadic interval), so they are
//! stored in a [`SmallVec`] that keeps up to three owners inline before
//! spilling to the heap.
//!
//! # Examples
//!
//! ```
//! use lppa_crypto::keys::HmacKey;
//! use lppa_prefix::index::TagIndex;
//! use lppa_prefix::masked::{MaskedPoint, MaskedRange};
//!
//! # fn main() -> Result<(), lppa_prefix::PrefixError> {
//! let key = HmacKey::from_bytes([42u8; 32]);
//! let ranges =
//!     [MaskedRange::mask(&key, 4, 0, 5)?, MaskedRange::mask(&key, 4, 6, 14)?];
//! let mut index = TagIndex::new();
//! for (owner, range) in ranges.iter().enumerate() {
//!     index.insert_all(range.iter(), owner as u32);
//! }
//! // 7 ∈ [6, 14] but 7 ∉ [0, 5]: probing G(7) hits only owner 1.
//! let point = MaskedPoint::mask(&key, 4, 7)?;
//! let hits: Vec<u32> =
//!     point.iter().flat_map(|t| index.owners(t)).copied().collect();
//! assert_eq!(hits, [1]);
//! # Ok(())
//! # }
//! ```

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use lppa_crypto::tag::{Tag, TagBuildHasher};

/// How many owners a [`SmallVec`] stores without a heap allocation.
///
/// Three covers the overwhelmingly common case: location-range covers
/// are deep dyadic intervals shared by few bidders, and padding tags are
/// unique.
pub const INLINE_OWNERS: usize = 3;

/// A tiny vector of `Copy` values that stores up to [`INLINE_OWNERS`]
/// elements inline and spills to a `Vec` beyond that.
///
/// # Examples
///
/// ```
/// use lppa_prefix::index::SmallVec;
///
/// let mut v: SmallVec<u32> = SmallVec::new();
/// for i in 0..5 {
///     v.push(i);
/// }
/// assert_eq!(v.as_slice(), [0, 1, 2, 3, 4]);
/// ```
#[derive(Clone, Debug)]
pub struct SmallVec<T: Copy + Default> {
    repr: Repr<T>,
}

#[derive(Clone, Debug)]
enum Repr<T: Copy + Default> {
    Inline { buf: [T; INLINE_OWNERS], len: u8 },
    Spilled(Vec<T>),
}

impl<T: Copy + Default> SmallVec<T> {
    /// An empty vector; allocates nothing.
    pub fn new() -> Self {
        Self { repr: Repr::Inline { buf: [T::default(); INLINE_OWNERS], len: 0 } }
    }

    /// Appends `value`, moving to the heap on the first push past the
    /// inline capacity.
    pub fn push(&mut self, value: T) {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                let n = usize::from(*len);
                if n < INLINE_OWNERS {
                    buf[n] = value;
                    *len += 1;
                } else {
                    let mut spilled = Vec::with_capacity(INLINE_OWNERS * 2);
                    spilled.extend_from_slice(buf);
                    spilled.push(value);
                    self.repr = Repr::Spilled(spilled);
                }
            }
            Repr::Spilled(v) => v.push(value),
        }
    }

    /// The stored elements, in insertion order.
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Inline { buf, len } => &buf[..usize::from(*len)],
            Repr::Spilled(v) => v,
        }
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl<T: Copy + Default + PartialEq> SmallVec<T> {
    /// Removes the first occurrence of `value`, shifting later elements
    /// left so the slice stays dense and order-preserving. Returns
    /// whether anything was removed.
    ///
    /// A spilled vector stays spilled even when it shrinks back under
    /// the inline capacity: its heap buffer is exactly the allocation a
    /// reinsertion for the same tag would otherwise have to redo.
    pub fn remove_first(&mut self, value: T) -> bool {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                let n = usize::from(*len);
                let Some(pos) = buf[..n].iter().position(|x| *x == value) else {
                    return false;
                };
                buf.copy_within(pos + 1..n, pos);
                *len -= 1;
                true
            }
            Repr::Spilled(v) => {
                let Some(pos) = v.iter().position(|x| *x == value) else {
                    return false;
                };
                v.remove(pos);
                true
            }
        }
    }
}

impl<T: Copy + Default> Default for SmallVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// An inverted index from tag to the submissions that transmitted it.
///
/// Built once over one side of a batch of membership tests (typically
/// every bidder's masked range cover) and probed with the other side
/// (every bidder's masked point family). Probing is `O(1)` expected per
/// tag plus the length of the returned owner list, so a full all-pairs
/// matching pass costs `O(total tags + hits)` instead of `O(n² · w)`.
///
/// Owners are caller-chosen `u32` labels — bidder indices in the auction
/// paths. The index never deduplicates: inserting the same `(tag,
/// owner)` twice yields the owner twice.
///
/// # Incremental updates
///
/// [`remove`](TagIndex::remove) deletes one `(tag, owner)` entry in
/// `O(|owners|)` — effectively `O(1)` for the short lists this index
/// stores — so retiring a bidder's whole tag set costs `O(w)`, not a
/// rebuild. A slot whose owner list empties becomes a **tombstone**: the
/// map entry (and any spilled heap buffer) is kept so a reinsertion of
/// the same tag is allocation-free, and [`owners`](TagIndex::owners)
/// still returns a dense slice because the lists themselves are always
/// compacted in place. Tombstones are swept by
/// [`compact`](TagIndex::compact) once they outnumber
/// [`COMPACT_MIN_TOMBSTONES`] *and* half the live tags, keeping the map
/// within a constant factor of its live size.
#[derive(Clone, Debug, Default)]
pub struct TagIndex {
    map: HashMap<Tag, SmallVec<u32>, TagBuildHasher>,
    entries: usize,
    tombstones: usize,
}

/// Tombstone count below which [`TagIndex::remove`] never triggers a
/// compaction sweep (sweeps are `O(distinct tags)`; amortizing them
/// needs a worthwhile batch).
pub const COMPACT_MIN_TOMBSTONES: usize = 16;

impl TagIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty index pre-sized for roughly `tags` distinct tags.
    pub fn with_capacity(tags: usize) -> Self {
        Self {
            map: HashMap::with_capacity_and_hasher(tags, TagBuildHasher::default()),
            entries: 0,
            tombstones: 0,
        }
    }

    /// Records that `owner` transmitted `tag`.
    pub fn insert(&mut self, tag: Tag, owner: u32) {
        match self.map.entry(tag) {
            Entry::Occupied(mut slot) => {
                if slot.get().is_empty() {
                    // Reviving a tombstone: the slot (and any spilled
                    // buffer) is reused as-is.
                    self.tombstones -= 1;
                }
                slot.get_mut().push(owner);
            }
            Entry::Vacant(slot) => {
                slot.insert(SmallVec::new()).push(owner);
            }
        }
        self.entries += 1;
    }

    /// Records every tag of one transmitted set for `owner`.
    pub fn insert_all<'a, I>(&mut self, tags: I, owner: u32)
    where
        I: IntoIterator<Item = &'a Tag>,
    {
        for tag in tags {
            self.insert(*tag, owner);
        }
    }

    /// Forgets one `(tag, owner)` entry — the inverse of
    /// [`insert`](TagIndex::insert). Returns whether the entry existed.
    ///
    /// Only the first occurrence is removed (inserting twice requires
    /// removing twice), and the owner list is compacted in place so
    /// [`owners`](TagIndex::owners) stays dense. An emptied slot is
    /// tombstoned rather than unlinked; once tombstones pass the
    /// compaction threshold the whole map is swept.
    pub fn remove(&mut self, tag: &Tag, owner: u32) -> bool {
        let Some(slot) = self.map.get_mut(tag) else {
            return false;
        };
        if !slot.remove_first(owner) {
            return false;
        }
        self.entries -= 1;
        if slot.is_empty() {
            self.tombstones += 1;
            if self.tombstones >= COMPACT_MIN_TOMBSTONES && self.tombstones * 2 >= self.map.len() {
                self.compact();
            }
        }
        true
    }

    /// Forgets every tag of one transmitted set for `owner` — the
    /// inverse of [`insert_all`](TagIndex::insert_all). Returns how many
    /// entries were actually present and removed.
    pub fn remove_all<'a, I>(&mut self, tags: I, owner: u32) -> usize
    where
        I: IntoIterator<Item = &'a Tag>,
    {
        tags.into_iter().filter(|tag| self.remove(tag, owner)).count()
    }

    /// Sweeps all tombstoned slots, shrinking the map to its live tags.
    /// `O(distinct tags)`; called automatically by
    /// [`remove`](TagIndex::remove) past the threshold.
    pub fn compact(&mut self) {
        if self.tombstones == 0 {
            return;
        }
        self.map.retain(|_, slot| !slot.is_empty());
        self.tombstones = 0;
    }

    /// The owners that transmitted `tag` (empty slice if none did).
    pub fn owners(&self, tag: &Tag) -> &[u32] {
        self.map.get(tag).map_or(&[], SmallVec::as_slice)
    }

    /// Number of distinct tags with at least one live owner (tombstoned
    /// slots are not counted).
    pub fn distinct_tags(&self) -> usize {
        self.map.len() - self.tombstones
    }

    /// Number of tombstoned slots currently awaiting compaction.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones
    }

    /// Total number of live `(tag, owner)` entries.
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// Whether the index holds no live tags.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

/// A frozen, flat-CSR tag index for dense one-shot builds.
///
/// Where [`TagIndex`] keeps one [`SmallVec`] per distinct tag — ideal
/// for incremental insert/remove but one potential heap spill per bucket
/// — the frozen form packs **every** owner entry into a single `entries`
/// slab addressed by an `offsets` prefix-sum (classic CSR): exactly
/// three allocations regardless of how many buckets spill, contiguous
/// probe reads, and no per-bucket capacity slack. It cannot be mutated
/// after construction; the dense batch paths build it, probe it, and
/// drop it within one round.
///
/// [`owners`](FrozenTagIndex::owners) returns owners in insertion
/// order, exactly like [`TagIndex::owners`] over the same insertion
/// sequence — the property suite pins the two to byte-identical slices,
/// which is what lets the dense conflict-graph build swap freely
/// between them.
#[derive(Clone, Debug, Default)]
pub struct FrozenTagIndex {
    rows: HashMap<Tag, u32, TagBuildHasher>,
    offsets: Vec<u32>,
    entries: Vec<u32>,
}

impl FrozenTagIndex {
    /// Builds the index from two passes over the same `(tag, owner)`
    /// sequence: `pass()` must yield an identical sequence both times
    /// (the first pass assigns rows and counts them, the second fills
    /// the packed slab). `expected_tags` pre-sizes the row map.
    pub fn freeze<'a, I, F>(expected_tags: usize, mut pass: F) -> Self
    where
        I: Iterator<Item = (&'a Tag, u32)>,
        F: FnMut() -> I,
    {
        let mut rows: HashMap<Tag, u32, TagBuildHasher> =
            HashMap::with_capacity_and_hasher(expected_tags, TagBuildHasher::default());
        let mut counts: Vec<u32> = Vec::with_capacity(expected_tags);
        for (tag, _) in pass() {
            match rows.entry(*tag) {
                Entry::Occupied(slot) => counts[*slot.get() as usize] += 1,
                Entry::Vacant(slot) => {
                    slot.insert(counts.len() as u32);
                    counts.push(1);
                }
            }
        }
        let mut offsets = Vec::with_capacity(counts.len() + 1);
        let mut total = 0u32;
        offsets.push(0);
        for &c in &counts {
            total += c;
            offsets.push(total);
        }
        // Reuse `counts` as per-row write cursors, rebased to row starts.
        let mut cursors = counts;
        let n_rows = cursors.len();
        cursors.copy_from_slice(&offsets[..n_rows]);
        let mut entries = vec![0u32; total as usize];
        for (tag, owner) in pass() {
            let row = rows[tag] as usize;
            entries[cursors[row] as usize] = owner;
            cursors[row] += 1;
        }
        Self { rows, offsets, entries }
    }

    /// Every owner recorded for `tag`, in insertion order; empty if the
    /// tag was never inserted.
    pub fn owners(&self, tag: &Tag) -> &[u32] {
        match self.rows.get(tag) {
            Some(&row) => {
                let row = row as usize;
                &self.entries[self.offsets[row] as usize..self.offsets[row + 1] as usize]
            }
            None => &[],
        }
    }

    /// Number of distinct tags indexed.
    pub fn distinct_tags(&self) -> usize {
        self.rows.len()
    }

    /// Total number of `(tag, owner)` entries.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(byte: u8) -> Tag {
        Tag::from_bytes([byte; 16])
    }

    #[test]
    fn frozen_index_matches_tag_index_probes() {
        // Over the same insertion sequence, the frozen CSR form and the
        // incremental map must return byte-identical owner slices for
        // every tag (present or absent) — including duplicate (tag,
        // owner) entries and buckets past the SmallVec spill point.
        let mut seq: Vec<(Tag, u32)> = Vec::new();
        let mut state = 0x9e37_79b9_u64;
        for owner in 0..300u32 {
            for _ in 0..1 + (owner % 4) {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                seq.push((tag((state >> 33) as u8), owner));
            }
        }
        let mut dynamic = TagIndex::new();
        for &(t, owner) in &seq {
            dynamic.insert(t, owner);
        }
        let frozen = FrozenTagIndex::freeze(seq.len(), || seq.iter().map(|(t, o)| (t, *o)));
        assert_eq!(frozen.entry_count(), dynamic.entry_count());
        assert_eq!(frozen.distinct_tags(), dynamic.distinct_tags());
        for probe in 0..=255u8 {
            let t = tag(probe);
            assert_eq!(frozen.owners(&t), dynamic.owners(&t), "tag byte {probe}");
        }
    }

    #[test]
    fn frozen_index_of_nothing_is_empty() {
        let frozen = FrozenTagIndex::freeze(0, std::iter::empty);
        assert!(frozen.is_empty());
        assert_eq!(frozen.owners(&tag(7)), &[] as &[u32]);
    }

    #[test]
    fn smallvec_stays_inline_then_spills() {
        let mut v: SmallVec<u32> = SmallVec::new();
        assert!(v.is_empty());
        for i in 0..INLINE_OWNERS as u32 {
            v.push(i);
        }
        assert!(matches!(v.repr, Repr::Inline { .. }));
        assert_eq!(v.as_slice(), [0, 1, 2]);
        v.push(3);
        assert!(matches!(v.repr, Repr::Spilled(_)));
        assert_eq!(v.as_slice(), [0, 1, 2, 3]);
        assert_eq!(v.len(), INLINE_OWNERS + 1);
    }

    #[test]
    fn smallvec_push_order_is_preserved_across_spill() {
        let mut v: SmallVec<u32> = SmallVec::default();
        let values: Vec<u32> = (0..20).map(|i| i * 7).collect();
        for &x in &values {
            v.push(x);
        }
        assert_eq!(v.as_slice(), &values[..]);
    }

    #[test]
    fn index_maps_tags_to_all_owners_in_order() {
        let mut index = TagIndex::new();
        index.insert(tag(1), 10);
        index.insert(tag(2), 11);
        index.insert(tag(1), 12);
        assert_eq!(index.owners(&tag(1)), [10, 12]);
        assert_eq!(index.owners(&tag(2)), [11]);
        assert_eq!(index.owners(&tag(3)), [] as [u32; 0]);
        assert_eq!(index.distinct_tags(), 2);
        assert_eq!(index.entry_count(), 3);
    }

    #[test]
    fn insert_all_indexes_every_tag_of_a_set() {
        let mut index = TagIndex::with_capacity(8);
        let tags = [tag(1), tag(2), tag(3)];
        index.insert_all(tags.iter(), 7);
        for t in &tags {
            assert_eq!(index.owners(t), [7]);
        }
        assert_eq!(index.entry_count(), 3);
    }

    #[test]
    fn empty_index_reports_empty() {
        let index = TagIndex::new();
        assert!(index.is_empty());
        assert_eq!(index.distinct_tags(), 0);
        assert_eq!(index.entry_count(), 0);
        assert!(index.owners(&tag(9)).is_empty());
    }

    #[test]
    fn smallvec_remove_first_is_order_preserving() {
        // Inline repr: remove from the middle, the front, past the end.
        let mut v: SmallVec<u32> = SmallVec::new();
        for x in [5, 6, 7] {
            v.push(x);
        }
        assert!(v.remove_first(6));
        assert_eq!(v.as_slice(), [5, 7]);
        assert!(v.remove_first(5));
        assert_eq!(v.as_slice(), [7]);
        assert!(!v.remove_first(99));
        assert_eq!(v.as_slice(), [7]);

        // Spilled repr: stays spilled after shrinking below the inline
        // capacity, and only the first duplicate goes.
        let mut s: SmallVec<u32> = SmallVec::new();
        for x in [1, 2, 1, 3, 1] {
            s.push(x);
        }
        assert!(matches!(s.repr, Repr::Spilled(_)));
        assert!(s.remove_first(1));
        assert_eq!(s.as_slice(), [2, 1, 3, 1]);
        assert!(s.remove_first(1));
        assert!(s.remove_first(3));
        assert!(s.remove_first(2));
        assert_eq!(s.as_slice(), [1]);
        assert!(matches!(s.repr, Repr::Spilled(_)));
    }

    #[test]
    fn remove_of_never_inserted_owner_is_a_noop() {
        let mut index = TagIndex::new();
        index.insert(tag(1), 10);
        // Unknown tag, and known tag with an owner that never held it.
        assert!(!index.remove(&tag(2), 10));
        assert!(!index.remove(&tag(1), 11));
        assert_eq!(index.owners(&tag(1)), [10]);
        assert_eq!(index.entry_count(), 1);
        assert_eq!(index.distinct_tags(), 1);
        assert_eq!(index.tombstone_count(), 0);
    }

    #[test]
    fn remove_then_reinsert_same_owner_revives_the_slot() {
        let mut index = TagIndex::new();
        index.insert(tag(1), 10);
        index.insert(tag(1), 11);
        assert!(index.remove(&tag(1), 10));
        assert_eq!(index.owners(&tag(1)), [11]);
        assert!(index.remove(&tag(1), 11));
        assert!(index.owners(&tag(1)).is_empty());
        assert_eq!(index.tombstone_count(), 1);
        assert_eq!(index.distinct_tags(), 0);
        assert!(index.is_empty());

        // Reinsertion revives the tombstoned slot in place.
        index.insert(tag(1), 10);
        assert_eq!(index.owners(&tag(1)), [10]);
        assert_eq!(index.tombstone_count(), 0);
        assert_eq!(index.distinct_tags(), 1);
        assert_eq!(index.entry_count(), 1);
    }

    #[test]
    fn duplicate_entries_need_matching_removes() {
        let mut index = TagIndex::new();
        index.insert(tag(4), 7);
        index.insert(tag(4), 7);
        assert_eq!(index.owners(&tag(4)), [7, 7]);
        assert!(index.remove(&tag(4), 7));
        assert_eq!(index.owners(&tag(4)), [7]);
        assert!(index.remove(&tag(4), 7));
        assert!(index.owners(&tag(4)).is_empty());
        assert!(!index.remove(&tag(4), 7));
    }

    #[test]
    fn interleaved_churn_with_compaction_matches_dense_rebuild() {
        // Property: after ANY interleaving of insert_all / remove_all /
        // compact, every probe must return a slice byte-identical to a
        // dense rebuild that replays only the surviving entries in
        // original insertion order. This pins the whole tombstone +
        // in-place-compaction machinery: removal keeps survivor order
        // stable, tombstoned slots stay probe-invisible, and explicit
        // or threshold-triggered sweeps never reorder a bucket.
        let mut state = 0x1234_5678_9abc_def0_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 32
        };
        let mut index = TagIndex::new();
        // Insertion log of live entries: (tag, owner), original order.
        let mut log: Vec<(Tag, u32)> = Vec::new();
        // Per-owner tag sets so remove_all mirrors real usage (a slot
        // retiring its whole transmitted set).
        let mut sets: Vec<(u32, Vec<Tag>)> = Vec::new();
        let mut next_owner = 0u32;
        for step in 0..600 {
            match next() % 10 {
                // Insert a fresh owner's set (tags drawn from a small
                // byte space so buckets collide, spill, and tombstone).
                0..=5 => {
                    let owner = next_owner;
                    next_owner += 1;
                    let tags: Vec<Tag> =
                        (0..1 + next() % 6).map(|_| tag((next() % 48) as u8)).collect();
                    index.insert_all(tags.iter(), owner);
                    log.extend(tags.iter().map(|&t| (t, owner)));
                    sets.push((owner, tags));
                }
                // Retire a random live owner's whole set.
                6..=8 if !sets.is_empty() => {
                    let (owner, tags) = sets.swap_remove((next() as usize) % sets.len());
                    let removed = index.remove_all(tags.iter(), owner);
                    assert_eq!(removed, tags.len(), "step {step}");
                    for t in &tags {
                        let pos = log
                            .iter()
                            .position(|&(lt, lo)| lt == *t && lo == owner)
                            .expect("logged entry");
                        log.remove(pos);
                    }
                }
                _ => index.compact(),
            }
            if step % 37 == 0 {
                let mut dense = TagIndex::new();
                for &(t, o) in &log {
                    dense.insert(t, o);
                }
                assert_eq!(index.entry_count(), dense.entry_count(), "step {step}");
                for probe in 0..48u8 {
                    let t = tag(probe);
                    assert_eq!(index.owners(&t), dense.owners(&t), "step {step} tag {probe}");
                }
            }
        }
    }

    #[test]
    fn remove_all_reports_how_many_entries_existed() {
        let mut index = TagIndex::new();
        let tags = [tag(1), tag(2), tag(3)];
        index.insert_all(tags.iter(), 7);
        // One of the three was already removed; the batch reports 2.
        assert!(index.remove(&tag(2), 7));
        assert_eq!(index.remove_all(tags.iter(), 7), 2);
        assert!(index.is_empty());
        assert_eq!(index.remove_all(tags.iter(), 7), 0);
    }

    #[test]
    fn tombstones_compact_past_the_threshold() {
        let mut index = TagIndex::new();
        let n = COMPACT_MIN_TOMBSTONES as u8;
        // n + 2 singleton tags, then kill n of them: the n-th dead slot
        // crosses both threshold legs (>= COMPACT_MIN_TOMBSTONES and
        // >= half the map) and triggers the sweep.
        for b in 0..n + 2 {
            index.insert(tag(b), u32::from(b));
        }
        for b in 0..n - 1 {
            assert!(index.remove(&tag(b), u32::from(b)));
        }
        assert_eq!(index.tombstone_count(), usize::from(n) - 1);
        assert!(index.remove(&tag(n - 1), u32::from(n - 1)));
        assert_eq!(index.tombstone_count(), 0);
        assert_eq!(index.distinct_tags(), 2);
        assert_eq!(index.entry_count(), 2);
        // Survivors are untouched by the sweep.
        assert_eq!(index.owners(&tag(n)), [u32::from(n)]);
        assert_eq!(index.owners(&tag(n + 1)), [u32::from(n) + 1]);
    }

    #[test]
    fn shuffled_insert_remove_interleaving_matches_fresh_build() {
        use lppa_rng::rngs::StdRng;
        use lppa_rng::seq::SliceRandom;
        use lppa_rng::{Rng, SeedableRng};

        // Property: a churned index (inserts and removes interleaved in
        // a seeded shuffle order) answers every probe exactly like an
        // index freshly built from only the surviving entries.
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(0xde17a ^ seed);
            // A pool of (tag, owner) entries, some sharing tags.
            let pool: Vec<(Tag, u32)> = (0..60).map(|i| (tag(rng.gen_range(0..24)), i)).collect();
            // Survivors keep their entry; the rest get a matching
            // remove scheduled after their insert.
            let survives: Vec<bool> = pool.iter().map(|_| rng.gen_bool(0.5)).collect();

            // Ops: insert i, then remove i for the non-survivors, with
            // each remove shuffled to any point after its insert.
            #[derive(Clone, Copy)]
            enum Op {
                Insert(usize),
                Remove(usize),
            }
            let mut ops: Vec<Op> = (0..pool.len()).map(Op::Insert).collect();
            ops.shuffle(&mut rng);
            let mut interleaved: Vec<Op> = Vec::with_capacity(pool.len() * 2);
            for op in ops {
                interleaved.push(op);
                if let Op::Insert(i) = op {
                    if !survives[i] {
                        interleaved.push(Op::Remove(i));
                    }
                }
            }
            // Give removes room to drift later while keeping them after
            // their insert: bubble each remove a random distance right.
            for _ in 0..interleaved.len() {
                let i = rng.gen_range(0..interleaved.len() - 1);
                if matches!(interleaved[i], Op::Remove(_)) && rng.gen_bool(0.5) {
                    interleaved.swap(i, i + 1);
                }
            }

            let mut churned = TagIndex::new();
            for op in &interleaved {
                match *op {
                    Op::Insert(i) => churned.insert(pool[i].0, pool[i].1),
                    Op::Remove(i) => {
                        assert!(
                            churned.remove(&pool[i].0, pool[i].1),
                            "seed {seed}: missing entry"
                        );
                    }
                }
            }

            let mut fresh = TagIndex::new();
            for (i, &(t, owner)) in pool.iter().enumerate() {
                if survives[i] {
                    fresh.insert(t, owner);
                }
            }

            assert_eq!(churned.entry_count(), fresh.entry_count(), "seed {seed}");
            assert_eq!(churned.distinct_tags(), fresh.distinct_tags(), "seed {seed}");
            for b in 0..24 {
                let mut a: Vec<u32> = churned.owners(&tag(b)).to_vec();
                let mut e: Vec<u32> = fresh.owners(&tag(b)).to_vec();
                // Owner order may differ between the two histories;
                // membership must not.
                a.sort_unstable();
                e.sort_unstable();
                assert_eq!(a, e, "seed {seed}, tag {b}");
            }
        }
    }
}
