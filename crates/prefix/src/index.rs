//! Inverted tag index: the auctioneer-side matching accelerator.
//!
//! The membership predicate `x ∈ [a, b] ⇔ H(G(x)) ∩ H(Q([a,b])) ≠ ∅`
//! is a *set intersection*, and the naive auction loops evaluate it for
//! every pair of bidders — `O(n² · w)` probes for the conflict graph.
//! This module turns the quadratic pair loop into a linear index pass:
//! insert every range-cover tag into a [`TagIndex`] keyed by tag, then
//! probe each bidder's point-family tags once. A probe hit names exactly
//! the candidate pairs whose sets intersect; everything else is never
//! touched.
//!
//! Owner lists are short in practice (a tag is shared only by the
//! bidders whose ranges contain the same dyadic interval), so they are
//! stored in a [`SmallVec`] that keeps up to three owners inline before
//! spilling to the heap.
//!
//! # Examples
//!
//! ```
//! use lppa_crypto::keys::HmacKey;
//! use lppa_prefix::index::TagIndex;
//! use lppa_prefix::masked::{MaskedPoint, MaskedRange};
//!
//! # fn main() -> Result<(), lppa_prefix::PrefixError> {
//! let key = HmacKey::from_bytes([42u8; 32]);
//! let ranges =
//!     [MaskedRange::mask(&key, 4, 0, 5)?, MaskedRange::mask(&key, 4, 6, 14)?];
//! let mut index = TagIndex::new();
//! for (owner, range) in ranges.iter().enumerate() {
//!     index.insert_all(range.iter(), owner as u32);
//! }
//! // 7 ∈ [6, 14] but 7 ∉ [0, 5]: probing G(7) hits only owner 1.
//! let point = MaskedPoint::mask(&key, 4, 7)?;
//! let hits: Vec<u32> =
//!     point.iter().flat_map(|t| index.owners(t)).copied().collect();
//! assert_eq!(hits, [1]);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use lppa_crypto::tag::{Tag, TagBuildHasher};

/// How many owners a [`SmallVec`] stores without a heap allocation.
///
/// Three covers the overwhelmingly common case: location-range covers
/// are deep dyadic intervals shared by few bidders, and padding tags are
/// unique.
pub const INLINE_OWNERS: usize = 3;

/// A tiny vector of `Copy` values that stores up to [`INLINE_OWNERS`]
/// elements inline and spills to a `Vec` beyond that.
///
/// # Examples
///
/// ```
/// use lppa_prefix::index::SmallVec;
///
/// let mut v: SmallVec<u32> = SmallVec::new();
/// for i in 0..5 {
///     v.push(i);
/// }
/// assert_eq!(v.as_slice(), [0, 1, 2, 3, 4]);
/// ```
#[derive(Clone, Debug)]
pub struct SmallVec<T: Copy + Default> {
    repr: Repr<T>,
}

#[derive(Clone, Debug)]
enum Repr<T: Copy + Default> {
    Inline { buf: [T; INLINE_OWNERS], len: u8 },
    Spilled(Vec<T>),
}

impl<T: Copy + Default> SmallVec<T> {
    /// An empty vector; allocates nothing.
    pub fn new() -> Self {
        Self { repr: Repr::Inline { buf: [T::default(); INLINE_OWNERS], len: 0 } }
    }

    /// Appends `value`, moving to the heap on the first push past the
    /// inline capacity.
    pub fn push(&mut self, value: T) {
        match &mut self.repr {
            Repr::Inline { buf, len } => {
                let n = usize::from(*len);
                if n < INLINE_OWNERS {
                    buf[n] = value;
                    *len += 1;
                } else {
                    let mut spilled = Vec::with_capacity(INLINE_OWNERS * 2);
                    spilled.extend_from_slice(buf);
                    spilled.push(value);
                    self.repr = Repr::Spilled(spilled);
                }
            }
            Repr::Spilled(v) => v.push(value),
        }
    }

    /// The stored elements, in insertion order.
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Inline { buf, len } => &buf[..usize::from(*len)],
            Repr::Spilled(v) => v,
        }
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl<T: Copy + Default> Default for SmallVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// An inverted index from tag to the submissions that transmitted it.
///
/// Built once over one side of a batch of membership tests (typically
/// every bidder's masked range cover) and probed with the other side
/// (every bidder's masked point family). Probing is `O(1)` expected per
/// tag plus the length of the returned owner list, so a full all-pairs
/// matching pass costs `O(total tags + hits)` instead of `O(n² · w)`.
///
/// Owners are caller-chosen `u32` labels — bidder indices in the auction
/// paths. The index never deduplicates: inserting the same `(tag,
/// owner)` twice yields the owner twice.
#[derive(Clone, Debug, Default)]
pub struct TagIndex {
    map: HashMap<Tag, SmallVec<u32>, TagBuildHasher>,
    entries: usize,
}

impl TagIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty index pre-sized for roughly `tags` distinct tags.
    pub fn with_capacity(tags: usize) -> Self {
        Self { map: HashMap::with_capacity_and_hasher(tags, TagBuildHasher::default()), entries: 0 }
    }

    /// Records that `owner` transmitted `tag`.
    pub fn insert(&mut self, tag: Tag, owner: u32) {
        self.map.entry(tag).or_default().push(owner);
        self.entries += 1;
    }

    /// Records every tag of one transmitted set for `owner`.
    pub fn insert_all<'a, I>(&mut self, tags: I, owner: u32)
    where
        I: IntoIterator<Item = &'a Tag>,
    {
        for tag in tags {
            self.insert(*tag, owner);
        }
    }

    /// The owners that transmitted `tag` (empty slice if none did).
    pub fn owners(&self, tag: &Tag) -> &[u32] {
        self.map.get(tag).map_or(&[], SmallVec::as_slice)
    }

    /// Number of distinct tags present.
    pub fn distinct_tags(&self) -> usize {
        self.map.len()
    }

    /// Total number of `(tag, owner)` insertions.
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// Whether the index holds no tags.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(byte: u8) -> Tag {
        Tag::from_bytes([byte; 16])
    }

    #[test]
    fn smallvec_stays_inline_then_spills() {
        let mut v: SmallVec<u32> = SmallVec::new();
        assert!(v.is_empty());
        for i in 0..INLINE_OWNERS as u32 {
            v.push(i);
        }
        assert!(matches!(v.repr, Repr::Inline { .. }));
        assert_eq!(v.as_slice(), [0, 1, 2]);
        v.push(3);
        assert!(matches!(v.repr, Repr::Spilled(_)));
        assert_eq!(v.as_slice(), [0, 1, 2, 3]);
        assert_eq!(v.len(), INLINE_OWNERS + 1);
    }

    #[test]
    fn smallvec_push_order_is_preserved_across_spill() {
        let mut v: SmallVec<u32> = SmallVec::default();
        let values: Vec<u32> = (0..20).map(|i| i * 7).collect();
        for &x in &values {
            v.push(x);
        }
        assert_eq!(v.as_slice(), &values[..]);
    }

    #[test]
    fn index_maps_tags_to_all_owners_in_order() {
        let mut index = TagIndex::new();
        index.insert(tag(1), 10);
        index.insert(tag(2), 11);
        index.insert(tag(1), 12);
        assert_eq!(index.owners(&tag(1)), [10, 12]);
        assert_eq!(index.owners(&tag(2)), [11]);
        assert_eq!(index.owners(&tag(3)), [] as [u32; 0]);
        assert_eq!(index.distinct_tags(), 2);
        assert_eq!(index.entry_count(), 3);
    }

    #[test]
    fn insert_all_indexes_every_tag_of_a_set() {
        let mut index = TagIndex::with_capacity(8);
        let tags = [tag(1), tag(2), tag(3)];
        index.insert_all(tags.iter(), 7);
        for t in &tags {
            assert_eq!(index.owners(t), [7]);
        }
        assert_eq!(index.entry_count(), 3);
    }

    #[test]
    fn empty_index_reports_empty() {
        let index = TagIndex::new();
        assert!(index.is_empty());
        assert_eq!(index.distinct_tags(), 0);
        assert_eq!(index.entry_count(), 0);
        assert!(index.owners(&tag(9)).is_empty());
    }
}
