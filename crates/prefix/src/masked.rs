//! HMAC-masked prefix sets: what actually travels to the auctioneer.
//!
//! A bidder never transmits prefixes in the clear. Instead it sends
//! `H_g(O(prefix))` for every member of a prefix family or range cover,
//! where `H_g` is HMAC under a key the auctioneer does not hold. The
//! auctioneer can still test *set intersection* — the membership predicate
//! of the scheme — but learns nothing about the underlying values beyond
//! the outcomes of those tests.
//!
//! Two newtypes keep the protocol type-safe:
//!
//! * [`MaskedPoint`] — a masked prefix *family* `H(G(x))`, representing a
//!   hidden number;
//! * [`MaskedRange`] — a masked *range cover* `H(Q([a, b]))`, representing
//!   a hidden interval, optionally padded to a fixed cardinality.

use std::collections::HashSet;

use lppa_crypto::keys::HmacKey;
use lppa_crypto::tag::{Tag, TagBuildHasher, TAG_LEN};
use lppa_rng::RngCore;

use crate::error::PrefixError;
use crate::family::prefix_family_into;
use crate::prefix::{Prefix, MASK_INPUT_LEN};
use crate::range::{max_cover_len, range_prefixes_into};

/// The set type backing masked families and covers.
///
/// Tags are HMAC output, so the sets use the cheap fixed
/// [`TagBuildHasher`] rather than SipHash — membership probes are the
/// auctioneer's innermost loop.
pub type TagSet = HashSet<Tag, TagBuildHasher>;

/// Upper bound on prefixes masked per batch chunk: a prefix family has
/// at most `MAX_WIDTH + 1 = 33` members and a range cover at most
/// `2·MAX_WIDTH − 2 = 62`, so one 64-slot stack staging area covers every
/// protocol call without heap allocation.
const MASK_CHUNK: usize = 64;

/// Masks a slice of prefixes under `key` through the multi-lane tag
/// kernel.
///
/// Mask inputs are staged in a stack buffer ([`MASK_CHUNK`] prefixes per
/// pass) and tags land directly in the result set, so the only heap
/// allocation is the `TagSet` itself — and the batched kernel amortizes
/// one SHA-256 message schedule across up to eight prefixes.
fn mask_all_into(key: &HmacKey, prefixes: &[Prefix], tags: &mut TagSet) {
    tags.reserve(prefixes.len());
    let mut inputs = [[0u8; MASK_INPUT_LEN]; MASK_CHUNK];
    for chunk in prefixes.chunks(MASK_CHUNK) {
        for (input, prefix) in inputs.iter_mut().zip(chunk) {
            prefix.write_mask_input(input);
        }
        Tag::compute_batch_into(key, &inputs[..chunk.len()], |_, tag| {
            tags.insert(tag);
        });
    }
}

/// Reusable masking scratch: a pool of retired [`TagSet`]s plus a prefix
/// staging buffer.
///
/// Checked-out sets are *cleared but not shrunk*, so a warm pool serves
/// every `mask_in`/`mask_padded_in` call without touching the allocator.
/// Tag sets are unordered and every consumer in the workspace is
/// iteration-order independent (membership probes, XOR fingerprints,
/// sorted candidate lists), so a pooled set of any prior capacity is
/// observationally identical to a fresh one — the arena on/off oracle
/// invariant holds the whole pipeline to that.
#[derive(Debug, Default)]
pub struct MaskScratch {
    sets: Vec<TagSet>,
    prefixes: Vec<Prefix>,
}

impl MaskScratch {
    /// An empty pool; grows on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of sets currently parked in the pool (diagnostics).
    pub fn pooled_sets(&self) -> usize {
        self.sets.len()
    }

    /// Checks out a cleared set, reusing a retired one when available.
    fn take_set(&mut self) -> TagSet {
        match self.sets.pop() {
            Some(mut set) => {
                set.clear();
                set
            }
            None => TagSet::default(),
        }
    }

    /// Parks a set for reuse, keeping its capacity.
    pub fn reclaim_set(&mut self, mut set: TagSet) {
        set.clear();
        self.sets.push(set);
    }

    /// Retires a masked point, recycling its backing set.
    pub fn reclaim_point(&mut self, point: MaskedPoint) {
        self.reclaim_set(point.tags);
    }

    /// Retires a masked range, recycling its backing set.
    pub fn reclaim_range(&mut self, range: MaskedRange) {
        self.reclaim_set(range.tags);
    }
}

/// A masked prefix family `H_g(O(G(x)))`: a hidden point.
///
/// # Examples
///
/// ```
/// use lppa_crypto::keys::HmacKey;
/// use lppa_prefix::masked::{MaskedPoint, MaskedRange};
///
/// # fn main() -> Result<(), lppa_prefix::PrefixError> {
/// let key = HmacKey::from_bytes([1u8; 32]);
/// let point = MaskedPoint::mask(&key, 4, 7)?;
/// let range = MaskedRange::mask(&key, 4, 6, 14)?;
/// assert!(point.in_range(&range)); // 7 ∈ [6, 14]
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaskedPoint {
    tags: TagSet,
}

impl MaskedPoint {
    /// Masks the prefix family of `value` over a `width`-bit domain.
    ///
    /// # Errors
    ///
    /// Returns [`PrefixError`] if the domain or value is invalid.
    pub fn mask(key: &HmacKey, width: u8, value: u32) -> Result<Self, PrefixError> {
        Self::mask_in(key, width, value, &mut MaskScratch::new())
    }

    /// [`MaskedPoint::mask`] staging through `scratch`: the prefix family
    /// is built in the pooled staging buffer and the tag set is checked
    /// out of the pool, so a warm scratch masks without allocating. Bits
    /// are identical to the unpooled path.
    ///
    /// # Errors
    ///
    /// Returns [`PrefixError`] if the domain or value is invalid.
    pub fn mask_in(
        key: &HmacKey,
        width: u8,
        value: u32,
        scratch: &mut MaskScratch,
    ) -> Result<Self, PrefixError> {
        let mut family = std::mem::take(&mut scratch.prefixes);
        let built = prefix_family_into(width, value, &mut family);
        let mut tags = scratch.take_set();
        if built.is_ok() {
            mask_all_into(key, &family, &mut tags);
        }
        scratch.prefixes = family;
        match built {
            Ok(()) => Ok(Self { tags }),
            Err(err) => {
                scratch.reclaim_set(tags);
                Err(err)
            }
        }
    }

    /// Reconstructs a masked point from raw transmitted tags.
    ///
    /// # Errors
    ///
    /// Returns [`PrefixError::EmptyTagSet`] if `tags` yields nothing: an
    /// empty point matches *no* range, which is indistinguishable from a
    /// dropped message and must be surfaced to the transport layer
    /// instead of silently losing every comparison.
    pub fn from_tags<I: IntoIterator<Item = Tag>>(tags: I) -> Result<Self, PrefixError> {
        let tags: TagSet = tags.into_iter().collect();
        if tags.is_empty() {
            return Err(PrefixError::EmptyTagSet);
        }
        Ok(Self { tags })
    }

    /// The membership test: does the hidden point lie in the hidden range?
    ///
    /// Sound and complete when both sides were masked under the same key
    /// over the same domain width (up to the negligible probability of a
    /// 128-bit tag collision).
    pub fn in_range(&self, range: &MaskedRange) -> bool {
        self.tags.iter().any(|t| range.tags.contains(t))
    }

    /// Number of transmitted tags.
    ///
    /// A genuine family over a `width`-bit domain carries exactly
    /// `width + 1` tags: one prefix per wildcarded suffix length
    /// `0..=width`, *including* the all-wildcard root that matches every
    /// value (see [`prefix_family`]).
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the set holds no tags (never true for a genuine family).
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Iterates over the transmitted tags.
    pub fn iter(&self) -> impl Iterator<Item = &Tag> {
        self.tags.iter()
    }

    /// Transmission size in bytes.
    pub fn wire_len(&self) -> usize {
        self.tags.len() * TAG_LEN
    }

    /// An order-independent 64-bit fingerprint of the transmitted tag
    /// set.
    ///
    /// Two masked points have equal fingerprints iff they carry the same
    /// tags (up to negligible collision probability) — which is exactly
    /// the observable an attacker exploits against the *basic* bid
    /// scheme, where equal plaintexts produce identical masked sets. The
    /// advanced scheme's per-channel keys and value randomization make
    /// fingerprints unique and useless.
    pub fn fingerprint(&self) -> u64 {
        tag_set_fingerprint(&self.tags)
    }
}

/// XOR of per-tag mixes: an order-independent digest over a tag set.
fn tag_set_fingerprint(tags: &TagSet) -> u64 {
    tags.iter().map(|t| raw_tag_mix(t.as_bytes())).fold(0u64, |acc, h| acc ^ h)
}

/// The per-tag mix underlying [`MaskedPoint::fingerprint`], computed
/// from raw wire bytes.
///
/// XOR-folding this over a group of serialized tags reproduces the
/// fingerprint of the materialized tag set without building a `HashSet`
/// — zero-copy frame decoders use it to verify transport checksums
/// against borrowed `&[u8]` views before allocating anything.
///
/// # Panics
///
/// Panics if `tag_bytes` is shorter than 8 bytes; wire tags are always
/// [`TAG_LEN`] (16) bytes.
pub fn raw_tag_mix(tag_bytes: &[u8]) -> u64 {
    let mut word = [0u8; 8];
    word.copy_from_slice(&tag_bytes[..8]);
    split_mix(u64::from_le_bytes(word))
}

/// SplitMix64 avalanche, used for tag-set fingerprints.
fn split_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A masked range cover `H_g(O(Q([a, b])))`: a hidden interval.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaskedRange {
    tags: TagSet,
}

impl MaskedRange {
    /// Masks the minimal cover of `[lo, hi]` over a `width`-bit domain.
    ///
    /// # Errors
    ///
    /// Returns [`PrefixError`] if the domain is invalid or `lo > hi`.
    pub fn mask(key: &HmacKey, width: u8, lo: u32, hi: u32) -> Result<Self, PrefixError> {
        Self::mask_in(key, width, lo, hi, &mut MaskScratch::new())
    }

    /// [`MaskedRange::mask`] staging through `scratch`, allocation-free
    /// once the pool is warm; see [`MaskedPoint::mask_in`].
    ///
    /// # Errors
    ///
    /// Returns [`PrefixError`] if the domain is invalid or `lo > hi`.
    pub fn mask_in(
        key: &HmacKey,
        width: u8,
        lo: u32,
        hi: u32,
        scratch: &mut MaskScratch,
    ) -> Result<Self, PrefixError> {
        let mut cover = std::mem::take(&mut scratch.prefixes);
        let built = range_prefixes_into(width, lo, hi, &mut cover);
        let mut tags = scratch.take_set();
        if built.is_ok() {
            mask_all_into(key, &cover, &mut tags);
        }
        scratch.prefixes = cover;
        match built {
            Ok(()) => Ok(Self { tags }),
            Err(err) => {
                scratch.reclaim_set(tags);
                Err(err)
            }
        }
    }

    /// Masks the cover of `[lo, hi]` and pads it with random tags to the
    /// worst-case cardinality [`max_cover_len`]`(width)` — `2·width − 2`
    /// for widths ≥ 2, clamped to 2 below that (a 1-bit domain has
    /// two-prefix covers but `2·1 − 2 = 0`).
    ///
    /// Without padding, the number of transmitted tags leaks the shape of
    /// the range (§IV.C.1 problem 3 in the paper: `[10, 14]` has three
    /// prefixes, `[5, 14]` five). Padding tags are drawn uniformly from
    /// the tag space, so they collide with genuine tags only with
    /// negligible probability.
    ///
    /// # Errors
    ///
    /// Returns [`PrefixError`] as for [`MaskedRange::mask`].
    pub fn mask_padded<R: RngCore + ?Sized>(
        key: &HmacKey,
        width: u8,
        lo: u32,
        hi: u32,
        rng: &mut R,
    ) -> Result<Self, PrefixError> {
        Self::mask_padded_in(key, width, lo, hi, rng, &mut MaskScratch::new())
    }

    /// [`MaskedRange::mask_padded`] staging through `scratch`,
    /// allocation-free once the pool is warm; the padding draws consume
    /// exactly the RNG stream of the unpooled path.
    ///
    /// # Errors
    ///
    /// Returns [`PrefixError`] as for [`MaskedRange::mask`].
    pub fn mask_padded_in<R: RngCore + ?Sized>(
        key: &HmacKey,
        width: u8,
        lo: u32,
        hi: u32,
        rng: &mut R,
        scratch: &mut MaskScratch,
    ) -> Result<Self, PrefixError> {
        let mut masked = Self::mask_in(key, width, lo, hi, scratch)?;
        let target = max_cover_len(width);
        while masked.tags.len() < target {
            let mut bytes = [0u8; TAG_LEN];
            rng.fill_bytes(&mut bytes);
            masked.tags.insert(Tag::from_bytes(bytes));
        }
        Ok(masked)
    }

    /// Consumes exactly the RNG draws [`mask_padded_in`](Self::mask_padded_in)
    /// would spend on `[lo, hi]`, without computing any HMAC tag.
    ///
    /// A caller holding a still-valid masked range (same key, same
    /// interval) can skip the re-mask entirely and call this to keep a
    /// shared RNG stream bit-aligned with a path that does re-mask. The
    /// draw count is `max_cover_len(width) − |cover(lo, hi)|`: the pad
    /// loop adds one uniformly random 16-byte tag per iteration, and a
    /// 128-bit collision with a genuine or earlier pad tag (the only
    /// event that would cost an extra draw) has probability ≈ 2⁻¹²⁸ —
    /// below any reachable state, and caught by the arena on/off
    /// fingerprint oracle if it ever occurred.
    ///
    /// # Errors
    ///
    /// Returns [`PrefixError`] as for [`MaskedRange::mask`].
    pub fn replay_padding_draws<R: RngCore + ?Sized>(
        width: u8,
        lo: u32,
        hi: u32,
        rng: &mut R,
        scratch: &mut MaskScratch,
    ) -> Result<(), PrefixError> {
        let mut cover = std::mem::take(&mut scratch.prefixes);
        let built = range_prefixes_into(width, lo, hi, &mut cover);
        let cover_len = cover.len();
        scratch.prefixes = cover;
        built?;
        for _ in cover_len..max_cover_len(width) {
            let mut bytes = [0u8; TAG_LEN];
            rng.fill_bytes(&mut bytes);
        }
        Ok(())
    }

    /// Reconstructs a masked range from raw transmitted tags.
    ///
    /// # Errors
    ///
    /// Returns [`PrefixError::EmptyTagSet`] if `tags` yields nothing, for
    /// the same reason as [`MaskedPoint::from_tags`]: an empty cover
    /// contains no point, so transport loss would read as "out of range".
    pub fn from_tags<I: IntoIterator<Item = Tag>>(tags: I) -> Result<Self, PrefixError> {
        let tags: TagSet = tags.into_iter().collect();
        if tags.is_empty() {
            return Err(PrefixError::EmptyTagSet);
        }
        Ok(Self { tags })
    }

    /// An order-independent 64-bit fingerprint of the transmitted tag
    /// set, as [`MaskedPoint::fingerprint`].
    pub fn fingerprint(&self) -> u64 {
        tag_set_fingerprint(&self.tags)
    }

    /// Number of transmitted tags.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the set holds no tags (never true for a genuine cover).
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Iterates over the transmitted tags.
    pub fn iter(&self) -> impl Iterator<Item = &Tag> {
        self.tags.iter()
    }

    /// Transmission size in bytes.
    pub fn wire_len(&self) -> usize {
        self.tags.len() * TAG_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::prefix_family;
    use crate::range::range_prefixes;
    use lppa_rng::rngs::StdRng;
    use lppa_rng::SeedableRng;

    fn key(byte: u8) -> HmacKey {
        HmacKey::from_bytes([byte; 32])
    }

    #[test]
    fn membership_matches_plaintext_exhaustively() {
        let k = key(3);
        let width = 5u8;
        for value in 0..32u32 {
            let point = MaskedPoint::mask(&k, width, value).unwrap();
            for lo in (0..32u32).step_by(3) {
                for hi in (lo..32u32).step_by(5) {
                    let range = MaskedRange::mask(&k, width, lo, hi).unwrap();
                    assert_eq!(
                        point.in_range(&range),
                        (lo..=hi).contains(&value),
                        "v={value} [{lo},{hi}]"
                    );
                }
            }
        }
    }

    #[test]
    fn replay_padding_draws_keeps_streams_aligned() {
        // After masking a padded range and after merely replaying its
        // draws, a shared RNG must sit at the same stream position: the
        // next value drawn from each must agree, for many random ranges
        // across widths.
        let k = key(21);
        let mut seed_rng = StdRng::seed_from_u64(0x5eed);
        for trial in 0..200u64 {
            let width = 2 + (trial % 15) as u8;
            let max = (1u64 << width) - 1;
            let a = seed_rng.next_u64() % (max + 1);
            let b = seed_rng.next_u64() % (max + 1);
            let (lo, hi) = (a.min(b) as u32, a.max(b) as u32);
            let mut masked_rng = StdRng::seed_from_u64(trial);
            let mut replay_rng = StdRng::seed_from_u64(trial);
            MaskedRange::mask_padded(&k, width, lo, hi, &mut masked_rng).unwrap();
            MaskedRange::replay_padding_draws(
                width,
                lo,
                hi,
                &mut replay_rng,
                &mut MaskScratch::new(),
            )
            .unwrap();
            assert_eq!(
                masked_rng.next_u64(),
                replay_rng.next_u64(),
                "stream diverged: w={width} lo={lo} hi={hi}"
            );
        }
    }

    #[test]
    fn batched_masking_matches_scalar_tags() {
        // mask_all routes through the multi-lane kernel; the tag set must
        // be exactly what per-prefix scalar masking produces.
        let k = key(13);
        for (width, value) in [(1u8, 1u32), (4, 9), (13, 1234), (16, 40000)] {
            let family = prefix_family(width, value).unwrap();
            let scalar: TagSet =
                family.iter().map(|p| Tag::compute(&k, &p.to_mask_input())).collect();
            let point = MaskedPoint::mask(&k, width, value).unwrap();
            assert_eq!(point.len(), scalar.len(), "w={width}");
            assert!(point.iter().all(|t| scalar.contains(t)), "w={width}");
        }
        let cover = range_prefixes(13, 100, 7000).unwrap();
        let scalar: TagSet = cover.iter().map(|p| Tag::compute(&k, &p.to_mask_input())).collect();
        let range = MaskedRange::mask(&k, 13, 100, 7000).unwrap();
        assert_eq!(range.len(), scalar.len());
        assert!(range.iter().all(|t| scalar.contains(t)));
    }

    #[test]
    fn raw_tag_mix_folds_to_set_fingerprint() {
        // XOR-folding raw_tag_mix over serialized tag bytes must equal
        // the materialized set's fingerprint — this is the equation the
        // zero-copy wire decoder relies on to checksum borrowed views.
        let k = key(9);
        let point = MaskedPoint::mask(&k, 11, 700).unwrap();
        let folded = point.iter().map(|t| raw_tag_mix(t.as_bytes())).fold(0u64, |a, h| a ^ h);
        assert_eq!(folded, point.fingerprint());
        let range = MaskedRange::mask(&k, 11, 3, 1999).unwrap();
        let folded = range.iter().map(|t| raw_tag_mix(t.as_bytes())).fold(0u64, |a, h| a ^ h);
        assert_eq!(folded, range.fingerprint());
    }

    #[test]
    fn different_keys_break_membership() {
        // Cross-key intersection must (overwhelmingly) fail even when the
        // plaintext relation holds — this is what isolates channels under
        // per-channel keys in the advanced scheme.
        let point = MaskedPoint::mask(&key(1), 8, 100).unwrap();
        let range = MaskedRange::mask(&key(2), 8, 0, 255).unwrap();
        assert!(!point.in_range(&range));
    }

    #[test]
    fn padding_reaches_worst_case_cardinality() {
        let mut rng = StdRng::seed_from_u64(5);
        let k = key(9);
        // [10, 14] over 4 bits has a 3-prefix cover; padded it must have 6.
        let plain = MaskedRange::mask(&k, 4, 10, 14).unwrap();
        assert_eq!(plain.len(), 3);
        let padded = MaskedRange::mask_padded(&k, 4, 10, 14, &mut rng).unwrap();
        assert_eq!(padded.len(), max_cover_len(4));
    }

    #[test]
    fn padding_preserves_membership_semantics() {
        let mut rng = StdRng::seed_from_u64(6);
        let k = key(7);
        let width = 6u8;
        for value in 0..64u32 {
            let point = MaskedPoint::mask(&k, width, value).unwrap();
            let padded = MaskedRange::mask_padded(&k, width, 20, 40, &mut rng).unwrap();
            assert_eq!(point.in_range(&padded), (20..=40).contains(&value), "v={value}");
        }
    }

    #[test]
    fn all_padded_ranges_have_equal_cardinality() {
        // The leakage the padding closes: every transmitted range looks
        // the same size regardless of the underlying interval.
        let mut rng = StdRng::seed_from_u64(8);
        let k = key(4);
        let sizes: HashSet<usize> = [(0u32, 1u32), (3, 14), (10, 14), (5, 14), (0, 15)]
            .into_iter()
            .map(|(lo, hi)| MaskedRange::mask_padded(&k, 4, lo, hi, &mut rng).unwrap().len())
            .collect();
        assert_eq!(sizes.len(), 1);
    }

    #[test]
    fn family_wire_len_matches_theorem_4_shape() {
        // Theorem 4 counts w+1 prefix-family elements; the masked point
        // transmits exactly that many tags.
        let k = key(2);
        for width in [4u8, 8, 12] {
            let point = MaskedPoint::mask(&k, width, 1).unwrap();
            assert_eq!(point.len(), usize::from(width) + 1);
            assert_eq!(point.wire_len(), (usize::from(width) + 1) * TAG_LEN);
        }
    }

    #[test]
    fn from_tags_roundtrip() {
        let k = key(11);
        let point = MaskedPoint::mask(&k, 4, 9).unwrap();
        let rebuilt = MaskedPoint::from_tags(point.iter().copied()).unwrap();
        assert_eq!(point, rebuilt);
        let range = MaskedRange::mask(&k, 4, 2, 9).unwrap();
        let rebuilt = MaskedRange::from_tags(range.iter().copied()).unwrap();
        assert_eq!(range, rebuilt);
        assert!(!rebuilt.is_empty());
    }

    #[test]
    fn from_tags_rejects_empty_sets() {
        // An empty point matches nothing — indistinguishable from a
        // dropped message, so reconstruction must refuse it outright.
        assert_eq!(MaskedPoint::from_tags(std::iter::empty()), Err(PrefixError::EmptyTagSet));
        assert_eq!(MaskedRange::from_tags(std::iter::empty()), Err(PrefixError::EmptyTagSet));
        // One tag is enough to be a (possibly truncated) set again.
        assert!(MaskedPoint::from_tags([Tag::from_bytes([1; 16])]).is_ok());
    }

    #[test]
    fn range_fingerprint_is_order_independent_and_content_sensitive() {
        let k = key(12);
        let range = MaskedRange::mask(&k, 5, 3, 19).unwrap();
        let mut tags: Vec<Tag> = range.iter().copied().collect();
        tags.reverse();
        let rebuilt = MaskedRange::from_tags(tags).unwrap();
        assert_eq!(range.fingerprint(), rebuilt.fingerprint());
        let other = MaskedRange::mask(&k, 5, 3, 20).unwrap();
        assert_ne!(range.fingerprint(), other.fingerprint());
    }

    #[test]
    fn invalid_inputs_propagate_errors() {
        let k = key(1);
        assert!(MaskedPoint::mask(&k, 4, 16).is_err());
        assert!(MaskedRange::mask(&k, 4, 9, 3).is_err());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(MaskedRange::mask_padded(&k, 0, 0, 0, &mut rng).is_err());
    }
}
