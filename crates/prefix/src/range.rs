//! The minimal range cover `Q([a, b])`: the smallest set of prefixes whose
//! union is exactly the integer interval `[a, b]`.
//!
//! Each prefix is an aligned dyadic interval; the canonical minimal cover
//! consists of the *maximal* dyadic intervals inside `[a, b]` and has at
//! most `2w − 2` members for a `w`-bit domain (Gupta & McKeown, the
//! paper's reference \[15\]).

use crate::error::PrefixError;
use crate::prefix::{Prefix, MAX_WIDTH};

/// Computes the minimal prefix cover `Q([lo, hi])` over a `width`-bit
/// domain.
///
/// The cover is returned in ascending order of the intervals it denotes.
///
/// # Errors
///
/// * [`PrefixError::EmptyRange`] if `lo > hi`;
/// * [`PrefixError::WidthOutOfRange`] / [`PrefixError::ValueTooWide`] for
///   invalid domains.
///
/// # Examples
///
/// ```
/// use lppa_prefix::range::range_prefixes;
///
/// # fn main() -> Result<(), lppa_prefix::PrefixError> {
/// // The paper's example: Q([6, 14]) = {011*, 10**, 110*, 1110}.
/// let cover = range_prefixes(4, 6, 14)?;
/// let rendered: Vec<String> = cover.iter().map(|p| p.to_string()).collect();
/// assert_eq!(rendered, ["011*", "10**", "110*", "1110"]);
/// # Ok(())
/// # }
/// ```
pub fn range_prefixes(width: u8, lo: u32, hi: u32) -> Result<Vec<Prefix>, PrefixError> {
    let mut cover = Vec::new();
    range_prefixes_into(width, lo, hi, &mut cover)?;
    Ok(cover)
}

/// [`range_prefixes`] into a caller-owned buffer: the buffer is cleared
/// and refilled, retaining its capacity, so pooled callers (the arena
/// scratch layer) pay zero allocations after warm-up.
///
/// # Errors
///
/// Returns [`PrefixError`] as for [`range_prefixes`]; on error the
/// buffer is left cleared.
pub fn range_prefixes_into(
    width: u8,
    lo: u32,
    hi: u32,
    out: &mut Vec<Prefix>,
) -> Result<(), PrefixError> {
    out.clear();
    if width == 0 || width > MAX_WIDTH {
        return Err(PrefixError::WidthOutOfRange { width });
    }
    if lo > hi {
        return Err(PrefixError::EmptyRange { lo: u64::from(lo), hi: u64::from(hi) });
    }
    // Validating `hi` suffices since `lo <= hi`.
    Prefix::exact(width, hi)?;

    descend(width, 0, 0, lo, hi, out);
    Ok(())
}

/// Recursively walks the prefix trie, emitting maximal fully-contained
/// nodes.
fn descend(width: u8, bits: u32, spec_len: u8, lo: u32, hi: u32, out: &mut Vec<Prefix>) {
    let node = Prefix::new(width, bits, spec_len).expect("trie nodes are valid by construction");
    let (node_lo, node_hi) = (node.low(), node.high());
    if node_lo > hi || node_hi < lo {
        return; // disjoint
    }
    if lo <= node_lo && node_hi <= hi {
        out.push(node); // maximal contained dyadic interval
        return;
    }
    debug_assert!(
        spec_len < width,
        "leaf nodes are single values and always contained or disjoint"
    );
    descend(width, bits << 1, spec_len + 1, lo, hi, out);
    descend(width, (bits << 1) | 1, spec_len + 1, lo, hi, out);
}

/// Upper bound on the cover size for a `width`-bit domain:
/// `max(2, 2·width − 2)` — the classic `2w − 2` bound for `w ≥ 2`,
/// clamped to 2 for the degenerate 1-bit domain.
///
/// The advanced bid-submission protocol pads every transmitted range cover
/// to exactly this many elements so cover cardinality cannot be used to
/// distinguish bid values (§IV.C.2 of the paper).
pub fn max_cover_len(width: u8) -> usize {
    if width <= 1 {
        // A 1-bit domain has covers of size at most 2 ({0},{1} or the
        // wildcard); the 2w−2 bound degenerates, so special-case it.
        2
    } else {
        2 * usize::from(width) - 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force check that a cover is exact: every in-range value is
    /// covered, every out-of-range value is not.
    fn assert_exact_cover(width: u8, lo: u32, hi: u32, cover: &[Prefix]) {
        let domain = 1u64 << width;
        for v in 0..domain {
            let v = v as u32;
            let covered = cover.iter().any(|p| p.contains(v));
            assert_eq!(covered, (lo..=hi).contains(&v), "w={width} [{lo},{hi}] v={v}");
        }
    }

    #[test]
    fn paper_example_6_to_14() {
        let cover = range_prefixes(4, 6, 14).unwrap();
        assert_exact_cover(4, 6, 14, &cover);
        assert_eq!(cover.len(), 4);
        // Numericalized set from §II.B: {01110, 01100, 10100, 11010, 11100}
        // — the paper lists O(Q([6,14])) as {0110(0?),...}; our canonical
        // cover yields these four:
        let nums: Vec<u64> = cover.iter().map(Prefix::numericalize).collect();
        assert!(nums.contains(&0b01110)); // 011*
        assert!(nums.contains(&0b10100)); // 10**
        assert!(nums.contains(&0b11010)); // 110*
        assert!(nums.contains(&0b11101)); // 1110 exact
    }

    #[test]
    fn full_domain_is_single_wildcard() {
        let cover = range_prefixes(4, 0, 15).unwrap();
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0].spec_len(), 0);
    }

    #[test]
    fn singleton_range_is_exact_prefix() {
        let cover = range_prefixes(8, 77, 77).unwrap();
        assert_eq!(cover.len(), 1);
        assert_eq!((cover[0].low(), cover[0].high()), (77, 77));
    }

    #[test]
    fn exhaustive_small_domain() {
        // Every range over a 5-bit domain must be covered exactly and
        // within the 2w−2 bound.
        let width = 5u8;
        for lo in 0..32u32 {
            for hi in lo..32u32 {
                let cover = range_prefixes(width, lo, hi).unwrap();
                assert_exact_cover(width, lo, hi, &cover);
                assert!(
                    cover.len() <= max_cover_len(width),
                    "[{lo},{hi}] cover {} > bound {}",
                    cover.len(),
                    max_cover_len(width)
                );
            }
        }
    }

    #[test]
    fn worst_case_reaches_bound() {
        // [1, 2^w − 2] is the classic worst case with exactly 2w−2
        // prefixes.
        let width = 8u8;
        let cover = range_prefixes(width, 1, (1 << width) - 2).unwrap();
        assert_eq!(cover.len(), max_cover_len(width));
    }

    #[test]
    fn cover_is_sorted_and_disjoint() {
        let cover = range_prefixes(10, 100, 900).unwrap();
        for pair in cover.windows(2) {
            assert!(pair[0].high() < pair[1].low(), "{:?} then {:?}", pair[0], pair[1]);
        }
    }

    #[test]
    fn empty_range_is_rejected() {
        assert_eq!(range_prefixes(4, 9, 3), Err(PrefixError::EmptyRange { lo: 9, hi: 3 }));
    }

    #[test]
    fn out_of_domain_bound_is_rejected() {
        assert!(range_prefixes(4, 0, 16).is_err());
        assert!(range_prefixes(0, 0, 0).is_err());
    }

    #[test]
    fn max_cover_len_degenerate_widths() {
        assert_eq!(max_cover_len(1), 2);
        assert_eq!(max_cover_len(2), 2);
        assert_eq!(max_cover_len(4), 6);
        assert_eq!(max_cover_len(16), 30);
    }

    #[test]
    fn width_one_domain() {
        let cover = range_prefixes(1, 0, 1).unwrap();
        assert_eq!(cover.len(), 1);
        let cover = range_prefixes(1, 1, 1).unwrap();
        assert_exact_cover(1, 1, 1, &cover);
    }
}
