//! The [`Prefix`] type: a `{0,1}^s {*}^(w-s)` pattern over `w`-bit
//! integers, and its numericalization.
//!
//! A *prefix* with `s` specified bits denotes the set of all `w`-bit
//! numbers sharing those leading bits — equivalently, an aligned dyadic
//! interval of size `2^(w-s)`. The paper's prefix-membership scheme
//! (borrowed from SafeQ \[11\]) rests on two operations implemented here:
//!
//! * membership: does a prefix contain a number?
//! * numericalization `O(·)`: the injective map sending the prefix
//!   `t1..ts *..*` to the `(w+1)`-bit number `t1..ts 1 0..0`, which lets
//!   prefix equality be tested as integer equality.

use crate::error::PrefixError;

/// Maximum supported bit width of the underlying domain.
///
/// 32 bits comfortably covers grid coordinates (at most ~14 bits in the
/// paper's 100×100 evaluation grids) and bid prices.
pub const MAX_WIDTH: u8 = 32;

/// A prefix pattern over `w`-bit unsigned integers.
///
/// # Examples
///
/// ```
/// use lppa_prefix::Prefix;
///
/// # fn main() -> Result<(), lppa_prefix::PrefixError> {
/// // The prefix 01** over 4-bit numbers covers 4..=7.
/// let p = Prefix::new(4, 0b01, 2)?;
/// assert!(p.contains(5));
/// assert!(!p.contains(8));
/// assert_eq!(p.numericalize(), 0b01100);
/// assert_eq!(p.to_string(), "01**");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    /// The value of the specified leading bits, right-aligned.
    bits: u32,
    /// Number of specified bits (`s`).
    spec_len: u8,
    /// Total width (`w`).
    width: u8,
}

impl Prefix {
    /// Creates the prefix whose `spec_len` leading bits equal the
    /// `spec_len` low-order bits of `bits`, over a `width`-bit domain.
    ///
    /// # Errors
    ///
    /// * [`PrefixError::WidthOutOfRange`] if `width` is 0 or exceeds
    ///   [`MAX_WIDTH`];
    /// * [`PrefixError::SpecLenTooLong`] if `spec_len > width`;
    /// * [`PrefixError::ValueTooWide`] if `bits` has more than
    ///   `spec_len` significant bits.
    pub fn new(width: u8, bits: u32, spec_len: u8) -> Result<Self, PrefixError> {
        if width == 0 || width > MAX_WIDTH {
            return Err(PrefixError::WidthOutOfRange { width });
        }
        if spec_len > width {
            return Err(PrefixError::SpecLenTooLong { spec_len, width });
        }
        if spec_len < 32 && u64::from(bits) >= (1u64 << spec_len) {
            return Err(PrefixError::ValueTooWide { value: u64::from(bits), width: spec_len });
        }
        Ok(Self { bits, spec_len, width })
    }

    /// The fully-specified prefix equal to the single number `value`.
    ///
    /// # Errors
    ///
    /// Returns [`PrefixError::ValueTooWide`] if `value` does not fit in
    /// `width` bits, or [`PrefixError::WidthOutOfRange`] for a bad width.
    pub fn exact(width: u8, value: u32) -> Result<Self, PrefixError> {
        if width == 0 || width > MAX_WIDTH {
            return Err(PrefixError::WidthOutOfRange { width });
        }
        if width < 32 && u64::from(value) >= (1u64 << width) {
            return Err(PrefixError::ValueTooWide { value: u64::from(value), width });
        }
        Ok(Self { bits: value, spec_len: width, width })
    }

    /// Number of specified (non-`*`) bits.
    pub fn spec_len(&self) -> u8 {
        self.spec_len
    }

    /// Total bit width of the domain.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// The value of the specified leading bits, right-aligned.
    pub fn leading_bits(&self) -> u32 {
        self.bits
    }

    /// Smallest number matched by this prefix.
    pub fn low(&self) -> u32 {
        if self.spec_len == 0 {
            0
        } else {
            self.bits << (self.width - self.spec_len)
        }
    }

    /// Largest number matched by this prefix.
    pub fn high(&self) -> u32 {
        let wild = self.width - self.spec_len;
        let mask: u32 = if wild >= 32 { u32::MAX } else { (1u32 << wild) - 1 };
        self.low() | mask
    }

    /// Whether `value` matches the prefix pattern.
    pub fn contains(&self, value: u32) -> bool {
        if self.spec_len == 0 {
            // All-wildcard prefix matches the whole domain.
            return self.width == 32 || u64::from(value) < (1u64 << self.width);
        }
        let shift = self.width - self.spec_len;
        (value >> shift) == self.bits
            && (self.width == 32 || u64::from(value) < (1u64 << self.width))
    }

    /// Numericalization `O(·)`: the `(w+1)`-bit number `t1..ts 1 0..0`.
    ///
    /// This map is injective over prefixes of a fixed width, so two
    /// prefixes are equal iff their numericalizations are equal — the
    /// property that turns prefix matching into (masked) equality checks.
    pub fn numericalize(&self) -> u64 {
        let marked = (u64::from(self.bits) << 1) | 1;
        marked << (self.width - self.spec_len)
    }

    /// Serializes the numericalized prefix for HMAC masking.
    ///
    /// The encoding is `[width, O(prefix) as big-endian u64]`, making
    /// prefixes of different domain widths hash to unrelated tags.
    pub fn to_mask_input(&self) -> [u8; MASK_INPUT_LEN] {
        let mut out = [0u8; MASK_INPUT_LEN];
        self.write_mask_input(&mut out);
        out
    }

    /// Writes the mask-input encoding into a caller-provided buffer.
    ///
    /// Allocation-free building block for the batched masking path,
    /// which stages many mask inputs in one stack array before handing
    /// them to the multi-lane tag kernel.
    pub fn write_mask_input(&self, out: &mut [u8; MASK_INPUT_LEN]) {
        out[0] = self.width;
        out[1..].copy_from_slice(&self.numericalize().to_be_bytes());
    }
}

/// Byte length of [`Prefix::to_mask_input`]'s encoding: a width byte
/// plus the numericalization as a big-endian `u64`.
pub const MASK_INPUT_LEN: usize = 9;

impl std::str::FromStr for Prefix {
    type Err = PrefixError;

    /// Parses the paper's notation, e.g. `"01**"`; round-trips with the
    /// [`std::fmt::Display`] rendering.
    ///
    /// # Errors
    ///
    /// Returns [`PrefixError::WidthOutOfRange`] for empty or over-long
    /// patterns and [`PrefixError::ValueTooWide`] for any character other
    /// than `0`, `1` and trailing `*`s (a specified bit after a wildcard
    /// is also rejected, reported as `SpecLenTooLong`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let width =
            u8::try_from(s.len()).map_err(|_| PrefixError::WidthOutOfRange { width: u8::MAX })?;
        if width == 0 || width > MAX_WIDTH {
            return Err(PrefixError::WidthOutOfRange { width });
        }
        let mut bits: u32 = 0;
        let mut spec_len: u8 = 0;
        let mut seen_wildcard = false;
        for ch in s.chars() {
            match ch {
                '0' | '1' => {
                    if seen_wildcard {
                        // Specified bits must precede wildcards.
                        return Err(PrefixError::SpecLenTooLong { spec_len: width, width });
                    }
                    bits = (bits << 1) | u32::from(ch == '1');
                    spec_len += 1;
                }
                '*' => seen_wildcard = true,
                _ => return Err(PrefixError::ValueTooWide { value: u64::from(ch as u32), width }),
            }
        }
        Prefix::new(width, bits, spec_len)
    }
}

impl std::fmt::Debug for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Prefix({self})")
    }
}

impl std::fmt::Display for Prefix {
    /// Renders the pattern in the paper's notation, e.g. `01**`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in (0..self.spec_len).rev() {
            let bit = (self.bits >> i) & 1;
            write!(f, "{bit}")?;
        }
        for _ in 0..(self.width - self.spec_len) {
            write!(f, "*")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_numericalization() {
        // O(110*) = 11010 (§II.B of the paper).
        let p = Prefix::new(4, 0b110, 3).unwrap();
        assert_eq!(p.numericalize(), 0b11010);
    }

    #[test]
    fn exact_prefix_numericalization_appends_one() {
        // O(0111) = 01111 for the fully specified prefix of 7.
        let p = Prefix::exact(4, 7).unwrap();
        assert_eq!(p.numericalize(), 0b01111);
    }

    #[test]
    fn all_wildcard_numericalization_is_leading_one() {
        // O(****) = 10000.
        let p = Prefix::new(4, 0, 0).unwrap();
        assert_eq!(p.numericalize(), 0b10000);
    }

    #[test]
    fn contains_matches_interval() {
        let p = Prefix::new(4, 0b10, 2).unwrap(); // 10** covers 8..=11
        assert_eq!(p.low(), 8);
        assert_eq!(p.high(), 11);
        for v in 0..16 {
            assert_eq!(p.contains(v), (8..=11).contains(&v), "v={v}");
        }
    }

    #[test]
    fn all_wildcard_covers_domain() {
        let p = Prefix::new(3, 0, 0).unwrap();
        assert_eq!((p.low(), p.high()), (0, 7));
        assert!(p.contains(0));
        assert!(p.contains(7));
        assert!(!p.contains(8));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Prefix::new(4, 0b011, 3).unwrap().to_string(), "011*");
        assert_eq!(Prefix::new(4, 0b10, 2).unwrap().to_string(), "10**");
        assert_eq!(Prefix::exact(4, 0b1110).unwrap().to_string(), "1110");
        assert_eq!(Prefix::new(4, 0, 0).unwrap().to_string(), "****");
    }

    #[test]
    fn invalid_constructions_are_rejected() {
        assert_eq!(Prefix::new(0, 0, 0), Err(PrefixError::WidthOutOfRange { width: 0 }));
        assert_eq!(Prefix::new(33, 0, 0), Err(PrefixError::WidthOutOfRange { width: 33 }));
        assert_eq!(
            Prefix::new(4, 0, 5),
            Err(PrefixError::SpecLenTooLong { spec_len: 5, width: 4 })
        );
        assert_eq!(Prefix::new(4, 0b100, 2), Err(PrefixError::ValueTooWide { value: 4, width: 2 }));
        assert_eq!(Prefix::exact(4, 16), Err(PrefixError::ValueTooWide { value: 16, width: 4 }));
    }

    #[test]
    fn numericalization_is_injective_for_small_width() {
        // Enumerate every prefix of width 6 and check all O(·) values are
        // distinct.
        let width = 6u8;
        let mut seen = std::collections::HashSet::new();
        for spec_len in 0..=width {
            let count = 1u32 << spec_len;
            for bits in 0..count {
                let p = Prefix::new(width, bits, spec_len).unwrap();
                assert!(seen.insert(p.numericalize()), "collision at {p}");
            }
        }
        // Total number of prefixes of width w is 2^(w+1) - 1.
        assert_eq!(seen.len(), (1usize << (width + 1)) - 1);
    }

    #[test]
    fn mask_input_distinguishes_widths() {
        let p4 = Prefix::exact(4, 3).unwrap();
        let p5 = Prefix::exact(5, 3).unwrap();
        assert_ne!(p4.to_mask_input(), p5.to_mask_input());
    }

    #[test]
    fn parse_roundtrips_with_display() {
        for text in ["01**", "1110", "****", "0", "1", "10110***"] {
            let p: Prefix = text.parse().unwrap();
            assert_eq!(p.to_string(), text, "roundtrip failed");
        }
        // Exhaustive roundtrip over a small width.
        for spec_len in 0..=5u8 {
            for bits in 0..(1u32 << spec_len) {
                let p = Prefix::new(5, bits, spec_len).unwrap();
                let back: Prefix = p.to_string().parse().unwrap();
                assert_eq!(p, back);
            }
        }
    }

    #[test]
    fn parse_rejects_malformed_patterns() {
        assert!("".parse::<Prefix>().is_err());
        assert!("01x*".parse::<Prefix>().is_err());
        assert!("0*1".parse::<Prefix>().is_err(), "bit after wildcard");
        assert!("0".repeat(40).parse::<Prefix>().is_err(), "too wide");
    }

    #[test]
    fn full_width_32_is_supported() {
        let p = Prefix::exact(32, u32::MAX).unwrap();
        assert!(p.contains(u32::MAX));
        assert_eq!(p.numericalize(), (u64::from(u32::MAX) << 1) | 1);
        let wild = Prefix::new(32, 0, 0).unwrap();
        assert!(wild.contains(u32::MAX));
        assert!(wild.contains(0));
        assert_eq!(wild.high(), u32::MAX);
    }
}
