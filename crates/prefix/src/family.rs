//! The prefix family `G(x)`: every prefix containing a given number.
//!
//! For a `w`-bit number the family has exactly `w + 1` members — the
//! number itself, then each successively shorter prefix up to the
//! all-wildcard pattern. A number `x` lies in a range `[a, b]` iff
//! `G(x)` shares a member with the range cover `Q([a, b])`
//! (see [`crate::range`]).

use crate::error::PrefixError;
use crate::prefix::Prefix;

/// Computes the prefix family `G(value)` over a `width`-bit domain.
///
/// The result is ordered from the fully specified prefix down to the
/// all-wildcard prefix, matching the paper's presentation
/// `{t1..tw, t1..t(w-1)*, …, *..*}`.
///
/// # Errors
///
/// Returns [`PrefixError`] if `width` is invalid or `value` does not fit.
///
/// # Examples
///
/// ```
/// use lppa_prefix::family::prefix_family;
///
/// # fn main() -> Result<(), lppa_prefix::PrefixError> {
/// // The paper's example: G(7) over 4 bits.
/// let family = prefix_family(4, 7)?;
/// let rendered: Vec<String> = family.iter().map(|p| p.to_string()).collect();
/// assert_eq!(rendered, ["0111", "011*", "01**", "0***", "****"]);
/// # Ok(())
/// # }
/// ```
pub fn prefix_family(width: u8, value: u32) -> Result<Vec<Prefix>, PrefixError> {
    let mut family = Vec::with_capacity(usize::from(width) + 1);
    prefix_family_into(width, value, &mut family)?;
    Ok(family)
}

/// [`prefix_family`] into a caller-owned buffer: the buffer is cleared
/// and refilled, retaining its capacity, so pooled callers (the arena
/// scratch layer) pay zero allocations after warm-up.
///
/// # Errors
///
/// Returns [`PrefixError`] as for [`prefix_family`]; on error the buffer
/// is left cleared.
pub fn prefix_family_into(width: u8, value: u32, out: &mut Vec<Prefix>) -> Result<(), PrefixError> {
    out.clear();
    // Validate once via the strictest constructor.
    Prefix::exact(width, value)?;
    out.reserve(usize::from(width) + 1);
    for spec_len in (0..=width).rev() {
        let bits = if spec_len == 0 { 0 } else { value >> (width - spec_len) };
        out.push(Prefix::new(width, bits, spec_len).expect("validated above"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_size_is_width_plus_one() {
        for width in 1..=12u8 {
            let family = prefix_family(width, 0).unwrap();
            assert_eq!(family.len(), usize::from(width) + 1);
        }
    }

    #[test]
    fn every_member_contains_the_value() {
        for value in [0u32, 1, 7, 42, 99, 1023] {
            let family = prefix_family(10, value).unwrap();
            for p in &family {
                assert!(p.contains(value), "{p} should contain {value}");
            }
        }
    }

    #[test]
    fn members_shrink_monotonically() {
        let family = prefix_family(8, 200).unwrap();
        for pair in family.windows(2) {
            assert_eq!(pair[0].spec_len(), pair[1].spec_len() + 1);
            // Each later prefix covers a superset.
            assert!(pair[1].low() <= pair[0].low());
            assert!(pair[1].high() >= pair[0].high());
        }
    }

    #[test]
    fn first_member_is_exact_last_is_wildcard() {
        let family = prefix_family(6, 33).unwrap();
        assert_eq!(family[0].spec_len(), 6);
        assert_eq!((family[0].low(), family[0].high()), (33, 33));
        assert_eq!(family.last().unwrap().spec_len(), 0);
    }

    #[test]
    fn value_out_of_domain_is_rejected() {
        assert!(prefix_family(4, 16).is_err());
        assert!(prefix_family(0, 0).is_err());
    }

    #[test]
    fn numericalized_family_of_paper_example() {
        // §II.B: member 01110 of O(G(7)) is the witness for 7 ∈ [6, 14].
        let family = prefix_family(4, 7).unwrap();
        let nums: Vec<u64> = family.iter().map(Prefix::numericalize).collect();
        assert!(nums.contains(&0b01110));
    }

    #[test]
    fn distinct_values_share_only_short_prefixes() {
        let f1 = prefix_family(8, 0b1010_0000).unwrap();
        let f2 = prefix_family(8, 0b1010_0001).unwrap();
        // They differ only in the last bit: exactly the fully-specified
        // member differs, the remaining 8 members coincide.
        let shared = f1.iter().filter(|p| f2.contains(p)).count();
        assert_eq!(shared, 8);
    }
}
