//! Prefix membership verification for privacy-preserving range queries.
//!
//! This crate implements the machinery underlying the LPPA protocol's
//! private comparisons (Liu et al., ICDCS 2013, building on SafeQ
//! \[Chen & Liu, INFOCOM 2011\]):
//!
//! * [`prefix::Prefix`] — `{0,1}^s {*}^(w−s)` patterns and their
//!   numericalization `O(·)`;
//! * [`family::prefix_family`] — the family `G(x)` of all prefixes
//!   containing a number;
//! * [`range::range_prefixes`] — the minimal cover `Q([a, b])` of an
//!   interval (≤ `max(2, 2w − 2)` prefixes, see [`range::max_cover_len`]);
//! * [`masked`] — HMAC-masked families and covers, supporting the
//!   oblivious membership test `x ∈ [a, b] ⇔ H(G(x)) ∩ H(Q([a,b])) ≠ ∅`;
//! * [`index`] — an inverted tag index that batches those membership
//!   tests, replacing `O(n²)` pairwise intersections with one linear
//!   build-and-probe pass.
//!
//! # Examples
//!
//! The paper's running example — testing `7 ∈ [6, 14]` without revealing
//! either side:
//!
//! ```
//! use lppa_crypto::keys::HmacKey;
//! use lppa_prefix::masked::{MaskedPoint, MaskedRange};
//!
//! # fn main() -> Result<(), lppa_prefix::PrefixError> {
//! let shared_key = HmacKey::from_bytes([42u8; 32]);
//! let hidden_seven = MaskedPoint::mask(&shared_key, 4, 7)?;
//! let hidden_interval = MaskedRange::mask(&shared_key, 4, 6, 14)?;
//! assert!(hidden_seven.in_range(&hidden_interval));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod error;
pub mod family;
pub mod index;
pub mod masked;
pub mod prefix;
pub mod range;

pub use backend::{
    parse_backend, Backend, BackendKind, BackendPoint, BackendRange, BloomFilter, BloomParams,
    MaskingBackend, BACKEND_ENV,
};
pub use error::PrefixError;
pub use family::prefix_family;
pub use index::{FrozenTagIndex, TagIndex};
pub use masked::{raw_tag_mix, MaskScratch, MaskedPoint, MaskedRange};
pub use prefix::{Prefix, MASK_INPUT_LEN, MAX_WIDTH};
pub use range::{max_cover_len, range_prefixes};
