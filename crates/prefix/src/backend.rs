//! Pluggable masking backends for the oblivious comparison layer.
//!
//! The paper's scheme masks every prefix with HMAC and compares a
//! point's tag family against a range's tag cover by exact set
//! intersection. That is one point in a larger design space: encrypted
//! probabilistic set-membership structures (Bloom filters, per Grissa
//! et al., arXiv:1806.03557) trade a tunable false-positive rate for
//! smaller probe state and different leakage, and an audited
//! commitment-ledger deployment keeps the exact probes but chains every
//! submission and verdict into a tamper-evident log.
//!
//! [`MaskingBackend`] abstracts the probe: a backend *compiles* a
//! [`MaskedPoint`] / [`MaskedRange`] pair into its own representation
//! and answers the membership test `point ∈ range`. Three backends
//! ship:
//!
//! * [`BackendKind::Hmac`] — the paper's exact tag-set intersection;
//!   the reference every other backend is differentially tested
//!   against.
//! * [`BackendKind::Bloom`] — range covers are compiled into an
//!   encrypted Bloom filter ([`BloomFilter`]); probes may return false
//!   positives at the analytic rate `(1 − e^{−kn/m})^k`, never false
//!   negatives.
//! * [`BackendKind::Ledger`] — exact probes (identical verdicts to
//!   `Hmac`) plus an append-only sha-chained commitment ledger
//!   maintained by the settlement layer (`lppa_crypto::commit`); the
//!   probe layer itself is shared with `Hmac` by design, so outcome
//!   equivalence is structural.
//!
//! The active backend is selected per run via the `LPPA_BACKEND`
//! environment knob, parsed with the same strict grammar as every
//! `lppa-par` knob: ASCII-trimmed, exact lowercase name, anything else
//! falls back to the default ([`BackendKind::Hmac`]).

use lppa_crypto::tag::Tag;

use crate::masked::{MaskedPoint, MaskedRange, TagSet};

/// Environment knob naming the active masking backend.
pub const BACKEND_ENV: &str = "LPPA_BACKEND";

/// The shipped masking backends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Exact HMAC tag-set intersection — the paper's scheme.
    #[default]
    Hmac,
    /// Encrypted-Bloom set membership: tunable false positives, no
    /// false negatives.
    Bloom,
    /// Exact probes plus an audited append-only commitment ledger,
    /// verified at settle time.
    Ledger,
}

impl BackendKind {
    /// Every shipped backend, in fingerprint-grid order.
    pub const ALL: [BackendKind; 3] = [BackendKind::Hmac, BackendKind::Bloom, BackendKind::Ledger];

    /// The knob spelling of this backend.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Hmac => "hmac",
            BackendKind::Bloom => "bloom",
            BackendKind::Ledger => "ledger",
        }
    }

    /// The backend named by `LPPA_BACKEND`, defaulting to
    /// [`BackendKind::Hmac`] when the knob is unset or malformed —
    /// the same fall-back-to-default contract as the `lppa-par`
    /// thread-count knob.
    pub fn from_env() -> Self {
        parse_backend(std::env::var(BACKEND_ENV).ok().as_deref()).unwrap_or_default()
    }

    /// Instantiates this backend with default parameters.
    pub fn backend(self) -> Backend {
        match self {
            BackendKind::Hmac => Backend::Hmac,
            BackendKind::Bloom => Backend::Bloom(BloomParams::default()),
            BackendKind::Ledger => Backend::Ledger,
        }
    }
}

/// Parses an `LPPA_BACKEND` value with the strict `lppa-par` knob
/// grammar: ASCII-whitespace-trimmed, then an exact lowercase backend
/// name. Anything else — empty, mixed case, abbreviations, trailing
/// garbage — is `None`, and the caller falls back to its default.
pub fn parse_backend(value: Option<&str>) -> Option<BackendKind> {
    let v = value?.trim_matches(|c: char| c.is_ascii_whitespace());
    match v {
        "hmac" => Some(BackendKind::Hmac),
        "bloom" => Some(BackendKind::Bloom),
        "ledger" => Some(BackendKind::Ledger),
        _ => None,
    }
}

/// A point compiled for backend probing.
///
/// Points stay exact tag lists in every shipped backend: the
/// prefix-family side of the membership test is small (`width + 1`
/// tags) and probing it against a compiled range is where the backends
/// differ.
#[derive(Clone, Debug)]
pub struct BackendPoint {
    tags: Vec<Tag>,
}

impl BackendPoint {
    /// Number of tags this point probes with.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the point carries no tags (unreachable for points built
    /// through [`MaskingBackend::compile_point`]).
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }
}

/// A range cover compiled for backend probing.
#[derive(Clone, Debug)]
pub enum BackendRange {
    /// The exact tag cover (Hmac and Ledger backends).
    Exact(TagSet),
    /// An encrypted Bloom filter over the cover tags (Bloom backend).
    Bloom(BloomFilter),
}

/// A masking backend: compiles masked points and ranges into probe
/// state and answers the oblivious membership test.
///
/// # Contract
///
/// For every genuine `(point, range)` pair masked under the same key:
///
/// * **Completeness** — if `point.in_range(range)` then
///   `probe(compile_point(point), compile_range(range))` is `true`.
///   No backend may introduce false negatives.
/// * **Soundness (exact backends)** — `Hmac` and `Ledger` return
///   exactly `point.in_range(range)`.
/// * **Soundness (probabilistic backends)** — `Bloom` may answer
///   `true` for a non-member point with probability bounded by
///   [`BloomParams::pair_fp_bound`]; the differential oracle measures
///   the realized rate against that bound on every scenario.
/// * **Determinism** — probes are pure: the same compiled pair always
///   produces the same verdict, so outcomes are independent of thread
///   count and probe order.
pub trait MaskingBackend {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Compiles a masked point (bid value or location coordinate) for
    /// probing.
    fn compile_point(&self, point: &MaskedPoint) -> BackendPoint;

    /// Compiles a masked range cover for probing.
    fn compile_range(&self, range: &MaskedRange) -> BackendRange;

    /// The oblivious membership test `point ∈ range`.
    fn probe(&self, point: &BackendPoint, range: &BackendRange) -> bool;
}

/// The shipped backends as one concrete [`MaskingBackend`].
///
/// An enum rather than trait objects: probe calls sit on the allocation
/// hot path, and every caller knows the full closed set of backends.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Backend {
    /// Exact tag-set intersection.
    Hmac,
    /// Bloom-compiled range covers with the given parameters.
    Bloom(BloomParams),
    /// Exact probes; the commitment chain is layered at settle time.
    Ledger,
}

impl MaskingBackend for Backend {
    fn kind(&self) -> BackendKind {
        match self {
            Backend::Hmac => BackendKind::Hmac,
            Backend::Bloom(_) => BackendKind::Bloom,
            Backend::Ledger => BackendKind::Ledger,
        }
    }

    fn compile_point(&self, point: &MaskedPoint) -> BackendPoint {
        BackendPoint { tags: point.iter().copied().collect() }
    }

    fn compile_range(&self, range: &MaskedRange) -> BackendRange {
        match self {
            Backend::Hmac | Backend::Ledger => BackendRange::Exact(range.iter().copied().collect()),
            Backend::Bloom(params) => {
                BackendRange::Bloom(BloomFilter::from_tags(range.iter(), range.len(), *params))
            }
        }
    }

    fn probe(&self, point: &BackendPoint, range: &BackendRange) -> bool {
        match range {
            BackendRange::Exact(tags) => point.tags.iter().any(|t| tags.contains(t)),
            BackendRange::Bloom(filter) => point.tags.iter().any(|t| filter.contains(t)),
        }
    }
}

/// Bloom sizing parameters: bits budgeted per inserted tag and the
/// number of index functions.
///
/// With `n` inserted tags, the filter allocates `m = bits_per_tag · n`
/// bits and derives `k = hashes` indexes per tag, so the analytic
/// false-positive rate per probed non-member tag is the classic
///
/// ```text
/// (1 − e^{−kn/m})^k = (1 − e^{−k/bits_per_tag})^k
/// ```
///
/// — independent of `n` because the filter scales with its load. The
/// trade-off documented in DESIGN.md §13: fewer bits per tag shrink
/// the compiled range (speed, and less structure leaked per cover) at
/// the cost of comparison false positives, which the differential
/// oracle bounds per scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BloomParams {
    /// Filter bits allocated per inserted tag (`m / n`). Clamped to at
    /// least 1.
    pub bits_per_tag: usize,
    /// Index functions per tag (`k`). Clamped to at least 1.
    pub hashes: u32,
}

impl Default for BloomParams {
    /// 16 bits per tag with 8 indexes: per-tag false-positive rate
    /// ≈ 5.7 · 10⁻⁴, chosen so a full scenario sees a handful of
    /// flipped comparisons at most — large enough to exercise the
    /// FP-tolerant oracle invariant, small enough that auction outcomes
    /// rarely move.
    fn default() -> Self {
        Self { bits_per_tag: 16, hashes: 8 }
    }
}

impl BloomParams {
    /// The analytic per-tag false-positive rate
    /// `(1 − e^{−k/bits_per_tag})^k`.
    pub fn analytic_fp_rate(&self) -> f64 {
        let k = f64::from(self.hashes.max(1));
        let c = self.bits_per_tag.max(1) as f64;
        (1.0 - (-k / c).exp()).powf(k)
    }

    /// Upper bound on the probability that a *comparison* flips: a
    /// point probing `point_tags` non-member tags against one compiled
    /// range answers `true` spuriously with probability at most
    /// `1 − (1 − p)^point_tags` for per-tag rate `p`.
    pub fn pair_fp_bound(&self, point_tags: usize) -> f64 {
        1.0 - (1.0 - self.analytic_fp_rate()).powi(point_tags.min(i32::MAX as usize) as i32)
    }
}

/// An encrypted Bloom filter over HMAC tags.
///
/// Tags are already uniform pseudorandom 128-bit values (truncated
/// HMAC-SHA256), so the filter needs no further hashing: the `k`
/// indexes are derived by Kirsch–Mitzenmacher double hashing from the
/// tag's two 64-bit halves. Without the masking key an observer sees
/// only the bit array — the same unforgeability argument as the exact
/// tag sets, with the cover's exact cardinality additionally blurred
/// by bit collisions.
///
/// False negatives are impossible by construction: inserting sets
/// bits, probing tests the same bits, and bits are never cleared.
#[derive(Clone, Debug, PartialEq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_bits: u64,
    hashes: u32,
}

impl BloomFilter {
    /// Builds a filter sized for `count` tags under `params` and
    /// inserts `tags` into it.
    ///
    /// The bit count is `bits_per_tag · count`, rounded up to a whole
    /// 64-bit word and at least one word, so the analytic rate in
    /// [`BloomParams::analytic_fp_rate`] is a (slightly conservative)
    /// upper bound on the realized per-tag rate.
    pub fn from_tags<'a>(
        tags: impl Iterator<Item = &'a Tag>,
        count: usize,
        params: BloomParams,
    ) -> Self {
        let wanted = params.bits_per_tag.max(1).saturating_mul(count.max(1));
        let words = wanted.div_ceil(64).max(1);
        let mut filter = Self {
            bits: vec![0u64; words],
            n_bits: (words as u64) * 64,
            hashes: params.hashes.max(1),
        };
        for tag in tags {
            filter.insert(tag);
        }
        filter
    }

    /// The two double-hashing seeds of a tag: its 64-bit halves, with
    /// the stride forced odd so every index function walks the whole
    /// bit space.
    fn seeds(tag: &Tag) -> (u64, u64) {
        let bytes = tag.as_bytes();
        let h1 = u64::from_le_bytes(bytes[..8].try_into().expect("tag half"));
        let h2 = u64::from_le_bytes(bytes[8..].try_into().expect("tag half")) | 1;
        (h1, h2)
    }

    /// Sets this tag's `k` bits.
    pub fn insert(&mut self, tag: &Tag) {
        let (h1, h2) = Self::seeds(tag);
        for i in 0..u64::from(self.hashes) {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.n_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// Whether all of this tag's `k` bits are set. `true` for every
    /// inserted tag; spuriously `true` for others at the analytic rate.
    pub fn contains(&self, tag: &Tag) -> bool {
        let (h1, h2) = Self::seeds(tag);
        (0..u64::from(self.hashes)).all(|i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.n_bits;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Total bits in the filter.
    pub fn n_bits(&self) -> u64 {
        self.n_bits
    }

    /// Fraction of bits set — the load the realized FP rate depends
    /// on.
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        f64::from(set) / self.n_bits as f64
    }
}

#[cfg(test)]
mod tests {
    use lppa_crypto::keys::HmacKey;
    use lppa_rng::rngs::StdRng;
    use lppa_rng::{Rng, RngCore, SeedableRng};

    use super::*;

    fn key(byte: u8) -> HmacKey {
        HmacKey::from_bytes([byte; 32])
    }

    #[test]
    fn parse_backend_accepts_exact_names_only() {
        assert_eq!(parse_backend(Some("hmac")), Some(BackendKind::Hmac));
        assert_eq!(parse_backend(Some("bloom")), Some(BackendKind::Bloom));
        assert_eq!(parse_backend(Some("ledger")), Some(BackendKind::Ledger));
        assert_eq!(parse_backend(Some("  ledger\t")), Some(BackendKind::Ledger));
        for bad in ["", " ", "HMAC", "Bloom", "bloom!", "bl oom", "hmac2", "default", "0"] {
            assert_eq!(parse_backend(Some(bad)), None, "{bad:?} must be rejected");
        }
        assert_eq!(parse_backend(None), None);
    }

    #[test]
    fn kind_names_roundtrip_through_the_parser() {
        for kind in BackendKind::ALL {
            assert_eq!(parse_backend(Some(kind.name())), Some(kind));
        }
        assert_eq!(BackendKind::default(), BackendKind::Hmac);
    }

    #[test]
    fn exact_backends_agree_with_in_range_everywhere() {
        let k = key(3);
        let width = 7;
        for backend in [Backend::Hmac, Backend::Ledger] {
            for value in [0u32, 1, 63, 64, 127] {
                let point = MaskedPoint::mask(&k, width, value).unwrap();
                let compiled = backend.compile_point(&point);
                for (lo, hi) in [(0u32, 0), (0, 63), (5, 90), (64, 127), (127, 127)] {
                    let range = MaskedRange::mask(&k, width, lo, hi).unwrap();
                    let cr = backend.compile_range(&range);
                    assert_eq!(
                        backend.probe(&compiled, &cr),
                        point.in_range(&range),
                        "{backend:?} {value} in [{lo},{hi}]"
                    );
                }
            }
        }
    }

    #[test]
    fn bloom_backend_never_false_negative_on_masked_pairs() {
        let k = key(9);
        let width = 7;
        let backend = Backend::Bloom(BloomParams::default());
        for value in 0u32..=127 {
            let point = MaskedPoint::mask(&k, width, value).unwrap();
            let compiled = backend.compile_point(&point);
            let range = MaskedRange::mask(&k, width, value.saturating_sub(3), value).unwrap();
            let cr = backend.compile_range(&range);
            assert!(backend.probe(&compiled, &cr), "member {value} must be found");
        }
    }

    #[test]
    fn bloom_filter_has_no_false_negatives_on_random_tags() {
        let mut rng = StdRng::seed_from_u64(0xb100_f11e);
        let tags: Vec<Tag> = (0..500)
            .map(|_| {
                let mut b = [0u8; 16];
                rng.fill_bytes(&mut b);
                Tag::from_bytes(b)
            })
            .collect();
        let params = BloomParams { bits_per_tag: 4, hashes: 3 };
        let filter = BloomFilter::from_tags(tags.iter(), tags.len(), params);
        for tag in &tags {
            assert!(filter.contains(tag));
        }
    }

    #[test]
    fn analytic_rate_matches_the_closed_form() {
        let p = BloomParams { bits_per_tag: 16, hashes: 8 };
        let want = (1.0 - (-8.0f64 / 16.0).exp()).powf(8.0);
        assert!((p.analytic_fp_rate() - want).abs() < 1e-12);
        // Pair bound: union bound over point tags, exact for the
        // independent approximation.
        let pair = p.pair_fp_bound(11);
        assert!(pair > p.analytic_fp_rate() && pair < 11.0 * p.analytic_fp_rate() + 1e-9);
    }

    #[test]
    fn filter_fill_ratio_tracks_the_load() {
        let mut rng = StdRng::seed_from_u64(7);
        let tags: Vec<Tag> = (0..1000)
            .map(|_| {
                let mut b = [0u8; 16];
                rng.fill_bytes(&mut b);
                Tag::from_bytes(b)
            })
            .collect();
        let params = BloomParams { bits_per_tag: 8, hashes: 5 };
        let filter = BloomFilter::from_tags(tags.iter(), tags.len(), params);
        // Expected fill 1 − e^{−k/c} ≈ 0.465; allow generous slack.
        let fill = filter.fill_ratio();
        assert!((0.40..0.53).contains(&fill), "fill {fill:.3}");
    }

    #[test]
    fn default_backend_construction_matches_kind() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.backend().kind(), kind);
        }
    }

    #[test]
    fn bloom_probe_only_widens_the_exact_verdict() {
        // Differential: the Bloom verdict may flip false→true, never
        // true→false.
        let k = key(17);
        let width = 7;
        let exact = Backend::Hmac;
        let bloom = Backend::Bloom(BloomParams { bits_per_tag: 2, hashes: 2 });
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let value = rng.gen_range(0..=127u32);
            let lo = rng.gen_range(0..=127u32);
            let hi = rng.gen_range(lo..=127u32);
            let point = MaskedPoint::mask(&k, width, value).unwrap();
            let range = MaskedRange::mask(&k, width, lo, hi).unwrap();
            let pe = exact.compile_point(&point);
            let re = exact.compile_range(&range);
            let pb = bloom.compile_point(&point);
            let rb = bloom.compile_range(&range);
            if exact.probe(&pe, &re) {
                assert!(bloom.probe(&pb, &rb), "false negative at {value} in [{lo},{hi}]");
            }
        }
    }
}
