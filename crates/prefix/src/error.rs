//! Error types for prefix construction and range covering.

/// Errors arising when constructing prefixes, families or range covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PrefixError {
    /// Bit width must be in `1..=MAX_WIDTH`.
    WidthOutOfRange {
        /// The rejected width.
        width: u8,
    },
    /// The value does not fit in the requested bit width.
    ValueTooWide {
        /// The rejected value.
        value: u64,
        /// The width it was supposed to fit in.
        width: u8,
    },
    /// The number of specified bits exceeds the prefix width.
    SpecLenTooLong {
        /// The rejected specified-bit count.
        spec_len: u8,
        /// The prefix width.
        width: u8,
    },
    /// A range `[lo, hi]` with `lo > hi` has no cover.
    EmptyRange {
        /// Range lower bound.
        lo: u64,
        /// Range upper bound.
        hi: u64,
    },
    /// A masked point or range was reconstructed from zero tags.
    ///
    /// A genuine prefix family always carries `width + 1` tags and a
    /// genuine cover at least one, so an empty set can only come from a
    /// lossy or truncating channel. It must be rejected at the edge: an
    /// empty point silently matches *nothing*, which is indistinguishable
    /// from a dropped message and would let transport loss masquerade as
    /// "no conflict / lowest bid".
    EmptyTagSet,
}

impl std::fmt::Display for PrefixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PrefixError::WidthOutOfRange { width } => {
                write!(f, "bit width {width} is outside 1..={}", crate::MAX_WIDTH)
            }
            PrefixError::ValueTooWide { value, width } => {
                write!(f, "value {value} does not fit in {width} bits")
            }
            PrefixError::SpecLenTooLong { spec_len, width } => {
                write!(f, "{spec_len} specified bits exceed prefix width {width}")
            }
            PrefixError::EmptyRange { lo, hi } => {
                write!(f, "range [{lo}, {hi}] is empty")
            }
            PrefixError::EmptyTagSet => {
                write!(f, "masked tag set is empty (truncated or dropped transmission)")
            }
        }
    }
}

impl std::error::Error for PrefixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(PrefixError, &str)> = vec![
            (PrefixError::WidthOutOfRange { width: 0 }, "width 0"),
            (PrefixError::ValueTooWide { value: 9, width: 3 }, "value 9"),
            (PrefixError::SpecLenTooLong { spec_len: 5, width: 4 }, "5 specified bits"),
            (PrefixError::EmptyRange { lo: 8, hi: 3 }, "[8, 3]"),
            (PrefixError::EmptyTagSet, "empty"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err:?} should mention {needle}");
        }
    }
}
