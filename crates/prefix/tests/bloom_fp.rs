//! Bloom-backend false-positive rate property tests.
//!
//! The encrypted Bloom backend's contract is quantitative: for a filter
//! with `k` index functions and `m = bits_per_tag · n` bits over `n`
//! inserted tags, the analytic false-positive rate per probed
//! non-member tag is
//!
//! ```text
//! p = (1 − e^{−kn/m})^k = (1 − e^{−k/bits_per_tag})^k
//! ```
//!
//! Each property below builds a filter from seeded uniform tags,
//! probes ≥ 10 000 fresh tags, and asserts the measured rate stays
//! within 2× of the analytic bound (and above a third of it, so the
//! filter cannot silently degenerate into an always-false or
//! always-true oracle). False *negatives* must never occur — bits are
//! only ever set, so every inserted tag must keep testing positive.
//!
//! The three (bits_per_tag, hashes) configurations are chosen so the
//! expected false-positive count per case is large enough (≥ ~250)
//! that the 2× envelope holds for every seed with overwhelming margin;
//! the harness reruns the property under `LPPA_PROPTEST_SEED`
//! overrides, so the assertions must be seed-robust, not tuned to one
//! fixture.

use lppa_crypto::tag::Tag;
use lppa_prefix::backend::{BloomFilter, BloomParams};
use lppa_rng::rngs::StdRng;
use lppa_rng::{testing, RngCore};

/// Inserted tags per filter.
const MEMBERS: usize = 2_000;
/// Fresh tags probed per filter — the "≥ 10k membership probes" the
/// contract is measured over.
const PROBES: usize = 12_000;

fn random_tag(rng: &mut StdRng) -> Tag {
    let mut bytes = [0u8; 16];
    rng.fill_bytes(&mut bytes);
    Tag::from_bytes(bytes)
}

/// Builds a filter from `MEMBERS` seeded tags and measures the FP rate
/// over `PROBES` fresh tags. Random 128-bit tags collide with the
/// member set with probability ≈ 2⁻¹⁰⁴ per probe, so every probe tag
/// is a true non-member.
fn measured_fp_rate(rng: &mut StdRng, params: BloomParams) -> f64 {
    let members: Vec<Tag> = (0..MEMBERS).map(|_| random_tag(rng)).collect();
    let filter = BloomFilter::from_tags(members.iter(), members.len(), params);
    for tag in &members {
        assert!(filter.contains(tag), "false negative: inserted tag not found");
    }
    let hits = (0..PROBES).filter(|_| filter.contains(&random_tag(rng))).count();
    hits as f64 / PROBES as f64
}

fn check_config(name: &'static str, params: BloomParams) {
    testing::check(name, |rng| {
        let analytic = params.analytic_fp_rate();
        let measured = measured_fp_rate(rng, params);
        assert!(
            measured <= 2.0 * analytic,
            "measured FP {measured:.5} exceeds 2x analytic (1-e^(-k/c))^k = {analytic:.5} \
             for {params:?}"
        );
        assert!(
            measured >= analytic / 3.0,
            "measured FP {measured:.5} implausibly below analytic {analytic:.5} for {params:?}"
        );
    });
}

#[test]
fn fp_rate_within_bound_2_bits_2_hashes() {
    // p = (1 − e^{−1})² ≈ 0.3995
    check_config("fp_rate_2_2", BloomParams { bits_per_tag: 2, hashes: 2 });
}

#[test]
fn fp_rate_within_bound_6_bits_4_hashes() {
    // p = (1 − e^{−2/3})⁴ ≈ 0.0561
    check_config("fp_rate_6_4", BloomParams { bits_per_tag: 6, hashes: 4 });
}

#[test]
fn fp_rate_within_bound_8_bits_5_hashes() {
    // p = (1 − e^{−5/8})⁵ ≈ 0.0217
    check_config("fp_rate_8_5", BloomParams { bits_per_tag: 8, hashes: 5 });
}

#[test]
fn false_negatives_never_occur_across_configs() {
    // Sweep a wider parameter grid than the rate tests: whatever the
    // sizing, an inserted tag must always test positive.
    testing::check("bloom_no_false_negative", |rng| {
        for bits_per_tag in [1usize, 2, 4, 8, 16, 32] {
            for hashes in [1u32, 2, 4, 8, 12] {
                let params = BloomParams { bits_per_tag, hashes };
                let members: Vec<Tag> = (0..200).map(|_| random_tag(rng)).collect();
                let filter = BloomFilter::from_tags(members.iter(), members.len(), params);
                for tag in &members {
                    assert!(filter.contains(tag), "false negative under {params:?}");
                }
            }
        }
    });
}
