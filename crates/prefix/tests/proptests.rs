//! Property-based tests for the prefix-membership invariants that the
//! whole LPPA protocol rests on.
//!
//! Run with the in-tree harness: each property draws its inputs from a
//! seeded RNG; failures print the exact reproduction seed (see
//! `lppa_rng::testing`).

use lppa_crypto::keys::HmacKey;
use lppa_prefix::{max_cover_len, prefix_family, range_prefixes, MaskedPoint, MaskedRange, Prefix};
use lppa_rng::testing::check;
use lppa_rng::{Rng, StdRng};

/// Generator: a domain width and a value that fits in it.
fn width_and_value(rng: &mut StdRng) -> (u8, u32) {
    let w = rng.gen_range(1u8..=16);
    let max = (1u32 << w) - 1;
    (w, rng.gen_range(0..=max))
}

/// Generator: a domain width and an ordered pair inside it.
fn width_and_range(rng: &mut StdRng) -> (u8, u32, u32) {
    let w = rng.gen_range(1u8..=16);
    let max = (1u32 << w) - 1;
    let a = rng.gen_range(0..=max);
    let b = rng.gen_range(0..=max);
    (w, a.min(b), a.max(b))
}

/// Generator: a width, a value in it and a range in it — generated
/// together so every case is usable.
fn width_value_range(rng: &mut StdRng) -> (u8, u32, u32, u32) {
    let w = rng.gen_range(1u8..=16);
    let max = (1u32 << w) - 1;
    let x = rng.gen_range(0..=max);
    let a = rng.gen_range(0..=max);
    let b = rng.gen_range(0..=max);
    (w, x, a.min(b), a.max(b))
}

/// The defining equivalence of the scheme:
/// `x ∈ [a,b] ⇔ O(G(x)) ∩ O(Q([a,b])) ≠ ∅`.
#[test]
fn membership_equivalence() {
    check("membership_equivalence", |rng| {
        let (w, x, lo, hi) = width_value_range(rng);
        let family: Vec<u64> =
            prefix_family(w, x).unwrap().iter().map(Prefix::numericalize).collect();
        let cover: Vec<u64> =
            range_prefixes(w, lo, hi).unwrap().iter().map(Prefix::numericalize).collect();
        let intersects = family.iter().any(|n| cover.contains(n));
        assert_eq!(intersects, (lo..=hi).contains(&x));
    });
}

/// Same equivalence after HMAC masking.
#[test]
fn masked_membership_equivalence() {
    check("masked_membership_equivalence", |rng| {
        let (w, x, lo, hi) = width_value_range(rng);
        let key_byte: u8 = rng.gen();
        let key = HmacKey::from_bytes([key_byte; 32]);
        let point = MaskedPoint::mask(&key, w, x).unwrap();
        let range = MaskedRange::mask(&key, w, lo, hi).unwrap();
        assert_eq!(point.in_range(&range), (lo..=hi).contains(&x));
    });
}

/// Padded ranges behave identically to unpadded ones.
#[test]
fn padded_membership_equivalence() {
    check("padded_membership_equivalence", |rng| {
        let (w, x, lo, hi) = width_value_range(rng);
        let key = HmacKey::from_bytes([9u8; 32]);
        let point = MaskedPoint::mask(&key, w, x).unwrap();
        let range = MaskedRange::mask_padded(&key, w, lo, hi, rng).unwrap();
        assert_eq!(point.in_range(&range), (lo..=hi).contains(&x));
        assert_eq!(range.len(), max_cover_len(w));
    });
}

/// The family always has exactly `w + 1` members, each containing `x`.
#[test]
fn family_shape() {
    check("family_shape", |rng| {
        let (w, x) = width_and_value(rng);
        let family = prefix_family(w, x).unwrap();
        assert_eq!(family.len(), usize::from(w) + 1);
        for p in &family {
            assert!(p.contains(x));
        }
    });
}

/// The range cover is exact, minimal-bounded and sorted.
#[test]
fn cover_shape() {
    check("cover_shape", |rng| {
        let (w, lo, hi) = width_and_range(rng);
        let cover = range_prefixes(w, lo, hi).unwrap();
        assert!(cover.len() <= max_cover_len(w).max(1));
        // Sorted and pairwise disjoint.
        for pair in cover.windows(2) {
            assert!(pair[0].high() < pair[1].low());
        }
        // Boundary values covered, outside neighbours not.
        assert!(cover.iter().any(|p| p.contains(lo)));
        assert!(cover.iter().any(|p| p.contains(hi)));
        if lo > 0 {
            assert!(!cover.iter().any(|p| p.contains(lo - 1)));
        }
        let dmax = if w == 32 { u32::MAX } else { (1u32 << w) - 1 };
        if hi < dmax {
            assert!(!cover.iter().any(|p| p.contains(hi + 1)));
        }
    });
}

/// Numericalization round-trips through the displayed pattern: two
/// prefixes of the same width with equal `O(·)` are the same prefix.
#[test]
fn numericalization_injective() {
    check("numericalization_injective", |rng| {
        let w = rng.gen_range(1u8..=12);
        let a: u32 = rng.gen();
        let b: u32 = rng.gen();
        let sa = rng.gen_range(0u8..=w);
        let sb = rng.gen_range(0u8..=w);
        let mask_a = if sa == 0 { 0 } else { a & ((1u32 << sa) - 1) };
        let mask_b = if sb == 0 { 0 } else { b & ((1u32 << sb) - 1) };
        let pa = Prefix::new(w, mask_a, sa).unwrap();
        let pb = Prefix::new(w, mask_b, sb).unwrap();
        assert_eq!(pa.numericalize() == pb.numericalize(), pa == pb);
    });
}
