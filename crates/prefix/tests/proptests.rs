//! Property-based tests for the prefix-membership invariants that the
//! whole LPPA protocol rests on.

use lppa_crypto::keys::HmacKey;
use lppa_prefix::{
    max_cover_len, prefix_family, range_prefixes, MaskedPoint, MaskedRange, Prefix,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a domain width and a value that fits in it.
fn width_and_value() -> impl Strategy<Value = (u8, u32)> {
    (1u8..=16).prop_flat_map(|w| {
        let max = (1u32 << w) - 1;
        (Just(w), 0..=max)
    })
}

/// Strategy: a domain width and an ordered pair inside it.
fn width_and_range() -> impl Strategy<Value = (u8, u32, u32)> {
    (1u8..=16).prop_flat_map(|w| {
        let max = (1u32 << w) - 1;
        (Just(w), 0..=max, 0..=max).prop_map(|(w, a, b)| (w, a.min(b), a.max(b)))
    })
}

/// Strategy: a width, a value in it and a range in it — generated
/// together so every case is usable.
fn width_value_range() -> impl Strategy<Value = (u8, u32, u32, u32)> {
    (1u8..=16).prop_flat_map(|w| {
        let max = (1u32 << w) - 1;
        (Just(w), 0..=max, 0..=max, 0..=max)
            .prop_map(|(w, x, a, b)| (w, x, a.min(b), a.max(b)))
    })
}

proptest! {
    /// The defining equivalence of the scheme:
    /// `x ∈ [a,b] ⇔ O(G(x)) ∩ O(Q([a,b])) ≠ ∅`.
    #[test]
    fn membership_equivalence((w, x, lo, hi) in width_value_range()) {
        let family: Vec<u64> = prefix_family(w, x).unwrap()
            .iter().map(Prefix::numericalize).collect();
        let cover: Vec<u64> = range_prefixes(w, lo, hi).unwrap()
            .iter().map(Prefix::numericalize).collect();
        let intersects = family.iter().any(|n| cover.contains(n));
        prop_assert_eq!(intersects, (lo..=hi).contains(&x));
    }

    /// Same equivalence after HMAC masking.
    #[test]
    fn masked_membership_equivalence(
        (w, x, lo, hi) in width_value_range(),
        key_byte in any::<u8>(),
    ) {
        let key = HmacKey::from_bytes([key_byte; 32]);
        let point = MaskedPoint::mask(&key, w, x).unwrap();
        let range = MaskedRange::mask(&key, w, lo, hi).unwrap();
        prop_assert_eq!(point.in_range(&range), (lo..=hi).contains(&x));
    }

    /// Padded ranges behave identically to unpadded ones.
    #[test]
    fn padded_membership_equivalence(
        (w, x, lo, hi) in width_value_range(),
        seed in any::<u64>(),
    ) {
        let key = HmacKey::from_bytes([9u8; 32]);
        let mut rng = StdRng::seed_from_u64(seed);
        let point = MaskedPoint::mask(&key, w, x).unwrap();
        let range = MaskedRange::mask_padded(&key, w, lo, hi, &mut rng).unwrap();
        prop_assert_eq!(point.in_range(&range), (lo..=hi).contains(&x));
        prop_assert_eq!(range.len(), max_cover_len(w));
    }

    /// The family always has exactly `w + 1` members, each containing `x`.
    #[test]
    fn family_shape((w, x) in width_and_value()) {
        let family = prefix_family(w, x).unwrap();
        prop_assert_eq!(family.len(), usize::from(w) + 1);
        for p in &family {
            prop_assert!(p.contains(x));
        }
    }

    /// The range cover is exact, minimal-bounded and sorted.
    #[test]
    fn cover_shape((w, lo, hi) in width_and_range()) {
        let cover = range_prefixes(w, lo, hi).unwrap();
        prop_assert!(cover.len() <= max_cover_len(w).max(1));
        // Sorted and pairwise disjoint.
        for pair in cover.windows(2) {
            prop_assert!(pair[0].high() < pair[1].low());
        }
        // Boundary values covered, outside neighbours not.
        prop_assert!(cover.iter().any(|p| p.contains(lo)));
        prop_assert!(cover.iter().any(|p| p.contains(hi)));
        if lo > 0 {
            prop_assert!(!cover.iter().any(|p| p.contains(lo - 1)));
        }
        let dmax = if w == 32 { u32::MAX } else { (1u32 << w) - 1 };
        if hi < dmax {
            prop_assert!(!cover.iter().any(|p| p.contains(hi + 1)));
        }
    }

    /// Numericalization round-trips through the displayed pattern: two
    /// prefixes of the same width with equal `O(·)` are the same prefix.
    #[test]
    fn numericalization_injective(w in 1u8..=12, a in any::<u32>(), b in any::<u32>(), sa in 0u8..=12, sb in 0u8..=12) {
        prop_assume!(sa <= w && sb <= w);
        let mask_a = if sa == 0 { 0 } else { a & ((1u32 << sa) - 1) };
        let mask_b = if sb == 0 { 0 } else { b & ((1u32 << sb) - 1) };
        let pa = Prefix::new(w, mask_a, sa).unwrap();
        let pb = Prefix::new(w, mask_b, sb).unwrap();
        prop_assert_eq!(pa.numericalize() == pb.numericalize(), pa == pb);
    }
}
