//! Property-based tests: invariants of the greedy allocation engine and
//! the pricing rules over random auctions.
//!
//! Run with the in-tree harness: each property draws its inputs from a
//! seeded RNG; failures print the exact reproduction seed (see
//! `lppa_rng::testing`).

use lppa_auction::allocation::greedy_allocate;
use lppa_auction::bidder::{BidTable, BidderId, Location};
use lppa_auction::conflict::ConflictGraph;
use lppa_auction::outcome::AuctionOutcome;
use lppa_auction::pricing::{charge_traced, greedy_allocate_traced, PricingRule};
use lppa_rng::rngs::StdRng;
use lppa_rng::testing::check;
use lppa_rng::{Rng, SeedableRng};
use lppa_spectrum::ChannelId;

/// Generator: a random auction (bid table + locations + λ).
fn auction(rng: &mut StdRng) -> (Vec<Vec<u32>>, Vec<Location>, u32) {
    let n = rng.gen_range(2usize..12);
    let k = rng.gen_range(1usize..6);
    let rows: Vec<Vec<u32>> =
        (0..n).map(|_| (0..k).map(|_| rng.gen_range(0u32..30)).collect()).collect();
    let locs: Vec<Location> =
        (0..n).map(|_| Location::new(rng.gen_range(0u32..25), rng.gen_range(0u32..25))).collect();
    let lambda = rng.gen_range(1u32..5);
    (rows, locs, lambda)
}

/// Core allocation invariants for arbitrary auctions.
#[test]
fn allocation_invariants() {
    check("allocation_invariants", |rng| {
        let (rows, locs, lambda) = auction(rng);
        let seed: u64 = rng.gen();
        let table = BidTable::from_rows(rows.clone());
        let conflicts = ConflictGraph::from_locations(&locs, lambda);
        let grants = greedy_allocate(&table, &conflicts, &mut StdRng::seed_from_u64(seed));

        // 1. A bidder wins at most once.
        let mut winners: Vec<BidderId> = grants.iter().map(|g| g.bidder).collect();
        winners.sort();
        let before = winners.len();
        winners.dedup();
        assert_eq!(winners.len(), before);

        // 2. Winners bid positively on their channel.
        for g in &grants {
            assert!(table.bid(g.bidder, g.channel) > 0);
        }

        // 3. Channel co-holders never conflict.
        for ch in 0..table.n_channels() {
            let holders: Vec<BidderId> =
                grants.iter().filter(|g| g.channel == ChannelId(ch)).map(|g| g.bidder).collect();
            assert!(conflicts.is_independent(&holders));
        }

        // 4. Allocation is exhaustive: any non-winner with a positive bid
        //    on some channel must be blocked there by a conflicting winner
        //    of that channel (otherwise the loop would have granted it).
        for i in 0..table.n_bidders() {
            let bidder = BidderId(i);
            if winners.contains(&bidder) {
                continue;
            }
            for ch in 0..table.n_channels() {
                if table.bid(bidder, ChannelId(ch)) == 0 {
                    continue;
                }
                let blocked = grants.iter().any(|g| {
                    g.channel == ChannelId(ch) && conflicts.are_conflicting(g.bidder, bidder)
                });
                assert!(blocked, "bidder {i} had an unblocked positive bid on channel {ch}");
            }
        }
    });
}

/// Traced allocation agrees with the plain engine and second-price
/// charging never exceeds first-price.
#[test]
fn pricing_invariants() {
    check("pricing_invariants", |rng| {
        let (rows, locs, lambda) = auction(rng);
        let seed: u64 = rng.gen();
        let table = BidTable::from_rows(rows);
        let conflicts = ConflictGraph::from_locations(&locs, lambda);
        let traces = greedy_allocate_traced(&table, &conflicts, &mut StdRng::seed_from_u64(seed));
        let grants = greedy_allocate(&table, &conflicts, &mut StdRng::seed_from_u64(seed));
        assert_eq!(traces.iter().map(|t| t.grant).collect::<Vec<_>>(), grants.clone());

        let first = charge_traced(&traces, &table, &conflicts, PricingRule::FirstPrice);
        let second = charge_traced(&traces, &table, &conflicts, PricingRule::SecondPrice);
        assert!(second.revenue() <= first.revenue());
        assert_eq!(first.assignments().len(), second.assignments().len());
        for (f, s) in first.assignments().iter().zip(second.assignments()) {
            assert_eq!(f.bidder, s.bidder);
            assert!(s.price <= f.price);
            assert_eq!(f.price, table.bid(f.bidder, f.channel));
        }

        // First-price outcome via traces equals the standard outcome.
        let standard = AuctionOutcome::from_grants(&grants, &table);
        assert_eq!(first, standard);
    });
}

/// The conflict relation is symmetric, irreflexive in effect, and
/// matches the coordinate predicate.
#[test]
fn conflict_graph_matches_predicate() {
    check("conflict_graph_matches_predicate", |rng| {
        let n = rng.gen_range(2usize..15);
        let locations: Vec<Location> = (0..n)
            .map(|_| Location::new(rng.gen_range(0u32..40), rng.gen_range(0u32..40)))
            .collect();
        let lambda = rng.gen_range(1u32..6);
        let graph = ConflictGraph::from_locations(&locations, lambda);
        for i in 0..locations.len() {
            assert!(!graph.are_conflicting(BidderId(i), BidderId(i)));
            for j in 0..locations.len() {
                let expected = i != j
                    && locations[i].x.abs_diff(locations[j].x) < 2 * lambda
                    && locations[i].y.abs_diff(locations[j].y) < 2 * lambda;
                assert_eq!(graph.are_conflicting(BidderId(i), BidderId(j)), expected);
            }
        }
    });
}
