//! Property-based tests: invariants of the greedy allocation engine and
//! the pricing rules over random auctions.

use lppa_auction::allocation::greedy_allocate;
use lppa_auction::bidder::{BidTable, BidderId, Location};
use lppa_auction::conflict::ConflictGraph;
use lppa_auction::outcome::AuctionOutcome;
use lppa_auction::pricing::{charge_traced, greedy_allocate_traced, PricingRule};
use lppa_spectrum::ChannelId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random auction (bid table + locations).
fn auction() -> impl Strategy<Value = (Vec<Vec<u32>>, Vec<Location>, u32)> {
    (2usize..12, 1usize..6).prop_flat_map(|(n, k)| {
        let rows = proptest::collection::vec(
            proptest::collection::vec(0u32..30, k..=k),
            n..=n,
        );
        let locs = proptest::collection::vec((0u32..25, 0u32..25), n..=n)
            .prop_map(|v| v.into_iter().map(|(x, y)| Location::new(x, y)).collect());
        (rows, locs, 1u32..5)
    })
}

proptest! {
    /// Core allocation invariants for arbitrary auctions.
    #[test]
    fn allocation_invariants((rows, locs, lambda) in auction(), seed in any::<u64>()) {
        let table = BidTable::from_rows(rows.clone());
        let conflicts = ConflictGraph::from_locations(&locs, lambda);
        let grants = greedy_allocate(&table, &conflicts, &mut StdRng::seed_from_u64(seed));

        // 1. A bidder wins at most once.
        let mut winners: Vec<BidderId> = grants.iter().map(|g| g.bidder).collect();
        winners.sort();
        let before = winners.len();
        winners.dedup();
        prop_assert_eq!(winners.len(), before);

        // 2. Winners bid positively on their channel.
        for g in &grants {
            prop_assert!(table.bid(g.bidder, g.channel) > 0);
        }

        // 3. Channel co-holders never conflict.
        for ch in 0..table.n_channels() {
            let holders: Vec<BidderId> = grants
                .iter()
                .filter(|g| g.channel == ChannelId(ch))
                .map(|g| g.bidder)
                .collect();
            prop_assert!(conflicts.is_independent(&holders));
        }

        // 4. Allocation is exhaustive: any non-winner with a positive bid
        //    on some channel must be blocked there by a conflicting winner
        //    of that channel (otherwise the loop would have granted it).
        for i in 0..table.n_bidders() {
            let bidder = BidderId(i);
            if winners.contains(&bidder) {
                continue;
            }
            for ch in 0..table.n_channels() {
                if table.bid(bidder, ChannelId(ch)) == 0 {
                    continue;
                }
                let blocked = grants.iter().any(|g| {
                    g.channel == ChannelId(ch)
                        && conflicts.are_conflicting(g.bidder, bidder)
                });
                prop_assert!(
                    blocked,
                    "bidder {i} had an unblocked positive bid on channel {ch}"
                );
            }
        }
    }

    /// Traced allocation agrees with the plain engine and second-price
    /// charging never exceeds first-price.
    #[test]
    fn pricing_invariants((rows, locs, lambda) in auction(), seed in any::<u64>()) {
        let table = BidTable::from_rows(rows);
        let conflicts = ConflictGraph::from_locations(&locs, lambda);
        let traces =
            greedy_allocate_traced(&table, &conflicts, &mut StdRng::seed_from_u64(seed));
        let grants = greedy_allocate(&table, &conflicts, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(traces.iter().map(|t| t.grant).collect::<Vec<_>>(), grants.clone());

        let first = charge_traced(&traces, &table, &conflicts, PricingRule::FirstPrice);
        let second = charge_traced(&traces, &table, &conflicts, PricingRule::SecondPrice);
        prop_assert!(second.revenue() <= first.revenue());
        prop_assert_eq!(first.assignments().len(), second.assignments().len());
        for (f, s) in first.assignments().iter().zip(second.assignments()) {
            prop_assert_eq!(f.bidder, s.bidder);
            prop_assert!(s.price <= f.price);
            prop_assert_eq!(f.price, table.bid(f.bidder, f.channel));
        }

        // First-price outcome via traces equals the standard outcome.
        let standard = AuctionOutcome::from_grants(&grants, &table);
        prop_assert_eq!(first, standard);
    }

    /// The conflict relation is symmetric, irreflexive in effect, and
    /// matches the coordinate predicate.
    #[test]
    fn conflict_graph_matches_predicate(
        locs in proptest::collection::vec((0u32..40, 0u32..40), 2..15),
        lambda in 1u32..6,
    ) {
        let locations: Vec<Location> =
            locs.into_iter().map(|(x, y)| Location::new(x, y)).collect();
        let graph = ConflictGraph::from_locations(&locations, lambda);
        for i in 0..locations.len() {
            prop_assert!(!graph.are_conflicting(BidderId(i), BidderId(i)));
            for j in 0..locations.len() {
                let expected = i != j
                    && locations[i].x.abs_diff(locations[j].x) < 2 * lambda
                    && locations[i].y.abs_diff(locations[j].y) < 2 * lambda;
                prop_assert_eq!(graph.are_conflicting(BidderId(i), BidderId(j)), expected);
            }
        }
    }
}
