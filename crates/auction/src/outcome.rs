//! Auction outcomes: charging and the paper's performance metrics.
//!
//! The paper uses first-price charging (§V.C.1: "the winner pays the
//! exact amount of his bid") and evaluates auction performance through
//! two aggregates (§VI.A): the **sum of winning bids** (gross revenue)
//! and **user satisfaction** (fraction of bidders holding spectrum).

use crate::allocation::Grant;
use crate::bidder::{BidTable, BidderId};
use lppa_spectrum::ChannelId;

/// A finalized assignment: bidder, channel and the price charged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// The winning bidder.
    pub bidder: BidderId,
    /// The channel held.
    pub channel: ChannelId,
    /// First-price charge (the winner's own bid).
    pub price: u32,
}

/// The result of one complete auction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuctionOutcome {
    assignments: Vec<Assignment>,
    n_bidders: usize,
}

impl AuctionOutcome {
    /// Charges `grants` at first price from the plaintext `table`.
    ///
    /// Grants whose underlying bid is zero are dropped as invalid — this
    /// mirrors the TTP's "winning price is invalid" notification in the
    /// private protocol and never triggers for the plaintext baseline
    /// (zeros are not entered there).
    pub fn from_grants(grants: &[Grant], table: &BidTable) -> Self {
        let assignments = grants
            .iter()
            .filter_map(|g| {
                let price = table.bid(g.bidder, g.channel);
                (price > 0).then_some(Assignment { bidder: g.bidder, channel: g.channel, price })
            })
            .collect();
        Self { assignments, n_bidders: table.n_bidders() }
    }

    /// Builds an outcome from explicit assignments (used by the private
    /// protocol, where prices come from the TTP).
    pub fn from_assignments(assignments: Vec<Assignment>, n_bidders: usize) -> Self {
        Self { assignments, n_bidders }
    }

    /// The finalized assignments.
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// Total number of bidders that participated.
    pub fn n_bidders(&self) -> usize {
        self.n_bidders
    }

    /// Gross revenue: the paper's "sum of winning bids".
    pub fn revenue(&self) -> u64 {
        self.assignments.iter().map(|a| u64::from(a.price)).sum()
    }

    /// The paper's "user satisfaction": fraction of bidders holding a
    /// channel. Zero for an auction with no bidders.
    pub fn satisfaction(&self) -> f64 {
        if self.n_bidders == 0 {
            return 0.0;
        }
        self.assignments.len() as f64 / self.n_bidders as f64
    }

    /// The channel held by `bidder`, if any.
    pub fn channel_of(&self, bidder: BidderId) -> Option<ChannelId> {
        self.assignments.iter().find(|a| a.bidder == bidder).map(|a| a.channel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_price_charging() {
        let table = BidTable::from_rows(vec![vec![5, 2], vec![0, 7]]);
        let grants = vec![
            Grant { bidder: BidderId(0), channel: ChannelId(0) },
            Grant { bidder: BidderId(1), channel: ChannelId(1) },
        ];
        let outcome = AuctionOutcome::from_grants(&grants, &table);
        assert_eq!(outcome.revenue(), 12);
        assert_eq!(outcome.satisfaction(), 1.0);
        assert_eq!(outcome.channel_of(BidderId(0)), Some(ChannelId(0)));
        assert_eq!(outcome.channel_of(BidderId(1)), Some(ChannelId(1)));
    }

    #[test]
    fn zero_price_grants_are_invalidated() {
        let table = BidTable::from_rows(vec![vec![0], vec![4]]);
        let grants = vec![
            Grant { bidder: BidderId(0), channel: ChannelId(0) },
            Grant { bidder: BidderId(1), channel: ChannelId(0) },
        ];
        let outcome = AuctionOutcome::from_grants(&grants, &table);
        assert_eq!(outcome.assignments().len(), 1);
        assert_eq!(outcome.revenue(), 4);
        assert_eq!(outcome.satisfaction(), 0.5);
        assert_eq!(outcome.channel_of(BidderId(0)), None);
    }

    #[test]
    fn empty_outcome() {
        let outcome = AuctionOutcome::from_assignments(vec![], 0);
        assert_eq!(outcome.revenue(), 0);
        assert_eq!(outcome.satisfaction(), 0.0);
    }

    #[test]
    fn satisfaction_counts_assignments_over_bidders() {
        let assignments = vec![
            Assignment { bidder: BidderId(0), channel: ChannelId(0), price: 3 },
            Assignment { bidder: BidderId(2), channel: ChannelId(1), price: 5 },
        ];
        let outcome = AuctionOutcome::from_assignments(assignments, 8);
        assert!((outcome.satisfaction() - 0.25).abs() < 1e-12);
        assert_eq!(outcome.n_bidders(), 8);
    }
}
