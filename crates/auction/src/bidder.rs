//! Bidders and the paper's bid-generation model.
//!
//! Each secondary user `SU_i` sits in a grid cell, carries an integer
//! protocol location, and values channel `j` at `b_j^i = q_j · β_i + η`
//! (§VI.A): spectrum quality `q_j` at its location, a per-user
//! transmission-emergency factor `β_i`, and bounded valuation noise
//! `|η| ≤ 20% · q_j β_i`. Bids are non-negative integers scaled into
//! `[0, bmax]`; unavailable channels are bid at zero.

use lppa_rng::Rng;
use lppa_spectrum::geo::Cell;
use lppa_spectrum::{ChannelId, SpectrumMap};

/// Identifier of a bidder within one auction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BidderId(pub usize);

impl std::fmt::Display for BidderId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SU{}", self.0)
    }
}

/// Integer protocol coordinates of a bidder.
///
/// The prefix-membership location protocol operates on non-negative
/// integers; one unit corresponds to one grid cell (the paper likewise
/// assumes integral coordinates).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Location {
    /// Easting in cells.
    pub x: u32,
    /// Northing in cells.
    pub y: u32,
}

impl Location {
    /// Creates a location from explicit coordinates.
    pub fn new(x: u32, y: u32) -> Self {
        Self { x, y }
    }

    /// The location of a grid cell (x = column, y = row).
    pub fn from_cell(cell: Cell) -> Self {
        Self { x: u32::from(cell.col), y: u32::from(cell.row) }
    }

    /// The grid cell containing this location.
    pub fn to_cell(self) -> Cell {
        Cell::new(self.y as u16, self.x as u16)
    }

    /// Chebyshev-style conflict test used by the paper: two users
    /// interfere iff both coordinate gaps are below `2λ`.
    pub fn conflicts_with(&self, other: &Location, lambda: u32) -> bool {
        let dx = self.x.abs_diff(other.x);
        let dy = self.y.abs_diff(other.y);
        dx < 2 * lambda && dy < 2 * lambda
    }
}

impl From<Cell> for Location {
    fn from(cell: Cell) -> Self {
        Self::from_cell(cell)
    }
}

/// A secondary user participating in the auction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bidder {
    /// Auction-scoped identifier.
    pub id: BidderId,
    /// True position (ground truth for attack evaluation).
    pub cell: Cell,
    /// Integer protocol location.
    pub location: Location,
    /// Transmission-emergency factor `β_i`.
    pub beta: f64,
}

/// Parameters of the bid-generation model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BidModel {
    /// Inclusive range `β` is drawn from.
    pub beta_range: (f64, f64),
    /// Relative valuation noise bound (the paper's 20 %).
    pub noise_frac: f64,
    /// Upper bound `bmax` of integer bid prices.
    pub bmax: u32,
}

impl Default for BidModel {
    fn default() -> Self {
        Self { beta_range: (0.2, 1.0), noise_frac: 0.2, bmax: 127 }
    }
}

impl BidModel {
    /// Draws a `β` factor for a new bidder.
    pub fn sample_beta<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.gen_range(self.beta_range.0..=self.beta_range.1)
    }

    /// Computes `SU`'s integer bid for a channel of quality `quality` at
    /// its location.
    ///
    /// Returns 0 when the channel is unavailable (`quality == 0`), and
    /// may legitimately round to 0 for available-but-poor channels — the
    /// paper relies on this ("the bid of the available spectrum with low
    /// quality can be zero").
    pub fn bid<R: Rng + ?Sized>(&self, quality: f64, beta: f64, rng: &mut R) -> u32 {
        if quality <= 0.0 {
            return 0;
        }
        let base = quality * beta;
        let noise = rng.gen_range(-self.noise_frac..=self.noise_frac);
        let value = base * (1.0 + noise) * f64::from(self.bmax);
        // β and quality both live in [0, 1]; clamp defensively anyway.
        (value.round().max(0.0) as u32).min(self.bmax)
    }
}

/// Places `n` bidders uniformly at random on the map's grid.
///
/// # Examples
///
/// ```
/// use lppa_auction::bidder::{generate_bidders, BidModel};
/// use lppa_spectrum::area::AreaProfile;
/// use lppa_spectrum::synth::SyntheticMapBuilder;
/// use lppa_rng::SeedableRng;
///
/// let map = SyntheticMapBuilder::new(AreaProfile::area4())
///     .channels(4).seed(1).build();
/// let mut rng = lppa_rng::rngs::StdRng::seed_from_u64(2);
/// let bidders = generate_bidders(&map, 10, &BidModel::default(), &mut rng);
/// assert_eq!(bidders.len(), 10);
/// ```
pub fn generate_bidders<R: Rng + ?Sized>(
    map: &SpectrumMap,
    n: usize,
    model: &BidModel,
    rng: &mut R,
) -> Vec<Bidder> {
    let grid = map.grid();
    (0..n)
        .map(|i| {
            let cell = Cell::new(rng.gen_range(0..grid.rows()), rng.gen_range(0..grid.cols()));
            Bidder {
                id: BidderId(i),
                cell,
                location: Location::from_cell(cell),
                beta: model.sample_beta(rng),
            }
        })
        .collect()
}

/// The plaintext bid table `T`: one row per bidder, one column per
/// channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BidTable {
    bids: Vec<Vec<u32>>,
    n_channels: usize,
}

impl BidTable {
    /// Generates the table for `bidders` on `map` under `model`.
    pub fn generate<R: Rng + ?Sized>(
        map: &SpectrumMap,
        bidders: &[Bidder],
        model: &BidModel,
        rng: &mut R,
    ) -> Self {
        let n_channels = map.channel_count();
        let bids = bidders
            .iter()
            .map(|b| {
                map.channel_ids()
                    .map(|ch| model.bid(map.quality(ch, b.cell), b.beta, rng))
                    .collect()
            })
            .collect();
        Self { bids, n_channels }
    }

    /// Builds a table from explicit rows (mainly for tests).
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or the table is empty.
    pub fn from_rows(rows: Vec<Vec<u32>>) -> Self {
        assert!(!rows.is_empty(), "bid table needs at least one bidder");
        let n_channels = rows[0].len();
        assert!(n_channels > 0, "bid table needs at least one channel");
        assert!(rows.iter().all(|r| r.len() == n_channels), "ragged bid table");
        Self { bids: rows, n_channels }
    }

    /// Number of bidders (rows).
    pub fn n_bidders(&self) -> usize {
        self.bids.len()
    }

    /// Number of channels (columns).
    pub fn n_channels(&self) -> usize {
        self.n_channels
    }

    /// The bid of `bidder` on `channel`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn bid(&self, bidder: BidderId, channel: ChannelId) -> u32 {
        self.bids[bidder.0][channel.0]
    }

    /// The full bid vector `B_i` of one bidder.
    pub fn row(&self, bidder: BidderId) -> &[u32] {
        &self.bids[bidder.0]
    }

    /// Channels a bidder bid a positive price on — its revealed available
    /// set `AS(i)` (exactly what the BCM attacker reads off).
    pub fn positive_channels(&self, bidder: BidderId) -> Vec<ChannelId> {
        self.bids[bidder.0]
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > 0)
            .map(|(i, _)| ChannelId(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lppa_rng::rngs::StdRng;
    use lppa_rng::SeedableRng;
    use lppa_spectrum::area::AreaProfile;
    use lppa_spectrum::geo::GridSpec;
    use lppa_spectrum::synth::SyntheticMapBuilder;

    fn map() -> SpectrumMap {
        SyntheticMapBuilder::new(AreaProfile::area4())
            .grid(GridSpec::new(30, 30, 45.0))
            .channels(10)
            .seed(5)
            .build()
    }

    #[test]
    fn location_cell_roundtrip() {
        let cell = Cell::new(42, 17);
        let loc = Location::from_cell(cell);
        assert_eq!(loc, Location::new(17, 42));
        assert_eq!(loc.to_cell(), cell);
        let loc2: Location = cell.into();
        assert_eq!(loc, loc2);
    }

    #[test]
    fn conflict_is_symmetric_and_thresholded() {
        let a = Location::new(10, 10);
        for (dx, dy, lambda, expect) in [
            (0u32, 0u32, 2u32, true),
            (3, 3, 2, true),
            (4, 0, 2, false), // dx == 2λ is non-conflicting (strict <)
            (0, 4, 2, false),
            (3, 5, 2, false),
        ] {
            let b = Location::new(10 + dx, 10 + dy);
            assert_eq!(a.conflicts_with(&b, lambda), expect, "d=({dx},{dy})");
            assert_eq!(b.conflicts_with(&a, lambda), expect, "symmetry");
        }
    }

    #[test]
    fn zero_quality_bids_zero() {
        let model = BidModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(model.bid(0.0, 1.0, &mut rng), 0);
        assert_eq!(model.bid(-0.5, 1.0, &mut rng), 0);
    }

    #[test]
    fn bids_scale_with_quality_and_stay_in_range() {
        let model = BidModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut low_total = 0u32;
        let mut high_total = 0u32;
        for _ in 0..200 {
            let lo = model.bid(0.2, 0.9, &mut rng);
            let hi = model.bid(0.9, 0.9, &mut rng);
            assert!(lo <= model.bmax && hi <= model.bmax);
            low_total += lo;
            high_total += hi;
        }
        assert!(high_total > low_total);
    }

    #[test]
    fn noise_respects_twenty_percent_bound() {
        let model = BidModel { beta_range: (1.0, 1.0), noise_frac: 0.2, bmax: 1000 };
        let mut rng = StdRng::seed_from_u64(3);
        let base = 0.5 * 1.0 * 1000.0;
        for _ in 0..500 {
            let b = f64::from(model.bid(0.5, 1.0, &mut rng));
            assert!(b >= (base * 0.8 - 1.0) && b <= (base * 1.2 + 1.0), "bid {b}");
        }
    }

    #[test]
    fn generated_bidders_are_on_grid_with_consistent_locations() {
        let map = map();
        let mut rng = StdRng::seed_from_u64(4);
        let bidders = generate_bidders(&map, 50, &BidModel::default(), &mut rng);
        assert_eq!(bidders.len(), 50);
        for (i, b) in bidders.iter().enumerate() {
            assert_eq!(b.id, BidderId(i));
            assert!(map.grid().contains(b.cell));
            assert_eq!(b.location.to_cell(), b.cell);
            assert!(b.beta >= 0.2 && b.beta <= 1.0);
        }
    }

    #[test]
    fn bid_table_matches_availability() {
        let map = map();
        let mut rng = StdRng::seed_from_u64(6);
        let bidders = generate_bidders(&map, 30, &BidModel::default(), &mut rng);
        let table = BidTable::generate(&map, &bidders, &BidModel::default(), &mut rng);
        assert_eq!(table.n_bidders(), 30);
        assert_eq!(table.n_channels(), 10);
        for b in &bidders {
            for ch in map.channel_ids() {
                if table.bid(b.id, ch) > 0 {
                    // A positive bid implies the channel is available here.
                    assert!(map.is_available(ch, b.cell), "{} bid on unavailable {ch}", b.id);
                }
            }
            // positive_channels agrees with the row.
            let pos = table.positive_channels(b.id);
            assert_eq!(pos.len(), table.row(b.id).iter().filter(|&&x| x > 0).count());
        }
    }

    #[test]
    fn from_rows_validates() {
        let t = BidTable::from_rows(vec![vec![1, 2], vec![3, 0]]);
        assert_eq!(t.bid(BidderId(1), ChannelId(0)), 3);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        BidTable::from_rows(vec![vec![1, 2], vec![3]]);
    }
}
