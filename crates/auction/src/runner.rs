//! One-call plaintext auction runner: the non-private baseline the paper
//! compares LPPA against.

use lppa_rng::Rng;

use crate::allocation::greedy_allocate;
use crate::bidder::{generate_bidders, BidModel, BidTable, Bidder};
use crate::conflict::ConflictGraph;
use crate::outcome::AuctionOutcome;
use lppa_spectrum::SpectrumMap;

/// Configuration for a plaintext auction round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AuctionConfig {
    /// Number of secondary users.
    pub n_bidders: usize,
    /// Interference half-width `λ` in location units (cells).
    pub lambda: u32,
    /// Bid-generation model.
    pub bid_model: BidModel,
}

impl Default for AuctionConfig {
    fn default() -> Self {
        Self { n_bidders: 100, lambda: 3, bid_model: BidModel::default() }
    }
}

/// Everything produced by one plaintext auction round, kept together so
/// attacks and comparisons can inspect intermediate state.
#[derive(Clone, Debug)]
pub struct PlainAuction {
    /// The participating bidders (ground-truth positions included).
    pub bidders: Vec<Bidder>,
    /// The full plaintext bid table the auctioneer saw.
    pub table: BidTable,
    /// The conflict graph used for allocation.
    pub conflicts: ConflictGraph,
    /// The auction result.
    pub outcome: AuctionOutcome,
}

/// Runs a complete plaintext auction on `map`.
///
/// # Examples
///
/// ```
/// use lppa_auction::runner::{run_plain_auction, AuctionConfig};
/// use lppa_spectrum::area::AreaProfile;
/// use lppa_spectrum::synth::SyntheticMapBuilder;
/// use lppa_rng::SeedableRng;
///
/// let map = SyntheticMapBuilder::new(AreaProfile::area4())
///     .channels(8).seed(3).build();
/// let mut rng = lppa_rng::rngs::StdRng::seed_from_u64(4);
/// let auction = run_plain_auction(&map, &AuctionConfig::default(), &mut rng);
/// assert_eq!(auction.bidders.len(), 100);
/// ```
pub fn run_plain_auction<R: Rng>(
    map: &SpectrumMap,
    config: &AuctionConfig,
    rng: &mut R,
) -> PlainAuction {
    let bidders = generate_bidders(map, config.n_bidders, &config.bid_model, rng);
    run_plain_auction_with_bidders(map, &bidders, config, rng)
}

/// Runs a plaintext auction for pre-placed `bidders` (so private and
/// plaintext rounds can share identical populations).
pub fn run_plain_auction_with_bidders<R: Rng>(
    map: &SpectrumMap,
    bidders: &[Bidder],
    config: &AuctionConfig,
    rng: &mut R,
) -> PlainAuction {
    let table = BidTable::generate(map, bidders, &config.bid_model, rng);
    run_plain_auction_with_table(bidders, table, config, rng)
}

/// Runs a plaintext auction with the listed bidders absent — the
/// baseline mirror of a fault-tolerant session round where some bidders
/// missed the collect deadline or were quarantined.
///
/// Excluded bidders keep their rows and conflict-graph nodes (ids stay
/// original), but their bids are zeroed, so they hold no entries and can
/// never win; everyone else competes exactly as they would have. This is
/// the dropout semantics `lppa-session` implements privately: the round
/// commits with whoever showed up.
pub fn run_plain_auction_excluding<R: Rng>(
    bidders: &[Bidder],
    table: &BidTable,
    excluded: &[usize],
    config: &AuctionConfig,
    rng: &mut R,
) -> PlainAuction {
    let rows: Vec<Vec<u32>> = (0..table.n_bidders())
        .map(|i| {
            if excluded.contains(&i) {
                vec![0; table.n_channels()]
            } else {
                table.row(crate::bidder::BidderId(i)).to_vec()
            }
        })
        .collect();
    run_plain_auction_with_table(bidders, BidTable::from_rows(rows), config, rng)
}

/// Runs the allocation and charging stages on an existing bid table.
pub fn run_plain_auction_with_table<R: Rng>(
    bidders: &[Bidder],
    table: BidTable,
    config: &AuctionConfig,
    rng: &mut R,
) -> PlainAuction {
    let locations: Vec<_> = bidders.iter().map(|b| b.location).collect();
    let conflicts = ConflictGraph::from_locations(&locations, config.lambda);
    let grants = greedy_allocate(&table, &conflicts, rng);
    let outcome = AuctionOutcome::from_grants(&grants, &table);
    PlainAuction { bidders: bidders.to_vec(), table, conflicts, outcome }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lppa_rng::rngs::StdRng;
    use lppa_rng::SeedableRng;
    use lppa_spectrum::area::AreaProfile;
    use lppa_spectrum::geo::GridSpec;
    use lppa_spectrum::synth::SyntheticMapBuilder;

    fn map() -> SpectrumMap {
        SyntheticMapBuilder::new(AreaProfile::area4())
            .grid(GridSpec::new(40, 40, 60.0))
            .channels(12)
            .seed(21)
            .build()
    }

    #[test]
    fn end_to_end_auction_is_consistent() {
        let map = map();
        let mut rng = StdRng::seed_from_u64(7);
        let config = AuctionConfig { n_bidders: 60, lambda: 2, bid_model: BidModel::default() };
        let auction = run_plain_auction(&map, &config, &mut rng);

        assert_eq!(auction.bidders.len(), 60);
        assert_eq!(auction.table.n_bidders(), 60);
        assert_eq!(auction.conflicts.len(), 60);
        // Every assignment charges the winner's own positive bid.
        for a in auction.outcome.assignments() {
            assert_eq!(a.price, auction.table.bid(a.bidder, a.channel));
            assert!(a.price > 0);
        }
        // No channel is shared by conflicting winners.
        for ch in map.channel_ids() {
            let holders: Vec<_> = auction
                .outcome
                .assignments()
                .iter()
                .filter(|a| a.channel == ch)
                .map(|a| a.bidder)
                .collect();
            assert!(auction.conflicts.is_independent(&holders));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let map = map();
        let config = AuctionConfig::default();
        let a = run_plain_auction(&map, &config, &mut StdRng::seed_from_u64(5));
        let b = run_plain_auction(&map, &config, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.outcome, b.outcome);
    }

    #[test]
    fn excluded_bidders_never_win_and_others_still_compete() {
        let map = map();
        let config = AuctionConfig { n_bidders: 30, lambda: 2, bid_model: BidModel::default() };
        let mut rng = StdRng::seed_from_u64(9);
        let bidders = generate_bidders(&map, config.n_bidders, &config.bid_model, &mut rng);
        let table = BidTable::generate(&map, &bidders, &config.bid_model, &mut rng);

        let excluded = [0usize, 7, 19];
        let dropped = run_plain_auction_excluding(
            &bidders,
            &table,
            &excluded,
            &config,
            &mut StdRng::seed_from_u64(17),
        );
        // Nobody excluded wins; ids stay original-sized.
        assert_eq!(dropped.conflicts.len(), 30);
        for a in dropped.outcome.assignments() {
            assert!(!excluded.contains(&a.bidder.0), "{a:?}");
            assert_eq!(a.price, table.bid(a.bidder, a.channel));
        }
        // Excluding nobody reproduces the ordinary run exactly.
        let full = run_plain_auction_with_table(
            &bidders,
            table.clone(),
            &config,
            &mut StdRng::seed_from_u64(17),
        );
        let none = run_plain_auction_excluding(
            &bidders,
            &table,
            &[],
            &config,
            &mut StdRng::seed_from_u64(17),
        );
        assert_eq!(full.outcome, none.outcome);
    }

    #[test]
    fn more_bidders_do_not_reduce_revenue() {
        // With more competition the greedy first-price auction should
        // collect at least roughly as much revenue.
        let map = map();
        let mut few_total = 0u64;
        let mut many_total = 0u64;
        for seed in 0..5 {
            let few = run_plain_auction(
                &map,
                &AuctionConfig { n_bidders: 20, ..AuctionConfig::default() },
                &mut StdRng::seed_from_u64(seed),
            );
            let many = run_plain_auction(
                &map,
                &AuctionConfig { n_bidders: 150, ..AuctionConfig::default() },
                &mut StdRng::seed_from_u64(seed),
            );
            few_total += few.outcome.revenue();
            many_total += many.outcome.revenue();
        }
        assert!(many_total > few_total);
    }
}
