//! Baseline (non-private) dynamic spectrum auction.
//!
//! This crate implements the plaintext auction the LPPA paper starts
//! from and compares against:
//!
//! * [`bidder`] — secondary users, the `b = qβ + η` bid model and the
//!   plaintext bid table;
//! * [`conflict`] — the `2λ`-square interference conflict graph;
//! * [`allocation`] — the greedy channel-assignment engine
//!   (Algorithm 3), generic over a [`allocation::BidOracle`] so the LPPA
//!   crate can drive the same algorithm with masked comparisons;
//! * [`incremental`] — delta-maintained auction state for churn
//!   (joins/leaves/revisions between rounds), bitwise-equal to a
//!   from-scratch rebuild;
//! * [`outcome`] — first-price charging, revenue and user satisfaction;
//! * [`runner`] — a one-call end-to-end baseline auction.
//!
//! # Examples
//!
//! ```
//! use lppa_auction::runner::{run_plain_auction, AuctionConfig};
//! use lppa_spectrum::area::AreaProfile;
//! use lppa_spectrum::synth::SyntheticMapBuilder;
//! use lppa_rng::SeedableRng;
//!
//! let map = SyntheticMapBuilder::new(AreaProfile::area3())
//!     .channels(10).seed(9).build();
//! let mut rng = lppa_rng::rngs::StdRng::seed_from_u64(1);
//! let auction = run_plain_auction(&map, &AuctionConfig::default(), &mut rng);
//! println!(
//!     "revenue {} satisfaction {:.2}",
//!     auction.outcome.revenue(),
//!     auction.outcome.satisfaction(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod bidder;
pub mod conflict;
pub mod incremental;
pub mod outcome;
pub mod pricing;
pub mod runner;

pub use allocation::{greedy_allocate, BidOracle, Grant};
pub use bidder::{generate_bidders, BidModel, BidTable, Bidder, BidderId, Location};
pub use conflict::ConflictGraph;
pub use incremental::{ChannelTracker, IncrementalAuction};
pub use outcome::{Assignment, AuctionOutcome};
pub use pricing::{charge_traced, greedy_allocate_traced, GrantTrace, PricingRule};
pub use runner::{run_plain_auction, AuctionConfig, PlainAuction};
