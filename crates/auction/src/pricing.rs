//! Pricing rules beyond first price.
//!
//! The paper charges first price and explicitly defers truthfulness
//! (§V.C.1: "we leave the truthfulness of the auction to future work").
//! This module implements that future-work comparator for the plaintext
//! baseline: **critical-value (second-price) charging**, where a winner
//! pays the highest competing bid it displaced in its winning contest —
//! the standard device for making a greedy allocation truthful.
//!
//! Second-price charging needs the loser bids of each contest, which the
//! masked table hides by design; the paper's open problem is exactly
//! that tension, and the comparison here quantifies the revenue gap.

use lppa_rng::Rng;

use crate::allocation::{BidOracle, Grant};
use crate::bidder::{BidTable, BidderId};
use crate::conflict::ConflictGraph;
use crate::outcome::{Assignment, AuctionOutcome};
use lppa_rng::seq::SliceRandom;
use lppa_spectrum::ChannelId;

/// A grant plus the contest it was won in.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GrantTrace {
    /// The award itself.
    pub grant: Grant,
    /// Every candidate considered in the contest (winner included).
    pub candidates: Vec<BidderId>,
}

impl GrantTrace {
    /// The price-setting losers of this contest: every candidate that
    /// conflicts with the winner. A non-conflicting candidate could
    /// have been granted the channel alongside the winner, so it never
    /// constrains the win — both the plaintext second-price comparator
    /// and the sealed Vickrey settlement price against exactly this
    /// set.
    pub fn conflicting_losers<'a>(
        &'a self,
        conflicts: &'a ConflictGraph,
    ) -> impl Iterator<Item = BidderId> + 'a {
        self.candidates.iter().copied().filter(move |&c| {
            c != self.grant.bidder && conflicts.are_conflicting(c, self.grant.bidder)
        })
    }
}

/// Runs the same greedy allocation as
/// [`crate::allocation::greedy_allocate`] but records each contest's
/// candidate set, enabling post-hoc critical-value pricing.
///
/// # Panics
///
/// Panics if the conflict graph size differs from the oracle's bidder
/// count.
pub fn greedy_allocate_traced<O: BidOracle, R: Rng>(
    oracle: &O,
    conflicts: &ConflictGraph,
    rng: &mut R,
) -> Vec<GrantTrace> {
    let n = oracle.n_bidders();
    let k = oracle.n_channels();
    assert_eq!(conflicts.len(), n, "conflict graph size mismatch");

    let mut entry = vec![vec![false; k]; n];
    let mut remaining = 0usize;
    for (i, row) in entry.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = oracle.has_entry(BidderId(i), ChannelId(j));
            remaining += usize::from(*cell);
        }
    }

    let mut row_alive = vec![true; n];
    let mut traces = Vec::new();
    let mut pool: Vec<usize> = Vec::new();

    while remaining > 0 {
        if pool.is_empty() {
            pool = (0..k).collect();
            pool.shuffle(rng);
        }
        // As in `greedy_allocate`: `remaining > 0` implies `k > 0`, so
        // the refilled pool is never empty; break defensively anyway.
        let Some(channel) = pool.pop().map(ChannelId) else { break };
        let candidates: Vec<BidderId> =
            (0..n).filter(|&i| row_alive[i] && entry[i][channel.0]).map(BidderId).collect();
        if candidates.is_empty() {
            continue;
        }
        let winner = oracle.select_winner(channel, &candidates, rng);
        row_alive[winner.0] = false;
        remaining -= entry[winner.0].iter().filter(|&&e| e).count();
        for nb in conflicts.neighbors(winner) {
            if row_alive[nb.0] && entry[nb.0][channel.0] {
                entry[nb.0][channel.0] = false;
                remaining -= 1;
            }
        }
        traces.push(GrantTrace { grant: Grant { bidder: winner, channel }, candidates });
    }
    traces
}

/// Charging rules applicable to a traced plaintext allocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PricingRule {
    /// Winner pays its own bid (the paper's rule).
    #[default]
    FirstPrice,
    /// Winner pays the highest *conflicting* competing bid in its
    /// contest (its critical value), or its own bid when unopposed is
    /// replaced by zero — the truthful comparator.
    ///
    /// Only candidates that conflict with the winner are price-setting:
    /// a non-conflicting candidate could have been granted the channel
    /// alongside the winner, so it never constrains the winner's win.
    SecondPrice,
}

/// Applies `rule` to a traced allocation over the plaintext `table`.
///
/// Zero-priced results under [`PricingRule::SecondPrice`] (unopposed
/// winners) are kept as zero-price assignments: the winner holds the
/// channel for free, as in any Vickrey-style auction without
/// competition.
pub fn charge_traced(
    traces: &[GrantTrace],
    table: &BidTable,
    conflicts: &ConflictGraph,
    rule: PricingRule,
) -> AuctionOutcome {
    let assignments = traces
        .iter()
        .filter_map(|t| {
            let own = table.bid(t.grant.bidder, t.grant.channel);
            if own == 0 {
                return None; // invalid (cannot happen for plaintext tables)
            }
            let price = match rule {
                PricingRule::FirstPrice => own,
                PricingRule::SecondPrice => t
                    .conflicting_losers(conflicts)
                    .map(|c| table.bid(c, t.grant.channel))
                    .max()
                    .unwrap_or(0),
            };
            Some(Assignment { bidder: t.grant.bidder, channel: t.grant.channel, price })
        })
        .collect();
    AuctionOutcome::from_assignments(assignments, table.n_bidders())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lppa_rng::rngs::StdRng;
    use lppa_rng::SeedableRng;

    fn everyone_conflicts(n: usize) -> ConflictGraph {
        let mut g = ConflictGraph::disconnected(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_conflict(BidderId(i), BidderId(j));
            }
        }
        g
    }

    #[test]
    fn traced_allocation_matches_untraced() {
        let table =
            BidTable::from_rows(vec![vec![9, 2, 0], vec![4, 7, 3], vec![1, 0, 8], vec![6, 5, 2]]);
        let conflicts = everyone_conflicts(4);
        let traces = greedy_allocate_traced(&table, &conflicts, &mut StdRng::seed_from_u64(3));
        let grants =
            crate::allocation::greedy_allocate(&table, &conflicts, &mut StdRng::seed_from_u64(3));
        assert_eq!(traces.iter().map(|t| t.grant).collect::<Vec<_>>(), grants);
        // Each trace's candidate set contains its winner.
        for t in &traces {
            assert!(t.candidates.contains(&t.grant.bidder));
        }
    }

    #[test]
    fn second_price_charges_highest_conflicting_loser() {
        // Two conflicting bidders contest one channel: winner pays the
        // loser's bid.
        let table = BidTable::from_rows(vec![vec![9], vec![4]]);
        let conflicts = everyone_conflicts(2);
        let traces = greedy_allocate_traced(&table, &conflicts, &mut StdRng::seed_from_u64(1));
        let outcome = charge_traced(&traces, &table, &conflicts, PricingRule::SecondPrice);
        assert_eq!(outcome.assignments().len(), 1);
        assert_eq!(outcome.assignments()[0].price, 4);
        // First price charges 9.
        let first = charge_traced(&traces, &table, &conflicts, PricingRule::FirstPrice);
        assert_eq!(first.assignments()[0].price, 9);
    }

    #[test]
    fn non_conflicting_candidates_do_not_set_the_price() {
        // Bidders 0 and 1 do not conflict: both can hold the channel, so
        // 0's "contest" with 1 is not real competition.
        let table = BidTable::from_rows(vec![vec![9], vec![4]]);
        let conflicts = ConflictGraph::disconnected(2);
        let traces = greedy_allocate_traced(&table, &conflicts, &mut StdRng::seed_from_u64(1));
        let outcome = charge_traced(&traces, &table, &conflicts, PricingRule::SecondPrice);
        // Both win, both unopposed → both pay zero.
        assert_eq!(outcome.assignments().len(), 2);
        assert!(outcome.assignments().iter().all(|a| a.price == 0));
    }

    #[test]
    fn second_price_never_exceeds_first_price() {
        let mut rng = StdRng::seed_from_u64(5);
        use lppa_rng::Rng as _;
        for _ in 0..10 {
            let n = 10;
            let rows: Vec<Vec<u32>> =
                (0..n).map(|_| (0..4).map(|_| rng.gen_range(0..20)).collect()).collect();
            let table = BidTable::from_rows(rows);
            let locations: Vec<crate::bidder::Location> = (0..n)
                .map(|_| crate::bidder::Location::new(rng.gen_range(0..20), rng.gen_range(0..20)))
                .collect();
            let conflicts = ConflictGraph::from_locations(&locations, 3);
            let traces = greedy_allocate_traced(&table, &conflicts, &mut rng);
            let first = charge_traced(&traces, &table, &conflicts, PricingRule::FirstPrice);
            let second = charge_traced(&traces, &table, &conflicts, PricingRule::SecondPrice);
            assert!(second.revenue() <= first.revenue());
            // Pairwise: each winner pays no more than its bid.
            for (f, s) in first.assignments().iter().zip(second.assignments()) {
                assert_eq!(f.bidder, s.bidder);
                assert!(s.price <= f.price);
            }
        }
    }

    #[test]
    fn truthful_bidding_is_weakly_dominant_in_a_single_contest() {
        // Classic Vickrey sanity check on one channel with full conflict:
        // with second-price charging, overbidding or underbidding never
        // beats bidding the true value v = 10 against a rival bid of 7.
        let conflicts = everyone_conflicts(2);
        let utility = |my_bid: u32| -> i64 {
            let table = BidTable::from_rows(vec![vec![my_bid], vec![7]]);
            let traces = greedy_allocate_traced(&table, &conflicts, &mut StdRng::seed_from_u64(2));
            let outcome = charge_traced(&traces, &table, &conflicts, PricingRule::SecondPrice);
            outcome
                .assignments()
                .iter()
                .find(|a| a.bidder == BidderId(0))
                .map(|a| 10i64 - i64::from(a.price))
                .unwrap_or(0)
        };
        let truthful = utility(10);
        for misreport in [1u32, 5, 6, 8, 9, 11, 15, 127] {
            assert!(utility(misreport) <= truthful, "misreport {misreport} beat truth");
        }
    }
}
