//! Incremental churn engine: delta-maintained auction state.
//!
//! The batch path rebuilds everything per round — `O(n²)` conflict
//! pairs, an `O(n·k)` entry matrix, full-column winner scans. Under
//! churn (a few joins/leaves/revisions between rounds) almost all of
//! that work recomputes unchanged state. [`IncrementalAuction`] keeps
//! the auction state *resident* and applies bidder deltas instead:
//!
//! - **slots** — each bidder occupies a stable slot id for its
//!   lifetime; leaves free the slot for reuse, so id space stays
//!   compact under sustained churn.
//! - **conflict adjacency** — a join probes only the live set
//!   (`O(live)`) and a leave clears one row (`O(degree)`); the batch
//!   path pays `O(live²)` every round.
//! - **per-channel trackers** — a [`ChannelTracker`] holds the live
//!   `(bid, slot)` pairs of one column in a max-ordered set, so
//!   joins/leaves/revisions update maxima in `O(log n)` and the
//!   allocator reads the tied-at-max set directly instead of scanning.
//! - **dirty channels** — deltas mark only the columns they touch;
//!   [`IncrementalAuction::allocate`] re-derives candidate lists for
//!   exactly those channels and reuses the rest.
//!
//! The allocator replays the *identical* control flow and RNG draw
//! sequence as [`greedy_allocate`](crate::allocation::greedy_allocate)
//! over a from-scratch table, so its grants are bitwise-equal — the
//! property tests below and the differential oracle hold it to that.

use std::collections::{BTreeSet, HashSet};

use lppa_rng::seq::SliceRandom;
use lppa_rng::Rng;

use crate::allocation::Grant;
use crate::bidder::{BidTable, BidderId, Location};
use crate::conflict::ConflictGraph;
use lppa_spectrum::ChannelId;

/// Live `(bid, slot)` entries of one channel column, ordered so the
/// maximum — and the set tied at it — is read off the tail.
///
/// Updated on join/leave/revise in `O(log n)`; never mutated during a
/// round (in-round deletions live in the allocator's scratch).
#[derive(Clone, Debug, Default)]
pub struct ChannelTracker {
    /// `(bid, slot)` pairs for every live positive bid on the channel.
    /// The tuple order makes the last element the winner candidate and
    /// equal bids iterate in ascending slot order — the same order the
    /// batch path's column scan produces.
    entries: BTreeSet<(u32, u32)>,
}

impl ChannelTracker {
    /// Records a positive bid for `slot` (no-op for zero).
    fn insert(&mut self, slot: u32, bid: u32) {
        if bid > 0 {
            self.entries.insert((bid, slot));
        }
    }

    /// Forgets `slot`'s bid (no-op for zero).
    fn remove(&mut self, slot: u32, bid: u32) {
        if bid > 0 {
            self.entries.remove(&(bid, slot));
        }
    }

    /// The current maximum bid, if any entry is live.
    pub fn max_bid(&self) -> Option<u32> {
        self.entries.iter().next_back().map(|&(bid, _)| bid)
    }

    /// The slots tied at the maximum bid, ascending — exactly the tied
    /// set a full column scan would produce.
    pub fn top(&self) -> Vec<u32> {
        let Some(max) = self.max_bid() else { return Vec::new() };
        self.entries.range((max, 0)..=(max, u32::MAX)).map(|&(_, slot)| slot).collect()
    }

    /// The `k` highest `(slot, bid)` entries, descending by bid and
    /// ascending by slot among equals.
    pub fn top_k(&self, k: usize) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = Vec::with_capacity(k.min(self.entries.len()));
        let mut iter = self.entries.iter().rev().peekable();
        while out.len() < k {
            let Some(&&(bid, _)) = iter.peek() else { break };
            // Take the whole equal-bid run, then flip it to ascending
            // slot order.
            let start = out.len();
            while let Some(&&(b, slot)) = iter.peek() {
                if b != bid {
                    break;
                }
                out.push((slot, b));
                iter.next();
            }
            out[start..].reverse();
        }
        out.truncate(k);
        out
    }

    /// Number of live entries on the channel.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the channel has no live entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One resident bidder.
#[derive(Clone, Debug)]
struct Slot {
    location: Location,
    bids: Vec<u32>,
}

/// Delta-maintained plaintext auction state; see the module docs.
///
/// # Examples
///
/// ```
/// use lppa_auction::bidder::Location;
/// use lppa_auction::incremental::IncrementalAuction;
/// use lppa_rng::rngs::StdRng;
/// use lppa_rng::SeedableRng;
///
/// let mut auction = IncrementalAuction::new(2, 2);
/// let a = auction.join(Location::new(0, 0), vec![5, 0]);
/// let b = auction.join(Location::new(50, 50), vec![3, 7]);
/// let grants = auction.allocate(&mut StdRng::seed_from_u64(1));
/// assert_eq!(grants.len(), 2);
/// auction.leave(a);
/// auction.revise(b, vec![0, 9]);
/// assert_eq!(auction.live_count(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct IncrementalAuction {
    lambda: u32,
    n_channels: usize,
    slots: Vec<Option<Slot>>,
    /// Freed slot ids, reused lowest-first so the id space stays dense.
    free: BTreeSet<u32>,
    /// Per-slot live conflict neighbours (ascending — the same order a
    /// dense row scan yields).
    adj: Vec<BTreeSet<u32>>,
    trackers: Vec<ChannelTracker>,
    /// Per-channel candidate lists: live slots with a positive bid,
    /// ascending. Only rebuilt for channels marked dirty by a delta.
    cand: Vec<Vec<u32>>,
    dirty: Vec<bool>,
    live: usize,
}

impl IncrementalAuction {
    /// Empty state for `n_channels` channels and interference half-width
    /// `lambda`.
    pub fn new(lambda: u32, n_channels: usize) -> Self {
        Self {
            lambda,
            n_channels,
            slots: Vec::new(),
            free: BTreeSet::new(),
            adj: Vec::new(),
            trackers: vec![ChannelTracker::default(); n_channels],
            cand: vec![Vec::new(); n_channels],
            dirty: vec![false; n_channels],
            live: 0,
        }
    }

    /// Number of live bidders.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Number of channels.
    pub fn n_channels(&self) -> usize {
        self.n_channels
    }

    /// Live slot ids, ascending. Position in this list is the bidder's
    /// compact [`BidderId`] for the next round.
    pub fn live_slots(&self) -> Vec<u32> {
        (0..self.slots.len() as u32).filter(|&s| self.slots[s as usize].is_some()).collect()
    }

    /// The channel tracker for `channel` (maxima and top-k queries).
    pub fn tracker(&self, channel: ChannelId) -> &ChannelTracker {
        &self.trackers[channel.0]
    }

    /// Admits a bidder; returns its slot id (stable until it leaves).
    ///
    /// Costs `O(live)` conflict probes plus `O(k log n)` tracker
    /// updates — no global rebuild.
    ///
    /// # Panics
    ///
    /// Panics if `bids` does not cover every channel.
    pub fn join(&mut self, location: Location, bids: Vec<u32>) -> u32 {
        assert_eq!(bids.len(), self.n_channels, "bid vector must cover every channel");
        let slot = match self.free.pop_first() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                self.adj.push(BTreeSet::new());
                (self.slots.len() - 1) as u32
            }
        };
        for other in 0..self.slots.len() as u32 {
            if let Some(peer) = &self.slots[other as usize] {
                if peer.location.conflicts_with(&location, self.lambda) {
                    self.adj[slot as usize].insert(other);
                    self.adj[other as usize].insert(slot);
                }
            }
        }
        for (c, &bid) in bids.iter().enumerate() {
            if bid > 0 {
                self.trackers[c].insert(slot, bid);
                self.dirty[c] = true;
            }
        }
        self.slots[slot as usize] = Some(Slot { location, bids });
        self.live += 1;
        slot
    }

    /// Retires the bidder in `slot`: clears its adjacency row and its
    /// tracker entries in `O(degree + k log n)` and frees the slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not live.
    pub fn leave(&mut self, slot: u32) {
        let state = self.slots[slot as usize].take().expect("leave of a non-live slot");
        for nb in std::mem::take(&mut self.adj[slot as usize]) {
            self.adj[nb as usize].remove(&slot);
        }
        for (c, &bid) in state.bids.iter().enumerate() {
            if bid > 0 {
                self.trackers[c].remove(slot, bid);
                self.dirty[c] = true;
            }
        }
        self.free.insert(slot);
        self.live -= 1;
    }

    /// Replaces the bidder's bid vector; only the channels whose bid
    /// actually changed are touched (and marked dirty).
    ///
    /// # Panics
    ///
    /// Panics if the slot is not live or `bids` does not cover every
    /// channel.
    pub fn revise(&mut self, slot: u32, bids: Vec<u32>) {
        assert_eq!(bids.len(), self.n_channels, "bid vector must cover every channel");
        let state = self.slots[slot as usize].as_mut().expect("revise of a non-live slot");
        for (c, (&old, &new)) in state.bids.iter().zip(&bids).enumerate() {
            if old != new {
                self.trackers[c].remove(slot, old);
                self.trackers[c].insert(slot, new);
                self.dirty[c] = true;
            }
        }
        state.bids = bids;
    }

    /// The compacted plaintext bid table over the live set (rows in
    /// [`live_slots`](IncrementalAuction::live_slots) order) — what a
    /// from-scratch rebuild would collect.
    pub fn bid_table(&self) -> BidTable {
        BidTable::from_rows(
            self.live_slots()
                .into_iter()
                .map(|s| self.slots[s as usize].as_ref().expect("live slot").bids.clone())
                .collect(),
        )
    }

    /// The compacted conflict graph over the live set — equal to
    /// [`ConflictGraph::from_locations`] over the live locations.
    pub fn conflict_graph(&self) -> ConflictGraph {
        let order = self.live_slots();
        let mut graph = ConflictGraph::disconnected(order.len());
        for (i, &slot) in order.iter().enumerate() {
            for &nb in &self.adj[slot as usize] {
                if let Ok(j) = order.binary_search(&nb) {
                    if i < j {
                        graph.add_conflict(BidderId(i), BidderId(j));
                    }
                }
            }
        }
        graph
    }

    /// Re-derives the candidate list of every dirty channel from its
    /// tracker; clean channels keep last round's list untouched.
    ///
    /// Dirty channels are refreshed **in parallel**: each channel's
    /// rebuild reads only its own tracker (channels never share
    /// candidate state), so the dirty set splits into independent
    /// per-channel jobs handed to the `lppa-par` executor. The merge is
    /// deterministic by construction — worker threads return one sorted
    /// list per dirty channel, reassembled positionally into `cand` in
    /// ascending channel order, so the resident state is bitwise
    /// independent of `LPPA_THREADS` and of scheduling.
    fn refresh_dirty(&mut self) {
        let dirty: Vec<usize> = (0..self.n_channels).filter(|&c| self.dirty[c]).collect();
        if dirty.is_empty() {
            return;
        }
        let trackers = &self.trackers;
        let lists = lppa_par::par_map(&dirty, |&c| {
            let mut list: Vec<u32> = trackers[c].entries.iter().map(|&(_, s)| s).collect();
            list.sort_unstable();
            list
        });
        for (c, list) in dirty.into_iter().zip(lists) {
            self.cand[c] = list;
            self.dirty[c] = false;
        }
    }

    /// The bid of a live slot on channel `c`.
    fn bid_of(&self, slot: u32, c: usize) -> u32 {
        self.slots[slot as usize].as_ref().map_or(0, |s| s.bids[c])
    }

    /// Runs one greedy allocation round over the resident state,
    /// returning grants in compact [`BidderId`] space (indices into
    /// [`live_slots`](IncrementalAuction::live_slots)).
    ///
    /// Control flow and RNG consumption replay
    /// [`greedy_allocate`](crate::allocation::greedy_allocate) over the
    /// equivalent from-scratch [`BidTable`]/[`ConflictGraph`] exactly —
    /// same pool shuffles, same tie-break draws — so the grant sequence
    /// is bitwise-equal. The difference is cost: candidate lists come
    /// from the delta-maintained per-channel state (only dirty channels
    /// re-derived), and the first selection on a channel untouched by
    /// in-round deletions reads the tied set straight off the tracker
    /// instead of scanning the column.
    pub fn allocate<R: Rng>(&mut self, rng: &mut R) -> Vec<Grant> {
        self.refresh_dirty();
        let order = self.live_slots();
        let k = self.n_channels;
        let mut alive = vec![false; self.slots.len()];
        for &s in &order {
            alive[s as usize] = true;
        }
        // In-round deletions: (channel, slot) entries struck because a
        // conflicting neighbour won the channel. Membership-only (never
        // iterated), so hash order cannot leak into results.
        let mut deleted: HashSet<(usize, u32)> = HashSet::new();
        // A channel stays round-clean until an in-round deletion touches
        // its column; while clean, its tracker is exact.
        let mut round_clean = vec![true; k];
        let mut remaining: usize = self.cand.iter().map(Vec::len).sum();

        let mut grants = Vec::new();
        let mut pool: Vec<usize> = Vec::new();
        while remaining > 0 {
            if pool.is_empty() {
                pool = (0..k).collect();
                pool.shuffle(rng);
            }
            let Some(c) = pool.pop() else { break };

            let candidates: Vec<u32> = self.cand[c]
                .iter()
                .copied()
                .filter(|&s| alive[s as usize] && !deleted.contains(&(c, s)))
                .collect();
            if candidates.is_empty() {
                continue;
            }

            // Tied-at-max set, ascending slot order — identical to what
            // the batch oracle's column scan computes.
            let tied: Vec<u32> = if round_clean[c] {
                self.trackers[c].top()
            } else {
                let best = candidates.iter().map(|&s| self.bid_of(s, c)).max().unwrap_or(0);
                candidates.iter().copied().filter(|&s| self.bid_of(s, c) == best).collect()
            };
            let winner = match tied.choose(rng) {
                Some(&w) => w,
                None => candidates[0],
            };
            let compact = order.binary_search(&winner).expect("winner is live");
            grants.push(Grant { bidder: BidderId(compact), channel: ChannelId(c) });

            // Delete the winner's whole row: its remaining entries leave
            // the pool and every column it occupied loses tracker
            // exactness for the rest of the round.
            alive[winner as usize] = false;
            for (ch, &bid) in
                self.slots[winner as usize].as_ref().expect("live slot").bids.iter().enumerate()
            {
                if bid > 0 && !deleted.contains(&(ch, winner)) {
                    remaining -= 1;
                    round_clean[ch] = false;
                }
            }

            // Strike conflicting neighbours' entries for this channel.
            for &nb in &self.adj[winner as usize] {
                if alive[nb as usize] && self.bid_of(nb, c) > 0 && deleted.insert((c, nb)) {
                    remaining -= 1;
                    round_clean[c] = false;
                }
            }
        }
        grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::greedy_allocate;
    use lppa_rng::rngs::StdRng;
    use lppa_rng::SeedableRng;

    #[test]
    fn tracker_maxima_follow_revise_and_leave() {
        let mut t = ChannelTracker::default();
        t.insert(0, 5);
        t.insert(1, 9);
        t.insert(2, 9);
        t.insert(3, 0); // zero is never an entry
        assert_eq!(t.max_bid(), Some(9));
        assert_eq!(t.top(), vec![1, 2]);
        assert_eq!(t.top_k(3), vec![(1, 9), (2, 9), (0, 5)]);
        assert_eq!(t.len(), 3);

        // Revise slot 1 down: 9 → 4.
        t.remove(1, 9);
        t.insert(1, 4);
        assert_eq!(t.top(), vec![2]);
        assert_eq!(t.top_k(2), vec![(2, 9), (0, 5)]);

        // Leave of the maximum exposes the next tier.
        t.remove(2, 9);
        assert_eq!(t.max_bid(), Some(5));
        assert_eq!(t.top(), vec![0]);

        t.remove(0, 5);
        t.remove(1, 4);
        assert!(t.is_empty());
        assert_eq!(t.max_bid(), None);
        assert!(t.top().is_empty());
    }

    #[test]
    fn join_reuses_freed_slots_lowest_first() {
        let mut a = IncrementalAuction::new(2, 1);
        let s0 = a.join(Location::new(0, 0), vec![1]);
        let s1 = a.join(Location::new(10, 10), vec![2]);
        let s2 = a.join(Location::new(20, 20), vec![3]);
        assert_eq!((s0, s1, s2), (0, 1, 2));
        a.leave(s1);
        a.leave(s0);
        assert_eq!(a.live_count(), 1);
        // Lowest freed id first, then the next.
        assert_eq!(a.join(Location::new(30, 30), vec![4]), 0);
        assert_eq!(a.join(Location::new(40, 40), vec![5]), 1);
        assert_eq!(a.join(Location::new(50, 50), vec![6]), 3);
        assert_eq!(a.live_slots(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn adjacency_tracks_joins_and_leaves() {
        let mut a = IncrementalAuction::new(3, 1);
        let s0 = a.join(Location::new(0, 0), vec![1]);
        let s1 = a.join(Location::new(2, 2), vec![1]); // conflicts with s0
        let s2 = a.join(Location::new(50, 50), vec![1]);
        let g = a.conflict_graph();
        assert!(g.are_conflicting(BidderId(0), BidderId(1)));
        assert!(!g.are_conflicting(BidderId(0), BidderId(2)));

        a.leave(s1);
        let g = a.conflict_graph();
        assert_eq!(g.len(), 2);
        assert_eq!(g.edge_count(), 0);

        // A re-join on the freed slot rebuilds its own row only.
        let s3 = a.join(Location::new(1, 1), vec![1]);
        assert_eq!(s3, s1);
        let g = a.conflict_graph();
        assert!(g.are_conflicting(BidderId(0), BidderId(1)));
        let _ = (s0, s2);
    }

    /// Drives a seeded churn history and checks, each round, that the
    /// resident state equals a from-scratch rebuild: same conflict
    /// graph, same bid table, and bitwise-equal grants under a shared
    /// RNG seed.
    #[test]
    fn churned_state_matches_from_scratch_rebuild_every_round() {
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(0xc4u64.wrapping_mul(seed + 1));
            let k = 1 + (seed as usize % 3);
            let mut auction = IncrementalAuction::new(3, k);
            let mut mirror: Vec<(u32, Location, Vec<u32>)> = Vec::new(); // (slot, loc, bids)

            let rand_bids = |rng: &mut StdRng, k: usize| -> Vec<u32> {
                (0..k).map(|_| if rng.gen_bool(0.4) { 0 } else { rng.gen_range(1..=9) }).collect()
            };

            for round in 0..12 {
                // Apply a random delta batch: joins, leaves, revisions.
                for _ in 0..rng.gen_range(1..5) {
                    let op = rng.gen_range(0..3);
                    if op == 0 || mirror.is_empty() {
                        let loc = Location::new(rng.gen_range(0..20), rng.gen_range(0..20));
                        let bids = rand_bids(&mut rng, k);
                        let slot = auction.join(loc, bids.clone());
                        mirror.push((slot, loc, bids));
                    } else if op == 1 {
                        let i = rng.gen_range(0..mirror.len());
                        let (slot, _, _) = mirror.swap_remove(i);
                        auction.leave(slot);
                    } else {
                        let i = rng.gen_range(0..mirror.len());
                        let bids = rand_bids(&mut rng, k);
                        auction.revise(mirror[i].0, bids.clone());
                        mirror[i].2 = bids;
                    }
                }

                // From-scratch rebuild over the live set in slot order.
                mirror.sort_unstable_by_key(|(slot, _, _)| *slot);
                if mirror.is_empty() {
                    assert!(auction.allocate(&mut StdRng::seed_from_u64(round)).is_empty());
                    continue;
                }
                let locs: Vec<Location> = mirror.iter().map(|&(_, l, _)| l).collect();
                let rows: Vec<Vec<u32>> = mirror.iter().map(|(_, _, b)| b.clone()).collect();
                let graph = ConflictGraph::from_locations(&locs, 3);
                let table = BidTable::from_rows(rows);

                assert_eq!(auction.conflict_graph(), graph, "seed {seed} round {round}");
                let live = auction.live_slots();
                assert_eq!(
                    live,
                    mirror.iter().map(|&(s, _, _)| s).collect::<Vec<_>>(),
                    "seed {seed} round {round}"
                );

                let round_seed = rng.gen::<u64>();
                let incremental = auction.allocate(&mut StdRng::seed_from_u64(round_seed));
                let scratch =
                    greedy_allocate(&table, &graph, &mut StdRng::seed_from_u64(round_seed));
                assert_eq!(incremental, scratch, "seed {seed} round {round}");
            }
        }
    }

    #[test]
    fn allocate_on_empty_state_grants_nothing() {
        let mut a = IncrementalAuction::new(2, 3);
        assert!(a.allocate(&mut StdRng::seed_from_u64(1)).is_empty());
        let s = a.join(Location::new(0, 0), vec![0, 0, 0]);
        assert!(a.allocate(&mut StdRng::seed_from_u64(1)).is_empty());
        a.leave(s);
        assert_eq!(a.live_count(), 0);
    }

    #[test]
    #[should_panic(expected = "non-live slot")]
    fn leave_of_free_slot_panics() {
        let mut a = IncrementalAuction::new(2, 1);
        let s = a.join(Location::new(0, 0), vec![1]);
        a.leave(s);
        a.leave(s);
    }
}
