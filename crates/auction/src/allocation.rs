//! The greedy spectrum allocation engine (Algorithm 3 of the paper).
//!
//! The auctioneer repeatedly picks a channel uniformly at random from a
//! round-robin pool `R`, awards it to the highest remaining bid in that
//! column, deletes the winner's row (a bidder takes at most one channel)
//! and the same-channel entries of the winner's conflict neighbours, and
//! continues until the bid table is exhausted.
//!
//! The engine is generic over a [`BidOracle`] so the *same* control flow
//! drives both the plaintext baseline (this crate) and the LPPA masked
//! table (the `lppa` crate), where "find the maximum" is performed with
//! prefix-membership comparisons instead of plaintext ones.

use lppa_rng::seq::SliceRandom;
use lppa_rng::Rng;

use crate::bidder::{BidTable, BidderId};
use crate::conflict::ConflictGraph;
use lppa_spectrum::ChannelId;

/// What the allocation engine needs to know about a bid table.
///
/// Implementations decide *how* bids are compared (plaintext or masked);
/// the engine owns all deletion bookkeeping.
pub trait BidOracle {
    /// Number of bidders (rows).
    fn n_bidders(&self) -> usize;

    /// Number of channels (columns).
    fn n_channels(&self) -> usize;

    /// Whether the table initially holds an entry for (`bidder`,
    /// `channel`). The plaintext baseline omits zero bids (an unavailable
    /// channel); the masked table cannot tell zeros apart and keeps every
    /// cell.
    fn has_entry(&self, bidder: BidderId, channel: ChannelId) -> bool;

    /// Picks the winner among `candidates` (non-empty, all with entries)
    /// for `channel`, breaking ties uniformly at random with `rng`.
    fn select_winner(
        &self,
        channel: ChannelId,
        candidates: &[BidderId],
        rng: &mut dyn lppa_rng::RngCore,
    ) -> BidderId;
}

/// A channel grant produced by the allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grant {
    /// The winning bidder.
    pub bidder: BidderId,
    /// The channel awarded.
    pub channel: ChannelId,
}

/// Runs Algorithm 3 over `oracle`, respecting `conflicts`.
///
/// Returns the grants in the order they were awarded. Each bidder appears
/// at most once; a channel may be granted to several non-conflicting
/// bidders (spectrum reuse).
///
/// # Panics
///
/// Panics if the conflict graph size differs from the oracle's bidder
/// count.
pub fn greedy_allocate<O: BidOracle, R: Rng>(
    oracle: &O,
    conflicts: &ConflictGraph,
    rng: &mut R,
) -> Vec<Grant> {
    greedy_allocate_in(oracle, conflicts, rng, &mut AllocScratch::default())
}

/// Reusable scratch for [`greedy_allocate_in`]: the entry bitmap, row
/// liveness, candidate list and round-robin pool, all cleared and
/// refilled per round while keeping capacity. A warm scratch runs the
/// whole allocation loop with zero heap traffic beyond the returned
/// grant list.
#[derive(Debug, Default)]
pub struct AllocScratch {
    /// Row-major `n × k` remaining-entry bitmap.
    entry: Vec<bool>,
    row_alive: Vec<bool>,
    candidates: Vec<BidderId>,
    /// The round-robin pool R of §V.A: refilled once exhausted.
    pool: Vec<usize>,
}

/// [`greedy_allocate`] over caller-owned scratch buffers.
///
/// Control flow and RNG consumption are identical to
/// [`greedy_allocate`] — same pool shuffles, same tie-break draws — so
/// the grant sequence is bitwise-equal; only the memory source differs.
///
/// # Panics
///
/// Panics if the conflict graph size differs from the oracle's bidder
/// count.
pub fn greedy_allocate_in<O: BidOracle, R: Rng>(
    oracle: &O,
    conflicts: &ConflictGraph,
    rng: &mut R,
    scratch: &mut AllocScratch,
) -> Vec<Grant> {
    let n = oracle.n_bidders();
    let k = oracle.n_channels();
    assert_eq!(conflicts.len(), n, "conflict graph size mismatch");
    let AllocScratch { entry, row_alive, candidates, pool } = scratch;

    // Remaining entries: start from the oracle's initial table.
    entry.clear();
    entry.resize(n * k, false);
    let mut remaining = 0usize;
    for i in 0..n {
        for j in 0..k {
            let cell = oracle.has_entry(BidderId(i), ChannelId(j));
            entry[i * k + j] = cell;
            remaining += usize::from(cell);
        }
    }

    row_alive.clear();
    row_alive.resize(n, true);
    let mut grants = Vec::new();
    pool.clear();

    while remaining > 0 {
        if pool.is_empty() {
            pool.extend(0..k);
            pool.shuffle(rng);
        }
        // `remaining > 0` implies `k > 0`, so the refilled pool is never
        // empty — but a defensive break beats a panic mid-auction.
        let Some(channel) = pool.pop().map(ChannelId) else { break };

        candidates.clear();
        candidates
            .extend((0..n).filter(|&i| row_alive[i] && entry[i * k + channel.0]).map(BidderId));
        if candidates.is_empty() {
            continue;
        }

        let winner = oracle.select_winner(channel, candidates, rng);
        debug_assert!(candidates.contains(&winner), "oracle must pick a candidate");
        grants.push(Grant { bidder: winner, channel });

        // Delete the winner's whole row.
        row_alive[winner.0] = false;
        remaining -= entry[winner.0 * k..(winner.0 + 1) * k].iter().filter(|&&e| e).count();

        // Delete conflicting neighbours' entries for this channel.
        for nb in conflicts.neighbors(winner) {
            if row_alive[nb.0] && entry[nb.0 * k + channel.0] {
                entry[nb.0 * k + channel.0] = false;
                remaining -= 1;
            }
        }
    }
    grants
}

/// The plaintext oracle: zero bids are absent, the maximum plaintext bid
/// wins, ties break uniformly at random.
impl BidOracle for BidTable {
    fn n_bidders(&self) -> usize {
        BidTable::n_bidders(self)
    }

    fn n_channels(&self) -> usize {
        BidTable::n_channels(self)
    }

    fn has_entry(&self, bidder: BidderId, channel: ChannelId) -> bool {
        self.bid(bidder, channel) > 0
    }

    fn select_winner(
        &self,
        channel: ChannelId,
        candidates: &[BidderId],
        rng: &mut dyn lppa_rng::RngCore,
    ) -> BidderId {
        let best = candidates.iter().map(|&b| self.bid(b, channel)).max().unwrap_or(0);
        let tied: Vec<BidderId> =
            candidates.iter().copied().filter(|&b| self.bid(b, channel) == best).collect();
        // `tied` contains every maximal candidate, so it is non-empty
        // whenever `candidates` is (the trait contract); the fallback
        // avoids a panic path in the auction's innermost loop.
        match tied.choose(rng) {
            Some(&winner) => winner,
            None => candidates[0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lppa_rng::rngs::StdRng;
    use lppa_rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    #[test]
    fn single_channel_highest_bid_wins() {
        let table = BidTable::from_rows(vec![vec![5], vec![9], vec![3]]);
        let conflicts = ConflictGraph::from_locations(
            &[
                crate::bidder::Location::new(0, 0),
                crate::bidder::Location::new(1, 0),
                crate::bidder::Location::new(2, 0),
            ],
            5, // everyone conflicts
        );
        let grants = greedy_allocate(&table, &conflicts, &mut rng());
        assert_eq!(grants, vec![Grant { bidder: BidderId(1), channel: ChannelId(0) }]);
    }

    #[test]
    fn spectrum_reuse_among_non_conflicting_bidders() {
        // Two far-apart bidders both want channel 0; both should get it.
        let table = BidTable::from_rows(vec![vec![5], vec![4]]);
        let conflicts = ConflictGraph::disconnected(2);
        let grants = greedy_allocate(&table, &conflicts, &mut rng());
        assert_eq!(grants.len(), 2);
        let channels: Vec<ChannelId> = grants.iter().map(|g| g.channel).collect();
        assert_eq!(channels, vec![ChannelId(0), ChannelId(0)]);
    }

    #[test]
    fn conflicting_neighbor_is_excluded_from_won_channel_only() {
        // Bidders 0 and 1 conflict. 0 wins channel 0 (higher bid); 1 must
        // not get channel 0 but can still win channel 1.
        let table = BidTable::from_rows(vec![vec![9, 0], vec![5, 7]]);
        let mut conflicts = ConflictGraph::disconnected(2);
        conflicts.add_conflict(BidderId(0), BidderId(1));
        let grants = greedy_allocate(&table, &conflicts, &mut rng());
        assert!(grants.contains(&Grant { bidder: BidderId(0), channel: ChannelId(0) }));
        assert!(grants.contains(&Grant { bidder: BidderId(1), channel: ChannelId(1) }));
        assert_eq!(grants.len(), 2);
    }

    #[test]
    fn each_bidder_wins_at_most_one_channel() {
        let mut r = rng();
        // A bidder with the top bid everywhere still wins only once.
        let table = BidTable::from_rows(vec![vec![9, 9, 9], vec![1, 1, 1], vec![2, 2, 2]]);
        let conflicts = ConflictGraph::disconnected(3);
        let grants = greedy_allocate(&table, &conflicts, &mut r);
        let mut winners: Vec<usize> = grants.iter().map(|g| g.bidder.0).collect();
        winners.sort_unstable();
        winners.dedup();
        assert_eq!(winners.len(), grants.len(), "a bidder won twice");
    }

    #[test]
    fn zero_bids_never_win_in_plaintext_baseline() {
        let table = BidTable::from_rows(vec![vec![0, 0], vec![0, 3]]);
        let conflicts = ConflictGraph::disconnected(2);
        let grants = greedy_allocate(&table, &conflicts, &mut rng());
        assert_eq!(grants, vec![Grant { bidder: BidderId(1), channel: ChannelId(1) }]);
    }

    #[test]
    fn all_zero_table_allocates_nothing() {
        let table = BidTable::from_rows(vec![vec![0, 0], vec![0, 0]]);
        let conflicts = ConflictGraph::disconnected(2);
        assert!(greedy_allocate(&table, &conflicts, &mut rng()).is_empty());
    }

    #[test]
    fn grants_respect_conflicts_globally() {
        // Random stress: no two conflicting bidders ever share a channel.
        let mut r = StdRng::seed_from_u64(99);
        use lppa_rng::Rng as _;
        for trial in 0..20 {
            let n = 25;
            let k = 6;
            let rows: Vec<Vec<u32>> =
                (0..n).map(|_| (0..k).map(|_| r.gen_range(0..8)).collect()).collect();
            let table = BidTable::from_rows(rows);
            let locs: Vec<crate::bidder::Location> = (0..n)
                .map(|_| crate::bidder::Location::new(r.gen_range(0..40), r.gen_range(0..40)))
                .collect();
            let conflicts = ConflictGraph::from_locations(&locs, 4);
            let grants = greedy_allocate(&table, &conflicts, &mut r);
            for ch in 0..k {
                let holders: Vec<BidderId> = grants
                    .iter()
                    .filter(|g| g.channel == ChannelId(ch))
                    .map(|g| g.bidder)
                    .collect();
                assert!(conflicts.is_independent(&holders), "trial {trial} channel {ch}");
            }
            // No winner with a zero bid.
            for g in &grants {
                assert!(table.bid(g.bidder, g.channel) > 0, "trial {trial}");
            }
        }
    }

    #[test]
    fn tie_break_is_random_but_valid() {
        let table = BidTable::from_rows(vec![vec![7], vec![7]]);
        let mut conflicts = ConflictGraph::disconnected(2);
        conflicts.add_conflict(BidderId(0), BidderId(1));
        let mut seen = std::collections::HashSet::new();
        for seed in 0..32 {
            let mut r = StdRng::seed_from_u64(seed);
            let grants = greedy_allocate(&table, &conflicts, &mut r);
            assert_eq!(grants.len(), 1);
            seen.insert(grants[0].bidder);
        }
        assert_eq!(seen.len(), 2, "both tied bidders should win sometimes");
    }
}
