//! The interference conflict graph.
//!
//! Spectrum reusability means two bidders may share a channel iff they do
//! not interfere. The paper models interference as a square of side `2λ`
//! centred on each user: `SU_i` and `SU_j` conflict iff
//! `|x_i − x_j| < 2λ` **and** `|y_i − y_j| < 2λ` (§IV.A.1). The plaintext
//! graph here is the baseline; the LPPA crate constructs the same graph
//! from masked submissions and must agree with it exactly.

use crate::bidder::{BidderId, Location};

/// An undirected conflict graph over `n` bidders.
///
/// # Examples
///
/// ```
/// use lppa_auction::bidder::Location;
/// use lppa_auction::conflict::ConflictGraph;
///
/// let locs = [Location::new(0, 0), Location::new(1, 1), Location::new(50, 50)];
/// let graph = ConflictGraph::from_locations(&locs, 2);
/// assert!(graph.are_conflicting(0.into(), 1.into()));
/// assert!(!graph.are_conflicting(0.into(), 2.into()));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConflictGraph {
    n: usize,
    /// Row-major adjacency matrix (symmetric, false diagonal).
    adj: Vec<bool>,
}

impl From<usize> for BidderId {
    fn from(i: usize) -> Self {
        BidderId(i)
    }
}

impl ConflictGraph {
    /// Builds the graph from plaintext locations with interference
    /// half-width `lambda`.
    pub fn from_locations(locations: &[Location], lambda: u32) -> Self {
        let n = locations.len();
        let mut graph = Self::disconnected(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if locations[i].conflicts_with(&locations[j], lambda) {
                    graph.add_conflict(BidderId(i), BidderId(j));
                }
            }
        }
        graph
    }

    /// A graph over `n` bidders with no conflicts.
    pub fn disconnected(n: usize) -> Self {
        Self::disconnected_from(n, Vec::new())
    }

    /// As [`disconnected`](Self::disconnected), recycling `buf` as the
    /// matrix backing store: the buffer is cleared and zero-filled to
    /// `n × n`, keeping its capacity, so pooled callers rebuild graphs
    /// without touching the allocator.
    pub fn disconnected_from(n: usize, mut buf: Vec<bool>) -> Self {
        buf.clear();
        buf.resize(n * n, false);
        Self { n, adj: buf }
    }

    /// Tears the graph down to its backing matrix buffer, for recycling
    /// through [`disconnected_from`](Self::disconnected_from).
    pub fn into_matrix(self) -> Vec<bool> {
        self.adj
    }

    /// Number of bidders.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no bidders.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Marks `a` and `b` as conflicting (no-op for `a == b`).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn add_conflict(&mut self, a: BidderId, b: BidderId) {
        assert!(a.0 < self.n && b.0 < self.n, "bidder id out of range");
        if a == b {
            return;
        }
        self.adj[a.0 * self.n + b.0] = true;
        self.adj[b.0 * self.n + a.0] = true;
    }

    /// Whether `a` and `b` interfere.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn are_conflicting(&self, a: BidderId, b: BidderId) -> bool {
        assert!(a.0 < self.n && b.0 < self.n, "bidder id out of range");
        self.adj[a.0 * self.n + b.0]
    }

    /// The neighbour set `N(i)`.
    pub fn neighbors(&self, i: BidderId) -> impl Iterator<Item = BidderId> + '_ {
        let row = &self.adj[i.0 * self.n..(i.0 + 1) * self.n];
        row.iter().enumerate().filter(|(_, &c)| c).map(|(j, _)| BidderId(j))
    }

    /// Number of conflicting pairs.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().filter(|&&c| c).count() / 2
    }

    /// Verifies that a channel-sharing assignment is interference-free:
    /// no two of `holders` conflict.
    pub fn is_independent(&self, holders: &[BidderId]) -> bool {
        for (idx, &a) in holders.iter().enumerate() {
            for &b in &holders[idx + 1..] {
                if self.are_conflicting(a, b) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_locations_matches_pairwise_predicate() {
        let locs: Vec<Location> =
            (0..20).map(|i| Location::new((i * 7) % 30, (i * 13) % 30)).collect();
        let lambda = 3;
        let g = ConflictGraph::from_locations(&locs, lambda);
        for i in 0..locs.len() {
            for j in 0..locs.len() {
                let expected = i != j && locs[i].conflicts_with(&locs[j], lambda);
                assert_eq!(g.are_conflicting(BidderId(i), BidderId(j)), expected);
            }
        }
    }

    #[test]
    fn diagonal_is_never_conflicting() {
        let mut g = ConflictGraph::disconnected(3);
        g.add_conflict(BidderId(1), BidderId(1));
        assert!(!g.are_conflicting(BidderId(1), BidderId(1)));
    }

    #[test]
    fn neighbors_enumerates_conflicts() {
        let mut g = ConflictGraph::disconnected(4);
        g.add_conflict(BidderId(0), BidderId(2));
        g.add_conflict(BidderId(0), BidderId(3));
        let n0: Vec<BidderId> = g.neighbors(BidderId(0)).collect();
        assert_eq!(n0, vec![BidderId(2), BidderId(3)]);
        let n1: Vec<BidderId> = g.neighbors(BidderId(1)).collect();
        assert!(n1.is_empty());
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn independence_check() {
        let mut g = ConflictGraph::disconnected(4);
        g.add_conflict(BidderId(0), BidderId(1));
        assert!(g.is_independent(&[BidderId(0), BidderId(2), BidderId(3)]));
        assert!(!g.is_independent(&[BidderId(0), BidderId(1)]));
        assert!(g.is_independent(&[]));
    }

    #[test]
    fn colocated_users_always_conflict() {
        let locs = [Location::new(5, 5), Location::new(5, 5)];
        let g = ConflictGraph::from_locations(&locs, 1);
        assert!(g.are_conflicting(BidderId(0), BidderId(1)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_id_panics() {
        ConflictGraph::disconnected(2).are_conflicting(BidderId(0), BidderId(5));
    }
}
