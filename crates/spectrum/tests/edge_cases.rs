//! Geometry and coverage edge cases.
//!
//! The oracle fuzzes whole auctions; these tests pin the spectrum-layer
//! corners it cannot reach through the protocol: a receiver standing on
//! the transmitter (zero distance), cells on the grid boundary, and
//! coverage degenerating to a single cell or to nothing.

use lppa_spectrum::coverage::{ChannelCoverage, SpectrumMap};
use lppa_spectrum::geo::{Cell, CellSet, GridSpec};
use lppa_spectrum::propagation::{PathLossModel, Transmitter};
use lppa_spectrum::terrain::TerrainField;
use lppa_spectrum::ChannelId;

fn model() -> PathLossModel {
    PathLossModel::new(90.0, 3.0)
}

#[test]
fn zero_distance_receiver_sees_a_finite_clamped_signal() {
    // A bidder in the tower's own cell is at distance ~0; the model
    // clamps below 50 m so RSSI stays finite and maximal there.
    let grid = GridSpec::new(9, 9, 9.0);
    let terrain = TerrainField::flat(&grid);
    let model = model();
    let center = Cell::new(4, 4);
    let (cx, cy) = grid.center_km(center);
    let tx = Transmitter { x_km: cx, y_km: cy, power_dbm: 30.0 };

    assert_eq!(tx.distance_km(&grid, center), 0.0);
    let at_tower = model.rssi_dbm(&grid, &tx, center, &terrain);
    assert!(at_tower.is_finite());
    assert_eq!(at_tower, tx.power_dbm - model.path_loss_db(0.0));

    // Every other cell hears strictly less.
    for cell in grid.iter().filter(|&c| c != center) {
        assert!(model.rssi_dbm(&grid, &tx, cell, &terrain) < at_tower);
    }
}

#[test]
fn coincident_transmitters_behave_like_one_louder_tower() {
    // Two PUs at zero mutual distance: the strongest-signal fold must
    // reduce to the max of the two powers everywhere.
    let grid = GridSpec::new(5, 5, 5.0);
    let terrain = TerrainField::flat(&grid);
    let model = model();
    let (x, y) = grid.center_km(Cell::new(2, 2));
    let weak = Transmitter { x_km: x, y_km: y, power_dbm: 10.0 };
    let strong = Transmitter { x_km: x, y_km: y, power_dbm: 25.0 };

    let both = ChannelCoverage::compute(&grid, &[weak, strong], &model, &terrain, -81.0);
    let strong_only = ChannelCoverage::compute(&grid, &[strong], &model, &terrain, -81.0);
    for cell in grid.iter() {
        assert_eq!(both.rssi_dbm(&grid, cell), strong_only.rssi_dbm(&grid, cell));
    }
}

#[test]
fn grid_boundary_cells_round_trip_and_stay_in_bounds() {
    let grid = GridSpec::new(7, 3, 6.0);
    let corners = [
        Cell::new(0, 0),
        Cell::new(0, grid.cols() - 1),
        Cell::new(grid.rows() - 1, 0),
        Cell::new(grid.rows() - 1, grid.cols() - 1),
    ];
    for corner in corners {
        assert!(grid.contains(corner));
        assert_eq!(grid.cell_at(grid.index_of(corner)), corner);
        let (x, y) = grid.center_km(corner);
        assert!(x > 0.0 && x < grid.side_km(), "corner centre x={x} escapes the area");
        assert!(y > 0.0 && y < grid.side_km(), "corner centre y={y} escapes the area");
    }
    // One past each edge is out of bounds.
    assert!(!grid.contains(Cell::new(grid.rows(), 0)));
    assert!(!grid.contains(Cell::new(0, grid.cols())));

    // Boundary membership is consistent between predicate and complement.
    let edge = CellSet::from_predicate(&grid, |c| {
        c.row == 0 || c.col == 0 || c.row == grid.rows() - 1 || c.col == grid.cols() - 1
    });
    let interior = edge.complement();
    assert_eq!(edge.len() + interior.len(), grid.cell_count());
    assert!(interior.iter().all(|c| c.row > 0 && c.col > 0));
}

#[test]
fn transmitter_outside_the_grid_still_orders_cells_by_distance() {
    // Towers may legally sit outside the evaluation area; nearest edge
    // cells must hear them loudest.
    let grid = GridSpec::new(4, 4, 8.0);
    let terrain = TerrainField::flat(&grid);
    let model = model();
    let tx = Transmitter { x_km: -5.0, y_km: -5.0, power_dbm: 40.0 };
    let near = model.rssi_dbm(&grid, &tx, Cell::new(0, 0), &terrain);
    let far = model.rssi_dbm(&grid, &tx, Cell::new(3, 3), &terrain);
    assert!(near > far);
}

#[test]
fn degenerate_single_cell_coverage() {
    // Exactly one cell below the threshold: availability is that cell,
    // and the whole map pipeline (available_channels, quality) keeps
    // working on the singleton.
    let grid = GridSpec::new(6, 6, 6.0);
    let lone = Cell::new(2, 3);
    let rssi: Vec<f64> = grid.iter().map(|c| if c == lone { -95.0 } else { -60.0 }).collect();
    let coverage = ChannelCoverage::from_rssi(&grid, rssi, -81.0);
    assert_eq!(coverage.availability().len(), 1);
    assert!(coverage.is_available(lone));

    let map = SpectrumMap::new(grid, vec![coverage], -81.0);
    assert_eq!(map.available_channels(lone), vec![ChannelId(0)]);
    for cell in map.grid().iter().filter(|&c| c != lone) {
        assert!(map.available_channels(cell).is_empty());
    }
    assert!(map.quality(ChannelId(0), lone).is_finite());
}

#[test]
fn blanket_coverage_leaves_no_availability() {
    // A tower calibrated to cover far beyond the area: nothing is
    // available, and the availability set is exactly empty rather than
    // panicking anywhere downstream.
    let grid = GridSpec::new(5, 5, 5.0);
    let terrain = TerrainField::flat(&grid);
    let model = model();
    let (x, y) = grid.center_km(Cell::new(2, 2));
    let tx = Transmitter::with_coverage_radius(x, y, 1000.0, -81.0, &model);
    let coverage = ChannelCoverage::compute(&grid, &[tx], &model, &terrain, -81.0);
    assert!(coverage.availability().is_empty());
}

#[test]
fn one_by_one_grid_supports_the_full_surface() {
    let grid = GridSpec::new(1, 1, 2.0);
    assert_eq!(grid.cell_count(), 1);
    let only = Cell::new(0, 0);
    assert_eq!(grid.cell_at(0), only);
    assert_eq!(grid.distance_km(only, only), 0.0);

    let flat = TerrainField::flat(&grid);
    assert_eq!(flat.shadowing_db(only), 0.0);

    // A quiet field leaves the single cell available.
    let coverage = ChannelCoverage::from_rssi(&grid, vec![-120.0], -81.0);
    assert_eq!(coverage.availability().len(), 1);
    let full = CellSet::full(&grid);
    assert_eq!(full.len(), 1);
    assert!(full.complement().is_empty());
}
