//! Property-based tests: `CellSet` behaves exactly like a reference
//! `HashSet<Cell>` model under arbitrary operation sequences.

use std::collections::HashSet;

use lppa_spectrum::geo::{Cell, CellSet, GridSpec};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Insert(u16, u16),
    Remove(u16, u16),
    Complement,
    IntersectRows(u16),
    UnionCols(u16),
}

fn op_strategy(rows: u16, cols: u16) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..rows, 0..cols).prop_map(|(r, c)| Op::Insert(r, c)),
        (0..rows, 0..cols).prop_map(|(r, c)| Op::Remove(r, c)),
        Just(Op::Complement),
        (0..rows).prop_map(Op::IntersectRows),
        (0..cols).prop_map(Op::UnionCols),
    ]
}

proptest! {
    #[test]
    fn cellset_matches_hashset_model(
        ops in proptest::collection::vec(op_strategy(9, 13), 0..60),
    ) {
        let grid = GridSpec::new(9, 13, 5.0);
        let mut set = CellSet::empty(&grid);
        let mut model: HashSet<Cell> = HashSet::new();

        for op in ops {
            match op {
                Op::Insert(r, c) => {
                    let cell = Cell::new(r, c);
                    prop_assert_eq!(set.insert(cell), model.insert(cell));
                }
                Op::Remove(r, c) => {
                    let cell = Cell::new(r, c);
                    prop_assert_eq!(set.remove(cell), model.remove(&cell));
                }
                Op::Complement => {
                    set = set.complement();
                    model = grid.iter().filter(|c| !model.contains(c)).collect();
                }
                Op::IntersectRows(below) => {
                    let other = CellSet::from_predicate(&grid, |c| c.row < below);
                    set.intersect_with(&other);
                    model.retain(|c| c.row < below);
                }
                Op::UnionCols(below) => {
                    let other = CellSet::from_predicate(&grid, |c| c.col < below);
                    set.union_with(&other);
                    model.extend(grid.iter().filter(|c| c.col < below));
                }
            }
            // Full-state comparison after every step.
            prop_assert_eq!(set.len(), model.len());
            for cell in grid.iter() {
                prop_assert_eq!(set.contains(cell), model.contains(&cell), "{}", cell);
            }
            let iterated: HashSet<Cell> = set.iter().collect();
            prop_assert_eq!(&iterated, &model);
        }
    }

    /// Set algebra identities hold for arbitrary predicate-defined sets.
    #[test]
    fn set_algebra_identities(pivot_row in 0u16..20, pivot_col in 0u16..20, modulo in 1u16..7) {
        let grid = GridSpec::new(20, 20, 10.0);
        let a = CellSet::from_predicate(&grid, |c| c.row < pivot_row);
        let b = CellSet::from_predicate(&grid, |c| (c.col + c.row) % modulo == 0);

        // |A| + |A^c| = |grid|
        prop_assert_eq!(a.len() + a.complement().len(), grid.cell_count());
        // A ∩ B ⊆ A and ⊆ B
        let inter = a.intersection(&b);
        prop_assert!(inter.len() <= a.len().min(b.len()));
        // Inclusion–exclusion.
        let mut union = a.clone();
        union.union_with(&b);
        prop_assert_eq!(union.len() + inter.len(), a.len() + b.len());
        // De Morgan: (A ∪ B)^c = A^c ∩ B^c.
        let lhs = union.complement();
        let rhs = a.complement().intersection(&b.complement());
        prop_assert_eq!(lhs, rhs);
        prop_assert_eq!(pivot_col, pivot_col); // silence unused when 0
    }

    /// Grid index round-trips for every cell of arbitrary grids.
    #[test]
    fn grid_index_roundtrip(rows in 1u16..40, cols in 1u16..40) {
        let grid = GridSpec::new(rows, cols, 10.0);
        for cell in grid.iter() {
            prop_assert_eq!(grid.cell_at(grid.index_of(cell)), cell);
        }
        prop_assert_eq!(grid.cell_count(), usize::from(rows) * usize::from(cols));
    }
}
