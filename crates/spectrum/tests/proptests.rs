//! Property-based tests: `CellSet` behaves exactly like a reference
//! `HashSet<Cell>` model under arbitrary operation sequences.
//!
//! Run with the in-tree harness: each property draws its inputs from a
//! seeded RNG; failures print the exact reproduction seed (see
//! `lppa_rng::testing`).

use std::collections::HashSet;

use lppa_rng::testing::check;
use lppa_rng::{Rng, StdRng};
use lppa_spectrum::geo::{Cell, CellSet, GridSpec};

#[derive(Clone, Debug)]
enum Op {
    Insert(u16, u16),
    Remove(u16, u16),
    Complement,
    IntersectRows(u16),
    UnionCols(u16),
}

fn random_op(rng: &mut StdRng, rows: u16, cols: u16) -> Op {
    match rng.gen_range(0u8..5) {
        0 => Op::Insert(rng.gen_range(0..rows), rng.gen_range(0..cols)),
        1 => Op::Remove(rng.gen_range(0..rows), rng.gen_range(0..cols)),
        2 => Op::Complement,
        3 => Op::IntersectRows(rng.gen_range(0..rows)),
        _ => Op::UnionCols(rng.gen_range(0..cols)),
    }
}

#[test]
fn cellset_matches_hashset_model() {
    check("cellset_matches_hashset_model", |rng| {
        let n_ops = rng.gen_range(0usize..60);
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(rng, 9, 13)).collect();
        let grid = GridSpec::new(9, 13, 5.0);
        let mut set = CellSet::empty(&grid);
        let mut model: HashSet<Cell> = HashSet::new();

        for op in ops {
            match op {
                Op::Insert(r, c) => {
                    let cell = Cell::new(r, c);
                    assert_eq!(set.insert(cell), model.insert(cell));
                }
                Op::Remove(r, c) => {
                    let cell = Cell::new(r, c);
                    assert_eq!(set.remove(cell), model.remove(&cell));
                }
                Op::Complement => {
                    set = set.complement();
                    model = grid.iter().filter(|c| !model.contains(c)).collect();
                }
                Op::IntersectRows(below) => {
                    let other = CellSet::from_predicate(&grid, |c| c.row < below);
                    set.intersect_with(&other);
                    model.retain(|c| c.row < below);
                }
                Op::UnionCols(below) => {
                    let other = CellSet::from_predicate(&grid, |c| c.col < below);
                    set.union_with(&other);
                    model.extend(grid.iter().filter(|c| c.col < below));
                }
            }
            // Full-state comparison after every step.
            assert_eq!(set.len(), model.len());
            for cell in grid.iter() {
                assert_eq!(set.contains(cell), model.contains(&cell), "{}", cell);
            }
            let iterated: HashSet<Cell> = set.iter().collect();
            assert_eq!(&iterated, &model);
        }
    });
}

/// Set algebra identities hold for arbitrary predicate-defined sets.
#[test]
fn set_algebra_identities() {
    check("set_algebra_identities", |rng| {
        let pivot_row = rng.gen_range(0u16..20);
        let modulo = rng.gen_range(1u16..7);
        let grid = GridSpec::new(20, 20, 10.0);
        let a = CellSet::from_predicate(&grid, |c| c.row < pivot_row);
        let b = CellSet::from_predicate(&grid, |c| (c.col + c.row) % modulo == 0);

        // |A| + |A^c| = |grid|
        assert_eq!(a.len() + a.complement().len(), grid.cell_count());
        // A ∩ B ⊆ A and ⊆ B
        let inter = a.intersection(&b);
        assert!(inter.len() <= a.len().min(b.len()));
        // Inclusion–exclusion.
        let mut union = a.clone();
        union.union_with(&b);
        assert_eq!(union.len() + inter.len(), a.len() + b.len());
        // De Morgan: (A ∪ B)^c = A^c ∩ B^c.
        let lhs = union.complement();
        let rhs = a.complement().intersection(&b.complement());
        assert_eq!(lhs, rhs);
    });
}

/// Grid index round-trips for every cell of arbitrary grids.
#[test]
fn grid_index_roundtrip() {
    check("grid_index_roundtrip", |rng| {
        let rows = rng.gen_range(1u16..40);
        let cols = rng.gen_range(1u16..40);
        let grid = GridSpec::new(rows, cols, 10.0);
        for cell in grid.iter() {
            assert_eq!(grid.cell_at(grid.index_of(cell)), cell);
        }
        assert_eq!(grid.cell_count(), usize::from(rows) * usize::from(cols));
    });
}
