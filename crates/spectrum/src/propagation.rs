//! Radio propagation: transmitters and the log-distance path-loss model.
//!
//! Each licensed channel is backed by one or more primary-user (PU)
//! transmitters. A secondary user may only use the channel where the PU
//! signal is weak — below the availability threshold (−81 dBm in the
//! paper, after \[16\]) — so the received-signal-strength field over the
//! grid determines both *availability* and the *quality statistics* the
//! BPM attacker exploits.

use crate::geo::{Cell, GridSpec};
use crate::terrain::TerrainField;

/// A primary-user transmitter.
///
/// Rather than specifying raw EIRP, a transmitter is parameterized by its
/// *intended coverage radius* under the reference path-loss model; the
/// equivalent transmit power is derived from it. This keeps synthetic maps
/// well-scaled regardless of the model constants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Transmitter {
    /// Easting of the tower in km (may lie outside the evaluation area).
    pub x_km: f64,
    /// Northing of the tower in km.
    pub y_km: f64,
    /// Transmit power in dBm.
    pub power_dbm: f64,
}

impl Transmitter {
    /// Places a transmitter whose signal drops to `threshold_dbm` at
    /// `radius_km` under `model` (ignoring shadowing).
    ///
    /// # Panics
    ///
    /// Panics if `radius_km` is not positive.
    pub fn with_coverage_radius(
        x_km: f64,
        y_km: f64,
        radius_km: f64,
        threshold_dbm: f64,
        model: &PathLossModel,
    ) -> Self {
        assert!(radius_km > 0.0, "coverage radius must be positive");
        let power_dbm = threshold_dbm + model.path_loss_db(radius_km);
        Self { x_km, y_km, power_dbm }
    }

    /// Distance from the tower to the centre of `cell`, in km.
    pub fn distance_km(&self, grid: &GridSpec, cell: Cell) -> f64 {
        let (cx, cy) = grid.center_km(cell);
        ((self.x_km - cx).powi(2) + (self.y_km - cy).powi(2)).sqrt()
    }
}

/// Log-distance path loss: `PL(d) = PL0 + 10·n·log10(d / d0)`.
///
/// # Examples
///
/// ```
/// use lppa_spectrum::propagation::PathLossModel;
///
/// let model = PathLossModel::new(90.0, 3.0);
/// // Path loss grows by 30 dB per decade of distance at exponent 3.
/// let near = model.path_loss_db(1.0);
/// let far = model.path_loss_db(10.0);
/// assert!((far - near - 30.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathLossModel {
    /// Reference loss at 1 km, in dB.
    pub pl0_db: f64,
    /// Path-loss exponent `n` (≈2 free space, 3–4 urban).
    pub exponent: f64,
}

impl PathLossModel {
    /// Creates a model with reference loss `pl0_db` at 1 km and exponent
    /// `exponent`.
    ///
    /// # Panics
    ///
    /// Panics if `exponent` is not positive.
    pub fn new(pl0_db: f64, exponent: f64) -> Self {
        assert!(exponent > 0.0, "path-loss exponent must be positive");
        Self { pl0_db, exponent }
    }

    /// Path loss in dB at distance `d_km` (clamped below at 50 m so the
    /// model stays finite on top of a tower).
    pub fn path_loss_db(&self, d_km: f64) -> f64 {
        let d = d_km.max(0.05);
        self.pl0_db + 10.0 * self.exponent * d.log10()
    }

    /// Received signal strength at `cell` from `tx`, including terrain
    /// shadowing.
    pub fn rssi_dbm(
        &self,
        grid: &GridSpec,
        tx: &Transmitter,
        cell: Cell,
        terrain: &TerrainField,
    ) -> f64 {
        let d = tx.distance_km(grid, cell);
        tx.power_dbm - self.path_loss_db(d) - terrain.shadowing_db(cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridSpec {
        GridSpec::new(100, 100, 75.0)
    }

    #[test]
    fn path_loss_monotone_in_distance() {
        let m = PathLossModel::new(90.0, 3.2);
        let mut prev = f64::NEG_INFINITY;
        for d in [0.1, 0.5, 1.0, 5.0, 20.0, 75.0] {
            let pl = m.path_loss_db(d);
            assert!(pl > prev);
            prev = pl;
        }
    }

    #[test]
    fn near_field_is_clamped() {
        let m = PathLossModel::new(90.0, 3.0);
        assert_eq!(m.path_loss_db(0.0), m.path_loss_db(0.01));
    }

    #[test]
    fn coverage_radius_calibration() {
        // A transmitter calibrated for a 30 km radius must deliver exactly
        // the threshold at 30 km (without shadowing).
        let m = PathLossModel::new(88.0, 3.0);
        let threshold = -81.0;
        let tx = Transmitter::with_coverage_radius(0.0, 0.0, 30.0, threshold, &m);
        let rssi_at_edge = tx.power_dbm - m.path_loss_db(30.0);
        assert!((rssi_at_edge - threshold).abs() < 1e-9);
        // Inside the radius: above threshold; outside: below.
        assert!(tx.power_dbm - m.path_loss_db(10.0) > threshold);
        assert!(tx.power_dbm - m.path_loss_db(60.0) < threshold);
    }

    #[test]
    fn rssi_decreases_away_from_tower() {
        let g = grid();
        let m = PathLossModel::new(90.0, 3.0);
        let flat = TerrainField::flat(&g);
        let tx = Transmitter::with_coverage_radius(0.375, 0.375, 40.0, -81.0, &m);
        let near = m.rssi_dbm(&g, &tx, Cell::new(0, 0), &flat);
        let mid = m.rssi_dbm(&g, &tx, Cell::new(50, 50), &flat);
        let far = m.rssi_dbm(&g, &tx, Cell::new(99, 99), &flat);
        assert!(near > mid && mid > far);
    }

    #[test]
    fn shadowing_shifts_rssi() {
        let g = grid();
        let m = PathLossModel::new(90.0, 3.0);
        let flat = TerrainField::flat(&g);
        let rough = TerrainField::generate(&g, 10.0, 8, 3);
        let tx = Transmitter::with_coverage_radius(10.0, 10.0, 40.0, -81.0, &m);
        let cell = Cell::new(70, 70);
        let diff = m.rssi_dbm(&g, &tx, cell, &flat) - m.rssi_dbm(&g, &tx, cell, &rough);
        assert!((diff - rough.shadowing_db(cell)).abs() < 1e-12);
    }

    #[test]
    fn transmitter_distance_uses_cell_centers() {
        let g = grid();
        let tx = Transmitter { x_km: 0.375, y_km: 0.375, power_dbm: 60.0 };
        assert!(tx.distance_km(&g, Cell::new(0, 0)) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn non_positive_radius_panics() {
        let m = PathLossModel::new(90.0, 3.0);
        Transmitter::with_coverage_radius(0.0, 0.0, 0.0, -81.0, &m);
    }
}
