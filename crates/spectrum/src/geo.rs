//! Geography: the evaluation grid and sets of cells.
//!
//! The paper divides each 75 km × 75 km evaluation area into 100 × 100
//! cells addressed as `(m, n)` row/column pairs. [`GridSpec`] captures the
//! geometry; [`CellSet`] is a bitset over the grid used for coverage
//! regions and attack position sets, where intersections must be cheap
//! (the BCM attack intersects up to 129 coverage regions per bidder).

/// A cell address `(m, n)`: row `m`, column `n`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cell {
    /// Row index (0-based).
    pub row: u16,
    /// Column index (0-based).
    pub col: u16,
}

impl Cell {
    /// Creates a cell address.
    pub fn new(row: u16, col: u16) -> Self {
        Self { row, col }
    }
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

/// Geometry of an evaluation grid.
///
/// # Examples
///
/// ```
/// use lppa_spectrum::geo::{Cell, GridSpec};
///
/// let grid = GridSpec::paper_default();
/// assert_eq!(grid.cell_count(), 10_000);
/// assert!((grid.cell_size_km() - 0.75).abs() < 1e-9);
/// let d = grid.distance_km(Cell::new(0, 0), Cell::new(0, 4));
/// assert!((d - 3.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GridSpec {
    rows: u16,
    cols: u16,
    side_km: f64,
}

impl GridSpec {
    /// Creates a grid of `rows × cols` cells spanning `side_km` km on
    /// each side.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `side_km` is not positive —
    /// these are programming errors, not recoverable conditions.
    pub fn new(rows: u16, cols: u16, side_km: f64) -> Self {
        assert!(rows > 0 && cols > 0, "grid must have at least one cell");
        assert!(side_km > 0.0, "grid side must be positive");
        Self { rows, cols, side_km }
    }

    /// The paper's evaluation grid: 100 × 100 cells over 75 km.
    pub fn paper_default() -> Self {
        Self::new(100, 100, 75.0)
    }

    /// Number of rows.
    pub fn rows(&self) -> u16 {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> u16 {
        self.cols
    }

    /// Length of the (square) area side in km.
    pub fn side_km(&self) -> f64 {
        self.side_km
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        usize::from(self.rows) * usize::from(self.cols)
    }

    /// Edge length of one (square-ish) cell in km, using the column pitch.
    pub fn cell_size_km(&self) -> f64 {
        self.side_km / f64::from(self.cols)
    }

    /// Flattened index of `cell`, row-major.
    ///
    /// # Panics
    ///
    /// Panics if the cell lies outside the grid.
    pub fn index_of(&self, cell: Cell) -> usize {
        assert!(self.contains(cell), "cell {cell} outside {}x{} grid", self.rows, self.cols);
        usize::from(cell.row) * usize::from(self.cols) + usize::from(cell.col)
    }

    /// Cell address of a flattened index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= cell_count()`.
    pub fn cell_at(&self, index: usize) -> Cell {
        assert!(index < self.cell_count(), "index {index} out of bounds");
        Cell::new((index / usize::from(self.cols)) as u16, (index % usize::from(self.cols)) as u16)
    }

    /// Whether `cell` lies inside the grid.
    pub fn contains(&self, cell: Cell) -> bool {
        cell.row < self.rows && cell.col < self.cols
    }

    /// Centre of `cell` in km from the area's south-west corner, `(x, y)`
    /// with `x` along columns and `y` along rows.
    pub fn center_km(&self, cell: Cell) -> (f64, f64) {
        let cw = self.side_km / f64::from(self.cols);
        let ch = self.side_km / f64::from(self.rows);
        ((f64::from(cell.col) + 0.5) * cw, (f64::from(cell.row) + 0.5) * ch)
    }

    /// Euclidean distance between cell centres, in km.
    pub fn distance_km(&self, a: Cell, b: Cell) -> f64 {
        let (ax, ay) = self.center_km(a);
        let (bx, by) = self.center_km(b);
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Iterates over every cell in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = Cell> + '_ {
        (0..self.rows).flat_map(move |r| (0..self.cols).map(move |c| Cell::new(r, c)))
    }
}

/// A set of cells, stored as a bitset over the flattened grid.
///
/// # Examples
///
/// ```
/// use lppa_spectrum::geo::{Cell, CellSet, GridSpec};
///
/// let grid = GridSpec::new(10, 10, 7.5);
/// let mut set = CellSet::empty(&grid);
/// set.insert(Cell::new(2, 3));
/// assert!(set.contains(Cell::new(2, 3)));
/// assert_eq!(set.len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct CellSet {
    grid: GridSpec,
    words: Vec<u64>,
    len: usize,
}

// GridSpec contains f64 and so is not Eq; CellSet equality only needs the
// integer dimensions, which PartialEq on words + grid covers. Implement Eq
// manually-adjacent via PartialEq derive above: derive(Eq) requires all
// fields Eq, so provide a manual impl.
impl std::cmp::Eq for GridSpec {}

impl std::fmt::Debug for CellSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CellSet({} of {} cells)", self.len, self.grid.cell_count())
    }
}

impl CellSet {
    /// The empty set over `grid`.
    pub fn empty(grid: &GridSpec) -> Self {
        let words = vec![0u64; grid.cell_count().div_ceil(64)];
        Self { grid: *grid, words, len: 0 }
    }

    /// The full set over `grid` (the attack's initial `P = A`).
    pub fn full(grid: &GridSpec) -> Self {
        let mut set = Self::empty(grid);
        let n = grid.cell_count();
        for (i, word) in set.words.iter_mut().enumerate() {
            let remaining = n.saturating_sub(i * 64);
            *word = if remaining >= 64 { u64::MAX } else { (1u64 << remaining) - 1 };
        }
        set.len = n;
        set
    }

    /// Builds a set from a predicate over cells.
    pub fn from_predicate<F: FnMut(Cell) -> bool>(grid: &GridSpec, mut pred: F) -> Self {
        let mut set = Self::empty(grid);
        for cell in grid.iter() {
            if pred(cell) {
                set.insert(cell);
            }
        }
        set
    }

    /// The grid this set is defined over.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Inserts `cell`; returns whether it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is outside the grid.
    pub fn insert(&mut self, cell: Cell) -> bool {
        let idx = self.grid.index_of(cell);
        let (w, b) = (idx / 64, idx % 64);
        let newly = self.words[w] & (1 << b) == 0;
        if newly {
            self.words[w] |= 1 << b;
            self.len += 1;
        }
        newly
    }

    /// Removes `cell`; returns whether it was present.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is outside the grid.
    pub fn remove(&mut self, cell: Cell) -> bool {
        let idx = self.grid.index_of(cell);
        let (w, b) = (idx / 64, idx % 64);
        let present = self.words[w] & (1 << b) != 0;
        if present {
            self.words[w] &= !(1 << b);
            self.len -= 1;
        }
        present
    }

    /// Whether `cell` is in the set. Cells outside the grid are not.
    pub fn contains(&self, cell: Cell) -> bool {
        if !self.grid.contains(cell) {
            return false;
        }
        let idx = self.grid.index_of(cell);
        self.words[idx / 64] & (1 << (idx % 64)) != 0
    }

    /// Number of cells in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// In-place intersection (`P = P ∩ other`), the BCM attack's inner
    /// operation.
    ///
    /// # Panics
    ///
    /// Panics if the two sets are over different grids.
    pub fn intersect_with(&mut self, other: &CellSet) {
        assert_eq!(self.grid, other.grid, "sets over different grids");
        let mut len = 0usize;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= *b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }

    /// Returns the intersection as a new set.
    pub fn intersection(&self, other: &CellSet) -> CellSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if the two sets are over different grids.
    pub fn union_with(&mut self, other: &CellSet) {
        assert_eq!(self.grid, other.grid, "sets over different grids");
        let mut len = 0usize;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }

    /// The complement within the grid.
    pub fn complement(&self) -> CellSet {
        let mut out = CellSet::full(&self.grid);
        for (a, b) in out.words.iter_mut().zip(self.words.iter()) {
            *a &= !*b;
        }
        out.len = out.words.iter().map(|w| w.count_ones() as usize).sum();
        out
    }

    /// Iterates over member cells in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = Cell> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let grid = self.grid;
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(grid.cell_at(wi * 64 + b))
            })
        })
    }
}

impl Extend<Cell> for CellSet {
    fn extend<T: IntoIterator<Item = Cell>>(&mut self, iter: T) {
        for cell in iter {
            self.insert(cell);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridSpec {
        GridSpec::new(10, 12, 7.5)
    }

    #[test]
    fn paper_default_dimensions() {
        let g = GridSpec::paper_default();
        assert_eq!((g.rows(), g.cols()), (100, 100));
        assert_eq!(g.cell_count(), 10_000);
        assert!((g.side_km() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn index_roundtrip() {
        let g = grid();
        for cell in g.iter() {
            assert_eq!(g.cell_at(g.index_of(cell)), cell);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn index_of_out_of_bounds_panics() {
        grid().index_of(Cell::new(10, 0));
    }

    #[test]
    fn centers_and_distances() {
        let g = GridSpec::new(100, 100, 75.0);
        let (x, y) = g.center_km(Cell::new(0, 0));
        assert!((x - 0.375).abs() < 1e-12);
        assert!((y - 0.375).abs() < 1e-12);
        // Distance is symmetric and zero on the diagonal.
        let a = Cell::new(3, 4);
        let b = Cell::new(40, 80);
        assert_eq!(g.distance_km(a, a), 0.0);
        assert!((g.distance_km(a, b) - g.distance_km(b, a)).abs() < 1e-12);
    }

    #[test]
    fn empty_and_full_sets() {
        let g = grid();
        let empty = CellSet::empty(&g);
        assert!(empty.is_empty());
        let full = CellSet::full(&g);
        assert_eq!(full.len(), g.cell_count());
        for cell in g.iter() {
            assert!(!empty.contains(cell));
            assert!(full.contains(cell));
        }
    }

    #[test]
    fn full_set_has_no_phantom_bits() {
        // 10×12 = 120 cells is not a multiple of 64; the tail word must
        // not carry stray bits that distort counts after complement.
        let g = grid();
        let full = CellSet::full(&g);
        assert_eq!(full.complement().len(), 0);
    }

    #[test]
    fn insert_remove_contains() {
        let g = grid();
        let mut s = CellSet::empty(&g);
        let c = Cell::new(5, 7);
        assert!(s.insert(c));
        assert!(!s.insert(c), "double insert reports false");
        assert!(s.contains(c));
        assert_eq!(s.len(), 1);
        assert!(s.remove(c));
        assert!(!s.remove(c));
        assert!(s.is_empty());
    }

    #[test]
    fn contains_out_of_grid_is_false() {
        let s = CellSet::empty(&grid());
        assert!(!s.contains(Cell::new(200, 200)));
    }

    #[test]
    fn intersection_and_union() {
        let g = grid();
        let a = CellSet::from_predicate(&g, |c| c.row < 5);
        let b = CellSet::from_predicate(&g, |c| c.col < 6);
        let inter = a.intersection(&b);
        assert_eq!(inter.len(), 5 * 6);
        let mut uni = a.clone();
        uni.union_with(&b);
        assert_eq!(uni.len(), 5 * 12 + 10 * 6 - 30);
        for cell in g.iter() {
            assert_eq!(inter.contains(cell), a.contains(cell) && b.contains(cell));
            assert_eq!(uni.contains(cell), a.contains(cell) || b.contains(cell));
        }
    }

    #[test]
    fn complement_partitions_grid() {
        let g = grid();
        let a = CellSet::from_predicate(&g, |c| (c.row + c.col) % 3 == 0);
        let comp = a.complement();
        assert_eq!(a.len() + comp.len(), g.cell_count());
        assert_eq!(a.intersection(&comp).len(), 0);
    }

    #[test]
    fn iter_visits_exactly_members() {
        let g = grid();
        let s = CellSet::from_predicate(&g, |c| c.row == c.col);
        let visited: Vec<Cell> = s.iter().collect();
        assert_eq!(visited.len(), s.len());
        for cell in &visited {
            assert!(s.contains(*cell));
        }
        // Row-major order.
        let mut sorted = visited.clone();
        sorted.sort();
        assert_eq!(visited, sorted);
    }

    #[test]
    fn extend_from_iterator() {
        let g = grid();
        let mut s = CellSet::empty(&g);
        s.extend([Cell::new(0, 0), Cell::new(1, 1), Cell::new(0, 0)]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different grids")]
    fn cross_grid_intersection_panics() {
        let a = CellSet::empty(&GridSpec::new(5, 5, 1.0));
        let mut b = CellSet::empty(&GridSpec::new(6, 6, 1.0));
        b.intersect_with(&a);
    }
}
