//! Synthetic FCC-style spectrum substrate for the LPPA reproduction.
//!
//! The paper evaluates on channel coverage extracted from FCC
//! Google-Earth maps (TVFool) of Los Angeles: 129 TV channels over four
//! 75 km × 75 km areas divided into 100 × 100 cells. This crate rebuilds
//! that substrate synthetically:
//!
//! * [`geo`] — the cell grid and fast cell-set operations;
//! * [`terrain`] — deterministic, spatially correlated shadowing;
//! * [`propagation`] — PU transmitters and log-distance path loss;
//! * [`coverage`] — per-channel availability regions `C_r` and
//!   ground-truth quality statistics `q*_r(m, n)`;
//! * [`area`] — profiles reproducing the paper's four urban/rural areas;
//! * [`synth`] — the seeded map generator.
//!
//! # Examples
//!
//! ```
//! use lppa_spectrum::area::AreaProfile;
//! use lppa_spectrum::geo::Cell;
//! use lppa_spectrum::synth::SyntheticMapBuilder;
//!
//! let map = SyntheticMapBuilder::new(AreaProfile::area4())
//!     .channels(12)
//!     .seed(42)
//!     .build();
//! let here = Cell::new(30, 60);
//! println!("{} channels available at {here}", map.available_channels(here).len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod coverage;
pub mod geo;
pub mod io;
pub mod propagation;
pub mod stats;
pub mod synth;
pub mod terrain;

pub use area::AreaProfile;
pub use coverage::{ChannelCoverage, ChannelId, SpectrumMap};
pub use geo::{Cell, CellSet, GridSpec};
pub use io::{read_map, write_map, ReadMapError};
pub use propagation::{PathLossModel, Transmitter};
pub use stats::MapStats;
pub use synth::{SyntheticMapBuilder, PAPER_CHANNELS, PAPER_THRESHOLD_DBM};
pub use terrain::TerrainField;
