//! Summary statistics of spectrum maps.
//!
//! The attack and auction dynamics are driven by a few aggregate
//! properties of a map — how many channels an average user sees, how
//! fragmented coverage regions are. This module computes them once so
//! experiments, examples and tests can assert on map character instead
//! of re-deriving it ad hoc.

use crate::coverage::SpectrumMap;

/// Aggregate statistics of one spectrum map.
#[derive(Clone, Debug, PartialEq)]
pub struct MapStats {
    /// Number of channels.
    pub channels: usize,
    /// Number of grid cells.
    pub cells: usize,
    /// Mean number of available channels per cell.
    pub mean_available_per_cell: f64,
    /// Minimum and maximum available channels over all cells.
    pub available_per_cell_range: (usize, usize),
    /// Mean fraction of the area each channel is available in.
    pub mean_availability_fraction: f64,
    /// Channels available nowhere (carry no location signal).
    pub dead_channels: usize,
    /// Channels available everywhere (carry no location signal either).
    pub ubiquitous_channels: usize,
    /// Mean quality over all (available channel, cell) pairs.
    pub mean_available_quality: f64,
}

impl MapStats {
    /// Computes the statistics of `map` (one full scan).
    pub fn compute(map: &SpectrumMap) -> Self {
        let grid = map.grid();
        let cells = grid.cell_count();
        let channels = map.channel_count();

        let mut per_cell_total = 0usize;
        let mut per_cell_min = usize::MAX;
        let mut per_cell_max = 0usize;
        for cell in grid.iter() {
            let n = map.available_channels(cell).len();
            per_cell_total += n;
            per_cell_min = per_cell_min.min(n);
            per_cell_max = per_cell_max.max(n);
        }

        let mut availability_fraction_total = 0.0;
        let mut dead = 0usize;
        let mut ubiquitous = 0usize;
        let mut quality_total = 0.0;
        let mut quality_count = 0usize;
        for ch in map.channel_ids() {
            let avail = map.availability(ch);
            availability_fraction_total += avail.len() as f64 / cells as f64;
            if avail.is_empty() {
                dead += 1;
            }
            if avail.len() == cells {
                ubiquitous += 1;
            }
            for cell in avail.iter() {
                quality_total += map.quality(ch, cell);
                quality_count += 1;
            }
        }

        Self {
            channels,
            cells,
            mean_available_per_cell: per_cell_total as f64 / cells as f64,
            available_per_cell_range: (per_cell_min, per_cell_max),
            mean_availability_fraction: availability_fraction_total / channels as f64,
            dead_channels: dead,
            ubiquitous_channels: ubiquitous,
            mean_available_quality: if quality_count == 0 {
                0.0
            } else {
                quality_total / quality_count as f64
            },
        }
    }

    /// Fraction of channels that carry location information (available
    /// somewhere but not everywhere).
    pub fn informative_fraction(&self) -> f64 {
        let informative = self.channels - self.dead_channels - self.ubiquitous_channels;
        informative as f64 / self.channels as f64
    }
}

impl std::fmt::Display for MapStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} channels over {} cells; {:.1} available per cell (range {}..={})",
            self.channels,
            self.cells,
            self.mean_available_per_cell,
            self.available_per_cell_range.0,
            self.available_per_cell_range.1,
        )?;
        write!(
            f,
            "mean availability {:.0}%, {:.0}% informative, mean quality {:.2}",
            self.mean_availability_fraction * 100.0,
            self.informative_fraction() * 100.0,
            self.mean_available_quality,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::AreaProfile;
    use crate::geo::GridSpec;
    use crate::synth::SyntheticMapBuilder;

    fn stats(profile: AreaProfile) -> MapStats {
        let map = SyntheticMapBuilder::new(profile)
            .grid(GridSpec::new(40, 40, 60.0))
            .channels(24)
            .seed(6)
            .build();
        MapStats::compute(&map)
    }

    #[test]
    fn aggregates_are_internally_consistent() {
        let s = stats(AreaProfile::area3());
        assert_eq!(s.channels, 24);
        assert_eq!(s.cells, 1600);
        let (lo, hi) = s.available_per_cell_range;
        assert!(lo as f64 <= s.mean_available_per_cell);
        assert!(hi as f64 >= s.mean_available_per_cell);
        assert!(hi <= s.channels);
        // Mean per-cell availability and mean per-channel availability
        // fraction are the same mass counted two ways.
        let via_channels = s.mean_availability_fraction * s.channels as f64;
        assert!((via_channels - s.mean_available_per_cell).abs() < 1e-9);
        assert!((0.0..=1.0).contains(&s.mean_available_quality));
        assert!((0.0..=1.0).contains(&s.informative_fraction()));
    }

    #[test]
    fn rural_has_more_availability_than_urban() {
        let rural = stats(AreaProfile::area4());
        let urban = stats(AreaProfile::area2());
        assert!(rural.mean_available_per_cell > urban.mean_available_per_cell);
    }

    #[test]
    fn display_is_informative() {
        let s = stats(AreaProfile::area1());
        let text = s.to_string();
        assert!(text.contains("channels"));
        assert!(text.contains("available per cell"));
    }
}
