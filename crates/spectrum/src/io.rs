//! Saving and loading spectrum maps.
//!
//! Generating a 129-channel map over 10,000 cells costs a couple of
//! seconds; experiment harnesses that sweep many configurations can
//! cache maps on disk instead. The format is a small, versioned,
//! line-oriented text format — human-inspectable and independent of
//! serialization crates.
//!
//! Functions take `R: Read` / `W: Write` by value; pass `&mut reader` /
//! `&mut writer` to keep using the underlying stream afterwards.

use std::io::{self, BufRead, BufReader, Read, Write};

use crate::coverage::{ChannelCoverage, SpectrumMap};
use crate::geo::GridSpec;

/// Format tag written as the first line.
const MAGIC: &str = "lppa-spectrum-map v1";

/// Errors arising while reading a serialized map.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReadMapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input is not a recognizable map file.
    Format {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl std::fmt::Display for ReadMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadMapError::Io(e) => write!(f, "i/o error reading map: {e}"),
            ReadMapError::Format { reason } => write!(f, "malformed map file: {reason}"),
        }
    }
}

impl std::error::Error for ReadMapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadMapError::Io(e) => Some(e),
            ReadMapError::Format { .. } => None,
        }
    }
}

impl From<io::Error> for ReadMapError {
    fn from(e: io::Error) -> Self {
        ReadMapError::Io(e)
    }
}

fn format_err<T>(reason: impl Into<String>) -> Result<T, ReadMapError> {
    Err(ReadMapError::Format { reason: reason.into() })
}

/// Writes `map` to `writer`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use lppa_spectrum::area::AreaProfile;
/// use lppa_spectrum::io::{read_map, write_map};
/// use lppa_spectrum::geo::GridSpec;
/// use lppa_spectrum::synth::SyntheticMapBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let map = SyntheticMapBuilder::new(AreaProfile::area4())
///     .grid(GridSpec::new(10, 10, 7.5)).channels(3).seed(1).build();
/// let mut buffer = Vec::new();
/// write_map(&map, &mut buffer)?;
/// let restored = read_map(&buffer[..])?;
/// assert_eq!(restored.channel_count(), 3);
/// # Ok(())
/// # }
/// ```
pub fn write_map<W: Write>(map: &SpectrumMap, mut writer: W) -> io::Result<()> {
    let grid = map.grid();
    writeln!(writer, "{MAGIC}")?;
    writeln!(writer, "grid {} {} {}", grid.rows(), grid.cols(), grid.side_km())?;
    writeln!(writer, "threshold {}", map.threshold_dbm())?;
    writeln!(writer, "channels {}", map.channel_count())?;
    for ch in map.channel_ids() {
        writeln!(writer, "channel {}", ch.0)?;
        let coverage = map.channel(ch);
        for cell in grid.iter() {
            // One value per line keeps the parser trivial; files gzip
            // well if size matters.
            writeln!(writer, "{}", coverage.rssi_dbm(grid, cell))?;
        }
    }
    Ok(())
}

/// Reads a map previously written by [`write_map`].
///
/// # Errors
///
/// Returns [`ReadMapError::Format`] for version mismatches, truncation
/// or unparsable fields, and [`ReadMapError::Io`] for stream failures.
pub fn read_map<R: Read>(reader: R) -> Result<SpectrumMap, ReadMapError> {
    let mut lines = BufReader::new(reader).lines();
    let mut next = || -> Result<String, ReadMapError> {
        match lines.next() {
            Some(line) => Ok(line?),
            None => format_err("unexpected end of file"),
        }
    };

    if next()? != MAGIC {
        return format_err("missing or unsupported header");
    }

    let grid_line = next()?;
    let parts: Vec<&str> = grid_line.split_whitespace().collect();
    if parts.len() != 4 || parts[0] != "grid" {
        return format_err(format!("bad grid line: {grid_line:?}"));
    }
    let rows: u16 = parts[1]
        .parse()
        .map_err(|_| ReadMapError::Format { reason: format!("bad row count {:?}", parts[1]) })?;
    let cols: u16 = parts[2]
        .parse()
        .map_err(|_| ReadMapError::Format { reason: format!("bad column count {:?}", parts[2]) })?;
    let side_km: f64 = parts[3]
        .parse()
        .map_err(|_| ReadMapError::Format { reason: format!("bad side length {:?}", parts[3]) })?;
    if rows == 0 || cols == 0 || side_km.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return format_err("degenerate grid dimensions");
    }
    let grid = GridSpec::new(rows, cols, side_km);

    let threshold_line = next()?;
    let threshold_dbm: f64 =
        threshold_line.strip_prefix("threshold ").and_then(|s| s.parse().ok()).ok_or_else(
            || ReadMapError::Format { reason: format!("bad threshold line: {threshold_line:?}") },
        )?;

    let channels_line = next()?;
    let n_channels: usize =
        channels_line.strip_prefix("channels ").and_then(|s| s.parse().ok()).ok_or_else(|| {
            ReadMapError::Format { reason: format!("bad channels line: {channels_line:?}") }
        })?;
    if n_channels == 0 {
        return format_err("map has no channels");
    }

    let mut channels = Vec::with_capacity(n_channels);
    for expected in 0..n_channels {
        let header = next()?;
        if header != format!("channel {expected}") {
            return format_err(format!("expected channel {expected}, found {header:?}"));
        }
        let mut rssi = Vec::with_capacity(grid.cell_count());
        for _ in 0..grid.cell_count() {
            let line = next()?;
            let value: f64 = line
                .parse()
                .map_err(|_| ReadMapError::Format { reason: format!("bad rssi value {line:?}") })?;
            rssi.push(value);
        }
        channels.push(ChannelCoverage::from_rssi(&grid, rssi, threshold_dbm));
    }
    Ok(SpectrumMap::new(grid, channels, threshold_dbm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::AreaProfile;
    use crate::geo::Cell;
    use crate::synth::SyntheticMapBuilder;

    fn sample_map() -> SpectrumMap {
        SyntheticMapBuilder::new(AreaProfile::area3())
            .grid(GridSpec::new(12, 9, 8.0))
            .channels(4)
            .seed(77)
            .build()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let map = sample_map();
        let mut buffer = Vec::new();
        write_map(&map, &mut buffer).unwrap();
        let restored = read_map(&buffer[..]).unwrap();

        assert_eq!(restored.channel_count(), map.channel_count());
        assert_eq!(restored.grid().rows(), map.grid().rows());
        assert_eq!(restored.grid().cols(), map.grid().cols());
        assert_eq!(restored.threshold_dbm(), map.threshold_dbm());
        for ch in map.channel_ids() {
            assert_eq!(restored.availability(ch).len(), map.availability(ch).len(), "{ch}");
            for cell in [Cell::new(0, 0), Cell::new(5, 5), Cell::new(11, 8)] {
                assert_eq!(restored.quality(ch, cell), map.quality(ch, cell));
            }
        }
    }

    #[test]
    fn writer_can_be_reused_via_mut_reference() {
        let map = sample_map();
        let mut buffer = Vec::new();
        write_map(&map, &mut buffer).unwrap();
        let len_one = buffer.len();
        write_map(&map, &mut buffer).unwrap();
        assert_eq!(buffer.len(), 2 * len_one);
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_map(&b"not a map\n"[..]).unwrap_err();
        assert!(matches!(err, ReadMapError::Format { .. }));
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn rejects_truncation() {
        let map = sample_map();
        let mut buffer = Vec::new();
        write_map(&map, &mut buffer).unwrap();
        let truncated = &buffer[..buffer.len() / 2];
        assert!(read_map(truncated).is_err());
    }

    #[test]
    fn rejects_corrupted_value() {
        let map = sample_map();
        let mut buffer = Vec::new();
        write_map(&map, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let corrupted = text.replacen("channel 1", "channel 7", 1);
        let err = read_map(corrupted.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("channel"));
    }

    #[test]
    fn error_source_chains_io() {
        let io_err = io::Error::other("boom");
        let err: ReadMapError = io_err.into();
        use std::error::Error as _;
        assert!(err.source().is_some());
    }
}
