//! Area profiles: the four evaluation regions of the paper.
//!
//! The paper extracts four 75 km × 75 km regions around Los Angeles from
//! FCC/TVFool data and observes that attack effectiveness differs between
//! rural and urban terrain. We encode each region as a generation profile
//! whose knobs reproduce those qualitative differences:
//!
//! * **urban** areas have more towers per channel, larger protected
//!   footprints and stronger shadowing — secondary users see *few*
//!   available channels, so the BCM attacker gets few constraints and the
//!   possible-location set stays large (the paper notes Area 2's BCM
//!   output is "quite large");
//! * **rural** areas have smaller, smoother footprints — users see many
//!   channels whose diverse coverage boundaries intersect into small
//!   possible-location sets (the paper: "the effectiveness of our attack
//!   is usually better in rural district than urban ones").

use crate::propagation::PathLossModel;

/// Generation parameters for one evaluation area.
#[derive(Clone, Debug, PartialEq)]
pub struct AreaProfile {
    /// Human-readable name ("Area 3 (urban fringe)").
    pub name: &'static str,
    /// Log-distance path-loss model for the area's clutter class.
    pub path_loss: PathLossModel,
    /// Standard deviation of terrain shadowing, dB.
    pub shadowing_sigma_db: f64,
    /// Correlation length of the shadowing field, in cells.
    pub shadowing_lattice_step: u16,
    /// Inclusive range of transmitters backing each channel.
    pub transmitters_per_channel: (u8, u8),
    /// Inclusive range of intended PU coverage radii, km.
    pub coverage_radius_km: (f64, f64),
    /// How far outside the area towers may be placed, as a fraction of
    /// the area side.
    pub placement_margin: f64,
}

impl AreaProfile {
    /// Area 1: suburban mix.
    pub fn area1() -> Self {
        Self {
            name: "Area 1 (suburban)",
            path_loss: PathLossModel::new(89.0, 3.2),
            shadowing_sigma_db: 6.0,
            shadowing_lattice_step: 10,
            transmitters_per_channel: (1, 2),
            coverage_radius_km: (15.0, 55.0),
            placement_margin: 0.3,
        }
    }

    /// Area 2: dense urban core — largest protected footprints, harshest
    /// shadowing, hardest for the attacker.
    pub fn area2() -> Self {
        Self {
            name: "Area 2 (dense urban)",
            path_loss: PathLossModel::new(92.0, 3.6),
            shadowing_sigma_db: 9.0,
            shadowing_lattice_step: 6,
            transmitters_per_channel: (2, 3),
            coverage_radius_km: (40.0, 85.0),
            placement_margin: 0.25,
        }
    }

    /// Area 3: urban fringe — the area used for the LPPA-effectiveness
    /// experiments (Fig. 5).
    pub fn area3() -> Self {
        Self {
            name: "Area 3 (urban fringe)",
            path_loss: PathLossModel::new(90.0, 3.4),
            shadowing_sigma_db: 7.0,
            shadowing_lattice_step: 8,
            transmitters_per_channel: (1, 3),
            coverage_radius_km: (14.0, 50.0),
            placement_margin: 0.3,
        }
    }

    /// Area 4: rural — smallest, smoothest footprints, easiest for the
    /// attacker; the area used for the attack experiments (Fig. 4 (a,b)).
    pub fn area4() -> Self {
        Self {
            name: "Area 4 (rural)",
            path_loss: PathLossModel::new(87.0, 2.9),
            shadowing_sigma_db: 4.0,
            shadowing_lattice_step: 12,
            transmitters_per_channel: (1, 2),
            coverage_radius_km: (10.0, 45.0),
            placement_margin: 0.35,
        }
    }

    /// All four areas in paper order.
    pub fn all() -> [Self; 4] {
        [Self::area1(), Self::area2(), Self::area3(), Self::area4()]
    }

    /// A distinct generation seed per area, so the four maps differ even
    /// under a common experiment seed.
    pub fn default_seed(&self) -> u64 {
        // Stable hash of the name.
        self.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |acc, b| {
            (acc ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_distinct_areas() {
        let areas = AreaProfile::all();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(areas[i], areas[j]);
                assert_ne!(areas[i].default_seed(), areas[j].default_seed());
            }
        }
    }

    #[test]
    fn urban_has_larger_footprints_than_rural() {
        let urban = AreaProfile::area2();
        let rural = AreaProfile::area4();
        assert!(urban.coverage_radius_km.0 > rural.coverage_radius_km.0);
        assert!(urban.shadowing_sigma_db > rural.shadowing_sigma_db);
        assert!(urban.path_loss.exponent > rural.path_loss.exponent);
    }

    #[test]
    fn parameter_ranges_are_well_formed() {
        for area in AreaProfile::all() {
            let (lo_tx, hi_tx) = area.transmitters_per_channel;
            assert!(lo_tx >= 1 && lo_tx <= hi_tx, "{}", area.name);
            let (lo_r, hi_r) = area.coverage_radius_km;
            assert!(lo_r > 0.0 && lo_r <= hi_r, "{}", area.name);
            assert!(area.placement_margin >= 0.0);
            assert!(area.shadowing_lattice_step > 0);
        }
    }
}
