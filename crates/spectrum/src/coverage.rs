//! Channel coverage maps: availability regions and quality statistics.
//!
//! For every channel the map records the PU signal strength in each cell.
//! From it derive the two artefacts the rest of the system consumes:
//!
//! * the **availability region** `C_r` — cells where the PU signal is at
//!   or below the threshold, i.e. where a secondary user may transmit
//!   (the *complement* of the PU's protected coverage); and
//! * the **quality statistic** `q*_r(m, n)` — how good the channel is for
//!   a secondary user in a cell, derived from the interference margin.
//!   This is exactly the geo-location-database knowledge the BPM attacker
//!   is assumed to hold (§III.B).

use crate::geo::{Cell, CellSet, GridSpec};
use crate::propagation::{PathLossModel, Transmitter};
use crate::terrain::TerrainField;

/// Identifier of a channel within a [`SpectrumMap`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub usize);

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// dB of interference margin at which quality saturates at 1.0.
pub const QUALITY_SATURATION_DB: f64 = 40.0;

/// Per-channel signal map over a grid.
#[derive(Clone, Debug)]
pub struct ChannelCoverage {
    rssi_dbm: Vec<f64>,
    availability: CellSet,
    threshold_dbm: f64,
}

impl ChannelCoverage {
    /// Computes the coverage of a channel served by `transmitters` under
    /// `model` and `terrain`. When several transmitters share a channel,
    /// the strongest signal in each cell governs.
    ///
    /// # Panics
    ///
    /// Panics if `transmitters` is empty — a channel with no PU would be
    /// trivially available everywhere and carries no location signal.
    pub fn compute(
        grid: &GridSpec,
        transmitters: &[Transmitter],
        model: &PathLossModel,
        terrain: &TerrainField,
        threshold_dbm: f64,
    ) -> Self {
        assert!(!transmitters.is_empty(), "a channel needs at least one transmitter");
        let mut rssi_dbm = Vec::with_capacity(grid.cell_count());
        for cell in grid.iter() {
            let strongest = transmitters
                .iter()
                .map(|tx| model.rssi_dbm(grid, tx, cell, terrain))
                .fold(f64::NEG_INFINITY, f64::max);
            rssi_dbm.push(strongest);
        }
        let availability = {
            let rssi = &rssi_dbm;
            CellSet::from_predicate(grid, |cell| rssi[grid.index_of(cell)] <= threshold_dbm)
        };
        Self { rssi_dbm, availability, threshold_dbm }
    }

    /// Builds a coverage directly from a signal field (useful for tests
    /// and replaying recorded maps).
    ///
    /// # Panics
    ///
    /// Panics if `rssi_dbm.len() != grid.cell_count()`.
    pub fn from_rssi(grid: &GridSpec, rssi_dbm: Vec<f64>, threshold_dbm: f64) -> Self {
        assert_eq!(rssi_dbm.len(), grid.cell_count(), "rssi field size mismatch");
        let availability = {
            let rssi = &rssi_dbm;
            CellSet::from_predicate(grid, |cell| rssi[grid.index_of(cell)] <= threshold_dbm)
        };
        Self { rssi_dbm, availability, threshold_dbm }
    }

    /// PU signal strength at `cell` in dBm.
    pub fn rssi_dbm(&self, grid: &GridSpec, cell: Cell) -> f64 {
        self.rssi_dbm[grid.index_of(cell)]
    }

    /// The availability region `C_r`: cells where a secondary user may
    /// operate.
    pub fn availability(&self) -> &CellSet {
        &self.availability
    }

    /// Whether the channel is available to a secondary user in `cell`.
    pub fn is_available(&self, cell: Cell) -> bool {
        self.availability.contains(cell)
    }

    /// The ground-truth quality statistic `q*` at `cell`, in `[0, 1]`.
    ///
    /// Quality is the normalized interference margin below the threshold:
    /// zero at (or above) the threshold, saturating at 1.0 once the PU
    /// signal is [`QUALITY_SATURATION_DB`] below it. Unavailable cells
    /// have quality 0.
    pub fn quality(&self, grid: &GridSpec, cell: Cell) -> f64 {
        let margin = self.threshold_dbm - self.rssi_dbm[grid.index_of(cell)];
        (margin / QUALITY_SATURATION_DB).clamp(0.0, 1.0)
    }
}

/// A complete spectrum map: every channel's coverage over one grid.
///
/// # Examples
///
/// ```
/// use lppa_spectrum::geo::{Cell, GridSpec};
/// use lppa_spectrum::synth::SyntheticMapBuilder;
/// use lppa_spectrum::area::AreaProfile;
///
/// let map = SyntheticMapBuilder::new(AreaProfile::area4())
///     .channels(8)
///     .seed(1)
///     .build();
/// assert_eq!(map.channel_count(), 8);
/// let cell = Cell::new(50, 50);
/// let available = map.available_channels(cell);
/// for ch in &available {
///     assert!(map.quality(*ch, cell) > 0.0);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct SpectrumMap {
    grid: GridSpec,
    channels: Vec<ChannelCoverage>,
    threshold_dbm: f64,
}

impl SpectrumMap {
    /// Assembles a map from per-channel coverages.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is empty.
    pub fn new(grid: GridSpec, channels: Vec<ChannelCoverage>, threshold_dbm: f64) -> Self {
        assert!(!channels.is_empty(), "a spectrum map needs at least one channel");
        Self { grid, channels, threshold_dbm }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// The availability threshold in dBm (−81 in the paper's setup).
    pub fn threshold_dbm(&self) -> f64 {
        self.threshold_dbm
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Identifiers of all channels.
    pub fn channel_ids(&self) -> impl Iterator<Item = ChannelId> {
        (0..self.channels.len()).map(ChannelId)
    }

    /// The coverage record of `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn channel(&self, channel: ChannelId) -> &ChannelCoverage {
        &self.channels[channel.0]
    }

    /// The availability region `C_r` of `channel`.
    pub fn availability(&self, channel: ChannelId) -> &CellSet {
        self.channels[channel.0].availability()
    }

    /// Whether `channel` is available in `cell`.
    pub fn is_available(&self, channel: ChannelId, cell: Cell) -> bool {
        self.channels[channel.0].is_available(cell)
    }

    /// Ground-truth quality `q*_r(m, n)` of `channel` at `cell`.
    pub fn quality(&self, channel: ChannelId, cell: Cell) -> f64 {
        self.channels[channel.0].quality(&self.grid, cell)
    }

    /// The available channel set `AS(i)` of a user located in `cell`.
    pub fn available_channels(&self, cell: Cell) -> Vec<ChannelId> {
        self.channel_ids().filter(|&ch| self.is_available(ch, cell)).collect()
    }

    /// Restricts the map to its first `k` channels (the paper sweeps the
    /// number of auctioned channels in Fig. 4).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the channel count.
    pub fn take_channels(&self, k: usize) -> SpectrumMap {
        assert!(k > 0 && k <= self.channels.len(), "invalid channel subset {k}");
        SpectrumMap {
            grid: self.grid,
            channels: self.channels[..k].to_vec(),
            threshold_dbm: self.threshold_dbm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridSpec {
        GridSpec::new(40, 40, 30.0)
    }

    fn one_channel(grid: &GridSpec, radius: f64) -> ChannelCoverage {
        let model = PathLossModel::new(88.0, 3.0);
        let terrain = TerrainField::flat(grid);
        let tx = Transmitter::with_coverage_radius(15.0, 15.0, radius, -81.0, &model);
        ChannelCoverage::compute(grid, &[tx], &model, &terrain, -81.0)
    }

    #[test]
    fn availability_is_complement_of_pu_coverage() {
        let g = grid();
        let cov = one_channel(&g, 10.0);
        // Near the tower: PU signal strong, channel NOT available.
        assert!(!cov.is_available(Cell::new(20, 20)));
        // Far corner (~21 km away): available.
        assert!(cov.is_available(Cell::new(0, 0)));
        // Availability set matches the per-cell predicate.
        for cell in g.iter() {
            assert_eq!(cov.availability().contains(cell), cov.rssi_dbm(&g, cell) <= -81.0);
        }
    }

    #[test]
    fn larger_radius_shrinks_availability() {
        let g = grid();
        let small = one_channel(&g, 5.0);
        let large = one_channel(&g, 25.0);
        assert!(small.availability().len() > large.availability().len());
    }

    #[test]
    fn quality_zero_at_unavailable_cells_and_monotone_with_distance() {
        let g = grid();
        let cov = one_channel(&g, 8.0);
        assert_eq!(cov.quality(&g, Cell::new(20, 20)), 0.0);
        // Quality grows with distance from the tower (larger margin).
        let q_mid = cov.quality(&g, Cell::new(5, 5));
        let q_corner = cov.quality(&g, Cell::new(0, 0));
        assert!(q_corner >= q_mid);
        assert!((0.0..=1.0).contains(&q_corner));
    }

    #[test]
    fn multiple_transmitters_use_strongest_signal() {
        let g = grid();
        let model = PathLossModel::new(88.0, 3.0);
        let terrain = TerrainField::flat(&g);
        let tx1 = Transmitter::with_coverage_radius(0.0, 0.0, 12.0, -81.0, &model);
        let tx2 = Transmitter::with_coverage_radius(30.0, 30.0, 12.0, -81.0, &model);
        let both = ChannelCoverage::compute(&g, &[tx1, tx2], &model, &terrain, -81.0);
        let only1 = ChannelCoverage::compute(&g, &[tx1], &model, &terrain, -81.0);
        // Adding a transmitter can only shrink availability.
        assert!(both.availability().len() <= only1.availability().len());
        for cell in g.iter() {
            assert!(both.rssi_dbm(&g, cell) >= only1.rssi_dbm(&g, cell) - 1e-12);
        }
    }

    #[test]
    fn from_rssi_roundtrip() {
        let g = GridSpec::new(4, 4, 3.0);
        let rssi: Vec<f64> = (0..16).map(|i| -100.0 + f64::from(i)).collect();
        let cov = ChannelCoverage::from_rssi(&g, rssi.clone(), -90.0);
        // Cells 0..=10 have rssi ≤ −90.
        assert_eq!(cov.availability().len(), 11);
        assert_eq!(cov.rssi_dbm(&g, Cell::new(0, 0)), -100.0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_rssi_wrong_size_panics() {
        ChannelCoverage::from_rssi(&GridSpec::new(4, 4, 3.0), vec![0.0; 5], -81.0);
    }

    #[test]
    fn spectrum_map_available_channels() {
        let g = grid();
        let map = SpectrumMap::new(g, vec![one_channel(&g, 5.0), one_channel(&g, 25.0)], -81.0);
        let corner = Cell::new(0, 0);
        let available = map.available_channels(corner);
        for ch in map.channel_ids() {
            assert_eq!(available.contains(&ch), map.is_available(ch, corner));
        }
        assert_eq!(map.channel_count(), 2);
    }

    #[test]
    fn take_channels_subsets() {
        let g = grid();
        let map = SpectrumMap::new(
            g,
            vec![one_channel(&g, 5.0), one_channel(&g, 15.0), one_channel(&g, 25.0)],
            -81.0,
        );
        let sub = map.take_channels(2);
        assert_eq!(sub.channel_count(), 2);
        assert_eq!(sub.availability(ChannelId(1)).len(), map.availability(ChannelId(1)).len());
    }

    #[test]
    #[should_panic(expected = "invalid channel subset")]
    fn take_zero_channels_panics() {
        let g = grid();
        let map = SpectrumMap::new(g, vec![one_channel(&g, 5.0)], -81.0);
        map.take_channels(0);
    }
}
