//! Deterministic terrain shadowing.
//!
//! Real TV-channel coverage (the FCC maps the paper samples) is shaped by
//! terrain: hills and urban clutter carve holes into the ideal circular
//! footprint of a transmitter. We model this with a spatially correlated
//! shadowing field — value noise on a coarse lattice, bilinearly
//! interpolated per cell and scaled to a configurable standard deviation.
//!
//! The field is a pure function of its seed, which matters twice: the
//! generator and the BPM attacker must agree on the ground-truth quality
//! statistics, and experiments must be reproducible run-to-run.

use crate::geo::{Cell, GridSpec};

/// A spatially correlated shadowing field over a grid, in dB.
///
/// # Examples
///
/// ```
/// use lppa_spectrum::geo::{Cell, GridSpec};
/// use lppa_spectrum::terrain::TerrainField;
///
/// let grid = GridSpec::paper_default();
/// let field = TerrainField::generate(&grid, 8.0, 10, 0xfeed);
/// let a = field.shadowing_db(Cell::new(3, 4));
/// // Deterministic under the same seed.
/// let again = TerrainField::generate(&grid, 8.0, 10, 0xfeed);
/// assert_eq!(a, again.shadowing_db(Cell::new(3, 4)));
/// ```
#[derive(Clone, Debug)]
pub struct TerrainField {
    grid: GridSpec,
    values: Vec<f64>,
}

impl TerrainField {
    /// Generates a field over `grid` with standard deviation `sigma_db`
    /// and correlation length `lattice_step` cells, derived entirely from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `lattice_step` is zero or `sigma_db` is negative.
    pub fn generate(grid: &GridSpec, sigma_db: f64, lattice_step: u16, seed: u64) -> Self {
        assert!(lattice_step > 0, "lattice step must be positive");
        assert!(sigma_db >= 0.0, "sigma must be non-negative");

        // Lattice of i.i.d. standard-normal-ish knots via a hash-based
        // generator so each knot is a pure function of (seed, i, j).
        let knot = |i: usize, j: usize| -> f64 {
            let h = split_mix(seed ^ ((i as u64) << 32) ^ (j as u64));
            // Sum of 4 uniforms, centred and scaled: good-enough normal
            // approximation (Irwin–Hall) with variance 1.
            let mut acc = 0.0;
            let mut state = h;
            for _ in 0..4 {
                state = split_mix(state);
                acc += (state >> 11) as f64 / (1u64 << 53) as f64;
            }
            (acc - 2.0) * (12.0f64 / 4.0).sqrt()
        };

        let step = f64::from(lattice_step);
        let mut values = Vec::with_capacity(grid.cell_count());
        for cell in grid.iter() {
            let fi = f64::from(cell.row) / step;
            let fj = f64::from(cell.col) / step;
            let (i0, j0) = (fi.floor() as usize, fj.floor() as usize);
            let (ti, tj) = (fi - fi.floor(), fj - fj.floor());
            // Smoothstep for C1-continuous interpolation.
            let (si, sj) = (smooth(ti), smooth(tj));
            let v00 = knot(i0, j0);
            let v01 = knot(i0, j0 + 1);
            let v10 = knot(i0 + 1, j0);
            let v11 = knot(i0 + 1, j0 + 1);
            let top = v00 + (v01 - v00) * sj;
            let bot = v10 + (v11 - v10) * sj;
            values.push((top + (bot - top) * si) * sigma_db);
        }
        Self { grid: *grid, values }
    }

    /// A flat field (no shadowing), useful for tests and ideal-propagation
    /// baselines.
    pub fn flat(grid: &GridSpec) -> Self {
        Self { grid: *grid, values: vec![0.0; grid.cell_count()] }
    }

    /// Shadowing attenuation in dB at `cell` (positive values attenuate,
    /// negative values enhance).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is outside the grid.
    pub fn shadowing_db(&self, cell: Cell) -> f64 {
        self.values[self.grid.index_of(cell)]
    }

    /// The grid the field is defined over.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }
}

/// SplitMix64: the standard 64-bit avalanche mix, used to derive lattice
/// knots from the seed.
fn split_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn smooth(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridSpec {
        GridSpec::new(60, 60, 45.0)
    }

    #[test]
    fn deterministic_under_seed() {
        let g = grid();
        let a = TerrainField::generate(&g, 6.0, 8, 123);
        let b = TerrainField::generate(&g, 6.0, 8, 123);
        for cell in g.iter() {
            assert_eq!(a.shadowing_db(cell), b.shadowing_db(cell));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let g = grid();
        let a = TerrainField::generate(&g, 6.0, 8, 1);
        let b = TerrainField::generate(&g, 6.0, 8, 2);
        let diffs = g.iter().filter(|&c| a.shadowing_db(c) != b.shadowing_db(c)).count();
        assert!(diffs > g.cell_count() / 2);
    }

    #[test]
    fn roughly_zero_mean_and_requested_scale() {
        let g = GridSpec::new(100, 100, 75.0);
        let sigma = 8.0;
        let f = TerrainField::generate(&g, sigma, 10, 77);
        let n = g.cell_count() as f64;
        let mean: f64 = g.iter().map(|c| f.shadowing_db(c)).sum::<f64>() / n;
        let var: f64 = g.iter().map(|c| (f.shadowing_db(c) - mean).powi(2)).sum::<f64>() / n;
        assert!(mean.abs() < 3.0, "mean {mean} too far from 0");
        let sd = var.sqrt();
        // Interpolation smooths the knot variance down; accept a broad
        // band around the nominal sigma.
        assert!(sd > 0.25 * sigma && sd < 1.6 * sigma, "sd {sd} vs sigma {sigma}");
    }

    #[test]
    fn spatially_correlated() {
        // Neighbouring cells must be far more similar than distant ones.
        let g = grid();
        let f = TerrainField::generate(&g, 6.0, 10, 9);
        let mut near = 0.0;
        let mut far = 0.0;
        let mut count = 0;
        for r in 0..50u16 {
            for c in 0..50u16 {
                let v = f.shadowing_db(Cell::new(r, c));
                near += (v - f.shadowing_db(Cell::new(r, c + 1))).abs();
                far += (v - f.shadowing_db(Cell::new(r + 9, c + 9))).abs();
                count += 1;
            }
        }
        assert!(near / f64::from(count) < far / f64::from(count));
    }

    #[test]
    fn flat_field_is_zero() {
        let g = grid();
        let f = TerrainField::flat(&g);
        assert!(g.iter().all(|c| f.shadowing_db(c) == 0.0));
    }

    #[test]
    fn zero_sigma_is_zero_everywhere() {
        let g = grid();
        let f = TerrainField::generate(&g, 0.0, 8, 5);
        assert!(g.iter().all(|c| f.shadowing_db(c).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "lattice step")]
    fn zero_lattice_step_panics() {
        TerrainField::generate(&grid(), 6.0, 0, 1);
    }
}
