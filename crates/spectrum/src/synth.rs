//! Synthetic spectrum-map generation.
//!
//! The paper's experiments run on channel-coverage data extracted from
//! FCC Google-Earth maps via TVFool (129 TV channels around Los Angeles).
//! That extract is not redistributable, so this module synthesizes maps
//! with the same structure: each channel is backed by one or more PU
//! towers placed in and around the area, with protected footprints whose
//! size and raggedness follow the [`AreaProfile`]. Everything is a pure
//! function of the seed, so the attacker's ground-truth database and the
//! simulation agree by construction.

use lppa_rng::rngs::StdRng;
use lppa_rng::{Rng, SeedableRng};

use crate::area::AreaProfile;
use crate::coverage::{ChannelCoverage, SpectrumMap};
use crate::geo::GridSpec;
use crate::propagation::Transmitter;
use crate::terrain::TerrainField;

/// Availability threshold used in the paper: −81 dBm (after Senseless
/// \[16\], tighter than the FCC's −114 dBm rule).
pub const PAPER_THRESHOLD_DBM: f64 = -81.0;

/// Number of TV channels in the paper's Los Angeles dataset.
pub const PAPER_CHANNELS: usize = 129;

/// Builder for synthetic [`SpectrumMap`]s.
///
/// # Examples
///
/// ```
/// use lppa_spectrum::area::AreaProfile;
/// use lppa_spectrum::synth::SyntheticMapBuilder;
///
/// let map = SyntheticMapBuilder::new(AreaProfile::area4())
///     .channels(16)
///     .seed(7)
///     .build();
/// assert_eq!(map.channel_count(), 16);
/// ```
#[derive(Clone, Debug)]
pub struct SyntheticMapBuilder {
    profile: AreaProfile,
    grid: GridSpec,
    channels: usize,
    threshold_dbm: f64,
    seed: u64,
}

impl SyntheticMapBuilder {
    /// Starts a builder for `profile` with the paper's defaults
    /// (100×100 cells over 75 km, 129 channels, −81 dBm threshold, the
    /// profile's default seed).
    pub fn new(profile: AreaProfile) -> Self {
        let seed = profile.default_seed();
        Self {
            profile,
            grid: GridSpec::paper_default(),
            channels: PAPER_CHANNELS,
            threshold_dbm: PAPER_THRESHOLD_DBM,
            seed,
        }
    }

    /// Sets the grid geometry.
    pub fn grid(mut self, grid: GridSpec) -> Self {
        self.grid = grid;
        self
    }

    /// Sets the number of channels.
    pub fn channels(mut self, channels: usize) -> Self {
        self.channels = channels;
        self
    }

    /// Sets the availability threshold in dBm.
    pub fn threshold_dbm(mut self, threshold_dbm: f64) -> Self {
        self.threshold_dbm = threshold_dbm;
        self
    }

    /// Sets the generation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the map.
    ///
    /// # Panics
    ///
    /// Panics if the channel count is zero.
    pub fn build(&self) -> SpectrumMap {
        assert!(self.channels > 0, "need at least one channel");
        let mut rng = StdRng::seed_from_u64(self.seed);

        let terrain = TerrainField::generate(
            &self.grid,
            self.profile.shadowing_sigma_db,
            self.profile.shadowing_lattice_step,
            // Independent sub-seed for the terrain.
            self.seed ^ 0x7e11_aa5e_d00d_f00d,
        );

        let side = self.grid.side_km();
        let margin = side * self.profile.placement_margin;
        let (tx_lo, tx_hi) = self.profile.transmitters_per_channel;
        let (r_lo, r_hi) = self.profile.coverage_radius_km;

        let mut channels = Vec::with_capacity(self.channels);
        for _ in 0..self.channels {
            let n_tx = rng.gen_range(u32::from(tx_lo)..=u32::from(tx_hi));
            let towers: Vec<Transmitter> = (0..n_tx)
                .map(|_| {
                    let x = rng.gen_range(-margin..(side + margin));
                    let y = rng.gen_range(-margin..(side + margin));
                    let radius = rng.gen_range(r_lo..=r_hi);
                    Transmitter::with_coverage_radius(
                        x,
                        y,
                        radius,
                        self.threshold_dbm,
                        &self.profile.path_loss,
                    )
                })
                .collect();
            channels.push(ChannelCoverage::compute(
                &self.grid,
                &towers,
                &self.profile.path_loss,
                &terrain,
                self.threshold_dbm,
            ));
        }
        SpectrumMap::new(self.grid, channels, self.threshold_dbm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Cell;

    fn small_map(profile: AreaProfile, seed: u64) -> SpectrumMap {
        SyntheticMapBuilder::new(profile)
            .grid(GridSpec::new(50, 50, 75.0))
            .channels(30)
            .seed(seed)
            .build()
    }

    #[test]
    fn deterministic_under_seed() {
        let a = small_map(AreaProfile::area4(), 11);
        let b = small_map(AreaProfile::area4(), 11);
        for ch in a.channel_ids() {
            assert_eq!(a.availability(ch).len(), b.availability(ch).len());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = small_map(AreaProfile::area4(), 1);
        let b = small_map(AreaProfile::area4(), 2);
        let same = a.channel_ids().filter(|&ch| a.availability(ch) == b.availability(ch)).count();
        assert!(same < 5, "{same} identical channels out of 30");
    }

    #[test]
    fn availability_is_nontrivial_for_most_channels() {
        // Channels should neither cover nothing nor everything, otherwise
        // they carry no location information.
        let map = small_map(AreaProfile::area3(), 3);
        let total = map.grid().cell_count();
        let informative = map
            .channel_ids()
            .filter(|&ch| {
                let n = map.availability(ch).len();
                n > 0 && n < total
            })
            .count();
        assert!(informative >= 20, "only {informative}/30 informative channels");
    }

    #[test]
    fn rural_offers_more_available_channels_than_urban() {
        // The structural property behind Fig. 4(c): rural users see more
        // channels, giving the BCM attacker more constraints.
        let rural = small_map(AreaProfile::area4(), 5);
        let urban = small_map(AreaProfile::area2(), 5);
        let avg = |map: &SpectrumMap| -> f64 {
            let mut total = 0usize;
            let mut cells = 0usize;
            for cell in map.grid().iter() {
                total += map.available_channels(cell).len();
                cells += 1;
            }
            total as f64 / cells as f64
        };
        assert!(avg(&rural) > avg(&urban), "rural {} <= urban {}", avg(&rural), avg(&urban));
    }

    #[test]
    fn quality_known_only_inside_availability() {
        let map = small_map(AreaProfile::area1(), 9);
        for ch in map.channel_ids().take(5) {
            for cell in [Cell::new(0, 0), Cell::new(25, 25), Cell::new(49, 49)] {
                let q = map.quality(ch, cell);
                if map.is_available(ch, cell) {
                    assert!(q >= 0.0);
                } else {
                    assert_eq!(q, 0.0);
                }
            }
        }
    }

    #[test]
    fn paper_defaults() {
        let builder = SyntheticMapBuilder::new(AreaProfile::area4());
        assert_eq!(builder.channels, PAPER_CHANNELS);
        assert_eq!(builder.threshold_dbm, PAPER_THRESHOLD_DBM);
        assert_eq!(builder.grid.cell_count(), 10_000);
    }
}
