//! A deterministic simulation of an unreliable datagram link.
//!
//! Messages are sent at a tick and delivered at a later tick; in
//! between, the configured faults apply: the link may drop a message,
//! deliver it twice, corrupt a copy in flight, hold it for extra ticks,
//! or scramble the arrival order within a tick. All randomness comes
//! from one seeded [`StdRng`], so the full fault schedule — which
//! messages die, which arrive mangled, and when — replays exactly from
//! `(FaultConfig, seed)`.

use std::collections::BTreeMap;

use lppa_rng::rngs::StdRng;
use lppa_rng::seq::SliceRandom;
use lppa_rng::{Rng, SeedableRng};

use crate::fault::FaultConfig;

/// Counters describing what the link did to the traffic it carried.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Messages handed to [`SimTransport::send`].
    pub sent: u64,
    /// Copies handed back by [`SimTransport::deliver`].
    pub delivered: u64,
    /// Messages silently lost.
    pub dropped: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Copies mutated in flight.
    pub corrupted: u64,
    /// Copies held beyond the minimum one-tick latency.
    pub delayed: u64,
}

/// The simulated link. `T` is the wire message type; corruption is
/// modelled by a caller-supplied mutator because only the caller knows
/// the message structure.
#[derive(Clone, Debug)]
pub struct SimTransport<T> {
    config: FaultConfig,
    rng: StdRng,
    /// Arrival tick → queued copies, keyed for deterministic iteration.
    /// Each copy keeps its global send sequence so in-order delivery is
    /// well defined when `reorder` is off.
    inflight: BTreeMap<u64, Vec<(u64, T)>>,
    next_seq: u64,
    /// Link counters, updated by `send`/`deliver`.
    pub stats: TransportStats,
}

impl<T: Clone> SimTransport<T> {
    /// A link with the given fault profile, seeded for replay.
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        Self {
            config,
            rng: StdRng::seed_from_u64(seed),
            inflight: BTreeMap::new(),
            next_seq: 0,
            stats: TransportStats::default(),
        }
    }

    /// Sends `msg` at tick `now`. Surviving copies arrive at
    /// `now + 1 + extra` where `extra` is the sampled delay; corrupted
    /// copies are mutated through `corrupt` with the link's own RNG so
    /// damage is part of the replayable schedule.
    pub fn send<F>(&mut self, now: u64, msg: T, mut corrupt: F)
    where
        F: FnMut(&mut T, &mut StdRng),
    {
        self.stats.sent += 1;
        if self.rng.gen_bool(self.config.drop) {
            self.stats.dropped += 1;
            return;
        }
        let copies = if self.rng.gen_bool(self.config.duplicate) {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            let extra = if self.config.max_delay > 0 && self.rng.gen_bool(self.config.delay) {
                self.stats.delayed += 1;
                self.rng.gen_range(1..=self.config.max_delay)
            } else {
                0
            };
            let mut copy = msg.clone();
            if self.rng.gen_bool(self.config.corrupt) {
                self.stats.corrupted += 1;
                corrupt(&mut copy, &mut self.rng);
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            self.inflight.entry(now + 1 + extra).or_default().push((seq, copy));
        }
    }

    /// Returns every copy arriving at `tick`. In-order links deliver by
    /// send sequence; reordering links shuffle the tick's batch with the
    /// seeded RNG.
    pub fn deliver(&mut self, tick: u64) -> Vec<T> {
        let Some(mut batch) = self.inflight.remove(&tick) else {
            return Vec::new();
        };
        if self.config.reorder {
            batch.shuffle(&mut self.rng);
        } else {
            batch.sort_by_key(|(seq, _)| *seq);
        }
        self.stats.delivered += batch.len() as u64;
        batch.into_iter().map(|(_, msg)| msg).collect()
    }

    /// Copies still in flight (sent, not yet delivered or expired).
    pub fn pending(&self) -> usize {
        self.inflight.values().map(Vec::len).sum()
    }

    /// Drops everything still in flight — the link at the end of a
    /// phase, where stragglers can no longer matter.
    pub fn flush(&mut self) {
        let lost: usize = self.pending();
        self.stats.dropped += lost as u64;
        self.inflight.clear();
    }
}

/// A transport that moves opaque encoded frames — the abstraction both
/// the in-process [`SimTransport`] and the real socket link implement,
/// so the wire-format session logic is blind to which one carries it.
///
/// Ticks are the session clock: a frame sent at `now` becomes eligible
/// for delivery at `now + 1` at the earliest. Implementations own their
/// fault model (simulated chaos or genuine network weather) and report
/// it through [`FrameTransport::frame_stats`].
pub trait FrameTransport {
    /// Sends one encoded frame at tick `now`.
    fn send_frame(&mut self, now: u64, frame: Vec<u8>);

    /// Every frame arriving at tick `now`, in the link's delivery order.
    fn poll_frames(&mut self, now: u64) -> Vec<Vec<u8>>;

    /// Discards frames still in flight — end of phase, stragglers can no
    /// longer matter.
    fn flush_frames(&mut self);

    /// Link counters.
    fn frame_stats(&self) -> TransportStats;
}

/// The simulated link carrying raw frames: chaos corruption flips one
/// random byte via [`crate::chaos::corrupt_frame`].
impl FrameTransport for SimTransport<Vec<u8>> {
    fn send_frame(&mut self, now: u64, frame: Vec<u8>) {
        self.send(now, frame, |bytes, rng| crate::chaos::corrupt_frame(bytes, rng));
    }

    fn poll_frames(&mut self, now: u64) -> Vec<Vec<u8>> {
        self.deliver(now)
    }

    fn flush_frames(&mut self) {
        self.flush();
    }

    fn frame_stats(&self) -> TransportStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_corrupt(_: &mut u32, _: &mut StdRng) {}

    #[test]
    fn reliable_link_delivers_everything_next_tick_in_order() {
        let mut link = SimTransport::new(FaultConfig::none(), 1);
        for i in 0..10u32 {
            link.send(0, i, no_corrupt);
        }
        assert_eq!(link.deliver(1), (0..10).collect::<Vec<_>>());
        assert_eq!(link.stats.delivered, 10);
        assert_eq!(link.stats.dropped, 0);
        assert_eq!(link.pending(), 0);
    }

    #[test]
    fn chaotic_link_replays_identically_from_the_same_seed() {
        let run = |seed: u64| {
            let mut link = SimTransport::new(FaultConfig::chaotic(), seed);
            let mut got = Vec::new();
            for tick in 0..20u64 {
                if tick < 10 {
                    link.send(tick, tick as u32, |m, rng| *m ^= rng.gen_range(1..=u32::MAX));
                }
                got.extend(link.deliver(tick));
            }
            (got, link.stats)
        };
        let (a, stats_a) = run(7);
        let (b, stats_b) = run(7);
        assert_eq!(a, b);
        assert_eq!(stats_a, stats_b);
        let (c, _) = run(8);
        assert_ne!(a, c, "different seeds should (overwhelmingly) differ");
    }

    #[test]
    fn drop_rate_one_loses_everything() {
        let cfg = FaultConfig { drop: 1.0, ..FaultConfig::none() };
        let mut link = SimTransport::new(cfg, 3);
        for i in 0..5u32 {
            link.send(0, i, no_corrupt);
        }
        assert!(link.deliver(1).is_empty());
        assert_eq!(link.stats.dropped, 5);
    }

    #[test]
    fn duplicate_rate_one_doubles_everything() {
        let cfg = FaultConfig { duplicate: 1.0, ..FaultConfig::none() };
        let mut link = SimTransport::new(cfg, 4);
        link.send(0, 9u32, no_corrupt);
        assert_eq!(link.deliver(1), vec![9, 9]);
        assert_eq!(link.stats.duplicated, 1);
    }

    #[test]
    fn corruption_runs_the_mutator() {
        let cfg = FaultConfig { corrupt: 1.0, ..FaultConfig::none() };
        let mut link = SimTransport::new(cfg, 5);
        link.send(0, 1u32, |m, _| *m = 999);
        assert_eq!(link.deliver(1), vec![999]);
        assert_eq!(link.stats.corrupted, 1);
    }

    #[test]
    fn delayed_copies_arrive_later_and_flush_counts_stragglers() {
        let cfg = FaultConfig { delay: 1.0, max_delay: 4, ..FaultConfig::none() };
        let mut link = SimTransport::new(cfg, 6);
        for i in 0..8u32 {
            link.send(0, i, no_corrupt);
        }
        // Nothing arrives at tick 1 unless the sampled extra delay was 1.
        let mut seen = 0;
        for tick in 1..=5 {
            seen += link.deliver(tick).len();
        }
        assert_eq!(seen, 8, "all copies arrive within 1 + max_delay ticks");
        link.send(10, 42, no_corrupt);
        link.flush();
        assert_eq!(link.pending(), 0);
        assert_eq!(link.stats.dropped, 1, "flushed straggler counts as dropped");
    }
}
