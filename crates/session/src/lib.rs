//! # lppa-session — fault-tolerant auction rounds
//!
//! The core `lppa` crate proves the LPPA protocol *correct* on a
//! perfect network; this crate proves it *survivable* on a broken one.
//! It runs one auction round as a deterministic discrete-event
//! simulation:
//!
//! * [`transport::SimTransport`] — an unreliable datagram link with
//!   seeded fault injection: drop, duplicate, corrupt, delay, reorder
//!   ([`fault::FaultConfig`]). Every chaos schedule replays exactly from
//!   its seed.
//! * [`session::AuctionSession`] — the `Announce → Collect → Allocate →
//!   Charge → Settle` state machine. Collect runs per-bidder deadlines
//!   with retry/backoff and commits with whoever made the deadline
//!   (quorum-configurable); malformed or manipulated submissions are
//!   quarantined per bidder ([`quarantine::QuarantineReport`]) instead
//!   of failing the round.
//! * [`ttp_link::TtpLink`] — the periodically-online TTP of §V.C.2 as
//!   an availability schedule: charge requests queue while the TTP is
//!   away, drain in batches on reconnect, retry with backoff, and
//!   degrade to provisional allocation with deferred charging if the
//!   TTP misses its window.
//! * [`journal::Journal`] — an append-only decision log; an interrupted
//!   session resumes from its journal to the byte-identical outcome.
//! * [`chaos`] — the adversarial toolbox: in-flight corruption, ragged
//!   submissions, manipulated prices.
//!
//! Every knob has an `LPPA_CHAOS_*` environment override (see
//! [`fault::FaultConfig::with_env_overrides`] and
//! [`fault::chaos_seed`]); the CI chaos gate runs the same seeds twice
//! and diffs the journals.
//!
//! # Examples
//!
//! A round over a hostile network with a periodically-online TTP:
//!
//! ```
//! use lppa::protocol::build_submissions;
//! use lppa::zero_replace::ZeroReplacePolicy;
//! use lppa::{LppaConfig, Ttp};
//! use lppa_auction::bidder::Location;
//! use lppa_rng::rngs::StdRng;
//! use lppa_rng::SeedableRng;
//! use lppa_session::fault::FaultConfig;
//! use lppa_session::session::{AuctionSession, SessionConfig};
//! use lppa_session::ttp_link::TtpSchedule;
//!
//! # fn main() -> Result<(), lppa::LppaError> {
//! let mut rng = StdRng::seed_from_u64(7);
//! let ttp = Ttp::new(2, LppaConfig::default(), &mut rng)?;
//! let policy = ZeroReplacePolicy::never(ttp.config().bid_max());
//! let bidders = vec![
//!     (Location::new(10, 10), vec![40, 5]),
//!     (Location::new(90, 90), vec![25, 60]),
//! ];
//! let submissions = build_submissions(&bidders, &ttp, &policy, &mut rng)?;
//!
//! let config = SessionConfig {
//!     faults: FaultConfig::chaotic(),
//!     ttp_schedule: TtpSchedule { offline_until: 20, online: 2, offline: 5 },
//!     ..SessionConfig::default()
//! };
//! let outcome = AuctionSession::new(&ttp, config).run(&submissions, 42)?;
//! assert_eq!(outcome.fingerprint(),
//!            AuctionSession::new(&ttp, config).run(&submissions, 42)?.fingerprint());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod fault;
pub mod frame;
pub mod journal;
pub mod quarantine;
pub mod session;
pub mod transport;
pub mod ttp_link;
pub mod wire_round;

pub use fault::{chaos_seed, FaultConfig};
pub use frame::{
    decode_frame, decode_frame_exact, encode_frame, FrameError, FrameKind, FrameView,
    FRAME_HEADER_LEN, MAX_FRAME_PAYLOAD, WIRE_VERSION,
};
pub use journal::{Journal, JournalEntry, Phase};
pub use quarantine::{QuarantineReason, QuarantineReport};
pub use session::{
    derive_seeds, finish_round, AuctionSession, SessionConfig, SessionOutcome, SubmissionMsg,
};
pub use transport::{FrameTransport, SimTransport, TransportStats};
pub use ttp_link::{ChargeBackend, LocalTtp, TtpLink, TtpLinkConfig, TtpSchedule};
pub use wire_round::{
    encode_submission_frame, run_wire_round, BidderSendState, SubmissionAck, WireCollectEngine,
    WireCollectResult,
};
