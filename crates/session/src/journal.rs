//! The append-only session journal.
//!
//! Every decision a session takes is appended as a [`JournalEntry`]; an
//! interrupted session can be recovered from the journal prefix and
//! replayed to the identical outcome (the `CollectCommitted` entry
//! carries the seeds the later phases need). The journal doubles as the
//! determinism witness: two runs from the same seed must produce
//! byte-identical journals, which the chaos gate diffs in CI.

use std::fmt;

/// The five phases of one auction round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// The auctioneer announces the round; bidders learn the parameters.
    Announce,
    /// Submissions are collected over the unreliable link, per-bidder
    /// deadlines and retries apply.
    Collect,
    /// The greedy allocation runs over the accepted subset.
    Allocate,
    /// Winning sealed bids are charged through the periodically-online
    /// TTP.
    Charge,
    /// The outcome is finalized and fingerprinted.
    Settle,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::Announce => "announce",
            Self::Collect => "collect",
            Self::Allocate => "allocate",
            Self::Charge => "charge",
            Self::Settle => "settle",
        };
        f.write_str(name)
    }
}

/// One recorded session event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalEntry {
    /// The session moved into `phase` at `tick`.
    PhaseEntered {
        /// The phase entered.
        phase: Phase,
        /// Session tick.
        tick: u64,
    },
    /// An intact, valid submission was accepted.
    SubmissionAccepted {
        /// Original submission index.
        bidder: usize,
        /// Arrival tick.
        tick: u64,
        /// Which send attempt got through (1-based).
        attempt: u32,
    },
    /// A delivery for an already-settled bidder was ignored.
    DuplicateIgnored {
        /// Original submission index.
        bidder: usize,
        /// Arrival tick.
        tick: u64,
    },
    /// A delivery failed its transport checksum and was discarded.
    CorruptDiscarded {
        /// Original submission index.
        bidder: usize,
        /// Arrival tick.
        tick: u64,
    },
    /// A wire frame failed to decode (bad header, truncated or
    /// structurally hostile payload) and was discarded before it could
    /// be attributed to any bidder.
    FrameRejected {
        /// Arrival tick.
        tick: u64,
    },
    /// A bidder was quarantined; `reason` is the rendered
    /// [`crate::quarantine::QuarantineReason`].
    Quarantined {
        /// Original submission index.
        bidder: usize,
        /// Rendered reason.
        reason: String,
    },
    /// The collect phase committed: the round is now fully determined.
    /// Carries everything the later phases need, so recovery can resume
    /// from this entry alone.
    CollectCommitted {
        /// Accepted original indices, in order.
        accepted: Vec<usize>,
        /// Seed for the allocation RNG.
        auction_seed: u64,
        /// Seed for the TTP-link failure RNG.
        ttp_seed: u64,
        /// Commit tick.
        tick: u64,
    },
    /// The allocation granted `channel` to `bidder` (original index).
    GrantIssued {
        /// Original submission index.
        bidder: usize,
        /// Channel index.
        channel: usize,
    },
    /// The TTP decided one charge.
    ChargeDecided {
        /// Original submission index.
        bidder: usize,
        /// Channel index.
        channel: usize,
        /// Rendered verdict (`valid:<price>`, `invalid-zero`, or the
        /// error).
        verdict: String,
    },
    /// A TTP batch attempt failed; the link backs off until `retry_at`.
    TtpBatchFailed {
        /// Failure tick.
        tick: u64,
        /// Earliest tick of the next attempt.
        retry_at: u64,
    },
    /// The charge deadline passed with requests still queued; the listed
    /// grants degrade to provisional allocations with deferred charging.
    ChargesDeferred {
        /// Original indices of the provisionally-granted bidders.
        bidders: Vec<usize>,
        /// Deadline tick.
        tick: u64,
    },
    /// The round settled at `tick`.
    Settled {
        /// Settle tick.
        tick: u64,
    },
}

/// An append-only log of [`JournalEntry`] values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Journal {
    entries: Vec<JournalEntry>,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one entry.
    pub fn append(&mut self, entry: JournalEntry) {
        self.entries.push(entry);
    }

    /// The recorded entries, oldest first.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The committed collect decision, if the session got that far:
    /// `(accepted, auction_seed, ttp_seed, tick)`.
    pub fn collect_snapshot(&self) -> Option<(&[usize], u64, u64, u64)> {
        self.entries.iter().find_map(|e| match e {
            JournalEntry::CollectCommitted { accepted, auction_seed, ttp_seed, tick } => {
                Some((accepted.as_slice(), *auction_seed, *ttp_seed, *tick))
            }
            _ => None,
        })
    }

    /// The journal truncated to everything up to and including the
    /// `CollectCommitted` entry — the prefix recovery needs. `None` if
    /// collect never committed (nothing recoverable; rerun the round).
    pub fn prefix_through_collect(&self) -> Option<Journal> {
        let end =
            self.entries.iter().position(|e| matches!(e, JournalEntry::CollectCommitted { .. }))?;
        Some(Journal { entries: self.entries[..=end].to_vec() })
    }

    /// Quarantine events recorded so far, as `(bidder, rendered
    /// reason)`.
    pub fn quarantine_events(&self) -> Vec<(usize, &str)> {
        self.entries
            .iter()
            .filter_map(|e| match e {
                JournalEntry::Quarantined { bidder, reason } => Some((*bidder, reason.as_str())),
                _ => None,
            })
            .collect()
    }

    /// A stable digest over the rendered entries. Two sessions with the
    /// same fingerprint took the same decisions in the same order.
    pub fn fingerprint(&self) -> u64 {
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        for entry in &self.entries {
            for b in format!("{entry:?}").bytes() {
                acc ^= u64::from(b);
                acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
            }
            acc = acc.rotate_left(1);
        }
        acc
    }
}

/// `Display` renders one entry per line — the format the CI chaos gate
/// diffs between runs.
impl fmt::Display for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for entry in &self.entries {
            writeln!(f, "{entry:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed() -> Journal {
        let mut j = Journal::new();
        j.append(JournalEntry::PhaseEntered { phase: Phase::Collect, tick: 0 });
        j.append(JournalEntry::SubmissionAccepted { bidder: 0, tick: 1, attempt: 1 });
        j.append(JournalEntry::Quarantined { bidder: 1, reason: "ragged".into() });
        j.append(JournalEntry::CollectCommitted {
            accepted: vec![0],
            auction_seed: 11,
            ttp_seed: 22,
            tick: 4,
        });
        j.append(JournalEntry::GrantIssued { bidder: 0, channel: 0 });
        j
    }

    #[test]
    fn snapshot_reads_back_the_commit() {
        let j = committed();
        let (accepted, aseed, tseed, tick) = j.collect_snapshot().unwrap();
        assert_eq!(accepted, [0]);
        assert_eq!((aseed, tseed, tick), (11, 22, 4));
    }

    #[test]
    fn prefix_stops_at_the_commit() {
        let j = committed();
        let prefix = j.prefix_through_collect().unwrap();
        assert_eq!(prefix.len(), 4);
        assert!(matches!(prefix.entries().last(), Some(JournalEntry::CollectCommitted { .. })));
        assert!(Journal::new().prefix_through_collect().is_none());
    }

    #[test]
    fn quarantine_events_are_extracted() {
        assert_eq!(committed().quarantine_events(), vec![(1, "ragged")]);
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let a = committed();
        let mut b = Journal::new();
        for entry in a.entries().iter().rev() {
            b.append(entry.clone());
        }
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), committed().fingerprint());
    }
}
