//! The wire-framed collect engine and the simulated wire round.
//!
//! The typed [`crate::session::AuctionSession::run`] moves
//! [`crate::session::SubmissionMsg`] structs through the chaos link —
//! faithful to the protocol, but nothing like a network. This module
//! runs the same round over *encoded bytes*: bidders serialize their
//! submissions with [`lppa::wire`], wrap them in [`crate::frame`]
//! frames, and push them through any [`FrameTransport`]. The
//! auctioneer's side is [`WireCollectEngine`] — decode, checksum-check,
//! validate, quarantine — and it is deliberately transport-blind: the
//! in-process simulation ([`run_wire_round`]) and the real socket round
//! in `lppa-net` feed it the same bytes in the same order, which is the
//! whole sim-vs-socket equivalence argument. Whatever the engine
//! decides is journalled exactly like the typed path, so the journal
//! replay and resume machinery applies unchanged.

use lppa::protocol::{validate_submission_with, SuSubmission};
use lppa::ttp::Ttp;
use lppa::wire::{decode_submission, encode_submission};
use lppa::{LppaConfig, LppaError};

use crate::frame::{decode_frame_exact, encode_frame, FrameKind};
use crate::journal::{Journal, JournalEntry, Phase};
use crate::quarantine::{QuarantineReason, QuarantineReport};
use crate::session::{derive_seeds, finish_round, SessionConfig, SessionOutcome};
use crate::transport::{FrameTransport, SimTransport};
use crate::ttp_link::LocalTtp;

/// One bidder's retry/backoff bookkeeping during a wire-framed collect.
///
/// This is the *sender's* state machine, split out of the collect loop
/// so a real bidder process can run it against its own clock: ask
/// [`Self::should_send`] once per tick, transmit when it says so, and
/// [`Self::mark_done`] when the auctioneer acknowledges (accept *or*
/// reject — both end the resend loop). The schedule it produces is
/// byte-for-byte the one the typed collect loop runs inline.
#[derive(Clone, Debug, Default)]
pub struct BidderSendState {
    next_send: u64,
    attempts: u32,
    done: bool,
}

impl BidderSendState {
    /// A bidder that has not sent yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether this bidder transmits at `tick`. If so, records the
    /// attempt, schedules the exponential-backoff resend, and returns
    /// the 1-based attempt number to stamp on the wire.
    pub fn should_send(&mut self, tick: u64, config: &SessionConfig) -> Option<u32> {
        if self.done || tick < self.next_send || self.attempts > config.max_retries {
            return None;
        }
        self.attempts += 1;
        let backoff = config.retry_backoff.max(1) << u64::from(self.attempts - 1).min(16);
        self.next_send = tick + backoff;
        Some(self.attempts)
    }

    /// The auctioneer settled this bidder; stop resending.
    pub fn mark_done(&mut self) {
        self.done = true;
    }

    /// Whether the auctioneer has settled this bidder.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Send attempts made so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }
}

/// The verdict [`WireCollectEngine::ingest`] asks the driver to relay
/// back to a bidder. Both verdicts end that bidder's resend loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubmissionAck {
    /// Original submission index.
    pub bidder: usize,
    /// `true` for accepted, `false` for structurally rejected.
    pub accepted: bool,
}

/// What a closed wire collect hands to [`finish_round`].
#[derive(Debug)]
pub struct WireCollectResult {
    /// Accepted original indices, ascending.
    pub accepted: Vec<usize>,
    /// The accepted submissions, parallel to `accepted`.
    pub accepted_submissions: Vec<SuSubmission>,
    /// Per-bidder exclusions.
    pub quarantine: QuarantineReport,
}

/// The auctioneer's collect phase over encoded frames.
///
/// Feed it every arriving frame in delivery order via
/// [`Self::ingest`]; it decodes, checksums, validates and journals with
/// exactly the typed collect loop's per-bidder semantics, plus one new
/// outcome: bytes that don't decode to a submission at all are
/// journalled as [`JournalEntry::FrameRejected`] — a frame so damaged
/// it can't even be attributed to a bidder.
#[derive(Debug)]
pub struct WireCollectEngine {
    n: usize,
    n_channels: usize,
    config: LppaConfig,
    done: Vec<bool>,
    corrupt_copies: Vec<u32>,
    accepted: Vec<usize>,
    submissions: Vec<Option<SuSubmission>>,
    quarantine: QuarantineReport,
}

impl WireCollectEngine {
    /// An engine for a round of `n_bidders` bidders over `n_channels`
    /// channels under the announced public `config` — everything
    /// validation needs, no TTP keys required.
    pub fn new(n_bidders: usize, n_channels: usize, config: LppaConfig) -> Self {
        Self {
            n: n_bidders,
            n_channels,
            config,
            done: vec![false; n_bidders],
            corrupt_copies: vec![0; n_bidders],
            accepted: Vec::new(),
            submissions: vec![None; n_bidders],
            quarantine: QuarantineReport::new(),
        }
    }

    /// Processes one delivered frame at `tick`. Returns the ack to
    /// relay when the frame settles a bidder (accepted or rejected);
    /// `None` for everything that a retransmission may still cover
    /// (corrupt copies, undecodable frames) or that needs no answer
    /// (duplicates, unknown bidders).
    pub fn ingest(
        &mut self,
        tick: u64,
        bytes: &[u8],
        journal: &mut Journal,
    ) -> Option<SubmissionAck> {
        let Ok(frame) = decode_frame_exact(bytes) else {
            journal.append(JournalEntry::FrameRejected { tick });
            return None;
        };
        if frame.kind != FrameKind::Submission {
            journal.append(JournalEntry::FrameRejected { tick });
            return None;
        }
        let Ok(view) = decode_submission(frame.payload) else {
            journal.append(JournalEntry::FrameRejected { tick });
            return None;
        };
        let i = view.bidder();
        if i >= self.n {
            // A corrupted header naming a nonexistent bidder: nothing to
            // quarantine, nothing to poison.
            return None;
        }
        if self.done[i] {
            journal.append(JournalEntry::DuplicateIgnored { bidder: i, tick });
            return None;
        }
        if view.computed_checksum() != view.declared_checksum() {
            self.corrupt_copies[i] += 1;
            journal.append(JournalEntry::CorruptDiscarded { bidder: i, tick });
            return None;
        }
        let (submission, attempt) = match view.materialize() {
            Ok((submission, attempt, _)) => (submission, attempt),
            Err(cause) => return Some(self.reject(i, cause, journal)),
        };
        match validate_submission_with(&submission, self.n_channels, &self.config) {
            Ok(()) => {
                self.done[i] = true;
                self.accepted.push(i);
                journal.append(JournalEntry::SubmissionAccepted { bidder: i, tick, attempt });
                self.submissions[i] = Some(submission);
                Some(SubmissionAck { bidder: i, accepted: true })
            }
            Err(cause) => Some(self.reject(i, cause, journal)),
        }
    }

    /// Quarantines bidder `i`: a structurally-bad submission that passed
    /// the checksum is bad at the *sender* — retries would fail
    /// identically.
    fn reject(&mut self, i: usize, cause: LppaError, journal: &mut Journal) -> SubmissionAck {
        self.done[i] = true;
        let reason = QuarantineReason::Rejected { cause };
        journal.append(JournalEntry::Quarantined { bidder: i, reason: reason.to_string() });
        self.quarantine.insert(i, reason);
        SubmissionAck { bidder: i, accepted: false }
    }

    /// Closes the phase at the deadline: quarantines every unsettled
    /// bidder as `MissedDeadline` (with the send `attempts` counted by
    /// the driver's [`BidderSendState`] mirrors) and sorts the accepted
    /// set.
    pub fn close(mut self, attempts: &[u32], journal: &mut Journal) -> WireCollectResult {
        for i in 0..self.n {
            if !self.done[i] {
                let reason = QuarantineReason::MissedDeadline {
                    attempts: attempts.get(i).copied().unwrap_or(0),
                    corrupt_copies: self.corrupt_copies[i],
                };
                journal.append(JournalEntry::Quarantined { bidder: i, reason: reason.to_string() });
                self.quarantine.insert(i, reason);
            }
        }
        self.accepted.sort_unstable();
        let accepted_submissions = self
            .accepted
            .iter()
            .map(|&i| self.submissions[i].take().expect("accepted bidders stored a submission"))
            .collect();
        WireCollectResult {
            accepted: self.accepted,
            accepted_submissions,
            quarantine: self.quarantine,
        }
    }
}

/// Encodes one submission as a complete frame: the [`lppa::wire`]
/// payload wrapped in a [`FrameKind::Submission`] header, seq stamped
/// with the attempt number.
pub fn encode_submission_frame(bidder: usize, attempt: u32, sub: &SuSubmission) -> Vec<u8> {
    let mut payload = Vec::with_capacity(sub.wire_len() + 64);
    encode_submission(bidder, attempt, sub.checksum(), sub, &mut payload);
    encode_frame(FrameKind::Submission, u64::from(attempt), &payload)
}

/// Runs one complete round over encoded frames through the simulated
/// chaos link — the in-process reference the socket round must match
/// fingerprint-for-fingerprint under the same seeds.
///
/// # Errors
///
/// [`LppaError::QuorumNotReached`] below the configured quorum;
/// [`LppaError::Internal`] for table inconsistencies.
pub fn run_wire_round(
    ttp: &Ttp,
    config: SessionConfig,
    submissions: &[SuSubmission],
    seed: u64,
) -> Result<SessionOutcome, LppaError> {
    let (transport_seed, auction_seed, ttp_seed) = derive_seeds(seed);
    let n = submissions.len();
    let mut journal = Journal::new();
    journal.append(JournalEntry::PhaseEntered { phase: Phase::Announce, tick: 0 });
    journal.append(JournalEntry::PhaseEntered { phase: Phase::Collect, tick: 0 });

    let mut link: SimTransport<Vec<u8>> = SimTransport::new(config.faults, transport_seed);
    let mut senders = vec![BidderSendState::new(); n];
    let mut engine = WireCollectEngine::new(n, ttp.n_channels(), *ttp.config());

    for tick in 0..=config.collect_deadline {
        for (i, sub) in submissions.iter().enumerate() {
            if let Some(attempt) = senders[i].should_send(tick, &config) {
                link.send_frame(tick, encode_submission_frame(i, attempt, sub));
            }
        }
        for bytes in link.poll_frames(tick) {
            if let Some(ack) = engine.ingest(tick, &bytes, &mut journal) {
                senders[ack.bidder].mark_done();
            }
        }
    }
    link.flush_frames();
    let attempts: Vec<u32> = senders.iter().map(BidderSendState::attempts).collect();
    let collected = engine.close(&attempts, &mut journal);

    let required = config.min_accepted.max(1);
    if collected.accepted.len() < required {
        return Err(LppaError::QuorumNotReached { accepted: collected.accepted.len(), required });
    }
    journal.append(JournalEntry::CollectCommitted {
        accepted: collected.accepted.clone(),
        auction_seed,
        ttp_seed,
        tick: config.collect_deadline,
    });
    finish_round(
        &config,
        LocalTtp(ttp),
        n,
        collected.accepted,
        &collected.accepted_submissions,
        auction_seed,
        ttp_seed,
        config.collect_deadline,
        journal,
        collected.quarantine,
        link.frame_stats(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::session::AuctionSession;
    use lppa::protocol::build_submissions;
    use lppa::zero_replace::ZeroReplacePolicy;
    use lppa_auction::bidder::Location;
    use lppa_rng::rngs::StdRng;
    use lppa_rng::SeedableRng;

    fn setup(n_bidders: usize) -> (Ttp, Vec<SuSubmission>) {
        let mut rng = StdRng::seed_from_u64(99);
        let ttp = Ttp::new(2, LppaConfig::default(), &mut rng).unwrap();
        let policy = ZeroReplacePolicy::never(ttp.config().bid_max());
        let bidders: Vec<_> = (0..n_bidders)
            .map(|i| {
                let base = 10 + 13 * i as u32;
                (Location::new(base, base), vec![10 + i as u32, 30 - i as u32])
            })
            .collect();
        let submissions = build_submissions(&bidders, &ttp, &policy, &mut rng).unwrap();
        (ttp, submissions)
    }

    #[test]
    fn reliable_wire_round_matches_typed_round() {
        let (ttp, submissions) = setup(4);
        let config = SessionConfig::default();
        let typed = AuctionSession::new(&ttp, config).run(&submissions, 7).unwrap();
        let wired = run_wire_round(&ttp, config, &submissions, 7).unwrap();
        assert_eq!(typed.fingerprint(), wired.fingerprint());
        assert_eq!(typed.accepted, wired.accepted);
        assert_eq!(typed.outcome.revenue(), wired.outcome.revenue());
    }

    #[test]
    fn chaotic_wire_round_replays_identically() {
        let (ttp, submissions) = setup(6);
        let config = SessionConfig {
            faults: FaultConfig::chaotic(),
            min_accepted: 1,
            ..SessionConfig::default()
        };
        let a = run_wire_round(&ttp, config, &submissions, 1234).unwrap();
        let b = run_wire_round(&ttp, config, &submissions, 1234).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.journal.fingerprint(), b.journal.fingerprint());
        let c = run_wire_round(&ttp, config, &submissions, 1235).unwrap();
        assert_ne!(a.journal.fingerprint(), c.journal.fingerprint());
    }

    #[test]
    fn wire_journal_resumes_to_identical_fingerprint() {
        let (ttp, submissions) = setup(5);
        let config = SessionConfig {
            faults: FaultConfig::chaotic(),
            min_accepted: 1,
            ..SessionConfig::default()
        };
        let full = run_wire_round(&ttp, config, &submissions, 42).unwrap();
        let resumed =
            AuctionSession::new(&ttp, config).resume(&submissions, &full.journal).unwrap();
        assert_eq!(full.fingerprint(), resumed.fingerprint());
    }

    #[test]
    fn send_state_mirrors_the_typed_schedule() {
        let config = SessionConfig { retry_backoff: 2, max_retries: 2, ..SessionConfig::default() };
        let mut state = BidderSendState::new();
        let mut sent = Vec::new();
        for tick in 0..=16 {
            if let Some(attempt) = state.should_send(tick, &config) {
                sent.push((tick, attempt));
            }
        }
        // Backoff: 2 << 0, 2 << 1, 2 << 2 → sends at 0, 2, 6, then the
        // attempt cap (max_retries + 1 total sends) stops the loop.
        assert_eq!(sent, vec![(0, 1), (2, 2), (6, 3)]);
        let mut done = BidderSendState::new();
        assert!(done.should_send(0, &config).is_some());
        done.mark_done();
        assert!(done.should_send(10, &config).is_none());
        assert_eq!(done.attempts(), 1);
    }

    #[test]
    fn engine_rejects_garbage_and_quarantines_bad_senders() {
        let (ttp, submissions) = setup(2);
        let mut journal = Journal::new();
        let mut engine = WireCollectEngine::new(2, ttp.n_channels(), *ttp.config());

        // Pure garbage: frame-rejected, no ack.
        assert!(engine.ingest(1, &[0xFF; 40], &mut journal).is_none());
        // A non-submission frame: frame-rejected.
        let stray = encode_frame(FrameKind::TickStart, 0, &crate::frame::encode_tick_start(1));
        assert!(engine.ingest(1, &stray, &mut journal).is_none());
        // A checksum mismatch: corrupt-discarded, no ack.
        let mut bad = encode_submission_frame(0, 1, &submissions[0]);
        let len = bad.len();
        bad[len - 1] ^= 0x01;
        assert!(engine.ingest(1, &bad, &mut journal).is_none());
        // The honest copy still lands.
        let good = encode_submission_frame(0, 2, &submissions[0]);
        assert_eq!(
            engine.ingest(2, &good, &mut journal),
            Some(SubmissionAck { bidder: 0, accepted: true })
        );
        // And a duplicate is ignored without an ack.
        let dup = encode_submission_frame(0, 3, &submissions[0]);
        assert!(engine.ingest(3, &dup, &mut journal).is_none());

        let result = engine.close(&[2, 0], &mut journal);
        assert_eq!(result.accepted, vec![0]);
        assert_eq!(result.accepted_submissions.len(), 1);
        assert!(result.quarantine.contains(1), "silent bidder quarantined at close");
        let rendered = journal.to_string();
        assert!(rendered.contains("FrameRejected"), "{rendered}");
        assert!(rendered.contains("CorruptDiscarded"), "{rendered}");
        assert!(rendered.contains("DuplicateIgnored"), "{rendered}");
    }
}
