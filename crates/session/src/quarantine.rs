//! Per-bidder quarantine: who was excluded from the round, and why.
//!
//! A fault-tolerant session never aborts on one bidder's misbehaviour or
//! bad luck — it sidelines that bidder and finishes the round with the
//! rest. The [`QuarantineReport`] is the auditable record of every such
//! decision, keyed by original submission index.

use std::collections::BTreeMap;
use std::fmt;

use lppa::LppaError;

/// Why one bidder was excluded from the round.
#[derive(Debug)]
pub enum QuarantineReason {
    /// No intact submission arrived before the collect deadline.
    MissedDeadline {
        /// Send attempts the bidder made.
        attempts: u32,
        /// Deliveries discarded as corrupt (checksum mismatch).
        corrupt_copies: u32,
    },
    /// The submission arrived intact but failed structural validation —
    /// ragged channel counts, truncated prefix families.
    Rejected {
        /// The validation failure.
        cause: LppaError,
    },
    /// The TTP refused to charge the bidder's winning grant —
    /// authentication failure or a manipulated price.
    ChargeFailed {
        /// The TTP's verdict.
        cause: LppaError,
    },
    /// A reason recovered from a journal: the structured cause was not
    /// persisted, only its rendering. Displays exactly as the original
    /// did, so replayed sessions fingerprint identically.
    Recovered {
        /// The original reason's `Display` output.
        detail: String,
    },
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissedDeadline { attempts, corrupt_copies } => write!(
                f,
                "missed collect deadline after {attempts} attempts ({corrupt_copies} corrupt copies discarded)"
            ),
            Self::Rejected { cause } => write!(f, "submission rejected: {cause}"),
            Self::ChargeFailed { cause } => write!(f, "charge refused: {cause}"),
            Self::Recovered { detail } => f.write_str(detail),
        }
    }
}

/// The session's record of excluded bidders, keyed by original
/// submission index. Iteration order is index order (BTreeMap), so
/// reports render and fingerprint deterministically.
#[derive(Debug, Default)]
pub struct QuarantineReport {
    events: BTreeMap<usize, QuarantineReason>,
}

impl QuarantineReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `reason` for `bidder`. A bidder is quarantined at most
    /// once; the first reason wins (later stages never see a quarantined
    /// bidder again, so a second insert indicates a session bug and is
    /// ignored rather than silently overwritten).
    pub fn insert(&mut self, bidder: usize, reason: QuarantineReason) {
        self.events.entry(bidder).or_insert(reason);
    }

    /// The reason `bidder` was quarantined, if they were.
    pub fn get(&self, bidder: usize) -> Option<&QuarantineReason> {
        self.events.get(&bidder)
    }

    /// Whether `bidder` is quarantined.
    pub fn contains(&self, bidder: usize) -> bool {
        self.events.contains_key(&bidder)
    }

    /// Quarantined bidders in index order.
    pub fn bidders(&self) -> Vec<usize> {
        self.events.keys().copied().collect()
    }

    /// Number of quarantined bidders.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nobody was quarantined.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates `(bidder, reason)` in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &QuarantineReason)> {
        self.events.iter().map(|(i, r)| (*i, r))
    }

    /// A stable digest over `(bidder, rendered reason)` pairs. Uses the
    /// `Display` rendering, not the enum structure, so a report rebuilt
    /// from a journal ([`QuarantineReason::Recovered`]) fingerprints
    /// identically to the original.
    pub fn fingerprint(&self) -> u64 {
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                acc ^= u64::from(b);
                acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for (bidder, reason) in &self.events {
            eat(&bidder.to_le_bytes());
            eat(reason.to_string().as_bytes());
        }
        acc
    }
}

impl fmt::Display for QuarantineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return f.write_str("quarantine: empty");
        }
        writeln!(f, "quarantine ({} bidders):", self.events.len())?;
        for (bidder, reason) in &self.events {
            writeln!(f, "  bidder {bidder}: {reason}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_reason_wins() {
        let mut report = QuarantineReport::new();
        report.insert(3, QuarantineReason::MissedDeadline { attempts: 2, corrupt_copies: 1 });
        report.insert(3, QuarantineReason::Rejected { cause: LppaError::ChargeManipulated });
        assert_eq!(report.len(), 1);
        assert!(matches!(report.get(3), Some(QuarantineReason::MissedDeadline { .. })));
    }

    #[test]
    fn recovered_reason_fingerprints_like_the_original() {
        let mut original = QuarantineReport::new();
        original.insert(1, QuarantineReason::MissedDeadline { attempts: 4, corrupt_copies: 0 });
        original.insert(5, QuarantineReason::ChargeFailed { cause: LppaError::ChargeManipulated });

        let mut recovered = QuarantineReport::new();
        for (bidder, reason) in original.iter() {
            recovered.insert(bidder, QuarantineReason::Recovered { detail: reason.to_string() });
        }
        assert_eq!(original.fingerprint(), recovered.fingerprint());
    }

    #[test]
    fn fingerprint_is_sensitive_to_membership_and_reason() {
        let mut a = QuarantineReport::new();
        a.insert(0, QuarantineReason::MissedDeadline { attempts: 1, corrupt_copies: 0 });
        let mut b = QuarantineReport::new();
        b.insert(0, QuarantineReason::MissedDeadline { attempts: 2, corrupt_copies: 0 });
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), QuarantineReport::new().fingerprint());
    }

    #[test]
    fn display_lists_bidders_in_index_order() {
        let mut report = QuarantineReport::new();
        report.insert(9, QuarantineReason::Recovered { detail: "late".into() });
        report.insert(2, QuarantineReason::Recovered { detail: "ragged".into() });
        let text = report.to_string();
        let pos2 = text.find("bidder 2").unwrap();
        let pos9 = text.find("bidder 9").unwrap();
        assert!(pos2 < pos9, "{text}");
    }
}
