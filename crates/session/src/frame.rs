//! The length-prefixed binary frame layer every LPPA transport speaks.
//!
//! A frame is a fixed 16-byte header followed by a payload:
//!
//! ```text
//! offset  size  field
//! 0       2     magic   "LP"
//! 2       1     version (currently 1; unknown versions are rejected)
//! 3       1     kind    (FrameKind discriminant; unknown kinds rejected)
//! 4       8     seq     u64 LE — sender sequence number (dedup/resend)
//! 12      4     len     u32 LE — payload length in bytes
//! 16      len   payload
//! ```
//!
//! The decoder is written for hostile peers: every malformed input —
//! short buffer, wrong magic, unknown version or kind, zero-length or
//! oversized payload, trailing garbage — maps to a typed [`FrameError`];
//! no input can panic it or make it allocate. Payload length is checked
//! against [`MAX_FRAME_PAYLOAD`] *before* any buffer sizing decision, so
//! a hostile length field cannot drive allocation.

use std::error::Error;
use std::fmt;

/// The two magic bytes every frame starts with.
pub const FRAME_MAGIC: [u8; 2] = *b"LP";

/// The only wire version this build speaks. The policy is strict
/// reject-on-unknown: a higher version is a different protocol, not a
/// negotiation opportunity.
pub const WIRE_VERSION: u8 = 1;

/// Fixed header size in bytes.
pub const FRAME_HEADER_LEN: usize = 16;

/// Hard cap on payload size. The largest legitimate payload — a
/// submission over [`lppa::wire::MAX_WIRE_CHANNELS`] channels with full
/// tag groups — stays far below this; anything larger is an attack or a
/// desynchronized stream.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;

/// What a frame carries. Discriminants are the wire `kind` byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Peer introduction: role + id, first frame on every connection.
    Hello = 1,
    /// Round announcement: seed, bidder count, channel count.
    Announce = 2,
    /// Lockstep clock: the auctioneer opens a collect tick.
    TickStart = 3,
    /// A bidder's submission (the [`lppa::wire`] submission encoding).
    Submission = 4,
    /// Lockstep barrier: a bidder finished acting for a tick.
    TickDone = 5,
    /// The auctioneer's per-submission verdict.
    SubAck = 6,
    /// The collect phase closed at the announced deadline.
    CollectClosed = 7,
    /// A sealed winning bid sent to the TTP for opening.
    ChargeRequest = 8,
    /// The TTP's charge verdict.
    ChargeVerdict = 9,
    /// The round settled; payload carries the outcome fingerprint.
    Settled = 10,
    /// Orderly teardown.
    Bye = 11,
}

impl FrameKind {
    fn from_byte(byte: u8) -> Option<Self> {
        match byte {
            1 => Some(Self::Hello),
            2 => Some(Self::Announce),
            3 => Some(Self::TickStart),
            4 => Some(Self::Submission),
            5 => Some(Self::TickDone),
            6 => Some(Self::SubAck),
            7 => Some(Self::CollectClosed),
            8 => Some(Self::ChargeRequest),
            9 => Some(Self::ChargeVerdict),
            10 => Some(Self::Settled),
            11 => Some(Self::Bye),
            _ => None,
        }
    }
}

/// Why a buffer is not a valid frame (or control payload).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// The first two bytes are not [`FRAME_MAGIC`].
    BadMagic,
    /// The version byte is not [`WIRE_VERSION`].
    UnknownVersion {
        /// The version byte received.
        version: u8,
    },
    /// The kind byte maps to no [`FrameKind`].
    UnknownKind {
        /// The kind byte received.
        kind: u8,
    },
    /// The declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized {
        /// The declared length.
        len: u64,
    },
    /// The declared payload length is zero — every frame kind carries
    /// at least one payload byte.
    EmptyPayload,
    /// The buffer ends before the header or declared payload does.
    Truncated {
        /// Bytes the frame needs.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// Bytes remain after the declared payload.
    TrailingBytes {
        /// How many.
        extra: usize,
    },
    /// A control payload field holds a value outside its domain.
    BadControl {
        /// The offending byte.
        byte: u8,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "frame does not start with the LP magic"),
            Self::UnknownVersion { version } => write!(f, "unknown wire version {version}"),
            Self::UnknownKind { kind } => write!(f, "unknown frame kind {kind}"),
            Self::Oversized { len } => {
                write!(f, "declared payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD} cap")
            }
            Self::EmptyPayload => write!(f, "zero-length payload"),
            Self::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            Self::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the declared payload")
            }
            Self::BadControl { byte } => write!(f, "control payload byte {byte} out of domain"),
        }
    }
}

impl Error for FrameError {}

/// A decoded frame: header fields plus a borrowed payload view. No
/// payload bytes are copied out of the receive buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameView<'a> {
    /// What the payload is.
    pub kind: FrameKind,
    /// Sender sequence number.
    pub seq: u64,
    /// The payload bytes, borrowed from the input buffer.
    pub payload: &'a [u8],
}

/// Encodes one frame: header plus payload.
///
/// # Panics
///
/// If `payload` is empty or exceeds [`MAX_FRAME_PAYLOAD`] — both are
/// sender-side programming errors, never a function of peer input.
pub fn encode_frame(kind: FrameKind, seq: u64, payload: &[u8]) -> Vec<u8> {
    assert!(!payload.is_empty(), "frames carry at least one payload byte");
    assert!(payload.len() <= MAX_FRAME_PAYLOAD, "payload exceeds the frame cap");
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(WIRE_VERSION);
    out.push(kind as u8);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parses the header at the start of `buf` and returns the total frame
/// length (header + payload) it declares — what a stream reader must
/// accumulate before calling [`decode_frame`]. Validates everything the
/// header alone can prove: magic, version, kind, payload bounds.
///
/// # Errors
///
/// Any [`FrameError`] except `Truncated`/`TrailingBytes` on the
/// payload; `Truncated` if even the header is short.
pub fn peek_frame_len(buf: &[u8]) -> Result<usize, FrameError> {
    if buf.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Truncated { need: FRAME_HEADER_LEN, have: buf.len() });
    }
    if buf[..2] != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    if buf[2] != WIRE_VERSION {
        return Err(FrameError::UnknownVersion { version: buf[2] });
    }
    if FrameKind::from_byte(buf[3]).is_none() {
        return Err(FrameError::UnknownKind { kind: buf[3] });
    }
    let mut len_bytes = [0u8; 4];
    len_bytes.copy_from_slice(&buf[12..16]);
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversized { len: len as u64 });
    }
    if len == 0 {
        return Err(FrameError::EmptyPayload);
    }
    Ok(FRAME_HEADER_LEN + len)
}

/// Decodes one frame from the start of `buf`, returning the view and
/// the bytes consumed. Bytes past the frame are left for the caller — a
/// stream buffer may hold several frames.
///
/// # Errors
///
/// Any [`FrameError`]; `Truncated` if the payload is incomplete.
pub fn decode_frame(buf: &[u8]) -> Result<(FrameView<'_>, usize), FrameError> {
    let total = peek_frame_len(buf)?;
    if buf.len() < total {
        return Err(FrameError::Truncated { need: total, have: buf.len() });
    }
    let mut seq_bytes = [0u8; 8];
    seq_bytes.copy_from_slice(&buf[4..12]);
    let kind = FrameKind::from_byte(buf[3]).expect("peek validated the kind byte");
    Ok((
        FrameView {
            kind,
            seq: u64::from_le_bytes(seq_bytes),
            payload: &buf[FRAME_HEADER_LEN..total],
        },
        total,
    ))
}

/// Decodes a buffer that must hold exactly one frame — the datagram
/// discipline the simulated transport and the lockstep socket round
/// both follow.
///
/// # Errors
///
/// Any [`FrameError`]; `TrailingBytes` if the buffer outlives the
/// declared payload.
pub fn decode_frame_exact(buf: &[u8]) -> Result<FrameView<'_>, FrameError> {
    let (view, consumed) = decode_frame(buf)?;
    if consumed != buf.len() {
        return Err(FrameError::TrailingBytes { extra: buf.len() - consumed });
    }
    Ok(view)
}

// ---------------------------------------------------------------------
// Control payloads. Each is a tiny fixed-size record; decoders demand
// the exact length and reject out-of-domain bytes.
// ---------------------------------------------------------------------

fn expect_len(payload: &[u8], want: usize) -> Result<(), FrameError> {
    match payload.len() {
        have if have < want => Err(FrameError::Truncated { need: want, have }),
        have if have > want => Err(FrameError::TrailingBytes { extra: have - want }),
        _ => Ok(()),
    }
}

fn u32_at(payload: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&payload[at..at + 4]);
    u32::from_le_bytes(b)
}

fn u64_at(payload: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&payload[at..at + 8]);
    u64::from_le_bytes(b)
}

/// Who a peer is: its role and id, the first frame on every connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    /// 0 = bidder, 1 = TTP.
    pub role: u8,
    /// Bidder index, or 0 for the TTP.
    pub id: u32,
}

/// Encodes a [`Hello`] payload.
pub fn encode_hello(hello: Hello) -> Vec<u8> {
    let mut out = vec![hello.role];
    out.extend_from_slice(&hello.id.to_le_bytes());
    out
}

/// Decodes a [`Hello`] payload.
///
/// # Errors
///
/// Length mismatches; `BadControl` for a role outside `{0, 1}`.
pub fn decode_hello(payload: &[u8]) -> Result<Hello, FrameError> {
    expect_len(payload, 5)?;
    if payload[0] > 1 {
        return Err(FrameError::BadControl { byte: payload[0] });
    }
    Ok(Hello { role: payload[0], id: u32_at(payload, 1) })
}

/// The round parameters every peer needs before collect opens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Announce {
    /// The session master seed.
    pub seed: u64,
    /// Number of registered bidders.
    pub n_bidders: u32,
    /// Number of auctioned channels.
    pub channels: u32,
}

/// Encodes an [`Announce`] payload.
pub fn encode_announce(a: Announce) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&a.seed.to_le_bytes());
    out.extend_from_slice(&a.n_bidders.to_le_bytes());
    out.extend_from_slice(&a.channels.to_le_bytes());
    out
}

/// Decodes an [`Announce`] payload.
///
/// # Errors
///
/// Length mismatches.
pub fn decode_announce(payload: &[u8]) -> Result<Announce, FrameError> {
    expect_len(payload, 16)?;
    Ok(Announce {
        seed: u64_at(payload, 0),
        n_bidders: u32_at(payload, 8),
        channels: u32_at(payload, 12),
    })
}

/// Encodes a `TickStart` payload: the tick being opened.
pub fn encode_tick_start(tick: u64) -> Vec<u8> {
    tick.to_le_bytes().to_vec()
}

/// Decodes a `TickStart` payload.
///
/// # Errors
///
/// Length mismatches.
pub fn decode_tick_start(payload: &[u8]) -> Result<u64, FrameError> {
    expect_len(payload, 8)?;
    Ok(u64_at(payload, 0))
}

/// Encodes a `TickDone` payload: which bidder finished which tick.
pub fn encode_tick_done(tick: u64, bidder: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(12);
    out.extend_from_slice(&tick.to_le_bytes());
    out.extend_from_slice(&bidder.to_le_bytes());
    out
}

/// Decodes a `TickDone` payload to `(tick, bidder)`.
///
/// # Errors
///
/// Length mismatches.
pub fn decode_tick_done(payload: &[u8]) -> Result<(u64, u32), FrameError> {
    expect_len(payload, 12)?;
    Ok((u64_at(payload, 0), u32_at(payload, 8)))
}

/// Encodes a `SubAck` payload: the auctioneer's verdict on a bidder's
/// submission. `accepted = false` means structurally rejected — the
/// bidder must stop resending either way.
pub fn encode_sub_ack(bidder: u32, accepted: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(5);
    out.extend_from_slice(&bidder.to_le_bytes());
    out.push(u8::from(accepted));
    out
}

/// Decodes a `SubAck` payload to `(bidder, accepted)`.
///
/// # Errors
///
/// Length mismatches; `BadControl` for a status byte outside `{0, 1}`.
pub fn decode_sub_ack(payload: &[u8]) -> Result<(u32, bool), FrameError> {
    expect_len(payload, 5)?;
    match payload[4] {
        0 => Ok((u32_at(payload, 0), false)),
        1 => Ok((u32_at(payload, 0), true)),
        byte => Err(FrameError::BadControl { byte }),
    }
}

/// Encodes a `CollectClosed` payload: the tick collect ended at.
pub fn encode_collect_closed(end_tick: u64) -> Vec<u8> {
    end_tick.to_le_bytes().to_vec()
}

/// Decodes a `CollectClosed` payload.
///
/// # Errors
///
/// Length mismatches.
pub fn decode_collect_closed(payload: &[u8]) -> Result<u64, FrameError> {
    expect_len(payload, 8)?;
    Ok(u64_at(payload, 0))
}

/// Encodes a `Settled` payload: the outcome fingerprint.
pub fn encode_settled(fingerprint: u64) -> Vec<u8> {
    fingerprint.to_le_bytes().to_vec()
}

/// Decodes a `Settled` payload.
///
/// # Errors
///
/// Length mismatches.
pub fn decode_settled(payload: &[u8]) -> Result<u64, FrameError> {
    expect_len(payload, 8)?;
    Ok(u64_at(payload, 0))
}

/// Encodes a `Bye` payload: a teardown reason code.
pub fn encode_bye(reason: u8) -> Vec<u8> {
    vec![reason]
}

/// Decodes a `Bye` payload.
///
/// # Errors
///
/// Length mismatches.
pub fn decode_bye(payload: &[u8]) -> Result<u8, FrameError> {
    expect_len(payload, 1)?;
    Ok(payload[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips_every_kind() {
        for (kind, byte) in [
            (FrameKind::Hello, 1u8),
            (FrameKind::Announce, 2),
            (FrameKind::TickStart, 3),
            (FrameKind::Submission, 4),
            (FrameKind::TickDone, 5),
            (FrameKind::SubAck, 6),
            (FrameKind::CollectClosed, 7),
            (FrameKind::ChargeRequest, 8),
            (FrameKind::ChargeVerdict, 9),
            (FrameKind::Settled, 10),
            (FrameKind::Bye, 11),
        ] {
            let buf = encode_frame(kind, 0xDEAD_BEEF_0000_0001, &[7, 8, 9]);
            assert_eq!(buf[3], byte);
            let view = decode_frame_exact(&buf).unwrap();
            assert_eq!(view.kind, kind);
            assert_eq!(view.seq, 0xDEAD_BEEF_0000_0001);
            assert_eq!(view.payload, &[7, 8, 9]);
        }
    }

    #[test]
    fn hostile_headers_are_typed_errors() {
        let good = encode_frame(FrameKind::Submission, 3, &[1, 2, 3]);

        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(decode_frame_exact(&bad), Err(FrameError::BadMagic));

        let mut bad = good.clone();
        bad[2] = 9;
        assert_eq!(decode_frame_exact(&bad), Err(FrameError::UnknownVersion { version: 9 }));

        let mut bad = good.clone();
        bad[3] = 200;
        assert_eq!(decode_frame_exact(&bad), Err(FrameError::UnknownKind { kind: 200 }));

        let mut bad = good.clone();
        bad[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_frame_exact(&bad),
            Err(FrameError::Oversized { len: u64::from(u32::MAX) })
        );

        let mut bad = good.clone();
        bad[12..16].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(decode_frame_exact(&bad), Err(FrameError::EmptyPayload));

        for cut in 0..good.len() {
            assert!(
                matches!(decode_frame_exact(&good[..cut]), Err(FrameError::Truncated { .. })),
                "prefix of {cut} bytes must be Truncated"
            );
        }

        let mut bad = good;
        bad.push(0);
        assert_eq!(decode_frame_exact(&bad), Err(FrameError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn stream_decode_leaves_following_frames() {
        let mut stream = encode_frame(FrameKind::TickStart, 1, &encode_tick_start(4));
        let second = encode_frame(FrameKind::Bye, 2, &encode_bye(0));
        stream.extend_from_slice(&second);
        let (view, used) = decode_frame(&stream).unwrap();
        assert_eq!(view.kind, FrameKind::TickStart);
        assert_eq!(decode_tick_start(view.payload).unwrap(), 4);
        let (view2, used2) = decode_frame(&stream[used..]).unwrap();
        assert_eq!(view2.kind, FrameKind::Bye);
        assert_eq!(used + used2, stream.len());
    }

    #[test]
    fn control_payloads_roundtrip() {
        let h = Hello { role: 0, id: 42 };
        assert_eq!(decode_hello(&encode_hello(h)).unwrap(), h);
        let a = Announce { seed: 7, n_bidders: 12, channels: 3 };
        assert_eq!(decode_announce(&encode_announce(a)).unwrap(), a);
        assert_eq!(decode_tick_start(&encode_tick_start(9)).unwrap(), 9);
        assert_eq!(decode_tick_done(&encode_tick_done(9, 4)).unwrap(), (9, 4));
        assert_eq!(decode_sub_ack(&encode_sub_ack(5, true)).unwrap(), (5, true));
        assert_eq!(decode_sub_ack(&encode_sub_ack(5, false)).unwrap(), (5, false));
        assert_eq!(decode_collect_closed(&encode_collect_closed(16)).unwrap(), 16);
        assert_eq!(decode_settled(&encode_settled(0xFEED)).unwrap(), 0xFEED);
        assert_eq!(decode_bye(&encode_bye(2)).unwrap(), 2);
    }

    #[test]
    fn control_payloads_reject_malformed_bytes() {
        assert!(matches!(decode_hello(&[2, 0, 0, 0, 0]), Err(FrameError::BadControl { byte: 2 })));
        assert!(matches!(decode_hello(&[0, 0]), Err(FrameError::Truncated { .. })));
        assert!(matches!(
            decode_sub_ack(&[0, 0, 0, 0, 7]),
            Err(FrameError::BadControl { byte: 7 })
        ));
        assert!(matches!(decode_tick_start(&[1; 9]), Err(FrameError::TrailingBytes { extra: 1 })));
        assert!(matches!(decode_announce(&[1; 15]), Err(FrameError::Truncated { .. })));
        assert!(matches!(decode_bye(&[]), Err(FrameError::Truncated { .. })));
    }
}
