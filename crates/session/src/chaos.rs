//! Adversarial submission tooling: in-flight corruption and the
//! sender-side manipulations the session must survive.
//!
//! Three distinct failure classes, caught at three distinct layers:
//!
//! * [`corrupt_in_flight`] — random transport damage. The sender's
//!   checksum no longer matches, so the receiver discards the copy and a
//!   retransmission covers it.
//! * [`truncate_point`] — a structurally-broken sender (ragged prefix
//!   family, checksum honestly recomputed). Passes the transport check,
//!   fails `validate_submission`, quarantined at collect.
//! * [`forge_presented_bid`] — a manipulated price: the presented
//!   point/range claim one bid, the sealed value holds another. Passes
//!   both the checksum and structural validation by design; only the TTP
//!   can catch it, at charge time, striking exactly that grant.

use lppa::ppbs::bid::AdvancedBidSubmission;
use lppa::protocol::SuSubmission;
use lppa::ttp::Ttp;
use lppa::LppaError;
use lppa_crypto::tag::Tag;
use lppa_prefix::{MaskedPoint, MaskedRange};
use lppa_rng::rngs::StdRng;
use lppa_rng::Rng;

use crate::session::SubmissionMsg;

/// The transport's corruption model: flip one byte of one tag in one
/// channel's masked point. The attached checksum (computed by the
/// sender before the damage) no longer matches, which is how the
/// receiver tells corruption from manipulation.
pub fn corrupt_in_flight(msg: &mut SubmissionMsg, rng: &mut StdRng) {
    let bids = msg.submission.bids.bids();
    if bids.is_empty() {
        return;
    }
    let channel = rng.gen_range(0..bids.len());
    let mut tags: Vec<Tag> = bids[channel].point.iter().copied().collect();
    if tags.is_empty() {
        return;
    }
    let victim = rng.gen_range(0..tags.len());
    let mut bytes = *tags[victim].as_bytes();
    bytes[0] ^= rng.gen_range(1..=255u8);
    tags[victim] = Tag::from_bytes(bytes);

    let Ok(point) = MaskedPoint::from_tags(tags) else { return };
    let mut damaged = bids.to_vec();
    damaged[channel].point = point;
    if let Ok(rebuilt) = AdvancedBidSubmission::from_parts(
        damaged,
        msg.submission.bids.presented_positive().to_vec(),
    ) {
        msg.submission.bids = rebuilt;
    }
}

/// The frame-level corruption model: flip one random byte anywhere in
/// the encoded frame. Unlike [`corrupt_in_flight`], which surgically
/// damages one tag, this can hit the header, a length field, or the
/// checksum itself — the receiver must survive all of it, answering
/// with either a checksum discard or a frame rejection, never a panic.
pub fn corrupt_frame(frame: &mut [u8], rng: &mut StdRng) {
    if frame.is_empty() {
        return;
    }
    let pos = rng.gen_range(0..frame.len());
    frame[pos] ^= rng.gen_range(1..=255u8);
}

/// Truncates `channel`'s masked point to `keep` tags — a ragged
/// submission from a buggy sender. The caller should resend the result
/// as a fresh message so its checksum is honestly recomputed (transport
/// checks pass, structural validation fails).
///
/// # Errors
///
/// [`LppaError::Internal`] for an unknown channel, `keep == 0` or `keep`
/// not smaller than the current family.
pub fn truncate_point(
    sub: &mut SuSubmission,
    channel: usize,
    keep: usize,
) -> Result<(), LppaError> {
    let mut bids = sub.bids.bids().to_vec();
    let bid = bids.get_mut(channel).ok_or_else(|| LppaError::Internal {
        what: format!("truncate_point: no channel {channel}"),
    })?;
    if keep == 0 || keep >= bid.point.len() {
        return Err(LppaError::Internal {
            what: format!("truncate_point: cannot keep {keep} of {} tags", bid.point.len()),
        });
    }
    let kept: Vec<Tag> = bid.point.iter().copied().take(keep).collect();
    bid.point = MaskedPoint::from_tags(kept)?;
    sub.bids = AdvancedBidSubmission::from_parts(bids, sub.bids.presented_positive().to_vec())?;
    Ok(())
}

/// Forges `channel`'s presented point and range as raw bid `shown_raw`
/// while leaving the sealed (true) price untouched — the §V.B price
/// manipulation the TTP detects at charge time.
///
/// # Errors
///
/// [`LppaError::Internal`] for an unknown channel; prefix errors from
/// re-masking.
pub fn forge_presented_bid<R: Rng + ?Sized>(
    sub: &mut SuSubmission,
    ttp: &Ttp,
    channel: usize,
    shown_raw: u32,
    rng: &mut R,
) -> Result<(), LppaError> {
    let config = ttp.config();
    let key = ttp.bidder_keys().gb.get(channel).ok_or_else(|| LppaError::Internal {
        what: format!("forge_presented_bid: no channel {channel}"),
    })?;
    let shown = config.cr * config.offset_bid(shown_raw);
    let width = config.transformed_bits();
    let mut bids = sub.bids.bids().to_vec();
    let bid = bids.get_mut(channel).ok_or_else(|| LppaError::Internal {
        what: format!("forge_presented_bid: no channel {channel}"),
    })?;
    bid.point = MaskedPoint::mask(key, width, shown)?;
    bid.range = MaskedRange::mask_padded(key, width, shown, config.transformed_max(), rng)?;
    sub.bids = AdvancedBidSubmission::from_parts(bids, sub.bids.presented_positive().to_vec())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lppa::protocol::validate_submission;
    use lppa::zero_replace::ZeroReplacePolicy;
    use lppa::LppaConfig;
    use lppa_auction::bidder::Location;
    use lppa_rng::SeedableRng;

    fn setup() -> (Ttp, SuSubmission, StdRng) {
        let mut rng = StdRng::seed_from_u64(5);
        let ttp = Ttp::new(2, LppaConfig::default(), &mut rng).unwrap();
        let policy = ZeroReplacePolicy::never(ttp.config().bid_max());
        let sub =
            SuSubmission::build(Location::new(3, 3), &[10, 20], &ttp, &policy, &mut rng).unwrap();
        (ttp, sub, rng)
    }

    #[test]
    fn in_flight_corruption_breaks_the_checksum_only() {
        let (_, sub, mut rng) = setup();
        let mut msg =
            SubmissionMsg { bidder: 0, attempt: 1, checksum: sub.checksum(), submission: sub };
        corrupt_in_flight(&mut msg, &mut rng);
        assert_ne!(msg.submission.checksum(), msg.checksum, "damage must be detectable");
    }

    #[test]
    fn truncation_passes_checksum_but_fails_validation() {
        let (ttp, mut sub, _) = setup();
        truncate_point(&mut sub, 1, 2).unwrap();
        // An honest resend recomputes the checksum over the ragged data.
        assert_eq!(sub.checksum(), sub.checksum());
        assert!(matches!(
            validate_submission(&sub, &ttp),
            Err(LppaError::MalformedSubmission { .. })
        ));
        let mut sub2 = sub.clone();
        assert!(truncate_point(&mut sub2, 9, 1).is_err());
    }

    #[test]
    fn forgery_passes_validation_but_fails_at_the_ttp() {
        let (ttp, mut sub, mut rng) = setup();
        forge_presented_bid(&mut sub, &ttp, 0, 100, &mut rng).unwrap();
        assert!(validate_submission(&sub, &ttp).is_ok(), "forgery is structurally clean");
        let bid = &sub.bids.bids()[0];
        let request = lppa::ttp::ChargeRequest {
            channel: lppa_spectrum::ChannelId(0),
            sealed: bid.sealed.clone(),
            point: bid.point.clone(),
        };
        assert_eq!(ttp.open_charge(&request), Err(LppaError::ChargeManipulated));
    }
}
