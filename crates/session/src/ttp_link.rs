//! The periodically-online TTP, as the auctioneer experiences it.
//!
//! The paper's TTP (§V.C.2) is not a server that is always up — it comes
//! online periodically, drains whatever charging work queued up while it
//! was away, and disappears again. [`TtpSchedule`] models the
//! availability windows; [`TtpLink`] models the auctioneer's side of the
//! connection: a charge-request queue that drains in batches whenever
//! the schedule says the TTP is reachable, retries failed batches with
//! exponential backoff, and reports what is still pending so the session
//! can degrade to provisional allocation when the TTP misses its window.

use std::collections::VecDeque;

use lppa::{ChargeDecision, ChargeRequest, LppaError, Ttp};
use lppa_rng::rngs::StdRng;
use lppa_rng::{Rng, SeedableRng};

use crate::journal::{Journal, JournalEntry};

/// When the TTP is reachable, in session ticks.
///
/// The schedule is periodic after an initial offline interval:
/// unreachable during `[0, offline_until)`, then alternating `online`
/// reachable ticks and `offline` unreachable ticks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TtpSchedule {
    /// The TTP is unreachable before this tick.
    pub offline_until: u64,
    /// Length of each reachable window.
    pub online: u64,
    /// Gap between reachable windows.
    pub offline: u64,
}

impl TtpSchedule {
    /// A TTP that is reachable at every tick.
    pub fn always_online() -> Self {
        Self { offline_until: 0, online: 1, offline: 0 }
    }

    /// A TTP that never comes back — for exercising the degradation
    /// path.
    pub fn never_online() -> Self {
        Self { offline_until: u64::MAX, online: 0, offline: 0 }
    }

    /// Whether the TTP is reachable at `tick`.
    pub fn is_online(&self, tick: u64) -> bool {
        if tick < self.offline_until {
            return false;
        }
        let period = self.online + self.offline;
        if period == 0 {
            return self.online > 0;
        }
        (tick - self.offline_until) % period < self.online
    }
}

/// Tuning for the auctioneer ↔ TTP connection.
#[derive(Clone, Copy, Debug)]
pub struct TtpLinkConfig {
    /// Requests drained per connected tick.
    pub batch_size: usize,
    /// Probability a batch attempt fails in flight (connection flaps).
    pub failure: f64,
    /// Backoff after the first failed attempt, in ticks; doubles per
    /// consecutive failure.
    pub backoff: u64,
    /// Consecutive failures after which the link stops trying and
    /// reports the remaining queue as undeliverable.
    pub max_batch_retries: u32,
}

impl Default for TtpLinkConfig {
    fn default() -> Self {
        Self { batch_size: 8, failure: 0.0, backoff: 1, max_batch_retries: 6 }
    }
}

/// Whatever answers charge requests: the in-process [`Ttp`]
/// ([`LocalTtp`]) or a remote TTP node spoken to over sockets. The
/// session's charge loop is generic over this, so the drain/backoff/
/// deferral machinery is identical no matter where the TTP lives.
pub trait ChargeBackend {
    /// Decides one charge request.
    ///
    /// # Errors
    ///
    /// The TTP's refusal for manipulated or unauthentic sealed bids —
    /// a per-grant verdict, not a link failure.
    fn decide(&mut self, request: &ChargeRequest) -> Result<ChargeDecision, LppaError>;
}

/// The in-process TTP as a [`ChargeBackend`].
#[derive(Clone, Copy, Debug)]
pub struct LocalTtp<'a>(pub &'a Ttp);

impl ChargeBackend for LocalTtp<'_> {
    fn decide(&mut self, request: &ChargeRequest) -> Result<ChargeDecision, LppaError> {
        self.0.open_charge(request)
    }
}

/// The auctioneer's queued connection to a periodically-online TTP.
///
/// Decisions land in slot order — `decisions()[i]` is the verdict for
/// the `i`-th enqueued request — regardless of the order batches
/// actually drained, so downstream bookkeeping is immune to the link's
/// timing.
#[derive(Debug)]
pub struct TtpLink<B> {
    backend: B,
    schedule: TtpSchedule,
    config: TtpLinkConfig,
    /// `(slot, request)` pairs still waiting for a verdict.
    queue: VecDeque<(usize, ChargeRequest)>,
    decisions: Vec<Option<Result<ChargeDecision, LppaError>>>,
    rng: StdRng,
    consecutive_failures: u32,
    blocked_until: u64,
    gave_up: bool,
}

impl<B: ChargeBackend> TtpLink<B> {
    /// A link to `backend` under `schedule`, with connection flaps
    /// driven by `seed`.
    pub fn new(backend: B, schedule: TtpSchedule, config: TtpLinkConfig, seed: u64) -> Self {
        Self {
            backend,
            schedule,
            config,
            queue: VecDeque::new(),
            decisions: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            consecutive_failures: 0,
            blocked_until: 0,
            gave_up: false,
        }
    }

    /// Queues `requests` for charging; returns the slot of the first.
    pub fn enqueue(&mut self, requests: Vec<ChargeRequest>) -> usize {
        let first = self.decisions.len();
        for request in requests {
            let slot = self.decisions.len();
            self.decisions.push(None);
            self.queue.push_back((slot, request));
        }
        first
    }

    /// Advances the link by one tick: if the TTP is reachable and the
    /// backoff has elapsed, attempt one batch. Returns `true` if the
    /// queue is fully drained.
    pub fn pump(&mut self, tick: u64, journal: &mut Journal) -> bool {
        if self.queue.is_empty() {
            return true;
        }
        if self.gave_up || !self.schedule.is_online(tick) || tick < self.blocked_until {
            return false;
        }
        if self.config.failure > 0.0 && self.rng.gen_bool(self.config.failure) {
            self.consecutive_failures += 1;
            if self.consecutive_failures > self.config.max_batch_retries {
                self.gave_up = true;
                return false;
            }
            let backoff = self.config.backoff.max(1) << (self.consecutive_failures - 1).min(16);
            self.blocked_until = tick + backoff;
            journal.append(JournalEntry::TtpBatchFailed { tick, retry_at: self.blocked_until });
            return false;
        }
        self.consecutive_failures = 0;
        let take = self.config.batch_size.max(1).min(self.queue.len());
        for _ in 0..take {
            let Some((slot, request)) = self.queue.pop_front() else { break };
            self.decisions[slot] = Some(self.backend.decide(&request));
        }
        self.queue.is_empty()
    }

    /// Whether every enqueued request has a verdict.
    pub fn drained(&self) -> bool {
        self.queue.is_empty()
    }

    /// Requests still waiting (their slots), in queue order.
    pub fn pending_slots(&self) -> Vec<usize> {
        self.queue.iter().map(|(slot, _)| *slot).collect()
    }

    /// Per-slot verdicts; `None` marks requests the TTP never decided
    /// (deferred to the next round).
    pub fn decisions(&self) -> &[Option<Result<ChargeDecision, LppaError>>] {
        &self.decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_online_is_online() {
        let s = TtpSchedule::always_online();
        for tick in 0..10 {
            assert!(s.is_online(tick));
        }
    }

    #[test]
    fn never_online_is_never_online() {
        let s = TtpSchedule::never_online();
        for tick in [0, 1, 1000, u64::MAX - 1] {
            assert!(!s.is_online(tick));
        }
    }

    #[test]
    fn periodic_windows_alternate() {
        // Offline until 4, then 2 on / 3 off.
        let s = TtpSchedule { offline_until: 4, online: 2, offline: 3 };
        let expect = [
            (0, false),
            (3, false),
            (4, true),
            (5, true),
            (6, false),
            (8, false),
            (9, true),
            (10, true),
            (11, false),
        ];
        for (tick, online) in expect {
            assert_eq!(s.is_online(tick), online, "tick {tick}");
        }
    }
}
