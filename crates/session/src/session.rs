//! The fault-tolerant auction session state machine.
//!
//! One session runs a full LPPA round — `Announce → Collect → Allocate →
//! Charge → Settle` — as a deterministic discrete-event simulation over
//! the unreliable [`SimTransport`] link and the periodically-online
//! [`TtpLink`]. Every failure is handled per bidder:
//!
//! * **Collect**: each bidder retries with exponential backoff until the
//!   collect deadline; corrupt deliveries (checksum mismatch) are
//!   discarded and retransmissions cover them; bidders whose submission
//!   never arrives intact are quarantined as `MissedDeadline`; ragged or
//!   truncated submissions are quarantined as `Rejected`. The phase
//!   commits with whoever made the deadline, provided the configured
//!   quorum is met.
//! * **Allocate**: the greedy allocation runs over the accepted subset,
//!   seeded from the session seed — independent of transport timing.
//! * **Charge**: sealed winning bids drain through the [`TtpLink`] queue
//!   whenever the TTP's availability schedule permits, retrying failed
//!   batches with backoff. If the TTP misses its window, the affected
//!   grants degrade to *provisional* allocations with deferred charging
//!   instead of failing the round. A refused charge (manipulated price)
//!   strikes only its own grant and quarantines that bidder.
//! * **Settle**: the outcome is finalized and fingerprinted.
//!
//! All randomness — fault schedule, allocation tie-breaks, TTP
//! connection flaps — derives from one seed, so a session replays
//! byte-identically, and the journal of an interrupted session can be
//! [resumed](AuctionSession::resume) to the identical outcome.

use lppa::backend::{charge_request_for, BackendBidTable};
use lppa::ppbs::location::{build_conflict_graph, LocationSubmission};
use lppa::protocol::{charge_requests, validate_submission, AuctioneerModel, SuSubmission};
use lppa::psd::table::MaskedBidTable;
use lppa::ttp::{ChargeDecision, ChargeRequest, Ttp};
use lppa::LppaError;
use lppa_auction::allocation::{greedy_allocate, Grant};
use lppa_auction::bidder::BidderId;
use lppa_auction::conflict::ConflictGraph;
use lppa_auction::outcome::{Assignment, AuctionOutcome};
use lppa_crypto::commit::CommitmentLedger;
use lppa_prefix::backend::BackendKind;
use lppa_rng::rngs::StdRng;
use lppa_rng::{RngCore, SeedableRng};

use crate::fault::FaultConfig;
use crate::journal::{Journal, JournalEntry, Phase};
use crate::quarantine::{QuarantineReason, QuarantineReport};
use crate::transport::{SimTransport, TransportStats};
use crate::ttp_link::{ChargeBackend, LocalTtp, TtpLink, TtpLinkConfig, TtpSchedule};

/// Tuning for one auction session.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Transport fault profile.
    pub faults: FaultConfig,
    /// Last tick of the collect phase; submissions arriving later are
    /// lost.
    pub collect_deadline: u64,
    /// Base resend interval in ticks; doubles per attempt.
    pub retry_backoff: u64,
    /// Send attempts beyond the first each bidder may make.
    pub max_retries: u32,
    /// Minimum accepted submissions for the round to commit; below this
    /// the session fails with [`LppaError::QuorumNotReached`]. Clamped
    /// to at least 1.
    pub min_accepted: usize,
    /// How the auctioneer treats unprovable cells.
    pub model: AuctioneerModel,
    /// When the TTP is reachable.
    pub ttp_schedule: TtpSchedule,
    /// Auctioneer ↔ TTP connection tuning.
    pub ttp_link: TtpLinkConfig,
    /// Ticks the charge phase may spend before undecided grants degrade
    /// to provisional allocations.
    pub charge_deadline: u64,
    /// Which [`MaskingBackend`](lppa_prefix::backend::MaskingBackend)
    /// answers the allocation's masked comparisons. The default reads
    /// the `LPPA_BACKEND` environment knob (falling back to `hmac`).
    /// `ledger` additionally audits the round through a
    /// [`CommitmentLedger`] whose settle-time root lands in
    /// [`SessionOutcome::ledger_root`].
    pub backend: BackendKind,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            faults: FaultConfig::none(),
            collect_deadline: 16,
            retry_backoff: 2,
            max_retries: 4,
            min_accepted: 1,
            model: AuctioneerModel::default(),
            ttp_schedule: TtpSchedule::always_online(),
            ttp_link: TtpLinkConfig::default(),
            charge_deadline: 32,
            backend: BackendKind::from_env(),
        }
    }
}

/// The wire message a bidder sends during collect: the submission plus
/// the sender-computed transport checksum the receiver verifies.
#[derive(Clone, Debug)]
pub struct SubmissionMsg {
    /// Original submission index.
    pub bidder: usize,
    /// 1-based send attempt.
    pub attempt: u32,
    /// [`SuSubmission::checksum`] computed by the sender.
    pub checksum: u64,
    /// The submission payload.
    pub submission: SuSubmission,
}

/// Everything a settled session reports.
#[derive(Debug)]
pub struct SessionOutcome {
    /// Valid, TTP-charged assignments (original bidder ids).
    pub outcome: AuctionOutcome,
    /// Disguised-zero wins the TTP invalidated (original ids).
    pub invalid_grants: Vec<Grant>,
    /// Grants whose charge the TTP never decided before the deadline:
    /// the winner keeps the channel provisionally, charging is deferred
    /// (original ids).
    pub provisional: Vec<Grant>,
    /// Every grant the allocation issued (original ids).
    pub grants: Vec<Grant>,
    /// Conflict graph over the accepted subset (compact ids, indexing
    /// into `accepted`).
    pub conflicts: ConflictGraph,
    /// Original indices of the submissions that entered the auction.
    pub accepted: Vec<usize>,
    /// Per-bidder exclusions with reasons.
    pub quarantine: QuarantineReport,
    /// The session's decision log.
    pub journal: Journal,
    /// Transport counters. Observational only — not part of the
    /// [fingerprint](Self::fingerprint), because a resumed session
    /// cannot reconstruct them from the journal.
    pub stats: TransportStats,
    /// The tick the session settled at.
    pub ticks: u64,
    /// Root of the settle-time-verified commitment ledger
    /// ([`BackendKind::Ledger`] only, `None` otherwise). An audit
    /// artefact, deliberately outside the
    /// [fingerprint](Self::fingerprint) so fingerprints stay comparable
    /// across backends; its own determinism is tested separately.
    pub ledger_root: Option<[u8; 32]>,
}

impl SessionOutcome {
    /// Gross revenue of the charged assignments.
    pub fn revenue(&self) -> u64 {
        self.outcome.revenue()
    }

    /// A stable digest of every round decision: assignments, invalid
    /// and provisional grants, the accepted set, the quarantine report
    /// and the settle tick. Two runs from the same seed — or a run and
    /// its journal-recovered replay — must agree on this value.
    pub fn fingerprint(&self) -> u64 {
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |value: u64| {
            for b in value.to_le_bytes() {
                acc ^= u64::from(b);
                acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for a in self.outcome.assignments() {
            eat(a.bidder.0 as u64);
            eat(a.channel.0 as u64);
            eat(u64::from(a.price));
        }
        for g in self.invalid_grants.iter().chain(&self.provisional).chain(&self.grants) {
            eat(g.bidder.0 as u64);
            eat(g.channel.0 as u64);
        }
        for &i in &self.accepted {
            eat(i as u64);
        }
        eat(self.quarantine.fingerprint());
        eat(self.ticks);
        acc
    }
}

/// Derives the per-subsystem seeds every driver (typed sim, wire sim,
/// socket round) draws from the session master seed, in this exact
/// order: `(transport_seed, auction_seed, ttp_seed)`. Sim-vs-socket
/// equivalence starts here — both sides must agree on all three.
pub fn derive_seeds(seed: u64) -> (u64, u64, u64) {
    let mut master = StdRng::seed_from_u64(seed);
    let transport_seed = master.next_u64();
    let auction_seed = master.next_u64();
    let ttp_seed = master.next_u64();
    (transport_seed, auction_seed, ttp_seed)
}

/// What the collect phase produced.
struct CollectResult {
    accepted: Vec<usize>,
    quarantine: QuarantineReport,
    stats: TransportStats,
    end_tick: u64,
}

/// A fault-tolerant auction session over `ttp`.
#[derive(Debug)]
pub struct AuctionSession<'a> {
    ttp: &'a Ttp,
    config: SessionConfig,
}

impl<'a> AuctionSession<'a> {
    /// A session charging through `ttp` with the given tuning.
    pub fn new(ttp: &'a Ttp, config: SessionConfig) -> Self {
        Self { ttp, config }
    }

    /// Runs one complete round from `seed`. The same `(submissions,
    /// seed, config)` triple always produces the identical outcome and
    /// journal.
    ///
    /// # Errors
    ///
    /// [`LppaError::QuorumNotReached`] if fewer than
    /// [`SessionConfig::min_accepted`] submissions survive collect;
    /// [`LppaError::Internal`] for table inconsistencies (impossible for
    /// validated submissions).
    pub fn run(
        &self,
        submissions: &[SuSubmission],
        seed: u64,
    ) -> Result<SessionOutcome, LppaError> {
        let (transport_seed, auction_seed, ttp_seed) = derive_seeds(seed);

        let mut journal = Journal::new();
        journal.append(JournalEntry::PhaseEntered { phase: Phase::Announce, tick: 0 });
        journal.append(JournalEntry::PhaseEntered { phase: Phase::Collect, tick: 0 });

        let collect = self.collect(submissions, transport_seed, &mut journal);
        let required = self.config.min_accepted.max(1);
        if collect.accepted.len() < required {
            return Err(LppaError::QuorumNotReached { accepted: collect.accepted.len(), required });
        }
        journal.append(JournalEntry::CollectCommitted {
            accepted: collect.accepted.clone(),
            auction_seed,
            ttp_seed,
            tick: collect.end_tick,
        });

        self.finish(
            submissions,
            collect.accepted,
            auction_seed,
            ttp_seed,
            collect.end_tick,
            journal,
            collect.quarantine,
            collect.stats,
        )
    }

    /// As [`Self::run`], but over *encoded bytes*: submissions travel
    /// as framed wire messages through the simulated chaos link. See
    /// [`crate::wire_round::run_wire_round`] — this is the in-process
    /// reference for the socket transport's determinism gate.
    ///
    /// # Errors
    ///
    /// As [`Self::run`].
    pub fn run_wire(
        &self,
        submissions: &[SuSubmission],
        seed: u64,
    ) -> Result<SessionOutcome, LppaError> {
        crate::wire_round::run_wire_round(self.ttp, self.config, submissions, seed)
    }

    /// Recovers an interrupted session from its journal and replays the
    /// remaining phases to the identical outcome.
    ///
    /// `journal` must contain the `CollectCommitted` entry (everything
    /// after it is discarded and regenerated); a session interrupted
    /// before collect committed holds no decisions worth recovering —
    /// rerun it. `submissions` must be the same slice the original run
    /// collected. Transport counters cannot be reconstructed, so
    /// [`SessionOutcome::stats`] is zeroed; every fingerprinted field
    /// matches the original run exactly.
    ///
    /// # Errors
    ///
    /// [`LppaError::Internal`] if the journal has no committed collect
    /// phase or references bidders outside `submissions`.
    pub fn resume(
        &self,
        submissions: &[SuSubmission],
        journal: &Journal,
    ) -> Result<SessionOutcome, LppaError> {
        let prefix = journal.prefix_through_collect().ok_or_else(|| LppaError::Internal {
            what: "journal has no committed collect phase to resume from".into(),
        })?;
        let (accepted, auction_seed, ttp_seed, tick) =
            prefix.collect_snapshot().ok_or_else(|| LppaError::Internal {
                what: "journal prefix lost its collect commitment".into(),
            })?;
        let accepted = accepted.to_vec();
        if let Some(&bad) = accepted.iter().find(|&&i| i >= submissions.len()) {
            return Err(LppaError::Internal {
                what: format!("journal accepts bidder {bad} outside the submission set"),
            });
        }
        let mut quarantine = QuarantineReport::new();
        for (bidder, reason) in prefix.quarantine_events() {
            quarantine.insert(bidder, QuarantineReason::Recovered { detail: reason.to_string() });
        }
        self.finish(
            submissions,
            accepted,
            auction_seed,
            ttp_seed,
            tick,
            prefix,
            quarantine,
            TransportStats::default(),
        )
    }

    /// The collect phase: per-bidder submission over the faulty link
    /// with retry/backoff and a hard deadline.
    fn collect(
        &self,
        submissions: &[SuSubmission],
        transport_seed: u64,
        journal: &mut Journal,
    ) -> CollectResult {
        let n = submissions.len();
        let mut transport: SimTransport<SubmissionMsg> =
            SimTransport::new(self.config.faults, transport_seed);
        let mut next_send = vec![0u64; n];
        let mut attempts = vec![0u32; n];
        let mut corrupt_copies = vec![0u32; n];
        let mut done = vec![false; n];
        let mut accepted: Vec<usize> = Vec::new();
        let mut quarantine = QuarantineReport::new();

        for tick in 0..=self.config.collect_deadline {
            // Bidders (re)send on their backoff schedule.
            for (i, sub) in submissions.iter().enumerate() {
                if !done[i] && tick >= next_send[i] && attempts[i] <= self.config.max_retries {
                    attempts[i] += 1;
                    let msg = SubmissionMsg {
                        bidder: i,
                        attempt: attempts[i],
                        checksum: sub.checksum(),
                        submission: sub.clone(),
                    };
                    transport.send(tick, msg, crate::chaos::corrupt_in_flight);
                    let backoff =
                        self.config.retry_backoff.max(1) << u64::from(attempts[i] - 1).min(16);
                    next_send[i] = tick + backoff;
                }
            }
            // The auctioneer processes this tick's deliveries.
            for msg in transport.deliver(tick) {
                let i = msg.bidder;
                if i >= n {
                    // A corrupted header naming a nonexistent bidder:
                    // nothing to quarantine, nothing to poison.
                    continue;
                }
                if done[i] {
                    journal.append(JournalEntry::DuplicateIgnored { bidder: i, tick });
                    continue;
                }
                if msg.submission.checksum() != msg.checksum {
                    corrupt_copies[i] += 1;
                    journal.append(JournalEntry::CorruptDiscarded { bidder: i, tick });
                    continue;
                }
                match validate_submission(&msg.submission, self.ttp) {
                    Ok(()) => {
                        done[i] = true;
                        accepted.push(i);
                        journal.append(JournalEntry::SubmissionAccepted {
                            bidder: i,
                            tick,
                            attempt: msg.attempt,
                        });
                    }
                    Err(cause) => {
                        // A structurally-bad submission that passed the
                        // checksum is bad at the *sender* — retries would
                        // fail identically, so quarantine now.
                        done[i] = true;
                        let reason = QuarantineReason::Rejected { cause };
                        journal.append(JournalEntry::Quarantined {
                            bidder: i,
                            reason: reason.to_string(),
                        });
                        quarantine.insert(i, reason);
                    }
                }
            }
        }
        transport.flush();
        for i in 0..n {
            if !done[i] {
                let reason = QuarantineReason::MissedDeadline {
                    attempts: attempts[i],
                    corrupt_copies: corrupt_copies[i],
                };
                journal.append(JournalEntry::Quarantined { bidder: i, reason: reason.to_string() });
                quarantine.insert(i, reason);
            }
        }
        accepted.sort_unstable();
        CollectResult {
            accepted,
            quarantine,
            stats: transport.stats,
            end_tick: self.config.collect_deadline,
        }
    }

    /// Allocate + Charge + Settle over a committed accepted set. Shared
    /// by fresh runs and journal recovery — both paths are driven only
    /// by `(accepted, auction_seed, ttp_seed, start_tick)`, which is
    /// exactly what `CollectCommitted` records.
    #[allow(clippy::too_many_arguments)] // the CollectCommitted tuple, spelled out
    fn finish(
        &self,
        submissions: &[SuSubmission],
        accepted: Vec<usize>,
        auction_seed: u64,
        ttp_seed: u64,
        start_tick: u64,
        journal: Journal,
        quarantine: QuarantineReport,
        stats: TransportStats,
    ) -> Result<SessionOutcome, LppaError> {
        let compact: Vec<SuSubmission> = accepted.iter().map(|&i| submissions[i].clone()).collect();
        finish_round(
            &self.config,
            LocalTtp(self.ttp),
            submissions.len(),
            accepted,
            &compact,
            auction_seed,
            ttp_seed,
            start_tick,
            journal,
            quarantine,
            stats,
        )
    }
}

/// Allocate + Charge + Settle over a committed accepted set, charging
/// through any [`ChargeBackend`].
///
/// This is the shared tail of every driver: the in-process
/// [`AuctionSession`] (typed or wire-framed collect) calls it with
/// [`LocalTtp`]; the socket auctioneer calls it with a remote TTP
/// connection. `accepted_submissions` is *compact* — parallel to
/// `accepted`, holding only the submissions that survived collect —
/// because a networked auctioneer never materializes the ones that
/// didn't. `n_bidders` sizes the outcome's bidder space (original
/// indices).
///
/// # Errors
///
/// [`LppaError::Internal`] if `accepted` and `accepted_submissions`
/// disagree in length, or for table inconsistencies (impossible for
/// validated submissions).
#[allow(clippy::too_many_arguments)] // the CollectCommitted tuple, spelled out
pub fn finish_round<B: ChargeBackend>(
    config: &SessionConfig,
    backend: B,
    n_bidders: usize,
    accepted: Vec<usize>,
    accepted_submissions: &[SuSubmission],
    auction_seed: u64,
    ttp_seed: u64,
    start_tick: u64,
    mut journal: Journal,
    mut quarantine: QuarantineReport,
    stats: TransportStats,
) -> Result<SessionOutcome, LppaError> {
    if accepted.len() != accepted_submissions.len() {
        return Err(LppaError::Internal {
            what: format!(
                "finish_round: {} accepted indices but {} submissions",
                accepted.len(),
                accepted_submissions.len()
            ),
        });
    }
    journal.append(JournalEntry::PhaseEntered { phase: Phase::Allocate, tick: start_tick });
    let locations: Vec<LocationSubmission> =
        accepted_submissions.iter().map(|s| s.location.clone()).collect();
    let conflicts = build_conflict_graph(&locations);
    let bids: Vec<_> = accepted_submissions.iter().map(|s| s.bids.clone()).collect();
    // The ledger backend's audit chain is built from journal-recoverable
    // data only (accepted set, grants, charge verdicts), so a resumed
    // session replays to the byte-identical root.
    let mut ledger = match config.backend {
        BackendKind::Ledger => Some(CommitmentLedger::new()),
        _ => None,
    };
    if let Some(ledger) = ledger.as_mut() {
        for (&original, submission) in accepted.iter().zip(accepted_submissions) {
            let mut payload = [0u8; 12];
            payload[..4].copy_from_slice(&(original as u32).to_le_bytes());
            payload[4..].copy_from_slice(&submission.checksum().to_le_bytes());
            ledger.append("submission", &payload);
        }
    }
    let mut alloc_rng = StdRng::seed_from_u64(auction_seed);
    let (compact_grants, requests): (Vec<Grant>, Vec<ChargeRequest>) = match config.backend {
        BackendKind::Hmac => {
            let table = match config.model {
                AuctioneerModel::Oblivious => MaskedBidTable::collect(bids)?,
                AuctioneerModel::IterativeCharging => MaskedBidTable::collect_pruned(bids)?,
            };
            let grants = greedy_allocate(&table, &conflicts, &mut alloc_rng);
            let requests = charge_requests(&table, &grants)?;
            (grants, requests)
        }
        kind => {
            // Probe the allocation through the selected backend. The
            // exact backends replicate the hmac classes and RNG draws,
            // so grants stay bit-identical; bloom may diverge within
            // its configured false-positive budget.
            let table = BackendBidTable::collect(kind, bids, config.model)?;
            let grants = greedy_allocate(&table, &conflicts, &mut alloc_rng);
            let requests = grants
                .iter()
                .map(|g| charge_request_for(table.submissions(), g))
                .collect::<Result<_, _>>()?;
            (grants, requests)
        }
    };
    let to_original = |g: &Grant| Grant { bidder: BidderId(accepted[g.bidder.0]), ..*g };
    for grant in &compact_grants {
        journal.append(JournalEntry::GrantIssued {
            bidder: accepted[grant.bidder.0],
            channel: grant.channel.0,
        });
        if let Some(ledger) = ledger.as_mut() {
            let mut payload = [0u8; 8];
            payload[..4].copy_from_slice(&(accepted[grant.bidder.0] as u32).to_le_bytes());
            payload[4..].copy_from_slice(&(grant.channel.0 as u32).to_le_bytes());
            ledger.append("grant", &payload);
        }
    }

    journal.append(JournalEntry::PhaseEntered { phase: Phase::Charge, tick: start_tick });
    let mut link = TtpLink::new(backend, config.ttp_schedule, config.ttp_link, ttp_seed);
    link.enqueue(requests);
    let charge_end = start_tick + config.charge_deadline;
    let mut tick = start_tick;
    while tick <= charge_end {
        if link.pump(tick, &mut journal) {
            break;
        }
        tick += 1;
    }

    let mut assignments = Vec::new();
    let mut invalid_grants = Vec::new();
    let mut provisional = Vec::new();
    let mut deferred = Vec::new();
    for (slot, grant) in compact_grants.iter().enumerate() {
        let original = to_original(grant);
        match &link.decisions()[slot] {
            Some(Ok(ChargeDecision::Valid { raw_price })) => {
                journal.append(JournalEntry::ChargeDecided {
                    bidder: original.bidder.0,
                    channel: original.channel.0,
                    verdict: format!("valid:{raw_price}"),
                });
                assignments.push(Assignment {
                    bidder: original.bidder,
                    channel: original.channel,
                    price: *raw_price,
                });
            }
            Some(Ok(ChargeDecision::InvalidZero)) => {
                journal.append(JournalEntry::ChargeDecided {
                    bidder: original.bidder.0,
                    channel: original.channel.0,
                    verdict: "invalid-zero".into(),
                });
                invalid_grants.push(original);
            }
            Some(Err(cause)) => {
                journal.append(JournalEntry::ChargeDecided {
                    bidder: original.bidder.0,
                    channel: original.channel.0,
                    verdict: format!("refused: {cause}"),
                });
                let reason = QuarantineReason::ChargeFailed { cause: cause.clone() };
                journal.append(JournalEntry::Quarantined {
                    bidder: original.bidder.0,
                    reason: reason.to_string(),
                });
                quarantine.insert(original.bidder.0, reason);
            }
            None => {
                deferred.push(original.bidder.0);
                provisional.push(original);
            }
        }
    }
    if !deferred.is_empty() {
        journal.append(JournalEntry::ChargesDeferred { bidders: deferred, tick });
    }
    journal.append(JournalEntry::PhaseEntered { phase: Phase::Settle, tick });
    if let Some(ledger) = ledger.as_mut() {
        for (slot, grant) in compact_grants.iter().enumerate() {
            let original = to_original(grant);
            let mut payload = [0u8; 13];
            payload[..4].copy_from_slice(&(original.bidder.0 as u32).to_le_bytes());
            payload[4..8].copy_from_slice(&(original.channel.0 as u32).to_le_bytes());
            match &link.decisions()[slot] {
                Some(Ok(ChargeDecision::Valid { raw_price })) => {
                    payload[8] = 1;
                    payload[9..].copy_from_slice(&raw_price.to_le_bytes());
                }
                Some(Ok(ChargeDecision::InvalidZero)) => payload[8] = 0,
                Some(Err(_)) => payload[8] = 2,
                None => payload[8] = 3,
            }
            ledger.append("charge", &payload);
        }
    }
    // The audited backend replays its chain before the round commits.
    let ledger_root = match ledger.as_ref() {
        Some(ledger) => {
            ledger.verify().map_err(|e| LppaError::LedgerTampered { detail: e.to_string() })?;
            Some(ledger.root())
        }
        None => None,
    };
    journal.append(JournalEntry::Settled { tick });

    Ok(SessionOutcome {
        outcome: AuctionOutcome::from_assignments(assignments, n_bidders),
        invalid_grants,
        provisional,
        grants: compact_grants.iter().map(to_original).collect(),
        conflicts,
        accepted,
        quarantine,
        journal,
        stats,
        ticks: tick,
        ledger_root,
    })
}
