//! Fault-injection knobs for the simulated transport.
//!
//! Every probability is sampled from the session's seeded RNG, so a
//! given `(FaultConfig, seed)` pair always produces the identical chaos
//! schedule — replayability is the whole point of simulating faults
//! instead of throwing real packet loss at the protocol.

use std::env;

use lppa_par::{parse_count, parse_flag, parse_rate};

/// Probabilities and bounds for the unreliable-transport simulation.
///
/// All rates are per *send* (drop, duplicate, corrupt, delay) and lie in
/// `[0, 1]`. The default is a perfectly reliable network; see
/// [`FaultConfig::chaotic`] for a stress profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Probability a sent message is silently lost.
    pub drop: f64,
    /// Probability a sent message is delivered twice.
    pub duplicate: f64,
    /// Probability a delivered copy is corrupted in flight.
    pub corrupt: f64,
    /// Probability a delivery is delayed beyond the minimum one tick.
    pub delay: f64,
    /// Maximum *extra* delay in ticks for a delayed delivery.
    pub max_delay: u64,
    /// Whether same-tick deliveries arrive in randomized order rather
    /// than send order.
    pub reorder: bool,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultConfig {
    /// A perfectly reliable network: every send arrives once, intact,
    /// on the next tick, in order.
    pub fn none() -> Self {
        Self { drop: 0.0, duplicate: 0.0, corrupt: 0.0, delay: 0.0, max_delay: 0, reorder: false }
    }

    /// A hostile profile exercising every fault class at once — the one
    /// the chaos gate runs in CI.
    pub fn chaotic() -> Self {
        Self { drop: 0.25, duplicate: 0.2, corrupt: 0.15, delay: 0.5, max_delay: 3, reorder: true }
    }

    /// Overrides fields from the `LPPA_CHAOS_*` environment variables:
    /// `LPPA_CHAOS_DROP`, `LPPA_CHAOS_DUP`, `LPPA_CHAOS_CORRUPT` and
    /// `LPPA_CHAOS_DELAY` (decimal rates in `[0, 1]`),
    /// `LPPA_CHAOS_MAX_DELAY` (ticks) and `LPPA_CHAOS_REORDER`
    /// (`0`/`1`). Values are parsed with the strict `LPPA_THREADS`
    /// grammar from `lppa-par` — plain decimals only, no signs,
    /// exponents, hex, or empty strings — and anything the grammar
    /// rejects (or an unset variable) leaves the corresponding field
    /// unchanged.
    #[must_use]
    pub fn with_env_overrides(self) -> Self {
        self.with_overrides_from(|name| env::var(name).ok())
    }

    /// [`Self::with_env_overrides`] against an explicit lookup, so the
    /// grammar is testable without mutating the process environment.
    fn with_overrides_from(mut self, get: impl Fn(&str) -> Option<String>) -> Self {
        if let Some(v) = parse_rate(get("LPPA_CHAOS_DROP").as_deref()) {
            self.drop = v;
        }
        if let Some(v) = parse_rate(get("LPPA_CHAOS_DUP").as_deref()) {
            self.duplicate = v;
        }
        if let Some(v) = parse_rate(get("LPPA_CHAOS_CORRUPT").as_deref()) {
            self.corrupt = v;
        }
        if let Some(v) = parse_rate(get("LPPA_CHAOS_DELAY").as_deref()) {
            self.delay = v;
        }
        if let Some(v) = parse_count(get("LPPA_CHAOS_MAX_DELAY").as_deref()) {
            self.max_delay = v;
        }
        if let Some(v) = parse_flag(get("LPPA_CHAOS_REORDER").as_deref()) {
            self.reorder = v;
        }
        self
    }

    /// Asserts every rate is a probability; call before building a
    /// transport from untrusted knobs.
    pub fn validated(self) -> Result<Self, String> {
        for (name, rate) in [
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("corrupt", self.corrupt),
            ("delay", self.delay),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate `{name}` out of [0, 1]: {rate}"));
            }
        }
        Ok(self)
    }
}

/// The chaos seed: `LPPA_CHAOS_SEED` if set and parsable under the
/// strict grammar, else `default`. Printed by the chaos example so a
/// failing schedule can be replayed exactly.
pub fn chaos_seed(default: u64) -> u64 {
    parse_count(env::var("LPPA_CHAOS_SEED").ok().as_deref()).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_reliable() {
        let f = FaultConfig::default();
        assert_eq!(f, FaultConfig::none());
        assert!(f.validated().is_ok());
    }

    #[test]
    fn chaotic_profile_is_valid() {
        assert!(FaultConfig::chaotic().validated().is_ok());
    }

    #[test]
    fn validation_rejects_out_of_range_rates() {
        let bad = FaultConfig { drop: 1.5, ..FaultConfig::none() };
        let err = bad.validated().unwrap_err();
        assert!(err.contains("drop"), "{err}");
    }

    #[test]
    fn chaos_seed_falls_back_to_default() {
        // The test environment does not set LPPA_CHAOS_SEED (CI sets it
        // only for the dedicated chaos-smoke job, which runs examples,
        // not this suite).
        if std::env::var("LPPA_CHAOS_SEED").is_err() {
            assert_eq!(chaos_seed(42), 42);
        }
    }

    #[test]
    fn overrides_apply_well_formed_values() {
        let env = |name: &str| match name {
            "LPPA_CHAOS_DROP" => Some("0.5".to_string()),
            "LPPA_CHAOS_DUP" => Some(" 0.25 ".to_string()),
            "LPPA_CHAOS_MAX_DELAY" => Some("7".to_string()),
            "LPPA_CHAOS_REORDER" => Some("1".to_string()),
            _ => None,
        };
        let f = FaultConfig::none().with_overrides_from(env);
        assert_eq!(f.drop, 0.5);
        assert_eq!(f.duplicate, 0.25);
        assert_eq!(f.max_delay, 7);
        assert!(f.reorder);
        // Unset knobs stay at their base values.
        assert_eq!(f.corrupt, 0.0);
        assert_eq!(f.delay, 0.0);
    }

    #[test]
    fn overrides_reject_malformed_values() {
        // Each value here was accepted by the old lenient f64/u64 parse
        // (or silently treated as valid); the strict grammar must leave
        // the base config untouched for every one of them.
        let hostile = |name: &str| match name {
            "LPPA_CHAOS_DROP" => Some("1e-3".to_string()),
            "LPPA_CHAOS_DUP" => Some("+0.5".to_string()),
            "LPPA_CHAOS_CORRUPT" => Some(String::new()),
            "LPPA_CHAOS_DELAY" => Some("   ".to_string()),
            "LPPA_CHAOS_MAX_DELAY" => Some("99999999999999999999999999".to_string()),
            "LPPA_CHAOS_REORDER" => Some("true".to_string()),
            _ => None,
        };
        let base = FaultConfig::chaotic();
        assert_eq!(base.with_overrides_from(hostile), base);
    }

    #[test]
    fn overrides_reject_out_of_range_rates() {
        let env = |name: &str| match name {
            "LPPA_CHAOS_DROP" => Some("1.5".to_string()),
            _ => None,
        };
        let base = FaultConfig::none();
        assert_eq!(base.with_overrides_from(env), base, "rates above 1 are refused");
    }
}
