//! Fault-injection knobs for the simulated transport.
//!
//! Every probability is sampled from the session's seeded RNG, so a
//! given `(FaultConfig, seed)` pair always produces the identical chaos
//! schedule — replayability is the whole point of simulating faults
//! instead of throwing real packet loss at the protocol.

use std::env;

/// Probabilities and bounds for the unreliable-transport simulation.
///
/// All rates are per *send* (drop, duplicate, corrupt, delay) and lie in
/// `[0, 1]`. The default is a perfectly reliable network; see
/// [`FaultConfig::chaotic`] for a stress profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Probability a sent message is silently lost.
    pub drop: f64,
    /// Probability a sent message is delivered twice.
    pub duplicate: f64,
    /// Probability a delivered copy is corrupted in flight.
    pub corrupt: f64,
    /// Probability a delivery is delayed beyond the minimum one tick.
    pub delay: f64,
    /// Maximum *extra* delay in ticks for a delayed delivery.
    pub max_delay: u64,
    /// Whether same-tick deliveries arrive in randomized order rather
    /// than send order.
    pub reorder: bool,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultConfig {
    /// A perfectly reliable network: every send arrives once, intact,
    /// on the next tick, in order.
    pub fn none() -> Self {
        Self { drop: 0.0, duplicate: 0.0, corrupt: 0.0, delay: 0.0, max_delay: 0, reorder: false }
    }

    /// A hostile profile exercising every fault class at once — the one
    /// the chaos gate runs in CI.
    pub fn chaotic() -> Self {
        Self { drop: 0.25, duplicate: 0.2, corrupt: 0.15, delay: 0.5, max_delay: 3, reorder: true }
    }

    /// Overrides fields from the `LPPA_CHAOS_*` environment variables:
    /// `LPPA_CHAOS_DROP`, `LPPA_CHAOS_DUP`, `LPPA_CHAOS_CORRUPT` and
    /// `LPPA_CHAOS_DELAY` (floats in `[0, 1]`), `LPPA_CHAOS_MAX_DELAY`
    /// (ticks) and `LPPA_CHAOS_REORDER` (`0`/`1`). Unset or unparsable
    /// variables leave the corresponding field unchanged, mirroring how
    /// `LPPA_THREADS` and `LPPA_PROPTEST_SEED` degrade elsewhere in the
    /// workspace.
    #[must_use]
    pub fn with_env_overrides(mut self) -> Self {
        if let Some(v) = env_rate("LPPA_CHAOS_DROP") {
            self.drop = v;
        }
        if let Some(v) = env_rate("LPPA_CHAOS_DUP") {
            self.duplicate = v;
        }
        if let Some(v) = env_rate("LPPA_CHAOS_CORRUPT") {
            self.corrupt = v;
        }
        if let Some(v) = env_rate("LPPA_CHAOS_DELAY") {
            self.delay = v;
        }
        if let Some(v) = env_parse::<u64>("LPPA_CHAOS_MAX_DELAY") {
            self.max_delay = v;
        }
        if let Some(v) = env_parse::<u8>("LPPA_CHAOS_REORDER") {
            self.reorder = v != 0;
        }
        self
    }

    /// Asserts every rate is a probability; call before building a
    /// transport from untrusted knobs.
    pub fn validated(self) -> Result<Self, String> {
        for (name, rate) in [
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("corrupt", self.corrupt),
            ("delay", self.delay),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate `{name}` out of [0, 1]: {rate}"));
            }
        }
        Ok(self)
    }
}

/// The chaos seed: `LPPA_CHAOS_SEED` if set and parsable, else
/// `default`. Printed by the chaos example so a failing schedule can be
/// replayed exactly.
pub fn chaos_seed(default: u64) -> u64 {
    env_parse::<u64>("LPPA_CHAOS_SEED").unwrap_or(default)
}

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

fn env_rate(name: &str) -> Option<f64> {
    env_parse::<f64>(name).filter(|v| (0.0..=1.0).contains(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_reliable() {
        let f = FaultConfig::default();
        assert_eq!(f, FaultConfig::none());
        assert!(f.validated().is_ok());
    }

    #[test]
    fn chaotic_profile_is_valid() {
        assert!(FaultConfig::chaotic().validated().is_ok());
    }

    #[test]
    fn validation_rejects_out_of_range_rates() {
        let bad = FaultConfig { drop: 1.5, ..FaultConfig::none() };
        let err = bad.validated().unwrap_err();
        assert!(err.contains("drop"), "{err}");
    }

    #[test]
    fn chaos_seed_falls_back_to_default() {
        // The test environment does not set LPPA_CHAOS_SEED (CI sets it
        // only for the dedicated chaos-smoke job, which runs examples,
        // not this suite).
        if std::env::var("LPPA_CHAOS_SEED").is_err() {
            assert_eq!(chaos_seed(42), 42);
        }
    }
}
