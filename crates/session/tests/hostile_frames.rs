//! Hostile-frame hardening: the frame and submission decoders must
//! survive anything the wire can carry — truncations, bit flips,
//! random soups, resized frames — with typed errors, never panics.
//!
//! Two layers of attack:
//!
//! * a hand-built corpus of known-malformed frames, each pinned to the
//!   exact [`FrameError`] it must produce;
//! * a seeded fuzz loop (`lppa-rng`, so failures replay exactly) that
//!   mutates well-formed frames and free-running byte soups through
//!   every decoder entry point.

use lppa::protocol::{build_submissions, SuSubmission};
use lppa::ttp::Ttp;
use lppa::wire::decode_submission;
use lppa::zero_replace::ZeroReplacePolicy;
use lppa::LppaConfig;
use lppa_auction::bidder::Location;
use lppa_rng::rngs::StdRng;
use lppa_rng::{Rng, SeedableRng};
use lppa_session::frame::{decode_hello, decode_sub_ack, decode_tick_done};
use lppa_session::{
    decode_frame, decode_frame_exact, encode_frame, encode_submission_frame, FrameError, FrameKind,
    FRAME_HEADER_LEN, MAX_FRAME_PAYLOAD,
};

fn sample_submission() -> SuSubmission {
    let mut rng = StdRng::seed_from_u64(7);
    let ttp = Ttp::new(2, LppaConfig::default(), &mut rng).unwrap();
    let policy = ZeroReplacePolicy::never(ttp.config().bid_max());
    let bidders = vec![(Location::new(21, 34), vec![5, 9])];
    build_submissions(&bidders, &ttp, &policy, &mut rng).unwrap().remove(0)
}

/// Known-bad frames, each with the typed error it must surface.
#[test]
fn malformed_corpus_produces_the_pinned_errors() {
    let good = encode_frame(FrameKind::TickStart, 3, &3u64.to_le_bytes());

    // Wrong magic.
    let mut bad_magic = good.clone();
    bad_magic[0] = b'X';
    assert!(matches!(decode_frame_exact(&bad_magic), Err(FrameError::BadMagic)));

    // Future protocol version: strict reject, no best-effort parse.
    let mut future = good.clone();
    future[2] = 9;
    assert!(matches!(decode_frame_exact(&future), Err(FrameError::UnknownVersion { version: 9 })));

    // Unknown frame kind.
    let mut alien = good.clone();
    alien[3] = 0xEE;
    assert!(matches!(decode_frame_exact(&alien), Err(FrameError::UnknownKind { kind: 0xEE })));

    // Oversized length claim — rejected from the header alone, before
    // any allocation for the phantom payload.
    let mut huge = good.clone();
    huge[12..16].copy_from_slice(&(MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes());
    assert!(matches!(decode_frame_exact(&huge), Err(FrameError::Oversized { .. })));

    // Zero-length payload claim.
    let mut empty = good.clone();
    empty[12..16].copy_from_slice(&0u32.to_le_bytes());
    empty.truncate(FRAME_HEADER_LEN);
    assert!(matches!(decode_frame_exact(&empty), Err(FrameError::EmptyPayload)));

    // Every possible truncation of a valid frame.
    for cut in 0..good.len() {
        let err = decode_frame_exact(&good[..cut]).unwrap_err();
        assert!(
            matches!(err, FrameError::Truncated { .. }),
            "cut at {cut} gave {err:?}, expected Truncated"
        );
    }

    // Trailing garbage after a complete frame.
    let mut padded = good.clone();
    padded.extend_from_slice(b"junk");
    assert!(matches!(decode_frame_exact(&padded), Err(FrameError::TrailingBytes { extra: 4 })));

    // Control payloads with hostile discriminants.
    let bad_role = [7u8, 0, 0, 0, 0];
    assert!(matches!(decode_hello(&bad_role), Err(FrameError::BadControl { byte: 7 })));
    let bad_status = [0u8, 0, 0, 0, 9];
    assert!(matches!(decode_sub_ack(&bad_status), Err(FrameError::BadControl { byte: 9 })));
    assert!(matches!(decode_tick_done(&[1, 2, 3]), Err(FrameError::Truncated { .. })));
}

/// Seeded mutation fuzz: flip bytes in well-formed frames; the decoder
/// must return `Ok` or a typed error, and an `Ok` must round back to a
/// decodable payload for submission frames.
#[test]
fn mutated_frames_never_panic() {
    let submission = sample_submission();
    let sub_frame = encode_submission_frame(0, 1, &submission);
    let control_frame = encode_frame(FrameKind::SubAck, 9, &[0, 0, 0, 0, 1]);
    let mut rng = StdRng::seed_from_u64(0x5EED_F8A3);

    for case in 0..4000 {
        let template = if case % 2 == 0 { &sub_frame } else { &control_frame };
        let mut bytes = template.clone();
        // 1–8 independent byte flips, sometimes a resize.
        for _ in 0..rng.gen_range(1..=8u32) {
            let pos = rng.gen_range(0..bytes.len());
            bytes[pos] ^= rng.gen_range(1..=255u8);
        }
        if rng.gen_bool(0.25) {
            let new_len = rng.gen_range(0..=bytes.len());
            bytes.truncate(new_len);
        } else if rng.gen_bool(0.1) {
            let extra = rng.gen_range(1..=16usize);
            for _ in 0..extra {
                let b: u8 = rng.gen_range(0..=255u8);
                bytes.push(b);
            }
        }
        // Typed result either way; a surviving submission frame must
        // still decode at the payload layer without panicking.
        if let Ok(view) = decode_frame_exact(&bytes) {
            if view.kind == FrameKind::Submission {
                let _ = decode_submission(view.payload).map(|v| v.materialize());
            }
        }
    }
}

/// Free-running byte soups: random lengths, random contents, streamed
/// through both the exact and the stream decoder.
#[test]
fn random_soup_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xB0A7);
    for _ in 0..4000 {
        let len = rng.gen_range(0..96usize);
        let mut bytes = vec![0u8; len];
        for b in &mut bytes {
            *b = rng.gen_range(0..=255u8);
        }
        // Bias some soups toward the real magic so the fuzz reaches
        // past the first header check.
        if len >= 3 && rng.gen_bool(0.5) {
            bytes[0] = b'L';
            bytes[1] = b'P';
            bytes[2] = 1;
        }
        let _ = decode_frame_exact(&bytes);
        let _ = decode_frame(&bytes);
        let _ = decode_submission(&bytes);
    }
}
