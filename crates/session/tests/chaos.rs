//! End-to-end chaos tests for the fault-tolerant session.
//!
//! The acceptance scenario: a seeded run with drop + duplication +
//! reordering + corruption and a TTP offline window must complete with
//! a valid conflict-free allocation, a non-empty quarantine report, a
//! byte-identical replay from the same seed, and zero panics.

use lppa::protocol::{build_submissions, SuSubmission};
use lppa::zero_replace::ZeroReplacePolicy;
use lppa::{LppaConfig, LppaError, Ttp};
use lppa_auction::bidder::{BidderId, Location};
use lppa_rng::rngs::StdRng;
use lppa_rng::{Rng, SeedableRng};
use lppa_session::chaos::{forge_presented_bid, truncate_point};
use lppa_session::fault::FaultConfig;
use lppa_session::session::{AuctionSession, SessionConfig, SessionOutcome};
use lppa_session::ttp_link::{TtpLinkConfig, TtpSchedule};

/// A TTP, a fleet of genuine submissions, and the RNG that built them.
fn fleet(n_bidders: usize, n_channels: usize, seed: u64) -> (Ttp, Vec<SuSubmission>, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ttp = Ttp::new(n_channels, LppaConfig::default(), &mut rng).unwrap();
    let policy = ZeroReplacePolicy::never(ttp.config().bid_max());
    let bidders: Vec<(Location, Vec<u32>)> = (0..n_bidders)
        .map(|_| {
            let loc = Location::new(rng.gen_range(0..=127), rng.gen_range(0..=127));
            let bids = (0..n_channels).map(|_| rng.gen_range(1..=100)).collect();
            (loc, bids)
        })
        .collect();
    let submissions = build_submissions(&bidders, &ttp, &policy, &mut rng).unwrap();
    (ttp, submissions, rng)
}

/// Every structural invariant a settled session must satisfy.
fn check_invariants(outcome: &SessionOutcome, n_bidders: usize) {
    // Charged, invalidated and provisional grants partition the grants.
    assert_eq!(
        outcome.outcome.assignments().len()
            + outcome.invalid_grants.len()
            + outcome.provisional.len()
            + outcome
                .quarantine
                .iter()
                .filter(|(_, r)| {
                    matches!(r, lppa_session::QuarantineReason::ChargeFailed { .. })
                })
                .count(),
        outcome.grants.len()
    );
    // A bidder holds at most one channel and was accepted.
    let mut holders: Vec<usize> = outcome.grants.iter().map(|g| g.bidder.0).collect();
    holders.sort_unstable();
    let unique = holders.len();
    holders.dedup();
    assert_eq!(holders.len(), unique, "a bidder won two channels");
    for &bidder in &holders {
        assert!(bidder < n_bidders);
        assert!(outcome.accepted.contains(&bidder), "winner {bidder} was never accepted");
        assert!(
            !outcome.quarantine.contains(bidder)
                || matches!(
                    outcome.quarantine.get(bidder),
                    Some(lppa_session::QuarantineReason::ChargeFailed { .. })
                )
        );
    }
    // Same-channel winners are conflict-free (compact-id graph).
    let compact_of = |original: usize| -> usize {
        outcome.accepted.iter().position(|&i| i == original).unwrap()
    };
    let n_channels = outcome.grants.iter().map(|g| g.channel.0 + 1).max().unwrap_or(0);
    for ch in 0..n_channels {
        let same: Vec<BidderId> = outcome
            .grants
            .iter()
            .filter(|g| g.channel.0 == ch)
            .map(|g| BidderId(compact_of(g.bidder.0)))
            .collect();
        assert!(outcome.conflicts.is_independent(&same), "channel {ch} winners conflict");
    }
    // Accepted and quarantined bidders partition the fleet.
    for i in 0..n_bidders {
        assert_ne!(
            outcome.accepted.contains(&i),
            outcome.quarantine.contains(i)
                && !matches!(
                    outcome.quarantine.get(i),
                    Some(lppa_session::QuarantineReason::ChargeFailed { .. })
                ),
            "bidder {i} is neither accepted nor quarantined (or both)"
        );
    }
}

#[test]
fn clean_network_accepts_everyone_and_charges_everything() {
    let (ttp, submissions, _) = fleet(8, 3, 1);
    let session = AuctionSession::new(&ttp, SessionConfig::default());
    let outcome = session.run(&submissions, 99).unwrap();
    assert_eq!(outcome.accepted, (0..8).collect::<Vec<_>>());
    assert!(outcome.quarantine.is_empty());
    assert!(outcome.provisional.is_empty());
    assert!(outcome.invalid_grants.is_empty(), "no disguises in this fleet");
    assert!(!outcome.grants.is_empty());
    assert_eq!(outcome.outcome.assignments().len(), outcome.grants.len());
    assert!(outcome.revenue() > 0);
    check_invariants(&outcome, 8);
}

#[test]
fn acceptance_chaos_round_survives_and_replays_byte_identically() {
    // The ISSUE acceptance criterion in one test: drop + duplication +
    // reordering + corruption, a TTP offline window, a ragged sender
    // and a price manipulator.
    let (ttp, mut submissions, mut rng) = fleet(12, 3, 2);
    truncate_point(&mut submissions[3], 1, 2).unwrap();
    forge_presented_bid(&mut submissions[7], &ttp, 0, 110, &mut rng).unwrap();

    let config = SessionConfig {
        faults: FaultConfig {
            drop: 0.3,
            duplicate: 0.25,
            corrupt: 0.2,
            delay: 0.4,
            max_delay: 3,
            reorder: true,
        },
        collect_deadline: 24,
        retry_backoff: 2,
        max_retries: 5,
        // TTP offline through most of collect, then flapping windows.
        ttp_schedule: TtpSchedule { offline_until: 28, online: 2, offline: 4 },
        ttp_link: TtpLinkConfig { batch_size: 2, failure: 0.3, backoff: 1, max_batch_retries: 8 },
        charge_deadline: 64,
        ..SessionConfig::default()
    };
    let session = AuctionSession::new(&ttp, config);

    let a = session.run(&submissions, 1234).unwrap();
    check_invariants(&a, 12);
    assert!(
        !a.quarantine.is_empty(),
        "the ragged sender alone guarantees a quarantine entry:\n{}",
        a.quarantine
    );
    assert!(a.quarantine.contains(3), "ragged sender must be quarantined");
    assert!(!a.grants.is_empty(), "the round still allocates");
    assert!(a.stats.dropped > 0 && a.stats.duplicated > 0 && a.stats.corrupted > 0);

    // Byte-identical replay: same seed, same everything.
    let b = session.run(&submissions, 1234).unwrap();
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(a.journal, b.journal);
    assert_eq!(a.journal.to_string(), b.journal.to_string());
    assert_eq!(a.stats, b.stats);

    // A different seed draws a different chaos schedule.
    let c = session.run(&submissions, 1235).unwrap();
    check_invariants(&c, 12);
    assert_ne!(a.journal, c.journal, "different seed, different schedule");
}

#[test]
fn manipulated_price_is_struck_at_charge_time_only() {
    let (ttp, mut submissions, mut rng) = fleet(4, 1, 3);
    // Everyone at the same spot: one grant total. The forger presents
    // an unbeatable bid, wins, and is struck by the TTP.
    forge_presented_bid(&mut submissions[2], &ttp, 0, 120, &mut rng).unwrap();
    let session = AuctionSession::new(&ttp, SessionConfig::default());
    let outcome = session.run(&submissions, 7).unwrap();
    // The forger got through collect (structurally clean)...
    assert!(outcome.accepted.contains(&2));
    // ...but if it won, the charge was refused and it was quarantined.
    if outcome.grants.iter().any(|g| g.bidder.0 == 2) {
        assert!(matches!(
            outcome.quarantine.get(2),
            Some(lppa_session::QuarantineReason::ChargeFailed {
                cause: LppaError::ChargeManipulated
            })
        ));
        assert!(outcome.outcome.assignments().iter().all(|a| a.bidder.0 != 2));
    }
    check_invariants(&outcome, 4);
}

#[test]
fn full_drop_fails_quorum() {
    let (ttp, submissions, _) = fleet(5, 2, 4);
    let config = SessionConfig {
        faults: FaultConfig { drop: 1.0, ..FaultConfig::none() },
        min_accepted: 2,
        ..SessionConfig::default()
    };
    let err = AuctionSession::new(&ttp, config).run(&submissions, 11).unwrap_err();
    assert_eq!(err, LppaError::QuorumNotReached { accepted: 0, required: 2 });
}

#[test]
fn quorum_commits_with_partial_fleet() {
    let (ttp, submissions, _) = fleet(10, 2, 5);
    let config = SessionConfig {
        faults: FaultConfig { drop: 0.6, ..FaultConfig::none() },
        collect_deadline: 4,
        max_retries: 1,
        retry_backoff: 3,
        min_accepted: 2,
        ..SessionConfig::default()
    };
    let outcome = AuctionSession::new(&ttp, config).run(&submissions, 21).unwrap();
    assert!(outcome.accepted.len() >= 2);
    assert!(
        !outcome.quarantine.is_empty(),
        "with 45% drop and 2 attempts some bidder misses the deadline"
    );
    for (_, reason) in outcome.quarantine.iter() {
        assert!(matches!(reason, lppa_session::QuarantineReason::MissedDeadline { .. }));
    }
    check_invariants(&outcome, 10);
}

#[test]
fn offline_ttp_degrades_to_provisional_allocation() {
    let (ttp, submissions, _) = fleet(6, 2, 6);
    let config = SessionConfig {
        ttp_schedule: TtpSchedule::never_online(),
        charge_deadline: 10,
        ..SessionConfig::default()
    };
    let outcome = AuctionSession::new(&ttp, config).run(&submissions, 31).unwrap();
    assert!(outcome.outcome.assignments().is_empty(), "nothing charged");
    assert_eq!(outcome.provisional.len(), outcome.grants.len());
    assert!(!outcome.provisional.is_empty());
    assert_eq!(outcome.revenue(), 0);
    assert!(outcome
        .journal
        .entries()
        .iter()
        .any(|e| matches!(e, lppa_session::JournalEntry::ChargesDeferred { .. })));
    check_invariants(&outcome, 6);
}

#[test]
fn interrupted_session_resumes_to_the_identical_outcome() {
    let (ttp, mut submissions, mut rng) = fleet(9, 3, 7);
    truncate_point(&mut submissions[4], 0, 3).unwrap();
    forge_presented_bid(&mut submissions[1], &ttp, 1, 115, &mut rng).unwrap();
    let config = SessionConfig {
        faults: FaultConfig::chaotic(),
        collect_deadline: 20,
        max_retries: 6,
        ttp_schedule: TtpSchedule { offline_until: 24, online: 3, offline: 3 },
        ttp_link: TtpLinkConfig { batch_size: 2, failure: 0.25, backoff: 1, max_batch_retries: 8 },
        charge_deadline: 48,
        ..SessionConfig::default()
    };
    let session = AuctionSession::new(&ttp, config);
    let original = session.run(&submissions, 555).unwrap();

    // Crash after collect committed: all that survives is the journal.
    let salvaged = original.journal.prefix_through_collect().unwrap();
    let recovered = session.resume(&submissions, &salvaged).unwrap();

    assert_eq!(original.fingerprint(), recovered.fingerprint());
    assert_eq!(original.journal, recovered.journal);
    assert_eq!(original.accepted, recovered.accepted);
    assert_eq!(original.outcome.assignments(), recovered.outcome.assignments());
    assert_eq!(original.quarantine.fingerprint(), recovered.quarantine.fingerprint());

    // Resuming the *full* journal also works (idempotent recovery).
    let again = session.resume(&submissions, &original.journal).unwrap();
    assert_eq!(original.fingerprint(), again.fingerprint());

    // A journal that never committed cannot be resumed.
    assert!(matches!(
        session.resume(&submissions, &lppa_session::Journal::new()),
        Err(LppaError::Internal { .. })
    ));
}

#[test]
fn fault_matrix_never_panics_and_keeps_invariants() {
    let (ttp, submissions, _) = fleet(7, 2, 8);
    let profiles = [
        FaultConfig::none(),
        FaultConfig { drop: 0.5, ..FaultConfig::none() },
        FaultConfig { duplicate: 0.8, reorder: true, ..FaultConfig::none() },
        FaultConfig { corrupt: 0.6, ..FaultConfig::none() },
        FaultConfig { delay: 0.9, max_delay: 6, reorder: true, ..FaultConfig::none() },
        FaultConfig::chaotic(),
    ];
    let schedules = [
        TtpSchedule::always_online(),
        TtpSchedule { offline_until: 30, online: 1, offline: 7 },
        TtpSchedule::never_online(),
    ];
    for (p, faults) in profiles.into_iter().enumerate() {
        for (s, ttp_schedule) in schedules.into_iter().enumerate() {
            for seed in 0..3u64 {
                let config = SessionConfig {
                    faults,
                    ttp_schedule,
                    charge_deadline: 40,
                    ..SessionConfig::default()
                };
                match AuctionSession::new(&ttp, config).run(&submissions, seed) {
                    Ok(outcome) => check_invariants(&outcome, 7),
                    Err(LppaError::QuorumNotReached { .. }) => {}
                    Err(other) => panic!("profile {p}/schedule {s}/seed {seed}: {other}"),
                }
            }
        }
    }
}
