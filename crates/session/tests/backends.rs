//! End-to-end masking-backend coverage for the session layer: every
//! [`BackendKind`] drives a full collect → allocate → charge → settle
//! round, the exact backends agree bit-for-bit, and the audited ledger
//! backend's root survives crash-recovery replay.

use lppa::protocol::{build_submissions, SuSubmission};
use lppa::zero_replace::ZeroReplacePolicy;
use lppa::{LppaConfig, Ttp};
use lppa_auction::bidder::Location;
use lppa_prefix::backend::BackendKind;
use lppa_rng::rngs::StdRng;
use lppa_rng::{Rng, SeedableRng};
use lppa_session::fault::FaultConfig;
use lppa_session::session::{AuctionSession, SessionConfig};
use lppa_session::ttp_link::{TtpLinkConfig, TtpSchedule};

fn fleet(n_bidders: usize, n_channels: usize, seed: u64) -> (Ttp, Vec<SuSubmission>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ttp = Ttp::new(n_channels, LppaConfig::default(), &mut rng).unwrap();
    let policy = ZeroReplacePolicy::uniform(0.5, ttp.config().bid_max());
    let bidders: Vec<(Location, Vec<u32>)> = (0..n_bidders)
        .map(|_| {
            let loc = Location::new(rng.gen_range(0..=127), rng.gen_range(0..=127));
            let bids = (0..n_channels).map(|_| rng.gen_range(0..=100)).collect();
            (loc, bids)
        })
        .collect();
    let submissions = build_submissions(&bidders, &ttp, &policy, &mut rng).unwrap();
    (ttp, submissions)
}

fn config_for(backend: BackendKind) -> SessionConfig {
    SessionConfig { backend, ..SessionConfig::default() }
}

#[test]
fn every_backend_settles_a_clean_round() {
    let (ttp, submissions) = fleet(10, 4, 41);
    for kind in BackendKind::ALL {
        let outcome = AuctionSession::new(&ttp, config_for(kind)).run(&submissions, 17).unwrap();
        assert_eq!(outcome.accepted.len(), 10, "{kind:?}");
        // Grants partition into charged, invalid and provisional.
        assert_eq!(
            outcome.outcome.assignments().len()
                + outcome.invalid_grants.len()
                + outcome.provisional.len(),
            outcome.grants.len(),
            "{kind:?}"
        );
        assert_eq!(outcome.ledger_root.is_some(), kind == BackendKind::Ledger, "{kind:?}");
    }
}

#[test]
fn exact_backends_are_bit_identical_and_deterministic() {
    let (ttp, submissions) = fleet(12, 3, 42);
    let run = |kind: BackendKind, seed: u64| {
        AuctionSession::new(&ttp, config_for(kind)).run(&submissions, seed).unwrap()
    };
    for seed in [5u64, 99] {
        let hmac = run(BackendKind::Hmac, seed);
        let ledger = run(BackendKind::Ledger, seed);
        // The ledger backend replicates the hmac classes and RNG draws.
        assert_eq!(hmac.fingerprint(), ledger.fingerprint(), "seed {seed}");
        assert_eq!(hmac.outcome.assignments(), ledger.outcome.assignments());
        assert_eq!(hmac.grants, ledger.grants);
        // Each backend is individually deterministic (bloom included —
        // its filters are keyed only by the tags they index).
        for kind in BackendKind::ALL {
            assert_eq!(
                run(kind, seed).fingerprint(),
                run(kind, seed).fingerprint(),
                "{kind:?} seed {seed}"
            );
        }
    }
}

#[test]
fn ledger_root_is_deterministic_and_replays_on_resume() {
    let (ttp, submissions) = fleet(9, 3, 43);
    let config = SessionConfig {
        backend: BackendKind::Ledger,
        faults: FaultConfig::chaotic(),
        collect_deadline: 20,
        max_retries: 6,
        ttp_schedule: TtpSchedule { offline_until: 24, online: 3, offline: 3 },
        ttp_link: TtpLinkConfig { batch_size: 2, failure: 0.25, backoff: 1, max_batch_retries: 8 },
        charge_deadline: 48,
        ..SessionConfig::default()
    };
    let session = AuctionSession::new(&ttp, config);
    let original = session.run(&submissions, 555).unwrap();
    let root = original.ledger_root.expect("ledger backend publishes a root");

    // Same inputs, same audit chain.
    let rerun = session.run(&submissions, 555).unwrap();
    assert_eq!(rerun.ledger_root, Some(root));

    // Crash after collect committed: the journal-recovered session
    // rebuilds the byte-identical chain and root.
    let salvaged = original.journal.prefix_through_collect().unwrap();
    let recovered = session.resume(&submissions, &salvaged).unwrap();
    assert_eq!(recovered.fingerprint(), original.fingerprint());
    assert_eq!(recovered.ledger_root, Some(root));

    // A different session seed audits to a different root.
    let other = session.run(&submissions, 556).unwrap();
    assert_ne!(other.ledger_root, Some(root));
}
