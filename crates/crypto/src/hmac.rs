//! HMAC-SHA256 (RFC 2104 / FIPS 198-1), built on [`crate::sha256`].
//!
//! Every prefix in the LPPA protocol is masked as
//! `HMAC_k(numericalized prefix)`; the keyed hash is what prevents the
//! curious auctioneer from reversing a masked set back to a location or a
//! bid. Validated against the RFC 4231 test vectors.

use crate::lanes::{self, MAX_LANES};
use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Longest message the batched two-compression HMAC path handles: the
/// message, the `0x80` terminator and the 8-byte bit length must all fit
/// in the single inner block that follows the ipad block.
///
/// Every numericalized prefix in the LPPA hot path is 9 bytes, far under
/// this bound; longer messages fall back to the scalar path inside the
/// batch API, so callers never need to check it themselves.
pub const MAX_BATCH_MSG: usize = BLOCK_LEN - 9;

/// Incremental HMAC-SHA256.
///
/// # Examples
///
/// ```
/// use lppa_crypto::hmac::HmacSha256;
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"The quick brown fox jumps over the lazy dog");
/// let tag = mac.finalize();
/// assert_eq!(tag[..2], [0xf7, 0xbc]);
/// ```
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    /// Outer SHA-256 state, already past the opad block.
    outer: Sha256,
}

/// Derives the inner/outer pad blocks for `key` (RFC 2104 §2).
fn pad_blocks(key: &[u8]) -> ([u8; BLOCK_LEN], [u8; BLOCK_LEN]) {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let digest = crate::sha256::sha256(key);
        key_block[..DIGEST_LEN].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0u8; BLOCK_LEN];
    let mut opad = [0u8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] = key_block[i] ^ 0x36;
        opad[i] = key_block[i] ^ 0x5c;
    }
    (ipad, opad)
}

impl HmacSha256 {
    /// Creates a MAC instance keyed with `key`.
    ///
    /// Keys longer than the 64-byte block size are hashed first, exactly as
    /// the RFC prescribes; any key length is accepted.
    pub fn new(key: &[u8]) -> Self {
        HmacMidstate::new(key).mac()
    }

    /// Feeds message bytes into the MAC.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Consumes the MAC and returns the 32-byte authentication tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer;
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// Precomputed HMAC-SHA256 key schedule: the inner and outer SHA-256
/// states *after* absorbing the pad blocks.
///
/// Deriving those states costs two compressions and depends only on the
/// key, yet [`HmacSha256::new`] + `finalize` repeats half of that work on
/// every call. Caching the midstate once per key cuts a short-message
/// (≤ 55 bytes) MAC from four SHA-256 compressions to two — and masking a
/// prefix tag *is* a short-message MAC, so the whole LPPA hot path (every
/// `Tag::compute`, point family and range cover) runs through this type
/// via the midstate embedded in `crate::keys::HmacKey`.
///
/// # Examples
///
/// ```
/// use lppa_crypto::hmac::{hmac_sha256, HmacMidstate};
///
/// let midstate = HmacMidstate::new(b"key");
/// assert_eq!(midstate.compute(b"msg"), hmac_sha256(b"key", b"msg"));
/// ```
#[derive(Clone)]
pub struct HmacMidstate {
    /// SHA-256 state after compressing `key ⊕ ipad`.
    inner: Sha256,
    /// SHA-256 state after compressing `key ⊕ opad`.
    outer: Sha256,
}

impl std::fmt::Debug for HmacMidstate {
    /// The midstates are key-equivalent material; never print them.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HmacMidstate(<redacted>)")
    }
}

impl HmacMidstate {
    /// Precomputes the key schedule for `key`.
    ///
    /// Keys longer than the 64-byte block size are hashed first, exactly
    /// as for [`HmacSha256::new`]; the two are interchangeable for any
    /// key length.
    pub fn new(key: &[u8]) -> Self {
        let (ipad, opad) = pad_blocks(key);
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        Self { inner, outer }
    }

    /// One-shot MAC of `message` from the cached midstate.
    pub fn compute(&self, message: &[u8]) -> [u8; DIGEST_LEN] {
        let mut inner = self.inner.clone();
        inner.update(message);
        let inner_digest = inner.finalize();
        let mut outer = self.outer.clone();
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Starts an incremental MAC from the cached midstate; feed it with
    /// [`HmacSha256::update`] and close with [`HmacSha256::finalize`].
    pub fn mac(&self) -> HmacSha256 {
        HmacSha256 { inner: self.inner.clone(), outer: self.outer.clone() }
    }

    /// MACs a batch of independent messages through the multi-lane
    /// SHA-256 kernel, delivering `(index, tag)` pairs to `sink`.
    ///
    /// A short message (≤ [`MAX_BATCH_MSG`] bytes) costs exactly two
    /// compressions from the cached midstate — one inner block carrying
    /// the padded message, one outer block carrying the inner digest —
    /// and both are batched lane-wise across the messages, so N lanes
    /// amortize one message-schedule walk over N MACs. Longer messages
    /// take the scalar [`Self::compute`] path. Tags are bit-identical to
    /// per-message [`Self::compute`] calls; delivery order is
    /// unspecified (lanes flush as they fill), which is why the sink
    /// receives the message index.
    ///
    /// # Examples
    ///
    /// ```
    /// use lppa_crypto::hmac::HmacMidstate;
    ///
    /// let midstate = HmacMidstate::new(b"key");
    /// let msgs: &[&[u8]] = &[b"a", b"bb", b"ccc"];
    /// let mut tags = vec![[0u8; 32]; msgs.len()];
    /// midstate.compute_batch_into(msgs, |i, tag| tags[i] = tag);
    /// assert_eq!(tags[1], midstate.compute(b"bb"));
    /// ```
    pub fn compute_batch_into<M, F>(&self, messages: &[M], sink: F)
    where
        M: AsRef<[u8]>,
        F: FnMut(usize, [u8; DIGEST_LEN]),
    {
        self.compute_batch_into_with_width(lanes::lane_width(), messages, sink);
    }

    /// [`Self::compute_batch_into`] with an explicit lane width, for
    /// determinism tests and the differential oracle.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in [`lanes::SUPPORTED_WIDTHS`].
    pub fn compute_batch_into_with_width<M, F>(&self, width: usize, messages: &[M], mut sink: F)
    where
        M: AsRef<[u8]>,
        F: FnMut(usize, [u8; DIGEST_LEN]),
    {
        assert!(lanes::SUPPORTED_WIDTHS.contains(&width), "unsupported lane width {width}");
        let inner_mid = self.inner.state_words();
        let outer_mid = self.outer.state_words();

        // Lane staging buffers live on the stack; `filled` lanes are in
        // use. Flushing at `width` keeps every kernel pass full.
        let mut idx = [0usize; MAX_LANES];
        let mut blocks = [[0u8; BLOCK_LEN]; MAX_LANES];
        let mut filled = 0usize;

        for (i, message) in messages.iter().enumerate() {
            let msg = message.as_ref();
            if msg.len() > MAX_BATCH_MSG {
                // Multi-block message: scalar fallback, emitted eagerly.
                sink(i, self.compute(msg));
                continue;
            }
            // Inner block: message ‖ 0x80 ‖ zeros ‖ total bit length
            // (the ipad block already absorbed counts toward it).
            let block = &mut blocks[filled];
            *block = [0u8; BLOCK_LEN];
            block[..msg.len()].copy_from_slice(msg);
            block[msg.len()] = 0x80;
            let bit_len = ((BLOCK_LEN + msg.len()) as u64) * 8;
            block[BLOCK_LEN - 8..].copy_from_slice(&bit_len.to_be_bytes());
            idx[filled] = i;
            filled += 1;

            if filled == width {
                flush_lanes(width, &inner_mid, &outer_mid, &idx[..filled], &blocks, &mut sink);
                filled = 0;
            }
        }
        if filled > 0 {
            flush_lanes(width, &inner_mid, &outer_mid, &idx[..filled], &blocks, &mut sink);
        }
    }

    /// Convenience wrapper over [`Self::compute_batch_into`] collecting
    /// the tags into a `Vec` in message order.
    pub fn compute_batch<M: AsRef<[u8]>>(&self, messages: &[M]) -> Vec<[u8; DIGEST_LEN]> {
        let mut out = vec![[0u8; DIGEST_LEN]; messages.len()];
        self.compute_batch_into(messages, |i, tag| out[i] = tag);
        out
    }
}

/// Runs the two batched compressions for `idx.len()` staged lanes and
/// delivers the digests: inner blocks from the ipad midstate, then outer
/// blocks (`inner digest ‖ padding`) from the opad midstate.
fn flush_lanes<F: FnMut(usize, [u8; DIGEST_LEN])>(
    width: usize,
    inner_mid: &[u32; 8],
    outer_mid: &[u32; 8],
    idx: &[usize],
    blocks: &[[u8; BLOCK_LEN]; MAX_LANES],
    sink: &mut F,
) {
    let n = idx.len();
    // A partial flush is padded with dummy lanes up to the next kernel
    // width (not past `width`): one full N-lane pass over n live + pad
    // dummy lanes is cheaper than splitting the remainder into narrower
    // passes and scalar stragglers. Dummy outputs are simply discarded,
    // so the live tags stay bit-identical.
    let run = lanes::SUPPORTED_WIDTHS
        .into_iter()
        .find(|&w| w >= n)
        .unwrap_or(MAX_LANES)
        .min(width.max(n));
    let mut states = [[0u32; 8]; MAX_LANES];
    for state in &mut states[..run] {
        *state = *inner_mid;
    }
    lanes::compress_batch_with_width(width, &mut states[..run], &blocks[..run]);

    // The outer message is always digest-sized: 32 bytes, terminator,
    // and the (64 + 32) * 8 = 768 bit length — one block exactly.
    let mut outer_blocks = [[0u8; BLOCK_LEN]; MAX_LANES];
    for (block, state) in outer_blocks[..run].iter_mut().zip(&states[..run]) {
        for (chunk, word) in block[..DIGEST_LEN].chunks_exact_mut(4).zip(state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        block[DIGEST_LEN] = 0x80;
        let bit_len = ((BLOCK_LEN + DIGEST_LEN) as u64) * 8;
        block[BLOCK_LEN - 8..].copy_from_slice(&bit_len.to_be_bytes());
    }
    for state in &mut states[..run] {
        *state = *outer_mid;
    }
    lanes::compress_batch_with_width(width, &mut states[..run], &outer_blocks[..run]);

    for (lane, &message_index) in idx.iter().enumerate() {
        let mut tag = [0u8; DIGEST_LEN];
        for (chunk, word) in tag.chunks_exact_mut(4).zip(states[lane].iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        sink(message_index, tag);
    }
}

/// One-shot HMAC-SHA256.
///
/// # Examples
///
/// ```
/// let tag = lppa_crypto::hmac::hmac_sha256(b"secret", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Constant-time equality check for two MAC tags.
///
/// The auctioneer compares masked prefixes by equality; using a
/// short-circuiting comparison there would open a (mostly theoretical,
/// in-process) timing channel, so the library offers this helper.
pub fn verify_tag(expected: &[u8], actual: &[u8]) -> bool {
    if expected.len() != actual.len() {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(actual.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Checks one RFC 4231 vector through every keying path: the
    /// one-shot function, a fresh precomputed [`HmacMidstate`], and an
    /// incremental MAC started from that midstate. `expected_hex` may be
    /// a truncated tag (RFC 4231 case 5 specifies 128 bits).
    fn check_vector(key: &[u8], data: &[u8], expected_hex: &str) {
        assert!(hex(&hmac_sha256(key, data)).starts_with(expected_hex));
        let midstate = HmacMidstate::new(key);
        assert!(hex(&midstate.compute(data)).starts_with(expected_hex));
        let mut mac = midstate.mac();
        mac.update(data);
        assert!(hex(&mac.finalize()).starts_with(expected_hex));
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case_1() {
        check_vector(
            &[0x0bu8; 20],
            b"Hi There",
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
        );
    }

    // RFC 4231 test case 2: short key, short data.
    #[test]
    fn rfc4231_case_2() {
        check_vector(
            b"Jefe",
            b"what do ya want for nothing?",
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
        );
    }

    // RFC 4231 test case 3: key and data of 0xaa/0xdd fill.
    #[test]
    fn rfc4231_case_3() {
        check_vector(
            &[0xaau8; 20],
            &[0xddu8; 50],
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
        );
    }

    // RFC 4231 test case 4: 25-byte counting key, 0xcd fill data.
    #[test]
    fn rfc4231_case_4() {
        let key: Vec<u8> = (0x01..=0x19).collect();
        check_vector(
            &key,
            &[0xcdu8; 50],
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b",
        );
    }

    // RFC 4231 test case 5: the vector is specified as a 128-bit
    // truncated tag — exactly the truncation `crate::tag::Tag` applies.
    #[test]
    fn rfc4231_case_5_truncated() {
        check_vector(&[0x0cu8; 20], b"Test With Truncation", "a3b6167473100ee06e0c796c2955552b");
    }

    // RFC 4231 test case 6: key larger than one block.
    #[test]
    fn rfc4231_case_6_long_key() {
        check_vector(
            &[0xaau8; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
        );
    }

    // RFC 4231 test case 7: long key and long data.
    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let data: &[u8] = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        check_vector(
            &[0xaau8; 131],
            data,
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2",
        );
    }

    #[test]
    fn midstate_is_reusable_across_messages() {
        let midstate = HmacMidstate::new(b"reused-key");
        for msg in [b"a".as_slice(), b"bb", b"", &[0u8; 200]] {
            assert_eq!(midstate.compute(msg), hmac_sha256(b"reused-key", msg));
        }
    }

    #[test]
    fn incremental_matches_one_shot() {
        let key = b"0123456789abcdef";
        let msg: Vec<u8> = (0u16..300).map(|i| (i & 0xff) as u8).collect();
        let one_shot = hmac_sha256(key, &msg);
        let mut mac = HmacSha256::new(key);
        for chunk in msg.chunks(7) {
            mac.update(chunk);
        }
        assert_eq!(mac.finalize(), one_shot);
    }

    #[test]
    fn different_keys_produce_different_tags() {
        let t1 = hmac_sha256(b"key-one", b"same message");
        let t2 = hmac_sha256(b"key-two", b"same message");
        assert_ne!(t1, t2);
    }

    #[test]
    fn empty_key_and_message_are_accepted() {
        // Degenerate inputs should still produce a well-defined tag.
        let tag = hmac_sha256(b"", b"");
        assert_eq!(tag.len(), 32);
    }

    #[test]
    fn batch_matches_scalar_for_every_width_and_size() {
        let midstate = HmacMidstate::new(b"batch-key");
        // Message lengths straddle the MAX_BATCH_MSG fallback boundary.
        let messages: Vec<Vec<u8>> = (0..23u8)
            .map(|i| {
                let len = [0, 1, 9, 54, 55, 56, 100][i as usize % 7];
                vec![i ^ 0x5a; len]
            })
            .collect();
        let want: Vec<_> = messages.iter().map(|m| midstate.compute(m)).collect();
        for width in crate::lanes::SUPPORTED_WIDTHS {
            for n in [0, 1, 3, 8, 23] {
                let mut got = vec![[0u8; DIGEST_LEN]; n];
                let mut seen = vec![false; n];
                midstate.compute_batch_into_with_width(width, &messages[..n], |i, tag| {
                    got[i] = tag;
                    seen[i] = true;
                });
                assert!(seen.iter().all(|&s| s), "width={width} n={n}: sink missed an index");
                assert_eq!(got, want[..n], "width={width} n={n}");
            }
        }
    }

    #[test]
    fn compute_batch_returns_message_order() {
        let midstate = HmacMidstate::new(b"vec-key");
        let messages: Vec<Vec<u8>> = (0..11u8).map(|i| vec![i; (i as usize * 7) % 60]).collect();
        let got = midstate.compute_batch(&messages);
        for (m, tag) in messages.iter().zip(&got) {
            assert_eq!(*tag, midstate.compute(m));
        }
    }

    #[test]
    fn batch_matches_rfc4231_vectors() {
        // Case 1 and case 2 messages, MACed as one batch per key.
        let m1 = HmacMidstate::new(&[0x0bu8; 20]);
        let tags = m1.compute_batch(&[b"Hi There".as_slice()]);
        assert!(hex(&tags[0])
            .starts_with("b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"));
        let m2 = HmacMidstate::new(b"Jefe");
        let tags = m2.compute_batch(&[b"what do ya want for nothing?".as_slice()]);
        assert!(hex(&tags[0])
            .starts_with("5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"));
    }

    #[test]
    fn verify_tag_accepts_equal_and_rejects_unequal() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify_tag(&tag, &tag));
        let mut other = tag;
        other[31] ^= 1;
        assert!(!verify_tag(&tag, &other));
        assert!(!verify_tag(&tag, &tag[..31]));
    }
}
