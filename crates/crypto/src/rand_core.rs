//! The minimal random-source interface the primitives consume.
//!
//! The key and nonce generators in [`crate::keys`] and [`crate::seal`]
//! only need a byte source; defining that interface here (rather than
//! pulling in an external RNG crate) keeps the workspace fully
//! self-contained and buildable offline. The concrete deterministic
//! generator lives in the `lppa-rng` crate, which implements this trait
//! on top of [`crate::chacha20::ChaCha20`].

/// An object-safe source of random bytes.
///
/// Mirrors the de-facto standard `RngCore` shape so generic code can be
/// written against `R: RngCore + ?Sized` or `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with bytes from the stream.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A deterministic splitmix64 generator for this crate's own unit tests.
///
/// The unit tests cannot use `lppa-rng`: the test harness recompiles this
/// crate, so `lppa-rng`'s impls target the separately compiled library's
/// `RngCore`, which the test build's trait does not unify with. Doctests
/// link the library externally and keep using `lppa-rng`.
#[cfg(test)]
pub(crate) struct TestRng(u64);

#[cfg(test)]
impl TestRng {
    pub(crate) fn new(seed: u64) -> Self {
        Self(seed)
    }
}

#[cfg(test)]
impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}
