//! Key material newtypes used throughout the LPPA protocol.
//!
//! The TTP generates and distributes three kinds of secrets (§IV, §V of the
//! paper):
//!
//! * `g0` — the HMAC key masking *location* prefixes ([`HmacKey`]);
//! * `gb` / `gb_1..gb_k` — HMAC keys masking *bid* prefixes, one per
//!   channel in the advanced scheme ([`HmacKey`]);
//! * `gc` — the TTP's symmetric key sealing the exact bid values
//!   ([`SealKey`]).
//!
//! All of these are opaque 32-byte secrets; the newtypes keep them from
//! being confused with one another and keep `Debug` output free of key
//! bytes.

use crate::rand_core::RngCore;

/// Length in bytes of every key in the system.
pub const KEY_LEN: usize = 32;

macro_rules! key_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Clone, PartialEq, Eq)]
        pub struct $name([u8; KEY_LEN]);

        impl $name {
            /// Wraps explicit key bytes (e.g. from a key-distribution
            /// message).
            pub fn from_bytes(bytes: [u8; KEY_LEN]) -> Self {
                Self(bytes)
            }

            /// Samples a fresh random key from `rng`.
            pub fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                let mut bytes = [0u8; KEY_LEN];
                rng.fill_bytes(&mut bytes);
                Self(bytes)
            }

            /// Exposes the raw key bytes to the primitives that consume
            /// them.
            pub fn as_bytes(&self) -> &[u8; KEY_LEN] {
                &self.0
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "(<redacted>)"))
            }
        }

        impl From<[u8; KEY_LEN]> for $name {
            fn from(bytes: [u8; KEY_LEN]) -> Self {
                Self::from_bytes(bytes)
            }
        }
    };
}

key_newtype! {
    /// A key for HMAC-SHA256 prefix masking (`g0`, `gb`, `gb_r`).
    ///
    /// # Examples
    ///
    /// ```
    /// use lppa_crypto::keys::HmacKey;
    /// use lppa_rng::SeedableRng;
    ///
    /// let mut rng = lppa_rng::rngs::StdRng::seed_from_u64(7);
    /// let key = HmacKey::random(&mut rng);
    /// assert_eq!(key.as_bytes().len(), 32);
    /// ```
    HmacKey
}

key_newtype! {
    /// The TTP's symmetric sealing key (`gc`), used with
    /// [`crate::seal::SealedValue`].
    SealKey
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand_core::TestRng;

    #[test]
    fn random_keys_differ() {
        let mut rng = TestRng::new(1);
        let a = HmacKey::random(&mut rng);
        let b = HmacKey::random(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn random_is_deterministic_under_seed() {
        let a = HmacKey::random(&mut TestRng::new(99));
        let b = HmacKey::random(&mut TestRng::new(99));
        assert_eq!(a, b);
    }

    #[test]
    fn from_bytes_roundtrips() {
        let bytes = [0xabu8; KEY_LEN];
        let key = SealKey::from_bytes(bytes);
        assert_eq!(key.as_bytes(), &bytes);
        let key2 = SealKey::from(bytes);
        assert_eq!(key, key2);
    }

    #[test]
    fn debug_never_leaks_key_bytes() {
        let key = HmacKey::from_bytes([0x11u8; KEY_LEN]);
        let repr = format!("{key:?}");
        assert!(repr.contains("redacted"));
        assert!(!repr.contains("11"));
        let seal = SealKey::from_bytes([0x22u8; KEY_LEN]);
        assert!(format!("{seal:?}").contains("SealKey"));
    }
}
