//! Key material newtypes used throughout the LPPA protocol.
//!
//! The TTP generates and distributes three kinds of secrets (§IV, §V of the
//! paper):
//!
//! * `g0` — the HMAC key masking *location* prefixes ([`HmacKey`]);
//! * `gb` / `gb_1..gb_k` — HMAC keys masking *bid* prefixes, one per
//!   channel in the advanced scheme ([`HmacKey`]);
//! * `gc` — the TTP's symmetric key sealing the exact bid values
//!   ([`SealKey`]).
//!
//! All of these are opaque 32-byte secrets; the newtypes keep them from
//! being confused with one another and keep `Debug` output free of key
//! bytes.

use crate::hmac::HmacMidstate;
use crate::rand_core::RngCore;

/// Length in bytes of every key in the system.
pub const KEY_LEN: usize = 32;

/// A key for HMAC-SHA256 prefix masking (`g0`, `gb`, `gb_r`).
///
/// Construction precomputes the HMAC key schedule (the inner/outer
/// SHA-256 midstates, see [`HmacMidstate`]), so every tag masked under
/// the key costs two compressions instead of four. Keys are created once
/// per auction by the TTP and then used for millions of tags, so the
/// two-compression setup cost is irrelevant while the per-tag saving is
/// the protocol's single hottest optimization.
///
/// # Examples
///
/// ```
/// use lppa_crypto::keys::HmacKey;
/// use lppa_rng::SeedableRng;
///
/// let mut rng = lppa_rng::rngs::StdRng::seed_from_u64(7);
/// let key = HmacKey::random(&mut rng);
/// assert_eq!(key.as_bytes().len(), 32);
/// ```
#[derive(Clone)]
pub struct HmacKey {
    bytes: [u8; KEY_LEN],
    /// Cached HMAC key schedule for `bytes` (derived, never compared).
    midstate: HmacMidstate,
}

impl HmacKey {
    /// Wraps explicit key bytes (e.g. from a key-distribution message).
    pub fn from_bytes(bytes: [u8; KEY_LEN]) -> Self {
        Self { bytes, midstate: HmacMidstate::new(&bytes) }
    }

    /// Samples a fresh random key from `rng`.
    pub fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut bytes = [0u8; KEY_LEN];
        rng.fill_bytes(&mut bytes);
        Self::from_bytes(bytes)
    }

    /// Exposes the raw key bytes to the primitives that consume them.
    pub fn as_bytes(&self) -> &[u8; KEY_LEN] {
        &self.bytes
    }

    /// The precomputed HMAC-SHA256 key schedule for this key.
    pub fn midstate(&self) -> &HmacMidstate {
        &self.midstate
    }
}

impl PartialEq for HmacKey {
    fn eq(&self, other: &Self) -> bool {
        // The midstate is a pure function of the bytes.
        self.bytes == other.bytes
    }
}

impl Eq for HmacKey {}

impl std::fmt::Debug for HmacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HmacKey(<redacted>)")
    }
}

impl From<[u8; KEY_LEN]> for HmacKey {
    fn from(bytes: [u8; KEY_LEN]) -> Self {
        Self::from_bytes(bytes)
    }
}

/// The TTP's symmetric sealing key (`gc`), used with
/// [`crate::seal::SealedValue`].
///
/// Sealing is encrypt-then-MAC: ChaCha20 consumes the raw bytes while
/// the authentication tag is HMAC-SHA256 under the same key. As with
/// [`HmacKey`], construction caches the HMAC key schedule so every
/// seal/open pays two compressions for its tag instead of four — the
/// auctioneer opens one sealed price per comparison-ambiguous winner,
/// and bidders seal one price per channel per round.
#[derive(Clone)]
pub struct SealKey {
    bytes: [u8; KEY_LEN],
    /// Cached HMAC key schedule for `bytes` (derived, never compared).
    midstate: HmacMidstate,
}

impl SealKey {
    /// Wraps explicit key bytes (e.g. from a key-distribution message).
    pub fn from_bytes(bytes: [u8; KEY_LEN]) -> Self {
        Self { bytes, midstate: HmacMidstate::new(&bytes) }
    }

    /// Samples a fresh random key from `rng`.
    pub fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut bytes = [0u8; KEY_LEN];
        rng.fill_bytes(&mut bytes);
        Self::from_bytes(bytes)
    }

    /// Exposes the raw key bytes to the primitives that consume them.
    pub fn as_bytes(&self) -> &[u8; KEY_LEN] {
        &self.bytes
    }

    /// The precomputed HMAC-SHA256 key schedule for this key.
    pub fn midstate(&self) -> &HmacMidstate {
        &self.midstate
    }
}

impl PartialEq for SealKey {
    fn eq(&self, other: &Self) -> bool {
        // The midstate is a pure function of the bytes.
        self.bytes == other.bytes
    }
}

impl Eq for SealKey {}

impl std::fmt::Debug for SealKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SealKey(<redacted>)")
    }
}

impl From<[u8; KEY_LEN]> for SealKey {
    fn from(bytes: [u8; KEY_LEN]) -> Self {
        Self::from_bytes(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand_core::TestRng;

    #[test]
    fn random_keys_differ() {
        let mut rng = TestRng::new(1);
        let a = HmacKey::random(&mut rng);
        let b = HmacKey::random(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn random_is_deterministic_under_seed() {
        let a = HmacKey::random(&mut TestRng::new(99));
        let b = HmacKey::random(&mut TestRng::new(99));
        assert_eq!(a, b);
    }

    #[test]
    fn from_bytes_roundtrips() {
        let bytes = [0xabu8; KEY_LEN];
        let key = SealKey::from_bytes(bytes);
        assert_eq!(key.as_bytes(), &bytes);
        let key2 = SealKey::from(bytes);
        assert_eq!(key, key2);
    }

    #[test]
    fn debug_never_leaks_key_bytes() {
        let key = HmacKey::from_bytes([0x11u8; KEY_LEN]);
        let repr = format!("{key:?}");
        assert!(repr.contains("redacted"));
        assert!(!repr.contains("11"));
        let seal = SealKey::from_bytes([0x22u8; KEY_LEN]);
        assert!(format!("{seal:?}").contains("SealKey"));
    }
}
