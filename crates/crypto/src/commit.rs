//! An append-only, sha-chained commitment ledger.
//!
//! The ledger backend audits an auction round: every submission
//! checksum, grant and charge verdict is appended as a [`LedgerEntry`]
//! whose digest covers the previous entry's digest, so the final
//! [`CommitmentLedger::root`] commits to the entire history in order.
//! At settle time the auctioneer replays the chain
//! ([`CommitmentLedger::verify`]) and publishes the root; any party
//! holding the entries can re-derive it, which is the
//! dispute-resolution story — a bidder contesting a verdict replays
//! the public entries and either reproduces the root (the auctioneer
//! followed its log) or exhibits the first index where the chain
//! breaks.
//!
//! Tampering is detected structurally:
//!
//! * flipping any byte of any entry (label, payload, or either digest)
//!   changes or contradicts that entry's recomputed digest —
//!   [`LedgerError::DigestMismatch`] / [`LedgerError::BrokenChain`];
//! * reordering entries breaks the `prev` linkage —
//!   [`LedgerError::BrokenChain`];
//! * truncating the chain changes the root —
//!   [`LedgerError::RootMismatch`] against the published value.
//!
//! Entry digests are plain SHA-256 over an unambiguous length-prefixed
//! encoding; no key is involved because the ledger provides *public
//! auditability*, not secrecy — the payloads it chains are already
//! masked or checksummed upstream.

use crate::sha256::{sha256, Sha256, DIGEST_LEN};

/// Domain-separation prefix hashed into the genesis root.
const GENESIS: &[u8] = b"lppa-ledger-genesis-v1";

/// One chained entry: a labelled payload bound to its predecessor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LedgerEntry {
    /// Short ASCII kind label (`"submission"`, `"grant"`, …), hashed
    /// into the digest so entries of different kinds can never be
    /// confused even with identical payload bytes.
    pub label: String,
    /// The committed bytes.
    pub payload: Vec<u8>,
    /// Digest of the previous entry (the genesis root for index 0).
    pub prev: [u8; DIGEST_LEN],
    /// This entry's digest: `SHA-256(prev ‖ len(label) ‖ label ‖
    /// len(payload) ‖ payload)`.
    pub digest: [u8; DIGEST_LEN],
}

impl LedgerEntry {
    /// Recomputes what this entry's digest must be from its own bytes.
    fn expected_digest(&self) -> [u8; DIGEST_LEN] {
        chain_digest(&self.prev, &self.label, &self.payload)
    }
}

/// Digest of one link: unambiguous because both variable-length fields
/// are 64-bit length-prefixed.
fn chain_digest(prev: &[u8; DIGEST_LEN], label: &str, payload: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(prev);
    h.update(&(label.len() as u64).to_le_bytes());
    h.update(label.as_bytes());
    h.update(&(payload.len() as u64).to_le_bytes());
    h.update(payload);
    h.finalize()
}

/// Why a ledger failed verification. Every variant names the first
/// offending index, so a dispute replay pinpoints the earliest
/// manipulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LedgerError {
    /// `entries[index].prev` does not equal the predecessor's digest —
    /// an entry was reordered, or its `prev` field was rewritten.
    BrokenChain {
        /// First entry whose back-link is wrong.
        index: usize,
    },
    /// `entries[index].digest` does not match the digest recomputed
    /// from the entry's own label/payload/prev bytes — some byte of
    /// the entry was flipped.
    DigestMismatch {
        /// First entry whose stored digest is inconsistent.
        index: usize,
    },
    /// The chain replays cleanly but ends on a different root than the
    /// published commitment — entries were truncated or appended.
    RootMismatch {
        /// Entries the verifier was given.
        len: usize,
    },
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::BrokenChain { index } => {
                write!(f, "ledger chain broken at entry {index}: back-link mismatch")
            }
            LedgerError::DigestMismatch { index } => {
                write!(f, "ledger entry {index} digest mismatch: entry bytes were altered")
            }
            LedgerError::RootMismatch { len } => {
                write!(f, "ledger of {len} entries replays to a different root than published")
            }
        }
    }
}

impl std::error::Error for LedgerError {}

/// The append-only commitment ledger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitmentLedger {
    entries: Vec<LedgerEntry>,
    root: [u8; DIGEST_LEN],
}

impl Default for CommitmentLedger {
    fn default() -> Self {
        Self::new()
    }
}

impl CommitmentLedger {
    /// An empty ledger; its root is the domain-separated genesis
    /// digest.
    pub fn new() -> Self {
        Self { entries: Vec::new(), root: sha256(GENESIS) }
    }

    /// Appends a labelled payload, returning the new chain root.
    pub fn append(&mut self, label: &str, payload: &[u8]) -> [u8; DIGEST_LEN] {
        let prev = self.root;
        let digest = chain_digest(&prev, label, payload);
        self.entries.push(LedgerEntry {
            label: label.to_string(),
            payload: payload.to_vec(),
            prev,
            digest,
        });
        self.root = digest;
        self.root
    }

    /// The current chain head: the last entry's digest, or the genesis
    /// digest for an empty ledger.
    pub fn root(&self) -> [u8; DIGEST_LEN] {
        self.root
    }

    /// Number of chained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been committed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The chained entries, oldest first.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Replays the whole chain from genesis, re-deriving every digest.
    ///
    /// # Errors
    ///
    /// The first [`LedgerError`] encountered walking from entry 0:
    /// a broken back-link, an altered entry, or (last) a head that no
    /// longer matches the stored root.
    pub fn verify(&self) -> Result<(), LedgerError> {
        let replayed = Self::replay(&self.entries)?;
        if replayed.root != self.root {
            return Err(LedgerError::RootMismatch { len: self.entries.len() });
        }
        Ok(())
    }

    /// Verifies this ledger against an externally published commitment
    /// — the settle-time check: the chain must replay cleanly *and*
    /// end on `expected_root`. Truncations and extensions replay
    /// cleanly but fail here.
    ///
    /// # Errors
    ///
    /// Any replay failure, or [`LedgerError::RootMismatch`] if the
    /// clean replay ends elsewhere.
    pub fn verify_against(&self, expected_root: [u8; DIGEST_LEN]) -> Result<(), LedgerError> {
        self.verify()?;
        if self.root != expected_root {
            return Err(LedgerError::RootMismatch { len: self.entries.len() });
        }
        Ok(())
    }

    /// Rebuilds a ledger from raw entries, verifying every link — the
    /// dispute-resolution replay. An honest interrupted session can
    /// feed the entries it persisted and resume appending; the result
    /// is byte-identical to the ledger that never crashed.
    ///
    /// # Errors
    ///
    /// [`LedgerError::BrokenChain`] or [`LedgerError::DigestMismatch`]
    /// at the first inconsistent entry.
    pub fn replay(entries: &[LedgerEntry]) -> Result<Self, LedgerError> {
        let mut root = sha256(GENESIS);
        for (index, entry) in entries.iter().enumerate() {
            if entry.prev != root {
                return Err(LedgerError::BrokenChain { index });
            }
            if entry.expected_digest() != entry.digest {
                return Err(LedgerError::DigestMismatch { index });
            }
            root = entry.digest;
        }
        Ok(Self { entries: entries.to_vec(), root })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CommitmentLedger {
        let mut ledger = CommitmentLedger::new();
        ledger.append("submission", b"alpha");
        ledger.append("grant", b"bidder=3 channel=1");
        ledger.append("charge", b"valid:17");
        ledger.append("settle", b"");
        ledger
    }

    #[test]
    fn append_advances_the_root_and_verify_passes() {
        let mut ledger = CommitmentLedger::new();
        let genesis = ledger.root();
        let r1 = ledger.append("a", b"one");
        assert_ne!(r1, genesis);
        let r2 = ledger.append("a", b"one");
        // Same bytes, different position → different digest.
        assert_ne!(r1, r2);
        assert_eq!(ledger.len(), 2);
        ledger.verify().unwrap();
        ledger.verify_against(r2).unwrap();
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(sample().root(), sample().root());
        assert_eq!(sample(), sample());
    }

    #[test]
    fn flipping_any_payload_byte_is_detected() {
        let honest = sample();
        for i in 0..honest.len() {
            let payload_len = honest.entries()[i].payload.len();
            for b in 0..payload_len {
                for bit in [0x01u8, 0x80] {
                    let mut entries = honest.entries().to_vec();
                    entries[i].payload[b] ^= bit;
                    assert_eq!(
                        CommitmentLedger::replay(&entries),
                        Err(LedgerError::DigestMismatch { index: i }),
                        "flip entry {i} payload byte {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn flipping_label_digest_or_prev_bytes_is_detected() {
        let honest = sample();
        for i in 0..honest.len() {
            // Label bytes.
            let mut entries = honest.entries().to_vec();
            entries[i].label = entries[i].label.to_uppercase();
            assert_eq!(
                CommitmentLedger::replay(&entries),
                Err(LedgerError::DigestMismatch { index: i })
            );
            // Stored digest: the entry itself no longer matches, or —
            // equivalently from the verifier's seat — the successor's
            // back-link does.
            let mut entries = honest.entries().to_vec();
            entries[i].digest[0] ^= 1;
            let err = CommitmentLedger::replay(&entries).unwrap_err();
            assert_eq!(err, LedgerError::DigestMismatch { index: i }, "digest flip at {i}");
            // Back-link.
            let mut entries = honest.entries().to_vec();
            entries[i].prev[31] ^= 1;
            assert_eq!(
                CommitmentLedger::replay(&entries),
                Err(LedgerError::BrokenChain { index: i })
            );
        }
    }

    #[test]
    fn reordering_entries_is_detected() {
        let honest = sample();
        for i in 0..honest.len() {
            for j in 0..honest.len() {
                if i == j {
                    continue;
                }
                let mut entries = honest.entries().to_vec();
                entries.swap(i, j);
                let at = i.min(j);
                assert_eq!(
                    CommitmentLedger::replay(&entries),
                    Err(LedgerError::BrokenChain { index: at }),
                    "swap {i} and {j}"
                );
            }
        }
    }

    #[test]
    fn truncation_is_detected_against_the_published_root() {
        let honest = sample();
        let published = honest.root();
        for keep in 0..honest.len() {
            let truncated = CommitmentLedger::replay(&honest.entries()[..keep]).unwrap();
            // A truncated prefix is internally consistent…
            truncated.verify().unwrap();
            // …but cannot match the published commitment.
            assert_eq!(
                truncated.verify_against(published),
                Err(LedgerError::RootMismatch { len: keep })
            );
        }
    }

    #[test]
    fn honest_interruption_replays_to_an_identical_root() {
        // Persist a prefix, "crash", replay it, append the rest: the
        // resumed ledger is byte-identical to the uninterrupted one.
        let complete = sample();
        for cut in 0..=complete.len() {
            let mut resumed = CommitmentLedger::replay(&complete.entries()[..cut]).unwrap();
            for entry in &complete.entries()[cut..] {
                resumed.append(&entry.label, &entry.payload);
            }
            assert_eq!(resumed, complete, "cut at {cut}");
            assert_eq!(resumed.root(), complete.root());
        }
    }

    #[test]
    fn empty_ledger_verifies_and_roundtrips() {
        let ledger = CommitmentLedger::new();
        assert!(ledger.is_empty());
        ledger.verify().unwrap();
        assert_eq!(CommitmentLedger::replay(&[]).unwrap(), ledger);
        assert_eq!(CommitmentLedger::default(), ledger);
    }

    #[test]
    fn errors_display_the_offending_index() {
        assert!(LedgerError::BrokenChain { index: 2 }.to_string().contains("entry 2"));
        assert!(LedgerError::DigestMismatch { index: 0 }.to_string().contains("entry 0"));
        assert!(LedgerError::RootMismatch { len: 3 }.to_string().contains("3 entries"));
    }
}
