//! Key derivation (HKDF-style, HMAC-SHA256 based).
//!
//! The advanced bid scheme needs one HMAC key *per channel* plus the
//! location key and the TTP's sealing key — for the paper's 129-channel
//! auctions that is 131 secrets per auction round. Deriving them all
//! from a single per-round master secret shrinks the TTP's distribution
//! message to 32 bytes and lets offline bidders recompute keys from
//! `(master, auction id)` without contacting the TTP — supporting the
//! paper's periodically-available-TTP deployment (§V.C.2).
//!
//! The construction is the expand half of HKDF (RFC 5869) specialised to
//! single-block outputs: `derive(master, info) = HMAC(master, info ‖ 1)`.

use crate::hmac::HmacSha256;
use crate::keys::{HmacKey, SealKey, KEY_LEN};

/// Derives a 32-byte subkey for `info` from `master`.
///
/// Distinct `info` strings yield independent keys; the same inputs
/// always yield the same key.
///
/// # Examples
///
/// ```
/// use lppa_crypto::kdf::derive_key;
///
/// let master = [7u8; 32];
/// let a = derive_key(&master, b"auction-42/channel-0");
/// let b = derive_key(&master, b"auction-42/channel-1");
/// assert_ne!(a, b);
/// assert_eq!(a, derive_key(&master, b"auction-42/channel-0"));
/// ```
pub fn derive_key(master: &[u8; KEY_LEN], info: &[u8]) -> [u8; KEY_LEN] {
    let mut mac = HmacSha256::new(master);
    mac.update(info);
    mac.update(&[0x01]);
    mac.finalize()
}

/// The full key schedule of one LPPA auction round, derived from a
/// master secret.
#[derive(Clone, Debug)]
pub struct KeySchedule {
    /// Location-masking key `g0`.
    pub g0: HmacKey,
    /// Per-channel bid-masking keys `gb_r`.
    pub gb: Vec<HmacKey>,
    /// The TTP sealing key `gc`.
    pub gc: SealKey,
}

impl KeySchedule {
    /// Derives the schedule for `n_channels` channels in auction round
    /// `round` from `master`.
    ///
    /// # Panics
    ///
    /// Panics if `n_channels` is zero.
    pub fn derive(master: &[u8; KEY_LEN], round: u64, n_channels: usize) -> Self {
        assert!(n_channels > 0, "key schedule needs at least one channel");
        let label = |suffix: &[u8]| -> Vec<u8> {
            let mut info = Vec::with_capacity(16 + suffix.len());
            info.extend_from_slice(b"lppa/");
            info.extend_from_slice(&round.to_be_bytes());
            info.push(b'/');
            info.extend_from_slice(suffix);
            info
        };
        let g0 = HmacKey::from_bytes(derive_key(master, &label(b"g0")));
        let gc = SealKey::from_bytes(derive_key(master, &label(b"gc")));
        let gb = (0..n_channels)
            .map(|r| {
                let mut suffix = b"gb/".to_vec();
                suffix.extend_from_slice(&(r as u64).to_be_bytes());
                HmacKey::from_bytes(derive_key(master, &label(&suffix)))
            })
            .collect();
        Self { g0, gb, gc }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MASTER: [u8; KEY_LEN] = [0x42; KEY_LEN];

    #[test]
    fn derivation_is_deterministic() {
        let a = KeySchedule::derive(&MASTER, 7, 4);
        let b = KeySchedule::derive(&MASTER, 7, 4);
        assert_eq!(a.g0, b.g0);
        assert_eq!(a.gc, b.gc);
        assert_eq!(a.gb, b.gb);
    }

    #[test]
    fn rounds_are_independent() {
        let a = KeySchedule::derive(&MASTER, 1, 4);
        let b = KeySchedule::derive(&MASTER, 2, 4);
        assert_ne!(a.g0, b.g0);
        assert_ne!(a.gc, b.gc);
        for (ka, kb) in a.gb.iter().zip(&b.gb) {
            assert_ne!(ka, kb);
        }
    }

    #[test]
    fn all_keys_within_a_schedule_are_distinct() {
        let schedule = KeySchedule::derive(&MASTER, 3, 8);
        let mut seen = std::collections::HashSet::new();
        seen.insert(schedule.g0.as_bytes().to_vec());
        seen.insert(schedule.gc.as_bytes().to_vec());
        for key in &schedule.gb {
            seen.insert(key.as_bytes().to_vec());
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn different_masters_diverge() {
        let other = [0x43u8; KEY_LEN];
        assert_ne!(derive_key(&MASTER, b"info"), derive_key(&other, b"info"));
    }

    #[test]
    fn longer_channel_lists_extend_prefix_consistently() {
        // The first k keys do not depend on how many channels follow.
        let short = KeySchedule::derive(&MASTER, 5, 3);
        let long = KeySchedule::derive(&MASTER, 5, 10);
        assert_eq!(short.gb[..], long.gb[..3]);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        KeySchedule::derive(&MASTER, 1, 0);
    }
}
