//! Authenticated sealing of bid values for the TTP.
//!
//! Alongside the masked prefix sets, every bidder submits its exact
//! (transformed) bid price encrypted under the TTP's symmetric key `gc`
//! (§IV.B step i of the paper). The auctioneer relays the winning
//! ciphertext to the TTP during the charging phase; only the TTP can open
//! it. We use ChaCha20 with a random nonce plus an HMAC-SHA256 tag
//! (encrypt-then-MAC), so a misbehaving relay cannot tamper with a sealed
//! price undetected.

use crate::rand_core::RngCore;

use crate::chacha20::{ChaCha20, NONCE_LEN};
use crate::hmac::verify_tag;
use crate::keys::SealKey;

/// Length in bytes of the authentication tag on a sealed value.
pub const MAC_LEN: usize = 16;

/// Size of a sealed value on the wire: nonce ‖ ciphertext ‖ MAC.
pub const SEALED_WIRE_LEN: usize = NONCE_LEN + 8 + MAC_LEN;

/// Error returned when opening a sealed value fails authentication.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpenError;

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sealed value failed authentication")
    }
}

impl std::error::Error for OpenError {}

/// A bid price encrypted under the TTP key `gc`.
///
/// The random nonce makes sealing non-deterministic: two bidders sealing
/// the same price produce unrelated ciphertexts, which is required for the
/// plaintext–ciphertext unlinkability argument of §V.B.
///
/// # Examples
///
/// ```
/// use lppa_crypto::keys::SealKey;
/// use lppa_crypto::seal::SealedValue;
/// use lppa_rng::SeedableRng;
///
/// # fn main() -> Result<(), lppa_crypto::seal::OpenError> {
/// let mut rng = lppa_rng::rngs::StdRng::seed_from_u64(3);
/// let key = SealKey::random(&mut rng);
/// let sealed = SealedValue::seal(&key, 1234, &mut rng);
/// assert_eq!(sealed.open(&key)?, 1234);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SealedValue {
    nonce: [u8; NONCE_LEN],
    ciphertext: [u8; 8],
    mac: [u8; MAC_LEN],
}

impl std::fmt::Debug for SealedValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Ciphertext bytes are not secret, but printing them invites
        // eyeballing correlations; keep Debug terse.
        f.debug_struct("SealedValue").field("nonce", &self.nonce).finish_non_exhaustive()
    }
}

impl SealedValue {
    /// Seals `value` under `key` with a nonce drawn from `rng`.
    pub fn seal<R: RngCore + ?Sized>(key: &SealKey, value: u64, rng: &mut R) -> Self {
        let mut nonce = [0u8; NONCE_LEN];
        rng.fill_bytes(&mut nonce);

        let mut ciphertext = value.to_le_bytes();
        ChaCha20::new(key.as_bytes()).apply_keystream(&nonce, 1, &mut ciphertext);

        let mac = Self::mac(key, &nonce, &ciphertext);
        Self { nonce, ciphertext, mac }
    }

    /// Opens the sealed value.
    ///
    /// # Errors
    ///
    /// Returns [`OpenError`] if the authentication tag does not match,
    /// i.e. the ciphertext was corrupted or sealed under a different key.
    pub fn open(&self, key: &SealKey) -> Result<u64, OpenError> {
        let expected = Self::mac(key, &self.nonce, &self.ciphertext);
        if !verify_tag(&expected, &self.mac) {
            return Err(OpenError);
        }
        let mut plaintext = self.ciphertext;
        ChaCha20::new(key.as_bytes()).apply_keystream(&self.nonce, 1, &mut plaintext);
        Ok(u64::from_le_bytes(plaintext))
    }

    /// Size of the sealed value on the wire, in bytes.
    pub fn wire_len(&self) -> usize {
        NONCE_LEN + self.ciphertext.len() + MAC_LEN
    }

    /// A 64-bit digest of the transmitted bytes (nonce, ciphertext, MAC).
    ///
    /// Used by transport-level integrity checksums: it identifies *this
    /// ciphertext*, not the sealed plaintext, so it reveals nothing a
    /// wire observer does not already see.
    pub fn fingerprint(&self) -> u64 {
        let mut acc = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for &b in self.nonce.iter().chain(self.ciphertext.iter()).chain(self.mac.iter()) {
            acc ^= u64::from(b);
            acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
        }
        acc
    }

    /// Serializes the sealed value as nonce ‖ ciphertext ‖ MAC.
    ///
    /// The layout is the transmission order already implied by
    /// [`wire_len`](Self::wire_len) and hashed by
    /// [`fingerprint`](Self::fingerprint).
    pub fn to_wire_bytes(&self) -> [u8; SEALED_WIRE_LEN] {
        let mut out = [0u8; SEALED_WIRE_LEN];
        out[..NONCE_LEN].copy_from_slice(&self.nonce);
        out[NONCE_LEN..NONCE_LEN + 8].copy_from_slice(&self.ciphertext);
        out[NONCE_LEN + 8..].copy_from_slice(&self.mac);
        out
    }

    /// Reconstructs a sealed value from its wire bytes.
    ///
    /// No authentication happens here — the MAC is carried verbatim and
    /// checked by [`open`](Self::open), so a tampered wire image is
    /// rejected at opening time, not at parse time.
    pub fn from_wire_bytes(bytes: [u8; SEALED_WIRE_LEN]) -> Self {
        let mut nonce = [0u8; NONCE_LEN];
        let mut ciphertext = [0u8; 8];
        let mut mac = [0u8; MAC_LEN];
        nonce.copy_from_slice(&bytes[..NONCE_LEN]);
        ciphertext.copy_from_slice(&bytes[NONCE_LEN..NONCE_LEN + 8]);
        mac.copy_from_slice(&bytes[NONCE_LEN + 8..]);
        Self { nonce, ciphertext, mac }
    }

    fn mac(key: &SealKey, nonce: &[u8; NONCE_LEN], ciphertext: &[u8; 8]) -> [u8; MAC_LEN] {
        // nonce ‖ ciphertext fits one stack buffer, and the key's cached
        // midstate (see [`SealKey::midstate`]) turns the tag into two
        // SHA-256 compressions — no allocation, no key re-scheduling.
        let mut msg = [0u8; NONCE_LEN + 8];
        msg[..NONCE_LEN].copy_from_slice(nonce);
        msg[NONCE_LEN..].copy_from_slice(ciphertext);
        let full = key.midstate().compute(&msg);
        let mut mac = [0u8; MAC_LEN];
        mac.copy_from_slice(&full[..MAC_LEN]);
        mac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand_core::TestRng;

    fn setup() -> (SealKey, TestRng) {
        let mut rng = TestRng::new(42);
        let key = SealKey::random(&mut rng);
        (key, rng)
    }

    #[test]
    fn seal_open_roundtrip() {
        let (key, mut rng) = setup();
        for value in [0u64, 1, 14, 127, u64::MAX] {
            let sealed = SealedValue::seal(&key, value, &mut rng);
            assert_eq!(sealed.open(&key), Ok(value));
        }
    }

    #[test]
    fn fingerprint_tracks_ciphertext_identity() {
        let (key, mut rng) = setup();
        let a = SealedValue::seal(&key, 7, &mut rng);
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        // A re-seal of the same value has a fresh nonce, hence a
        // different fingerprint: the digest identifies the transmission.
        let b = SealedValue::seal(&key, 7, &mut rng);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn sealing_is_randomized() {
        // Two seals of the same value must be indistinguishable from seals
        // of different values — this is the §V.B unlinkability property.
        let (key, mut rng) = setup();
        let a = SealedValue::seal(&key, 7, &mut rng);
        let b = SealedValue::seal(&key, 7, &mut rng);
        assert_ne!(a, b);
        assert_ne!(a.ciphertext, b.ciphertext);
    }

    #[test]
    fn wrong_key_is_rejected() {
        let (key, mut rng) = setup();
        let other = SealKey::random(&mut rng);
        let sealed = SealedValue::seal(&key, 99, &mut rng);
        assert_eq!(sealed.open(&other), Err(OpenError));
    }

    #[test]
    fn tampered_ciphertext_is_rejected() {
        let (key, mut rng) = setup();
        let mut sealed = SealedValue::seal(&key, 99, &mut rng);
        sealed.ciphertext[0] ^= 1;
        assert_eq!(sealed.open(&key), Err(OpenError));
    }

    #[test]
    fn tampered_nonce_is_rejected() {
        let (key, mut rng) = setup();
        let mut sealed = SealedValue::seal(&key, 99, &mut rng);
        sealed.nonce[0] ^= 1;
        assert_eq!(sealed.open(&key), Err(OpenError));
    }

    #[test]
    fn wire_len_is_constant() {
        let (key, mut rng) = setup();
        let sealed = SealedValue::seal(&key, 5, &mut rng);
        assert_eq!(sealed.wire_len(), 12 + 8 + 16);
    }

    #[test]
    fn mac_matches_one_shot_hmac() {
        // The cached-midstate tag must be byte-identical to the textbook
        // HMAC over nonce ‖ ciphertext — sealing under a midstate key and
        // opening with a fresh HMAC implementation must interoperate.
        let (key, mut rng) = setup();
        let sealed = SealedValue::seal(&key, 0xdead_beef, &mut rng);
        let mut msg = Vec::new();
        msg.extend_from_slice(&sealed.nonce);
        msg.extend_from_slice(&sealed.ciphertext);
        let full = crate::hmac::hmac_sha256(key.as_bytes(), &msg);
        assert_eq!(sealed.mac, full[..MAC_LEN]);
    }

    #[test]
    fn wire_bytes_roundtrip() {
        let (key, mut rng) = setup();
        let sealed = SealedValue::seal(&key, 31337, &mut rng);
        let bytes = sealed.to_wire_bytes();
        assert_eq!(bytes.len(), sealed.wire_len());
        let back = SealedValue::from_wire_bytes(bytes);
        assert_eq!(back, sealed);
        assert_eq!(back.fingerprint(), sealed.fingerprint());
        assert_eq!(back.open(&key), Ok(31337));
    }

    #[test]
    fn tampered_wire_bytes_fail_open() {
        // Parsing never authenticates; the MAC check at open() is what
        // rejects a wire image damaged anywhere in nonce/ct/MAC.
        let (key, mut rng) = setup();
        let sealed = SealedValue::seal(&key, 8, &mut rng);
        for pos in [0, NONCE_LEN, NONCE_LEN + 8, SEALED_WIRE_LEN - 1] {
            let mut bytes = sealed.to_wire_bytes();
            bytes[pos] ^= 0x40;
            assert_eq!(SealedValue::from_wire_bytes(bytes).open(&key), Err(OpenError));
        }
    }

    #[test]
    fn open_error_displays() {
        assert_eq!(OpenError.to_string(), "sealed value failed authentication");
    }
}
