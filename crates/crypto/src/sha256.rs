//! A from-scratch implementation of the SHA-256 hash function (FIPS 180-4).
//!
//! The LPPA protocol masks every prefix with a keyed hash; this module
//! provides the underlying compression function. The implementation is a
//! straightforward, allocation-free translation of the specification and is
//! validated against the official NIST test vectors in the unit tests.

/// Size in bytes of a SHA-256 digest.
pub const DIGEST_LEN: usize = 32;

/// Size in bytes of a SHA-256 input block.
pub const BLOCK_LEN: usize = 64;

/// The eight initial hash values (fractional parts of the square roots of
/// the first eight primes).
pub(crate) const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// The sixty-four round constants (fractional parts of the cube roots of
/// the first sixty-four primes).
pub(crate) const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use lppa_crypto::sha256::Sha256;
///
/// let mut hasher = Sha256::new();
/// hasher.update(b"abc");
/// let digest = hasher.finalize();
/// assert_eq!(
///     digest[..4],
///     [0xba, 0x78, 0x16, 0xbf],
/// );
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes processed so far, used for the length suffix in padding.
    len: u64,
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self { state: H0, len: 0, buf: [0u8; BLOCK_LEN], buf_len: 0 }
    }

    /// Feeds `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;

        // Top up a partially filled buffer first.
        if self.buf_len > 0 {
            let take = rest.len().min(BLOCK_LEN - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }

        // Whole blocks straight from the input.
        while rest.len() >= BLOCK_LEN {
            let (block, tail) = rest.split_at(BLOCK_LEN);
            let mut owned = [0u8; BLOCK_LEN];
            owned.copy_from_slice(block);
            self.compress(&owned);
            rest = tail;
        }

        // Stash the remainder.
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Consumes the hasher and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);

        // Append the 0x80 terminator.
        let mut pad = [0u8; BLOCK_LEN * 2];
        pad[0] = 0x80;
        // Number of zero bytes so that total length ≡ 56 (mod 64).
        let pad_len = if self.buf_len < 56 { 56 - self.buf_len } else { 120 - self.buf_len };
        let mut tail = [0u8; BLOCK_LEN * 2];
        tail[..pad_len].copy_from_slice(&pad[..pad_len]);
        tail[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());

        // `update` would keep counting length, so bypass it.
        let total = pad_len + 8;
        let mut fed = 0;
        while fed < total {
            let take = (total - fed).min(BLOCK_LEN - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&tail[fed..fed + take]);
            self.buf_len += take;
            fed += take;
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        debug_assert_eq!(self.buf_len, 0, "padding must end on a block boundary");

        let mut out = [0u8; DIGEST_LEN];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Processes one 64-byte block.
    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        compress(&mut self.state, block);
    }

    /// The eight 32-bit words of the current chaining value.
    ///
    /// Only meaningful on a block boundary (no buffered partial input);
    /// the HMAC midstate and the multi-lane batch path rely on this to
    /// resume compression outside the incremental hasher.
    pub(crate) fn state_words(&self) -> [u32; 8] {
        debug_assert_eq!(self.buf_len, 0, "state_words read off a block boundary");
        self.state
    }
}

/// The SHA-256 compression function: folds one 64-byte block into `state`.
///
/// This is the single-lane primitive; [`crate::lanes`] interleaves the same
/// round structure across several independent blocks.
pub(crate) fn compress(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);

        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// One-shot convenience wrapper around [`Sha256`].
///
/// # Examples
///
/// ```
/// let digest = lppa_crypto::sha256::sha256(b"");
/// assert_eq!(digest[0], 0xe3);
/// ```
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_input_matches_nist_vector() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_matches_nist_vector() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message_matches_nist_vector() {
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_matches_nist_vector() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_updates_match_one_shot() {
        let data: Vec<u8> = (0u16..517).map(|i| (i % 251) as u8).collect();
        let one_shot = sha256(&data);
        // Feed in irregular chunk sizes that straddle block boundaries.
        for chunk_len in [1usize, 3, 63, 64, 65, 100] {
            let mut h = Sha256::new();
            for chunk in data.chunks(chunk_len) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), one_shot, "chunk_len={chunk_len}");
        }
    }

    #[test]
    fn padding_boundary_lengths() {
        // Message lengths around the 55/56-byte padding boundary all hash
        // without panicking and produce distinct digests.
        let mut seen = std::collections::HashSet::new();
        for len in 0..130usize {
            let data = vec![0xabu8; len];
            assert!(seen.insert(sha256(&data)), "collision at len={len}");
        }
    }

    #[test]
    fn default_equals_new() {
        let a = Sha256::default();
        let b = Sha256::new();
        assert_eq!(a.finalize(), b.finalize());
    }
}
