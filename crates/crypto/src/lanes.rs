//! Multi-lane (multi-buffer) SHA-256 compression.
//!
//! The LPPA hot path hashes thousands of *independent* short messages —
//! one HMAC tag per prefix — so the classic multi-buffer trick applies:
//! interleave N compressions lane-wise and pay for one message-schedule
//! walk per N blocks. Three kernels are provided:
//!
//! * **1-lane** — the scalar [`crate::sha256`] compression function;
//! * **4-lane / 8-lane portable** — a const-generic interleaving where
//!   every round operates on `[u32; N]` lane vectors. The loops are
//!   written element-wise with no cross-lane dependencies, which LLVM
//!   autovectorizes to SSE2 on every `x86_64` target (SSE2 is baseline);
//! * **8-lane AVX2** — the same round structure hand-written with
//!   `core::arch::x86_64` intrinsics (`__m256i` holds one word of all
//!   eight lanes), selected at runtime via `is_x86_feature_detected!` and
//!   falling back to the portable kernel everywhere else.
//!
//! All kernels are bit-identical to N independent scalar compressions —
//! property-tested per width and cross-checked continuously by the
//! `batch_scalar_tags` oracle invariant — so lane width is a pure
//! throughput knob with no observable effect on any protocol output.
//!
//! # Lane-width selection
//!
//! [`lane_width`] picks 8 when AVX2 is available and 4 otherwise, and can
//! be pinned with the `LPPA_SHA_LANES` environment variable (accepted
//! values: `1`, `4`, `8`; read once per process). CI diffs pinned-seed
//! runs across all three widths to enforce the bit-identity contract.

use crate::sha256::{compress, BLOCK_LEN, K};

/// Environment variable pinning the lane width (`1`, `4` or `8`).
pub const LANES_ENV: &str = "LPPA_SHA_LANES";

/// Lane widths with a dedicated kernel, narrowest first.
pub const SUPPORTED_WIDTHS: [usize; 3] = [1, 4, 8];

/// The widest kernel; batch callers sizing stack buffers can use this.
pub const MAX_LANES: usize = 8;

/// The lane width the process-wide kernel dispatch uses.
///
/// Honours [`LANES_ENV`] when set to a supported width; otherwise picks
/// the widest kernel the CPU runs well (8 with AVX2, 4 without). Cached
/// after the first call.
pub fn lane_width() -> usize {
    use std::sync::OnceLock;
    static WIDTH: OnceLock<usize> = OnceLock::new();
    *WIDTH.get_or_init(|| {
        if let Ok(raw) = std::env::var(LANES_ENV) {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if SUPPORTED_WIDTHS.contains(&n) {
                    return n;
                }
            }
        }
        if avx2_available() {
            8
        } else {
            4
        }
    })
}

/// Whether the AVX2 8-lane kernel is usable on this CPU.
fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Space-separated CPU feature flags relevant to kernel selection, for
/// bench metadata. Reports detection results, not which kernel ran.
pub fn cpu_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut flags = vec!["sse2"]; // baseline on x86_64
        if std::arch::is_x86_feature_detected!("avx2") {
            flags.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("sha") {
            flags.push("sha_ni");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            flags.push("avx512f");
        }
        flags.join(" ")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        String::from("portable")
    }
}

/// Folds `blocks[i]` into `states[i]` for every `i`, using the
/// process-wide lane width ([`lane_width`]).
///
/// Each (state, block) pair is an independent compression; the result is
/// bit-identical to calling the scalar compression once per pair.
///
/// # Panics
///
/// Panics if `states` and `blocks` differ in length.
pub fn compress_batch(states: &mut [[u32; 8]], blocks: &[[u8; BLOCK_LEN]]) {
    compress_batch_with_width(lane_width(), states, blocks);
}

/// [`compress_batch`] with an explicit lane width, for determinism tests
/// and the differential oracle.
///
/// # Panics
///
/// Panics if the lengths differ or `width` is not in [`SUPPORTED_WIDTHS`].
pub fn compress_batch_with_width(
    width: usize,
    states: &mut [[u32; 8]],
    blocks: &[[u8; BLOCK_LEN]],
) {
    assert_eq!(states.len(), blocks.len(), "one block per state");
    assert!(SUPPORTED_WIDTHS.contains(&width), "unsupported lane width {width}");

    let n = states.len();
    let mut i = 0;
    if width == 8 {
        let use_avx2 = avx2_available();
        while n - i >= 8 {
            let s: &mut [[u32; 8]; 8] = (&mut states[i..i + 8]).try_into().unwrap();
            let b: &[[u8; BLOCK_LEN]; 8] = (&blocks[i..i + 8]).try_into().unwrap();
            if use_avx2 {
                #[cfg(target_arch = "x86_64")]
                avx2::compress8(s, b);
                #[cfg(not(target_arch = "x86_64"))]
                compress_wide::<8>(s, b);
            } else {
                compress_wide::<8>(s, b);
            }
            i += 8;
        }
    }
    if width >= 4 {
        while n - i >= 4 {
            let s: &mut [[u32; 8]; 4] = (&mut states[i..i + 4]).try_into().unwrap();
            let b: &[[u8; BLOCK_LEN]; 4] = (&blocks[i..i + 4]).try_into().unwrap();
            compress_wide::<4>(s, b);
            i += 4;
        }
    }
    while i < n {
        compress(&mut states[i], &blocks[i]);
        i += 1;
    }
}

/// Portable N-lane compression: the scalar rounds with every variable
/// widened to a `[u32; N]` lane vector.
///
/// Each statement in the inner loops is element-wise over the lanes with
/// no cross-lane dependency, exactly the shape LLVM's SLP/loop
/// vectorizers turn into SSE2 (or wider, under `-C target-cpu`) code.
#[allow(clippy::needless_range_loop)] // lane loops index several `w` rows at fixed offsets
fn compress_wide<const N: usize>(states: &mut [[u32; 8]; N], blocks: &[[u8; BLOCK_LEN]; N]) {
    // Message schedule, lane-interleaved: w[t][l] is word t of lane l.
    let mut w = [[0u32; N]; 64];
    for t in 0..16 {
        for l in 0..N {
            let chunk = &blocks[l][4 * t..4 * t + 4];
            w[t][l] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
    }
    for t in 16..64 {
        for l in 0..N {
            let x = w[t - 15][l];
            let y = w[t - 2][l];
            let s0 = x.rotate_right(7) ^ x.rotate_right(18) ^ (x >> 3);
            let s1 = y.rotate_right(17) ^ y.rotate_right(19) ^ (y >> 10);
            w[t][l] = w[t - 16][l].wrapping_add(s0).wrapping_add(w[t - 7][l]).wrapping_add(s1);
        }
    }

    let mut a = [0u32; N];
    let mut b = [0u32; N];
    let mut c = [0u32; N];
    let mut d = [0u32; N];
    let mut e = [0u32; N];
    let mut f = [0u32; N];
    let mut g = [0u32; N];
    let mut h = [0u32; N];
    for l in 0..N {
        [a[l], b[l], c[l], d[l], e[l], f[l], g[l], h[l]] = states[l];
    }

    for t in 0..64 {
        for l in 0..N {
            let s1 = e[l].rotate_right(6) ^ e[l].rotate_right(11) ^ e[l].rotate_right(25);
            let ch = (e[l] & f[l]) ^ ((!e[l]) & g[l]);
            let t1 =
                h[l].wrapping_add(s1).wrapping_add(ch).wrapping_add(K[t]).wrapping_add(w[t][l]);
            let s0 = a[l].rotate_right(2) ^ a[l].rotate_right(13) ^ a[l].rotate_right(22);
            let maj = (a[l] & b[l]) ^ (a[l] & c[l]) ^ (b[l] & c[l]);
            let t2 = s0.wrapping_add(maj);

            h[l] = g[l];
            g[l] = f[l];
            f[l] = e[l];
            e[l] = d[l].wrapping_add(t1);
            d[l] = c[l];
            c[l] = b[l];
            b[l] = a[l];
            a[l] = t1.wrapping_add(t2);
        }
    }

    for l in 0..N {
        states[l][0] = states[l][0].wrapping_add(a[l]);
        states[l][1] = states[l][1].wrapping_add(b[l]);
        states[l][2] = states[l][2].wrapping_add(c[l]);
        states[l][3] = states[l][3].wrapping_add(d[l]);
        states[l][4] = states[l][4].wrapping_add(e[l]);
        states[l][5] = states[l][5].wrapping_add(f[l]);
        states[l][6] = states[l][6].wrapping_add(g[l]);
        states[l][7] = states[l][7].wrapping_add(h[l]);
    }
}

/// 8-lane AVX2 kernel: one `__m256i` register holds the same working
/// variable for all eight lanes.
///
/// The only `unsafe` in the workspace lives here; it is confined to
/// `core::arch` intrinsic calls that are valid whenever AVX2 is present,
/// which the safe [`compress8`] wrapper checks at runtime.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use super::{BLOCK_LEN, K};
    use core::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_and_si256, _mm256_andnot_si256, _mm256_or_si256,
        _mm256_set1_epi32, _mm256_set_epi32, _mm256_slli_epi32, _mm256_srli_epi32,
        _mm256_storeu_si256, _mm256_xor_si256,
    };

    /// Safe entry point: compresses eight independent blocks at once.
    ///
    /// # Panics
    ///
    /// Panics if AVX2 is not available (callers gate on detection).
    pub(super) fn compress8(states: &mut [[u32; 8]; 8], blocks: &[[u8; BLOCK_LEN]; 8]) {
        assert!(std::arch::is_x86_feature_detected!("avx2"), "AVX2 kernel on non-AVX2 CPU");
        // SAFETY: the assertion above proves the `avx2` target feature is
        // supported by the running CPU, which is the only requirement of
        // the feature-gated function.
        unsafe { compress8_impl(states, blocks) }
    }

    /// AVX2 has no rotate; synthesize it from two shifts and an or. A
    /// macro (not a fn) because the shift intrinsics need constant
    /// immediates.
    macro_rules! rotr {
        ($x:expr, $r:literal) => {{
            let x = $x;
            _mm256_or_si256(_mm256_srli_epi32(x, $r), _mm256_slli_epi32(x, 32 - $r))
        }};
    }

    #[inline(always)]
    unsafe fn add(a: __m256i, b: __m256i) -> __m256i {
        _mm256_add_epi32(a, b)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn compress8_impl(states: &mut [[u32; 8]; 8], blocks: &[[u8; BLOCK_LEN]; 8]) {
        // Message schedule: w[t] carries word t of every lane. Loads are
        // gathered scalar-wise (8 lanes × 4 bytes, byte-swapped).
        let mut w = [_mm256_set1_epi32(0); 64];
        for (t, wt) in w.iter_mut().take(16).enumerate() {
            let word = |l: usize| -> i32 {
                let chunk = &blocks[l][4 * t..4 * t + 4];
                i32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]])
            };
            // set_epi32 takes arguments high-lane first.
            *wt = _mm256_set_epi32(
                word(7),
                word(6),
                word(5),
                word(4),
                word(3),
                word(2),
                word(1),
                word(0),
            );
        }
        for t in 16..64 {
            let x = w[t - 15];
            let y = w[t - 2];
            let s0 = _mm256_xor_si256(
                _mm256_xor_si256(rotr!(x, 7), rotr!(x, 18)),
                _mm256_srli_epi32(x, 3),
            );
            let s1 = _mm256_xor_si256(
                _mm256_xor_si256(rotr!(y, 17), rotr!(y, 19)),
                _mm256_srli_epi32(y, 10),
            );
            w[t] = add(add(w[t - 16], s0), add(w[t - 7], s1));
        }

        // Transpose the eight states into eight working registers.
        let mut regs = [_mm256_set1_epi32(0); 8];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = _mm256_set_epi32(
                states[7][i] as i32,
                states[6][i] as i32,
                states[5][i] as i32,
                states[4][i] as i32,
                states[3][i] as i32,
                states[2][i] as i32,
                states[1][i] as i32,
                states[0][i] as i32,
            );
        }
        let (mut a, mut b, mut c, mut d) = (regs[0], regs[1], regs[2], regs[3]);
        let (mut e, mut f, mut g, mut h) = (regs[4], regs[5], regs[6], regs[7]);
        let (a0, b0, c0, d0, e0, f0, g0, h0) = (a, b, c, d, e, f, g, h);

        for t in 0..64 {
            let s1 = _mm256_xor_si256(_mm256_xor_si256(rotr!(e, 6), rotr!(e, 11)), rotr!(e, 25));
            // ch = (e & f) ^ (!e & g); andnot computes !x & y directly.
            let ch = _mm256_xor_si256(_mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
            let t1 = add(add(h, s1), add(add(ch, _mm256_set1_epi32(K[t] as i32)), w[t]));
            let s0 = _mm256_xor_si256(_mm256_xor_si256(rotr!(a, 2), rotr!(a, 13)), rotr!(a, 22));
            let maj = _mm256_xor_si256(
                _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
                _mm256_and_si256(b, c),
            );
            let t2 = add(s0, maj);

            h = g;
            g = f;
            f = e;
            e = add(d, t1);
            d = c;
            c = b;
            b = a;
            a = add(t1, t2);
        }

        // Feed-forward, then scatter the lanes back out through a stack
        // buffer (one store per working register).
        let out = [
            add(a, a0),
            add(b, b0),
            add(c, c0),
            add(d, d0),
            add(e, e0),
            add(f, f0),
            add(g, g0),
            add(h, h0),
        ];
        let mut cols = [[0u32; 8]; 8];
        for (i, v) in out.iter().enumerate() {
            _mm256_storeu_si256(cols[i].as_mut_ptr() as *mut __m256i, *v);
        }
        for l in 0..8 {
            for i in 0..8 {
                states[l][i] = cols[i][l];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::H0;

    /// Deterministic pseudo-random block/state material (no RNG dep here;
    /// a simple LCG is plenty for kernel equivalence checks).
    fn splat(seed: u64, n: usize) -> (Vec<[u32; 8]>, Vec<[u8; BLOCK_LEN]>) {
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let states = (0..n)
            .map(|_| {
                let mut s = H0;
                for word in &mut s {
                    *word ^= next() as u32;
                }
                s
            })
            .collect();
        let blocks = (0..n)
            .map(|_| {
                let mut b = [0u8; BLOCK_LEN];
                for chunk in b.chunks_exact_mut(8) {
                    chunk.copy_from_slice(&next().to_le_bytes());
                }
                b
            })
            .collect();
        (states, blocks)
    }

    #[test]
    fn every_width_matches_scalar_compress() {
        for seed in 1..=8u64 {
            for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 16, 23] {
                let (states0, blocks) = splat(seed * 1000 + n as u64, n);
                let mut want = states0.clone();
                for (s, b) in want.iter_mut().zip(&blocks) {
                    compress(s, b);
                }
                for width in SUPPORTED_WIDTHS {
                    let mut got = states0.clone();
                    compress_batch_with_width(width, &mut got, &blocks);
                    assert_eq!(got, want, "width={width} n={n} seed={seed}");
                }
            }
        }
    }

    #[test]
    fn default_width_matches_scalar() {
        let (states0, blocks) = splat(42, 13);
        let mut want = states0.clone();
        for (s, b) in want.iter_mut().zip(&blocks) {
            compress(s, b);
        }
        let mut got = states0;
        compress_batch(&mut got, &blocks);
        assert_eq!(got, want);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_kernel_matches_portable() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return; // nothing to compare on this machine
        }
        for seed in 1..=16u64 {
            let (states0, blocks) = splat(seed, 8);
            let mut portable: [[u32; 8]; 8] = states0.clone().try_into().unwrap();
            let mut simd = portable;
            let blocks: [[u8; BLOCK_LEN]; 8] = blocks.try_into().unwrap();
            compress_wide::<8>(&mut portable, &blocks);
            avx2::compress8(&mut simd, &blocks);
            assert_eq!(simd, portable, "seed={seed}");
        }
    }

    #[test]
    fn lane_width_is_supported() {
        assert!(SUPPORTED_WIDTHS.contains(&lane_width()));
    }

    #[test]
    fn cpu_features_nonempty() {
        assert!(!cpu_features().is_empty());
    }
}
