//! Masked-prefix tags.
//!
//! A [`Tag`] is the value actually transmitted for each prefix in the LPPA
//! protocol: the HMAC of a numericalized prefix, truncated to 128 bits.
//! Truncation keeps the submission size down (Theorem 4 measures
//! communication cost) while a 128-bit tag keeps the accidental-collision
//! probability negligible for auction-sized sets.

use crate::keys::HmacKey;

/// Length in bytes of a transmitted tag.
pub const TAG_LEN: usize = 16;

/// A 128-bit masked prefix: `truncate(HMAC_k(prefix bytes))`.
///
/// Tags are ordinary values — the whole point of the scheme is that the
/// auctioneer stores, sorts and intersects them — so the type implements
/// the full set of comparison and hashing traits.
///
/// # Examples
///
/// ```
/// use lppa_crypto::keys::HmacKey;
/// use lppa_crypto::tag::Tag;
///
/// let key = HmacKey::from_bytes([9u8; 32]);
/// let a = Tag::compute(&key, b"10100");
/// let b = Tag::compute(&key, b"10100");
/// assert_eq!(a, b);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag([u8; TAG_LEN]);

impl Tag {
    /// Masks `message` under `key`.
    ///
    /// Uses the key's precomputed [`crate::hmac::HmacMidstate`], so a
    /// short message costs two SHA-256 compressions rather than the four
    /// a from-scratch HMAC would spend.
    pub fn compute(key: &HmacKey, message: &[u8]) -> Self {
        let full = key.midstate().compute(message);
        let mut out = [0u8; TAG_LEN];
        out.copy_from_slice(&full[..TAG_LEN]);
        Self(out)
    }

    /// Masks a batch of independent messages under `key`, delivering
    /// `(index, tag)` pairs to `sink`.
    ///
    /// Runs the multi-lane SHA-256 kernel via
    /// [`crate::hmac::HmacMidstate::compute_batch_into`]: N lanes share
    /// one message-schedule walk, so masking a whole prefix family or
    /// range cover costs a fraction of per-message [`Self::compute`]
    /// calls while producing bit-identical tags. Delivery order is
    /// unspecified; order-insensitive sinks (e.g. inserting into a tag
    /// set) can ignore the index.
    pub fn compute_batch_into<M, F>(key: &HmacKey, messages: &[M], mut sink: F)
    where
        M: AsRef<[u8]>,
        F: FnMut(usize, Tag),
    {
        key.midstate().compute_batch_into(messages, |i, full| {
            let mut out = [0u8; TAG_LEN];
            out.copy_from_slice(&full[..TAG_LEN]);
            sink(i, Self(out));
        });
    }

    /// Masks a batch of messages under `key`, returning tags in message
    /// order.
    ///
    /// # Examples
    ///
    /// ```
    /// use lppa_crypto::keys::HmacKey;
    /// use lppa_crypto::tag::Tag;
    ///
    /// let key = HmacKey::from_bytes([9u8; 32]);
    /// let tags = Tag::compute_batch(&key, &[b"10100".as_slice(), b"1010*"]);
    /// assert_eq!(tags[0], Tag::compute(&key, b"10100"));
    /// assert_eq!(tags[1], Tag::compute(&key, b"1010*"));
    /// ```
    pub fn compute_batch<M: AsRef<[u8]>>(key: &HmacKey, messages: &[M]) -> Vec<Tag> {
        let mut out = vec![Tag([0u8; TAG_LEN]); messages.len()];
        Self::compute_batch_into(key, messages, |i, tag| out[i] = tag);
        out
    }

    /// [`Self::compute_batch`] pinned to an explicit lane width, for
    /// determinism tests and the differential oracle's batch-vs-scalar
    /// variant pair.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not in [`crate::lanes::SUPPORTED_WIDTHS`].
    pub fn compute_batch_with_width<M: AsRef<[u8]>>(
        key: &HmacKey,
        width: usize,
        messages: &[M],
    ) -> Vec<Tag> {
        let mut out = vec![Tag([0u8; TAG_LEN]); messages.len()];
        key.midstate().compute_batch_into_with_width(width, messages, |i, full| {
            let mut bytes = [0u8; TAG_LEN];
            bytes.copy_from_slice(&full[..TAG_LEN]);
            out[i] = Tag(bytes);
        });
        out
    }

    /// Wraps raw tag bytes (e.g. parsed from a submission).
    pub fn from_bytes(bytes: [u8; TAG_LEN]) -> Self {
        Self(bytes)
    }

    /// Returns the raw tag bytes.
    pub fn as_bytes(&self) -> &[u8; TAG_LEN] {
        &self.0
    }
}

impl std::fmt::Debug for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tag(")?;
        for b in &self.0[..4] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…)")
    }
}

impl std::fmt::Display for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl From<[u8; TAG_LEN]> for Tag {
    fn from(bytes: [u8; TAG_LEN]) -> Self {
        Self::from_bytes(bytes)
    }
}

impl AsRef<[u8]> for Tag {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A fast, fixed-key hasher for [`Tag`] keys.
///
/// Tags are truncated HMAC-SHA256 outputs: uniformly distributed, and
/// unforgeable without the masking key, so the auctioneer's tag sets do
/// not need SipHash's collision resistance against adversarial keys.
/// This hasher folds the written bytes into a 64-bit accumulator and
/// applies one SplitMix64 avalanche, which is several times cheaper per
/// probe — and the hot auction paths (membership tests, the inverted
/// tag index) are nothing but probes.
///
/// Unlike `std`'s default `RandomState`, the hash is the same in every
/// process, which also makes set iteration order reproducible.
///
/// # Examples
///
/// ```
/// use std::collections::HashSet;
/// use lppa_crypto::tag::{Tag, TagBuildHasher};
///
/// let mut set: HashSet<Tag, TagBuildHasher> = HashSet::default();
/// set.insert(Tag::from_bytes([7u8; 16]));
/// assert!(set.contains(&Tag::from_bytes([7u8; 16])));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct TagHasher(u64);

/// `BuildHasher` for [`TagHasher`], usable as the `S` parameter of
/// `HashMap`/`HashSet`.
pub type TagBuildHasher = std::hash::BuildHasherDefault<TagHasher>;

impl std::hash::Hasher for TagHasher {
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.0 = self.0.rotate_left(29) ^ u64::from_le_bytes(word);
        }
    }

    fn finish(&self) -> u64 {
        // SplitMix64 avalanche: tag bytes are uniform, but the fold
        // above is linear, so mix once before handing bits to the table.
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hmac::hmac_sha256;

    fn key(byte: u8) -> HmacKey {
        HmacKey::from_bytes([byte; 32])
    }

    #[test]
    fn same_input_same_tag() {
        assert_eq!(Tag::compute(&key(1), b"x"), Tag::compute(&key(1), b"x"));
    }

    #[test]
    fn different_key_different_tag() {
        assert_ne!(Tag::compute(&key(1), b"x"), Tag::compute(&key(2), b"x"));
    }

    #[test]
    fn different_message_different_tag() {
        assert_ne!(Tag::compute(&key(1), b"x"), Tag::compute(&key(1), b"y"));
    }

    #[test]
    fn truncation_matches_full_hmac_prefix() {
        let k = key(7);
        let tag = Tag::compute(&k, b"hello");
        let full = hmac_sha256(k.as_bytes(), b"hello");
        assert_eq!(tag.as_bytes()[..], full[..TAG_LEN]);
    }

    #[test]
    fn display_is_full_hex_and_debug_is_abbreviated() {
        let tag = Tag::from_bytes([0xab; TAG_LEN]);
        assert_eq!(tag.to_string(), "ab".repeat(TAG_LEN));
        let dbg = format!("{tag:?}");
        assert!(dbg.starts_with("Tag(abababab"));
        assert!(dbg.len() < 20);
    }

    #[test]
    fn tags_are_usable_in_hash_sets() {
        let mut set = std::collections::HashSet::new();
        set.insert(Tag::compute(&key(1), b"a"));
        set.insert(Tag::compute(&key(1), b"b"));
        assert!(set.contains(&Tag::compute(&key(1), b"a")));
        assert!(!set.contains(&Tag::compute(&key(1), b"c")));
    }

    #[test]
    fn batch_matches_per_message_compute() {
        let k = key(11);
        let messages: Vec<Vec<u8>> = (0..17u8).map(|i| vec![i; 9]).collect();
        let want: Vec<_> = messages.iter().map(|m| Tag::compute(&k, m)).collect();
        assert_eq!(Tag::compute_batch(&k, &messages), want);
        for width in crate::lanes::SUPPORTED_WIDTHS {
            assert_eq!(Tag::compute_batch_with_width(&k, width, &messages), want, "w={width}");
        }
    }

    #[test]
    fn conversion_traits_roundtrip() {
        let bytes = [3u8; TAG_LEN];
        let tag: Tag = bytes.into();
        assert_eq!(tag.as_ref(), &bytes[..]);
    }
}
