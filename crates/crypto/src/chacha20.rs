//! The ChaCha20 stream cipher (RFC 8439), implemented from the
//! specification.
//!
//! The TTP in the LPPA protocol shares a symmetric key `gc` with the
//! bidders; the sealed bid price travelling through the auctioneer is
//! encrypted under this cipher (and authenticated with HMAC, see
//! [`crate::seal`]). Validated against the RFC 8439 test vectors.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;

/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;

const BLOCK_WORDS: usize = 16;

/// The ChaCha20 cipher keyed with a 256-bit key.
///
/// The same object encrypts and decrypts: XOR-ing the keystream is an
/// involution.
///
/// # Examples
///
/// ```
/// use lppa_crypto::chacha20::ChaCha20;
///
/// let cipher = ChaCha20::new(&[7u8; 32]);
/// let nonce = [1u8; 12];
/// let mut data = *b"secret bid: 42";
/// cipher.apply_keystream(&nonce, 1, &mut data);
/// assert_ne!(&data, b"secret bid: 42");
/// cipher.apply_keystream(&nonce, 1, &mut data);
/// assert_eq!(&data, b"secret bid: 42");
/// ```
#[derive(Clone)]
pub struct ChaCha20 {
    key_words: [u32; 8],
}

impl std::fmt::Debug for ChaCha20 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("ChaCha20").field("key_words", &"<redacted>").finish()
    }
}

impl ChaCha20 {
    /// Creates a cipher from a 32-byte key.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let mut key_words = [0u32; 8];
        for (word, chunk) in key_words.iter_mut().zip(key.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Self { key_words }
    }

    /// Computes one 64-byte keystream block for (`nonce`, `counter`).
    fn block(&self, nonce: &[u8; NONCE_LEN], counter: u32) -> [u8; 64] {
        // "expand 32-byte k"
        let mut state = [0u32; BLOCK_WORDS];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key_words);
        state[12] = counter;
        for (i, chunk) in nonce.chunks_exact(4).enumerate() {
            state[13 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }

        let mut working = state;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }

        let mut out = [0u8; 64];
        for i in 0..BLOCK_WORDS {
            let word = working[i].wrapping_add(state[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XORs the keystream for (`nonce`, starting `counter`) into `data`.
    ///
    /// Applying the same call twice restores the plaintext.
    ///
    /// # Panics
    ///
    /// Panics if the message is long enough to overflow the 32-bit block
    /// counter (≥ 256 GiB), which cannot occur for auction payloads.
    pub fn apply_keystream(&self, nonce: &[u8; NONCE_LEN], counter: u32, data: &mut [u8]) {
        for (i, chunk) in data.chunks_mut(64).enumerate() {
            let block_counter = counter
                .checked_add(u32::try_from(i).expect("message too long"))
                .expect("ChaCha20 block counter overflow");
            let keystream = self.block(nonce, block_counter);
            for (byte, ks) in chunk.iter_mut().zip(keystream.iter()) {
                *byte ^= ks;
            }
        }
    }
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_to_bytes(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    /// RFC 8439 §2.3.2: the keystream block test vector.
    #[test]
    fn rfc8439_block_vector() {
        let mut key = [0u8; KEY_LEN];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; NONCE_LEN] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let cipher = ChaCha20::new(&key);
        let block = cipher.block(&nonce, 1);
        let expected = hex_to_bytes(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(block.to_vec(), expected);
    }

    /// RFC 8439 §2.4.2: the "sunscreen" encryption test vector.
    #[test]
    fn rfc8439_encryption_vector() {
        let mut key = [0u8; KEY_LEN];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; NONCE_LEN] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext: &[u8] = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        ChaCha20::new(&key).apply_keystream(&nonce, 1, &mut data);
        let expected = hex_to_bytes(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d",
        );
        assert_eq!(data, expected);
    }

    #[test]
    fn roundtrip_restores_plaintext() {
        let cipher = ChaCha20::new(&[0x42u8; KEY_LEN]);
        let nonce = [0x17u8; NONCE_LEN];
        let original: Vec<u8> = (0u16..300).map(|i| (i % 256) as u8).collect();
        let mut data = original.clone();
        cipher.apply_keystream(&nonce, 0, &mut data);
        assert_ne!(data, original);
        cipher.apply_keystream(&nonce, 0, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_nonces_produce_different_ciphertexts() {
        let cipher = ChaCha20::new(&[1u8; KEY_LEN]);
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        cipher.apply_keystream(&[0u8; NONCE_LEN], 0, &mut a);
        cipher.apply_keystream(&[1u8; NONCE_LEN], 0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn counter_advances_across_blocks() {
        // Encrypting 128 bytes starting at counter 0 must equal block 0
        // keystream followed by block 1 keystream.
        let cipher = ChaCha20::new(&[9u8; KEY_LEN]);
        let nonce = [3u8; NONCE_LEN];
        let mut long = vec![0u8; 128];
        cipher.apply_keystream(&nonce, 0, &mut long);
        let b0 = cipher.block(&nonce, 0);
        let b1 = cipher.block(&nonce, 1);
        assert_eq!(&long[..64], &b0[..]);
        assert_eq!(&long[64..], &b1[..]);
    }

    #[test]
    fn debug_redacts_key() {
        let cipher = ChaCha20::new(&[5u8; KEY_LEN]);
        let repr = format!("{cipher:?}");
        assert!(repr.contains("redacted"));
        assert!(!repr.contains('5'));
    }
}
