//! From-scratch cryptographic primitives for the LPPA reproduction.
//!
//! The LPPA protocol (Liu et al., ICDCS 2013) masks location and bid
//! prefixes with a keyed hash and seals exact bid values under a symmetric
//! key shared with a trusted third party. No cryptography crates are in
//! this project's allowed dependency set, so the primitives are
//! implemented here directly from their specifications and validated
//! against the published test vectors:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4);
//! * [`hmac`] — HMAC-SHA256 (RFC 2104, vectors from RFC 4231);
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 8439);
//! * [`keys`] — opaque key newtypes (`g0`, `gb_r`, `gc`);
//! * [`tag`] — truncated HMAC tags, the unit of every masked submission;
//! * [`seal`] — randomized authenticated encryption of bid values for
//!   the TTP (ChaCha20 + HMAC, encrypt-then-MAC);
//! * [`commit`] — sha-chained append-only commitment ledgers backing
//!   the audited `ledger` masking backend.
//!
//! # Examples
//!
//! Masking a numericalized prefix the way a bidder does:
//!
//! ```
//! use lppa_crypto::keys::HmacKey;
//! use lppa_crypto::tag::Tag;
//!
//! let g0 = HmacKey::from_bytes([0x5a; 32]);
//! let masked = Tag::compute(&g0, b"0111010");
//! assert_eq!(masked, Tag::compute(&g0, b"0111010"));
//! ```
//!
//! These implementations favour clarity and are more than fast enough for
//! the auction workloads in this repository (an entire 129-channel,
//! 400-bidder submission round masks on the order of 10^5 prefixes). They
//! are **not** hardened against side channels beyond constant-time tag
//! comparison and must not be lifted into unrelated production systems.

// `deny` rather than `forbid`: the one sanctioned exception is the
// AVX2 multi-lane SHA-256 kernel in [`lanes`], whose `core::arch`
// intrinsic calls carry a scoped `#[allow(unsafe_code)]` plus a safety
// argument. Everything else in the crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod chacha20;
pub mod commit;
pub mod hmac;
pub mod kdf;
pub mod keys;
pub mod lanes;
pub mod rand_core;
pub mod seal;
pub mod sha256;
pub mod tag;

pub use commit::{CommitmentLedger, LedgerEntry, LedgerError};
pub use kdf::{derive_key, KeySchedule};
pub use keys::{HmacKey, SealKey};
pub use rand_core::RngCore;
pub use seal::{OpenError, SealedValue};
pub use tag::Tag;
