//! Long-message SHA-256 known-answer tests (NIST CAVP / RFC 6234 /
//! FIPS 180-4 examples), driven through both the scalar hasher and the
//! multi-lane kernel at every supported lane width.
//!
//! The lane-kernel runs use *distinct* per-lane messages so that any
//! cross-lane contamination (a schedule word or working variable leaking
//! between lanes) flips at least one digest.

use lppa_crypto::lanes::{compress_batch_with_width, SUPPORTED_WIDTHS};
use lppa_crypto::sha256::{sha256, Sha256, BLOCK_LEN, DIGEST_LEN};

/// FIPS 180-4 initial hash value for SHA-256 (fractional parts of the
/// square roots of the first eight primes).
const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// RFC 6234 TEST4: "01234567" repeated 80 times (640 bytes).
fn rfc6234_test4() -> Vec<u8> {
    b"01234567".repeat(80)
}

/// FIPS 180-4 two-block example extended by NIST: the 112-byte message
/// "abcdefghbcdefghi...nopqrstu".
const FIPS_112: &[u8] = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";

/// One million repetitions of 'a' (RFC 6234 TEST3 / FIPS 180-4).
fn million_a() -> Vec<u8> {
    vec![b'a'; 1_000_000]
}

fn hex(digest: &[u8; DIGEST_LEN]) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

/// FIPS 180-4 §5.1.1 padding: message ‖ 0x80 ‖ zeros ‖ bit-length as a
/// big-endian u64, split into 64-byte blocks.
fn pad_blocks(msg: &[u8]) -> Vec<[u8; BLOCK_LEN]> {
    let bit_len = (msg.len() as u64) * 8;
    let mut padded = msg.to_vec();
    padded.push(0x80);
    while padded.len() % BLOCK_LEN != BLOCK_LEN - 8 {
        padded.push(0);
    }
    padded.extend_from_slice(&bit_len.to_be_bytes());
    padded.chunks_exact(BLOCK_LEN).map(|c| c.try_into().unwrap()).collect()
}

/// Hashes `width` equal-length messages through the lane kernel: one
/// `compress_batch_with_width` call per block row, all lanes advancing
/// in lockstep.
fn lane_digests(width: usize, messages: &[Vec<u8>]) -> Vec<[u8; DIGEST_LEN]> {
    assert_eq!(messages.len(), width);
    let per_lane: Vec<Vec<[u8; BLOCK_LEN]>> = messages.iter().map(|m| pad_blocks(m)).collect();
    let n_blocks = per_lane[0].len();
    assert!(per_lane.iter().all(|b| b.len() == n_blocks), "lanes must be block-aligned");

    let mut states = vec![H0; width];
    for row in 0..n_blocks {
        let blocks: Vec<[u8; BLOCK_LEN]> = per_lane.iter().map(|b| b[row]).collect();
        compress_batch_with_width(width, &mut states, &blocks);
    }
    states
        .iter()
        .map(|state| {
            let mut digest = [0u8; DIGEST_LEN];
            for (chunk, word) in digest.chunks_exact_mut(4).zip(state) {
                chunk.copy_from_slice(&word.to_be_bytes());
            }
            digest
        })
        .collect()
}

/// Runs one known-answer vector through the scalar hasher and through
/// every lane width with distinct sibling messages in the other lanes.
fn check_vector(msg: &[u8], expected_hex: &str) {
    assert_eq!(hex(&sha256(msg)), expected_hex, "scalar one-shot");

    // Incremental, with an uneven split, to exercise buffered blocks.
    let cut = msg.len() / 3;
    let mut hasher = Sha256::new();
    hasher.update(&msg[..cut]);
    hasher.update(&msg[cut..]);
    assert_eq!(hex(&hasher.finalize()), expected_hex, "scalar incremental");

    for width in SUPPORTED_WIDTHS {
        // Lane 0 carries the vector; lanes 1.. carry distinct siblings
        // (first byte perturbed) so cross-lane mixing cannot cancel out.
        let messages: Vec<Vec<u8>> = (0..width)
            .map(|lane| {
                let mut m = msg.to_vec();
                if lane > 0 && !m.is_empty() {
                    m[0] ^= lane as u8;
                }
                m
            })
            .collect();
        let digests = lane_digests(width, &messages);
        assert_eq!(hex(&digests[0]), expected_hex, "width={width} lane 0");
        for (lane, (digest, message)) in digests.iter().zip(&messages).enumerate() {
            assert_eq!(*digest, sha256(message), "width={width} lane {lane}");
        }
    }
}

#[test]
fn rfc6234_test4_640_bytes() {
    check_vector(
        &rfc6234_test4(),
        "594847328451bdfa85056225462cc1d867d877fb388df0ce35f25ab5562bfbb5",
    );
}

#[test]
fn fips_two_block_112_bytes() {
    check_vector(FIPS_112, "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

#[test]
fn rfc6234_test3_million_a() {
    check_vector(&million_a(), "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

/// CAVP-style short boundary messages: every length around the padding
/// boundaries (55/56/63/64/119/120), scalar vs every lane width.
#[test]
fn padding_boundary_lengths_agree_across_widths() {
    for len in [0usize, 1, 54, 55, 56, 63, 64, 65, 119, 120, 128] {
        let msg: Vec<u8> = (0..len).map(|i| (i * 131 + 7) as u8).collect();
        let expected = sha256(&msg);
        for width in SUPPORTED_WIDTHS {
            let messages = vec![msg.clone(); width];
            for (lane, digest) in lane_digests(width, &messages).iter().enumerate() {
                assert_eq!(*digest, expected, "len={len} width={width} lane={lane}");
            }
        }
    }
}
