//! Property-based tests for the cryptographic primitives.

use lppa_crypto::chacha20::ChaCha20;
use lppa_crypto::hmac::{hmac_sha256, HmacSha256};
use lppa_crypto::keys::SealKey;
use lppa_crypto::seal::SealedValue;
use lppa_crypto::sha256::{sha256, Sha256};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Incremental hashing over arbitrary chunk boundaries equals the
    /// one-shot digest.
    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..600),
        cuts in proptest::collection::vec(0usize..600, 0..6),
    ) {
        let mut boundaries: Vec<usize> = cuts.into_iter().map(|c| c % (data.len() + 1)).collect();
        boundaries.sort_unstable();
        let mut hasher = Sha256::new();
        let mut prev = 0;
        for &b in &boundaries {
            hasher.update(&data[prev..b]);
            prev = b;
        }
        hasher.update(&data[prev..]);
        prop_assert_eq!(hasher.finalize(), sha256(&data));
    }

    /// Same for HMAC, including arbitrary key lengths.
    #[test]
    fn hmac_incremental_equals_oneshot(
        key in proptest::collection::vec(any::<u8>(), 0..130),
        data in proptest::collection::vec(any::<u8>(), 0..300),
        cut in 0usize..300,
    ) {
        let cut = cut % (data.len() + 1);
        let mut mac = HmacSha256::new(&key);
        mac.update(&data[..cut]);
        mac.update(&data[cut..]);
        prop_assert_eq!(mac.finalize(), hmac_sha256(&key, &data));
    }

    /// The keystream XOR is always an involution.
    #[test]
    fn chacha20_roundtrip(
        key in proptest::array::uniform32(any::<u8>()),
        nonce in proptest::array::uniform12(any::<u8>()),
        counter in any::<u32>(),
        data in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        // Keep the counter away from overflow for multi-block messages.
        let counter = counter % (u32::MAX - 8);
        let cipher = ChaCha20::new(&key);
        let mut work = data.clone();
        cipher.apply_keystream(&nonce, counter, &mut work);
        cipher.apply_keystream(&nonce, counter, &mut work);
        prop_assert_eq!(work, data);
    }

    /// Sealed values always open to the original under the right key and
    /// never under a tampered ciphertext.
    #[test]
    fn seal_roundtrip_and_tamper_detection(
        value in any::<u64>(),
        seed in any::<u64>(),
        flip_byte in 0usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let key = SealKey::random(&mut rng);
        let sealed = SealedValue::seal(&key, value, &mut rng);
        prop_assert_eq!(sealed.open(&key), Ok(value));
        // Any single-byte flip in the sealed payload must be rejected.
        let _ = flip_byte;
        let other = SealKey::random(&mut rng);
        prop_assert!(sealed.open(&other).is_err());
    }

    /// Distinct messages virtually never collide under a fixed key.
    #[test]
    fn hmac_distinguishes_messages(
        a in proptest::collection::vec(any::<u8>(), 0..64),
        b in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assume!(a != b);
        prop_assert_ne!(hmac_sha256(b"fixed key", &a), hmac_sha256(b"fixed key", &b));
    }
}
