//! Property-based tests for the cryptographic primitives.
//!
//! Run with the in-tree harness: each property draws its inputs from a
//! seeded RNG; failures print the exact reproduction seed (see
//! `lppa_rng::testing`).

use lppa_crypto::chacha20::ChaCha20;
use lppa_crypto::hmac::{hmac_sha256, HmacMidstate, HmacSha256};
use lppa_crypto::keys::{HmacKey, SealKey};
use lppa_crypto::lanes::{compress_batch, compress_batch_with_width, SUPPORTED_WIDTHS};
use lppa_crypto::seal::SealedValue;
use lppa_crypto::sha256::{sha256, Sha256, BLOCK_LEN};
use lppa_crypto::tag::Tag;
use lppa_rng::testing::{byte_vec, check};
use lppa_rng::{Rng, RngCore};

/// Incremental hashing over arbitrary chunk boundaries equals the
/// one-shot digest.
#[test]
fn sha256_incremental_equals_oneshot() {
    check("sha256_incremental_equals_oneshot", |rng| {
        let data = byte_vec(rng, 600);
        let n_cuts = rng.gen_range(0..6usize);
        let mut boundaries: Vec<usize> =
            (0..n_cuts).map(|_| rng.gen_range(0..=data.len())).collect();
        boundaries.sort_unstable();
        let mut hasher = Sha256::new();
        let mut prev = 0;
        for &b in &boundaries {
            hasher.update(&data[prev..b]);
            prev = b;
        }
        hasher.update(&data[prev..]);
        assert_eq!(hasher.finalize(), sha256(&data));
    });
}

/// A cached [`HmacMidstate`] is indistinguishable from a from-scratch
/// HMAC for every key/message length in `0..=257` — below, at and past
/// both the 64-byte key-block and 55-byte single-compression-message
/// boundaries, including the hash-the-key-first path.
#[test]
fn midstate_equals_fresh_hmac() {
    check("midstate_equals_fresh_hmac", |rng| {
        let key = byte_vec(rng, 257);
        let msg = byte_vec(rng, 257);
        let expected = hmac_sha256(&key, &msg);
        let midstate = HmacMidstate::new(&key);
        assert_eq!(midstate.compute(&msg), expected, "key_len={}", key.len());
        // The same midstate, used incrementally with a random split.
        let cut = rng.gen_range(0..=msg.len());
        let mut mac = midstate.mac();
        mac.update(&msg[..cut]);
        mac.update(&msg[cut..]);
        assert_eq!(mac.finalize(), expected, "cut={cut}");
    });
}

/// Same for HMAC, including arbitrary key lengths.
#[test]
fn hmac_incremental_equals_oneshot() {
    check("hmac_incremental_equals_oneshot", |rng| {
        let key = byte_vec(rng, 130);
        let data = byte_vec(rng, 300);
        let cut = rng.gen_range(0..=data.len());
        let mut mac = HmacSha256::new(&key);
        mac.update(&data[..cut]);
        mac.update(&data[cut..]);
        assert_eq!(mac.finalize(), hmac_sha256(&key, &data));
    });
}

/// The keystream XOR is always an involution.
#[test]
fn chacha20_roundtrip() {
    check("chacha20_roundtrip", |rng| {
        let mut key = [0u8; 32];
        rng.fill_bytes(&mut key);
        let mut nonce = [0u8; 12];
        rng.fill_bytes(&mut nonce);
        // Keep the counter away from overflow for multi-block messages.
        let counter = rng.gen_range(0..u32::MAX - 8);
        let data = byte_vec(rng, 300);
        let cipher = ChaCha20::new(&key);
        let mut work = data.clone();
        cipher.apply_keystream(&nonce, counter, &mut work);
        cipher.apply_keystream(&nonce, counter, &mut work);
        assert_eq!(work, data);
    });
}

/// Sealed values always open to the original under the right key and
/// never under a different key.
#[test]
fn seal_roundtrip_and_tamper_detection() {
    check("seal_roundtrip_and_tamper_detection", |rng| {
        let value: u64 = rng.gen();
        let key = SealKey::random(rng);
        let sealed = SealedValue::seal(&key, value, rng);
        assert_eq!(sealed.open(&key), Ok(value));
        let other = SealKey::random(rng);
        assert!(sealed.open(&other).is_err());
    });
}

/// The multi-lane compression kernel equals N independent scalar
/// compressions on random blocks, for every supported lane width and
/// batch size (including sizes that leave partial-width remainders).
#[test]
fn lane_kernel_equals_scalar_compression() {
    check("lane_kernel_equals_scalar_compression", |rng| {
        let n = rng.gen_range(0..20usize);
        let mut states = Vec::with_capacity(n);
        let mut blocks = Vec::with_capacity(n);
        for _ in 0..n {
            let mut state = [0u32; 8];
            state.iter_mut().for_each(|w| *w = rng.gen());
            let mut block = [0u8; BLOCK_LEN];
            rng.fill_bytes(&mut block);
            states.push(state);
            blocks.push(block);
        }
        // Width 1 takes the scalar remainder loop — the reference.
        let mut reference = states.clone();
        compress_batch_with_width(1, &mut reference, &blocks);
        for width in SUPPORTED_WIDTHS {
            let mut lanes = states.clone();
            compress_batch_with_width(width, &mut lanes, &blocks);
            assert_eq!(lanes, reference, "width={width} n={n}");
        }
        let mut default_width = states;
        compress_batch(&mut default_width, &blocks);
        assert_eq!(default_width, reference, "default width, n={n}");
    });
}

/// Batched HMAC over a random mix of message lengths — below, at and
/// past the single-compression boundary (55 bytes), where the batch
/// path falls back to scalar — equals per-message scalar HMAC at every
/// lane width.
#[test]
fn batched_hmac_equals_scalar() {
    check("batched_hmac_equals_scalar", |rng| {
        let key = byte_vec(rng, 80);
        let midstate = HmacMidstate::new(&key);
        let n = rng.gen_range(0..24usize);
        let messages: Vec<Vec<u8>> = (0..n).map(|_| byte_vec(rng, 120)).collect();
        let expected: Vec<_> = messages.iter().map(|m| midstate.compute(m)).collect();
        for width in SUPPORTED_WIDTHS {
            let mut got = vec![[0u8; 32]; n];
            midstate.compute_batch_into_with_width(width, &messages, |i, digest| {
                got[i] = digest;
            });
            assert_eq!(got, expected, "width={width} n={n}");
        }
        assert_eq!(midstate.compute_batch(&messages), expected, "default width");
    });
}

/// Batched tag generation equals scalar [`Tag::compute`] for random
/// 9-byte mask inputs — the exact shape the submission hot path feeds.
#[test]
fn batched_tags_equal_scalar() {
    check("batched_tags_equal_scalar", |rng| {
        let key = HmacKey::random(rng);
        let n = rng.gen_range(0..40usize);
        let messages: Vec<[u8; 9]> = (0..n)
            .map(|_| {
                let mut m = [0u8; 9];
                rng.fill_bytes(&mut m);
                m
            })
            .collect();
        let expected: Vec<Tag> = messages.iter().map(|m| Tag::compute(&key, m)).collect();
        for width in SUPPORTED_WIDTHS {
            let got = Tag::compute_batch_with_width(&key, width, &messages);
            assert_eq!(got, expected, "width={width} n={n}");
        }
        assert_eq!(Tag::compute_batch(&key, &messages), expected, "default width");
    });
}

/// Distinct messages virtually never collide under a fixed key.
#[test]
fn hmac_distinguishes_messages() {
    check("hmac_distinguishes_messages", |rng| {
        let a = byte_vec(rng, 64);
        let b = byte_vec(rng, 64);
        if a == b {
            return;
        }
        assert_ne!(hmac_sha256(b"fixed key", &a), hmac_sha256(b"fixed key", &b));
    });
}
