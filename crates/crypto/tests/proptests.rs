//! Property-based tests for the cryptographic primitives.
//!
//! Run with the in-tree harness: each property draws its inputs from a
//! seeded RNG; failures print the exact reproduction seed (see
//! `lppa_rng::testing`).

use lppa_crypto::chacha20::ChaCha20;
use lppa_crypto::hmac::{hmac_sha256, HmacMidstate, HmacSha256};
use lppa_crypto::keys::SealKey;
use lppa_crypto::seal::SealedValue;
use lppa_crypto::sha256::{sha256, Sha256};
use lppa_rng::testing::{byte_vec, check};
use lppa_rng::{Rng, RngCore};

/// Incremental hashing over arbitrary chunk boundaries equals the
/// one-shot digest.
#[test]
fn sha256_incremental_equals_oneshot() {
    check("sha256_incremental_equals_oneshot", |rng| {
        let data = byte_vec(rng, 600);
        let n_cuts = rng.gen_range(0..6usize);
        let mut boundaries: Vec<usize> =
            (0..n_cuts).map(|_| rng.gen_range(0..=data.len())).collect();
        boundaries.sort_unstable();
        let mut hasher = Sha256::new();
        let mut prev = 0;
        for &b in &boundaries {
            hasher.update(&data[prev..b]);
            prev = b;
        }
        hasher.update(&data[prev..]);
        assert_eq!(hasher.finalize(), sha256(&data));
    });
}

/// A cached [`HmacMidstate`] is indistinguishable from a from-scratch
/// HMAC for every key/message length in `0..=257` — below, at and past
/// both the 64-byte key-block and 55-byte single-compression-message
/// boundaries, including the hash-the-key-first path.
#[test]
fn midstate_equals_fresh_hmac() {
    check("midstate_equals_fresh_hmac", |rng| {
        let key = byte_vec(rng, 257);
        let msg = byte_vec(rng, 257);
        let expected = hmac_sha256(&key, &msg);
        let midstate = HmacMidstate::new(&key);
        assert_eq!(midstate.compute(&msg), expected, "key_len={}", key.len());
        // The same midstate, used incrementally with a random split.
        let cut = rng.gen_range(0..=msg.len());
        let mut mac = midstate.mac();
        mac.update(&msg[..cut]);
        mac.update(&msg[cut..]);
        assert_eq!(mac.finalize(), expected, "cut={cut}");
    });
}

/// Same for HMAC, including arbitrary key lengths.
#[test]
fn hmac_incremental_equals_oneshot() {
    check("hmac_incremental_equals_oneshot", |rng| {
        let key = byte_vec(rng, 130);
        let data = byte_vec(rng, 300);
        let cut = rng.gen_range(0..=data.len());
        let mut mac = HmacSha256::new(&key);
        mac.update(&data[..cut]);
        mac.update(&data[cut..]);
        assert_eq!(mac.finalize(), hmac_sha256(&key, &data));
    });
}

/// The keystream XOR is always an involution.
#[test]
fn chacha20_roundtrip() {
    check("chacha20_roundtrip", |rng| {
        let mut key = [0u8; 32];
        rng.fill_bytes(&mut key);
        let mut nonce = [0u8; 12];
        rng.fill_bytes(&mut nonce);
        // Keep the counter away from overflow for multi-block messages.
        let counter = rng.gen_range(0..u32::MAX - 8);
        let data = byte_vec(rng, 300);
        let cipher = ChaCha20::new(&key);
        let mut work = data.clone();
        cipher.apply_keystream(&nonce, counter, &mut work);
        cipher.apply_keystream(&nonce, counter, &mut work);
        assert_eq!(work, data);
    });
}

/// Sealed values always open to the original under the right key and
/// never under a different key.
#[test]
fn seal_roundtrip_and_tamper_detection() {
    check("seal_roundtrip_and_tamper_detection", |rng| {
        let value: u64 = rng.gen();
        let key = SealKey::random(rng);
        let sealed = SealedValue::seal(&key, value, rng);
        assert_eq!(sealed.open(&key), Ok(value));
        let other = SealKey::random(rng);
        assert!(sealed.open(&other).is_err());
    });
}

/// Distinct messages virtually never collide under a fixed key.
#[test]
fn hmac_distinguishes_messages() {
    check("hmac_distinguishes_messages", |rng| {
        let a = byte_vec(rng, 64);
        let b = byte_vec(rng, 64);
        if a == b {
            return;
        }
        assert_ne!(hmac_sha256(b"fixed key", &a), hmac_sha256(b"fixed key", &b));
    });
}
