//! The shrinking minimizer.
//!
//! Scenarios are concrete data, so shrinking is direct structural
//! editing: drop half the bidders, drop a channel, simplify the
//! transform parameters (which shrinks `w`), disable chaos and
//! disguising. An edit is kept only if the *same* invariant still
//! fails on the edited scenario; the loop stops when no edit preserves
//! the failure. Greedy and deterministic — the same failing scenario
//! always minimizes to the same repro.

use crate::invariants::{check_all, Violation, PIPELINE_ERROR};
use crate::pipelines::ScenarioRun;
use crate::scenario::{DisguiseSpec, Scenario};

/// Hard cap on pipeline executions per minimization, so a pathological
/// failure cannot stall the fuzzer.
const MAX_EXECUTIONS: usize = 400;

/// The outcome of a minimization.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The smallest scenario still failing the target invariant.
    pub scenario: Scenario,
    /// The violation the minimal scenario produces.
    pub violation: Violation,
    /// Accepted shrink steps.
    pub steps: usize,
    /// Total pipeline executions spent.
    pub executions: usize,
}

/// Re-executes `scenario` and returns the violation of `target`, if it
/// still occurs. Execution errors surface as the [`PIPELINE_ERROR`]
/// pseudo-invariant, so a scenario that makes the pipeline itself fail
/// can be minimized the same way.
pub fn violation_of(scenario: &Scenario, target: &str) -> Option<Violation> {
    match ScenarioRun::execute(scenario.clone()) {
        Ok(run) => check_all(&run).into_iter().find(|v| v.invariant == target),
        Err(e) if target == PIPELINE_ERROR => {
            Some(Violation { invariant: PIPELINE_ERROR, detail: e.to_string() })
        }
        Err(_) => None,
    }
}

/// Minimizes `scenario` with respect to the named `target` invariant.
///
/// `initial_violation` is what the unshrunk scenario produced (so the
/// result is meaningful even if no edit survives).
pub fn shrink(scenario: &Scenario, target: &str, initial_violation: Violation) -> ShrinkResult {
    let mut current = scenario.clone();
    let mut violation = initial_violation;
    let mut steps = 0usize;
    let mut executions = 0usize;

    'outer: loop {
        for candidate in candidates(&current) {
            if executions >= MAX_EXECUTIONS {
                break 'outer;
            }
            executions += 1;
            if let Some(v) = violation_of(&candidate, target) {
                current = candidate;
                violation = v;
                steps += 1;
                continue 'outer; // restart edits from the smaller scenario
            }
        }
        break;
    }
    ShrinkResult { scenario: current, violation, steps, executions }
}

/// Candidate one-step shrinks of `scenario`, largest reduction first.
fn candidates(scenario: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    let n = scenario.n_bidders();
    let k = scenario.n_channels;

    // Halve the bidder set (front half, back half).
    if n > 1 {
        out.push(keep_bidders(scenario, |i| i < n.div_ceil(2)));
        out.push(keep_bidders(scenario, |i| i >= n / 2));
    }
    // Drop individual bidders once the set is small.
    if n > 1 && n <= 8 {
        for drop in 0..n {
            out.push(keep_bidders(scenario, |i| i != drop));
        }
    }
    // Drop each channel.
    if k > 1 {
        for drop in 0..k {
            let mut s = scenario.clone();
            s.n_channels -= 1;
            for row in &mut s.rows {
                row.remove(drop);
            }
            out.push(s);
        }
    }
    // Disable chaos and disguising.
    if scenario.chaos {
        let mut s = scenario.clone();
        s.chaos = false;
        out.push(s);
    }
    if !scenario.disguise.is_never() {
        let mut s = scenario.clone();
        s.disguise = DisguiseSpec::Never;
        out.push(s);
    }
    // Simplify the transform (shrinks the masked width w).
    if scenario.config.cr > 1 {
        let mut s = scenario.clone();
        s.config.cr = scenario.config.cr / 2;
        push_if_valid(&mut out, s);
    }
    if scenario.config.rd > 0 {
        let mut s = scenario.clone();
        s.config.rd = scenario.config.rd / 2;
        push_if_valid(&mut out, s);
    }
    if scenario.config.bid_bits > 2 {
        let mut s = scenario.clone();
        s.config.bid_bits -= 1;
        let bmax = s.config.bid_max();
        for row in &mut s.rows {
            for bid in row.iter_mut() {
                *bid = (*bid).min(bmax);
            }
        }
        push_if_valid(&mut out, s);
    }
    out
}

fn keep_bidders(scenario: &Scenario, keep: impl Fn(usize) -> bool) -> Scenario {
    let mut s = scenario.clone();
    s.locations =
        s.locations.iter().enumerate().filter(|&(i, _)| keep(i)).map(|(_, &l)| l).collect();
    s.rows = s.rows.iter().enumerate().filter(|&(i, _)| keep(i)).map(|(_, r)| r.clone()).collect();
    s
}

fn push_if_valid(out: &mut Vec<Scenario>, scenario: Scenario) {
    if scenario.config.validate().is_ok() {
        out.push(scenario);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioParams;

    #[test]
    fn candidates_preserve_shape() {
        let scenario = Scenario::generate(&ScenarioParams::chaotic(), 9);
        for c in candidates(&scenario) {
            c.config.validate().unwrap();
            assert_eq!(c.locations.len(), c.n_bidders());
            assert!(c.n_bidders() >= 1);
            assert!(c.n_channels >= 1);
            for row in &c.rows {
                assert_eq!(row.len(), c.n_channels);
                assert!(row.iter().all(|&b| b <= c.config.bid_max()));
            }
        }
    }

    #[test]
    fn pipeline_errors_shrink_to_the_offending_bidder() {
        // An out-of-domain bid makes submission building fail; the
        // minimizer must strip everything except a witness of that bid.
        let mut scenario = Scenario::builder(21).bidders(10).channels(2).build();
        scenario.rows[7][1] = scenario.config.bid_max() + 1;
        let v = violation_of(&scenario, PIPELINE_ERROR).expect("oversized bid must error");
        let result = shrink(&scenario, PIPELINE_ERROR, v);
        assert!(result.scenario.n_bidders() <= 2, "left {} bidders", result.scenario.n_bidders());
        assert!(
            result.scenario.rows.iter().flatten().any(|&b| b > result.scenario.config.bid_max()),
            "the offending bid must survive minimization"
        );
        assert_eq!(result.violation.invariant, PIPELINE_ERROR);
        assert!(result.steps > 0);
    }

    #[test]
    fn shrink_finds_a_small_repro_for_a_planted_failure() {
        // Plant a failure that any scenario with ≥ 1 bidder exhibits by
        // targeting an invariant with an always-false stand-in: here we
        // use a synthetic target name that `violation_of` never finds,
        // so shrink must return the initial violation untouched.
        let scenario = Scenario::builder(3).bidders(12).channels(4).build();
        let planted = Violation { invariant: "synthetic", detail: "planted".into() };
        let result = shrink(&scenario, "synthetic", planted.clone());
        assert_eq!(result.scenario, scenario);
        assert_eq!(result.violation, planted);
        assert_eq!(result.steps, 0);
    }
}
