//! The named-invariant registry.
//!
//! Each invariant is a pure predicate over a [`ScenarioRun`]; a failure
//! carries the invariant's registry name (so the shrinker can chase
//! exactly that failure) and a human-readable detail string. Invariants
//! whose precondition a scenario does not meet (e.g. exact equivalence
//! on a tied or disguised scenario) pass vacuously — the generator
//! keeps all preconditions populated across a fuzzing run.

use lppa_auction::allocation::Grant;
use lppa_auction::bidder::BidderId;
use lppa_auction::conflict::ConflictGraph;
use lppa_auction::outcome::AuctionOutcome;
use lppa_crypto::hmac::{hmac_sha256, HmacMidstate, HmacSha256};
use lppa_prefix::{max_cover_len, range_prefixes};
use lppa_rng::rngs::StdRng;
use lppa_rng::{Rng, RngCore, SeedableRng};
use lppa_spectrum::ChannelId;

use crate::pipelines::ScenarioRun;

/// One invariant failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Registry name of the violated invariant.
    pub invariant: &'static str,
    /// What exactly diverged.
    pub detail: String,
}

/// The pseudo-invariant name used when a pipeline errors out instead of
/// producing a result to check.
pub const PIPELINE_ERROR: &str = "pipeline_error";

/// A named check over an executed scenario.
pub struct Invariant {
    /// Registry name (stable; repro files reference it).
    pub name: &'static str,
    /// One-line description for reports and docs.
    pub summary: &'static str,
    /// The predicate; `Err(detail)` on violation.
    pub check: fn(&ScenarioRun) -> Result<(), String>,
}

/// Every registered invariant, in evaluation order.
pub fn registry() -> Vec<Invariant> {
    vec![
        Invariant {
            name: "conflict_graph_cross_check",
            summary: "indexed, pairwise and plaintext conflict graphs agree",
            check: conflict_graph_cross_check,
        },
        Invariant {
            name: "serial_parallel_fanout",
            summary: "serial and lppa-par submission builds are bit-identical",
            check: serial_parallel_fanout,
        },
        Invariant {
            name: "hmac_midstate_direct",
            summary: "midstate HMAC equals direct and streaming HMAC",
            check: hmac_midstate_direct,
        },
        Invariant {
            name: "batch_scalar_tags",
            summary: "multi-lane batched tags equal scalar Tag::compute at every lane width",
            check: batch_scalar_tags,
        },
        Invariant {
            name: "prefix_cover_bound",
            summary: "every range cover is padded to max_cover_len ≤ max(2, 2w−2)",
            check: prefix_cover_bound,
        },
        Invariant {
            name: "maxima_variants",
            summary: "indexed and linear masked maxima agree on every channel",
            check: maxima_variants,
        },
        Invariant {
            name: "outcome_equivalence",
            summary: "masked grants equal plaintext grants (tie-free, undisguised)",
            check: outcome_equivalence,
        },
        Invariant {
            name: "interference_freedom",
            summary: "no two conflicting bidders hold the same channel",
            check: interference_freedom,
        },
        Invariant {
            name: "charge_correctness",
            summary: "every charge is the winner's true first-price bid",
            check: charge_correctness,
        },
        Invariant {
            name: "invalid_grants_are_zeros",
            summary: "only true raw zeros are ever invalidated",
            check: invalid_grants_are_zeros,
        },
        Invariant {
            name: "winner_uniqueness",
            summary: "a bidder holds at most one channel",
            check: winner_uniqueness,
        },
        Invariant {
            name: "session_consistency",
            summary: "session runs are deterministic, resumable, and match the plain runner",
            check: session_consistency,
        },
        Invariant {
            name: "wire_socket_equivalence",
            summary:
                "live-socket rounds and killed-and-resumed sessions equal the simulated wire round",
            check: wire_socket_equivalence,
        },
        Invariant {
            name: "service_sequential_equivalence",
            summary: "sharded service outcomes equal the unsharded sequential reference",
            check: service_sequential_equivalence,
        },
        Invariant {
            name: "incremental_equals_rebuild",
            summary: "delta-applied churn rounds settle identically to per-round rebuilds",
            check: incremental_equals_rebuild,
        },
        Invariant {
            name: "backend_outcome_equivalence",
            summary:
                "exact masking backends settle bit-identically; bloom stays within its FP budget",
            check: backend_outcome_equivalence,
        },
        Invariant {
            name: "backend_arena_pool_equivalence",
            summary:
                "one scratch pool reused across all builds and every backend settles bit-identically",
            check: backend_arena_pool_equivalence,
        },
        Invariant {
            name: "vickrey_charge_correctness",
            summary:
                "Vickrey winners pay the critical losing bid, and misreporting never helps them",
            check: vickrey_charge_correctness,
        },
        Invariant {
            name: "permutation_invariance",
            summary: "relabeling bidders permutes the outcome and nothing else",
            check: permutation_invariance,
        },
        Invariant {
            name: "key_rotation_invariance",
            summary: "per-round key rotation leaves the outcome fixed",
            check: key_rotation_invariance,
        },
        Invariant {
            name: "transform_shift_invariance",
            summary: "shifting rd / scaling cr preserves winners and charges",
            check: transform_shift_invariance,
        },
    ]
}

/// Evaluates the whole registry; returns every violation found.
pub fn check_all(run: &ScenarioRun) -> Vec<Violation> {
    registry()
        .iter()
        .filter_map(|inv| {
            (inv.check)(run).err().map(|detail| Violation { invariant: inv.name, detail })
        })
        .collect()
}

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

/// `(bidder, channel, price)` triples, sorted — the order-insensitive
/// projection of an outcome.
fn assignment_set(outcome: &AuctionOutcome) -> Vec<(usize, usize, u32)> {
    let mut set: Vec<_> =
        outcome.assignments().iter().map(|a| (a.bidder.0, a.channel.0, a.price)).collect();
    set.sort_unstable();
    set
}

fn grant_set(grants: &[Grant]) -> Vec<(usize, usize)> {
    let mut set: Vec<_> = grants.iter().map(|g| (g.bidder.0, g.channel.0)).collect();
    set.sort_unstable();
    set
}

/// Checks that no channel is held by two conflicting bidders.
fn grants_interference_free(
    grants: &[Grant],
    conflicts: &ConflictGraph,
    k: usize,
    label: &str,
) -> Result<(), String> {
    for ch in 0..k {
        let holders: Vec<BidderId> =
            grants.iter().filter(|g| g.channel.0 == ch).map(|g| g.bidder).collect();
        if !conflicts.is_independent(&holders) {
            return Err(format!("{label}: channel {ch} holders {holders:?} conflict"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------

fn conflict_graph_cross_check(run: &ScenarioRun) -> Result<(), String> {
    if run.graph_indexed != run.graph_pairwise {
        return Err("TagIndex conflict graph differs from pairwise reference".into());
    }
    if run.graph_indexed != run.plain.conflicts {
        return Err("masked conflict graph differs from plaintext ground truth".into());
    }
    Ok(())
}

fn serial_parallel_fanout(run: &ScenarioRun) -> Result<(), String> {
    if run.parallel_checksums != run.serial_checksums {
        return Err(format!(
            "parallel fan-out checksums {:?} != serial reference {:?}",
            run.parallel_checksums, run.serial_checksums
        ));
    }
    Ok(())
}

fn hmac_midstate_direct(run: &ScenarioRun) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(run.scenario.seed ^ 0x4dac_0000_0000_0001);
    for case in 0..8 {
        let mut key = vec![0u8; rng.gen_range(1..=80)];
        rng.fill_bytes(&mut key);
        let mut msg = vec![0u8; rng.gen_range(0..=64)];
        rng.fill_bytes(&mut msg);

        let direct = hmac_sha256(&key, &msg);
        let midstate = HmacMidstate::new(&key).compute(&msg);
        if direct != midstate {
            return Err(format!("case {case}: midstate HMAC differs from direct HMAC"));
        }
        let mut streaming = HmacSha256::new(&key);
        let split = msg.len() / 2;
        streaming.update(&msg[..split]);
        streaming.update(&msg[split..]);
        if streaming.finalize() != direct {
            return Err(format!("case {case}: streaming HMAC differs from one-shot HMAC"));
        }
    }
    Ok(())
}

fn batch_scalar_tags(run: &ScenarioRun) -> Result<(), String> {
    let probe = &run.tag_kernel;
    if probe.scalar.len() != probe.messages.len() {
        return Err(format!(
            "probe produced {} scalar tags for {} messages",
            probe.scalar.len(),
            probe.messages.len()
        ));
    }
    for (width, tags) in &probe.batched {
        if tags != &probe.scalar {
            let i = probe.scalar.iter().zip(tags).position(|(a, b)| a != b).unwrap_or(0);
            return Err(format!(
                "lane width {width}: batched tag {i} (message len {}) differs from scalar",
                probe.messages.get(i).map_or(0, Vec::len)
            ));
        }
    }
    if probe.default_batch != probe.scalar {
        return Err("process-default batch width differs from scalar tags".into());
    }
    Ok(())
}

fn prefix_cover_bound(run: &ScenarioRun) -> Result<(), String> {
    let config = &run.scenario.config;
    let w = config.transformed_bits();
    let bound = std::cmp::max(2, 2 * usize::from(w) - 2);
    if max_cover_len(w) > bound {
        return Err(format!(
            "max_cover_len({w}) = {} exceeds max(2, 2w−2) = {bound}",
            max_cover_len(w)
        ));
    }
    for (i, sub) in run.submissions.iter().enumerate() {
        for (ch, bid) in sub.bids.bids().iter().enumerate() {
            if bid.range.len() != max_cover_len(w) {
                return Err(format!(
                    "bidder {i} channel {ch}: range has {} tags, expected padded {}",
                    bid.range.len(),
                    max_cover_len(w)
                ));
            }
            if bid.point.len() != usize::from(w) + 1 {
                return Err(format!(
                    "bidder {i} channel {ch}: point has {} tags, expected {}",
                    bid.point.len(),
                    usize::from(w) + 1
                ));
            }
        }
    }
    // Minimal (unpadded) covers of random intervals respect the
    // Theorem-4 bound too.
    let mut rng = StdRng::seed_from_u64(run.scenario.seed ^ 0xc07e_0000_0000_0002);
    let max = config.transformed_max();
    for _ in 0..16 {
        let a = rng.gen_range(0..=max);
        let b = rng.gen_range(0..=max);
        let (lo, hi) = (a.min(b), a.max(b));
        let cover = range_prefixes(w, lo, hi).map_err(|e| e.to_string())?;
        if cover.len() > bound {
            return Err(format!(
                "minimal cover of [{lo}, {hi}] has {} > {bound} prefixes",
                cover.len()
            ));
        }
    }
    Ok(())
}

fn maxima_variants(run: &ScenarioRun) -> Result<(), String> {
    use lppa_auction::allocation::BidOracle;
    let table = &run.table_pruned;
    let n = table.n_bidders();
    let mut rng = StdRng::seed_from_u64(run.scenario.seed ^ 0x3a1_0000_0000_0003);
    for ch in 0..table.n_channels() {
        let channel = ChannelId(ch);
        let all: Vec<BidderId> =
            (0..n).map(BidderId).filter(|&b| table.has_entry(b, channel)).collect();
        let mut subsets = vec![all.clone()];
        if all.len() > 1 {
            let sub: Vec<BidderId> = all.iter().copied().filter(|_| rng.gen_bool(0.6)).collect();
            if !sub.is_empty() {
                subsets.push(sub);
            }
        }
        for candidates in subsets {
            if candidates.is_empty() {
                continue;
            }
            let mut indexed = table.maxima_indexed(channel, &candidates);
            let mut linear = table.maxima_linear(channel, &candidates);
            indexed.sort_unstable_by_key(|b| b.0);
            linear.sort_unstable_by_key(|b| b.0);
            if indexed != linear {
                return Err(format!(
                    "channel {ch}: maxima_indexed {indexed:?} != maxima_linear {linear:?} over {candidates:?}"
                ));
            }
        }
    }
    Ok(())
}

fn outcome_equivalence(run: &ScenarioRun) -> Result<(), String> {
    if !run.strong_equivalence_applies() {
        return Ok(());
    }
    if run.masked.grants != run.plain.grants {
        return Err(format!(
            "masked grant sequence {:?} != plaintext {:?}",
            grant_set(&run.masked.grants),
            grant_set(&run.plain.grants)
        ));
    }
    if !run.masked.invalid_grants.is_empty() {
        return Err(format!(
            "undisguised scenario produced invalid grants {:?}",
            run.masked.invalid_grants
        ));
    }
    let masked = assignment_set(&run.masked.outcome);
    let plain = assignment_set(&run.plain.outcome);
    if masked != plain {
        return Err(format!("masked assignments {masked:?} != plaintext {plain:?}"));
    }
    Ok(())
}

fn interference_freedom(run: &ScenarioRun) -> Result<(), String> {
    let k = run.scenario.n_channels;
    let conflicts = &run.plain.conflicts;
    grants_interference_free(&run.plain.grants, conflicts, k, "plain")?;
    grants_interference_free(&run.masked.grants, conflicts, k, "masked")?;
    grants_interference_free(&run.oblivious.grants, conflicts, k, "oblivious")?;
    Ok(())
}

fn charge_correctness(run: &ScenarioRun) -> Result<(), String> {
    let rows = &run.scenario.rows;
    for (label, result) in [("masked", &run.masked), ("oblivious", &run.oblivious)] {
        for a in result.outcome.assignments() {
            let raw = rows[a.bidder.0][a.channel.0];
            if a.price != raw || a.price == 0 {
                return Err(format!(
                    "{label}: bidder {} charged {} on channel {}, true bid {raw}",
                    a.bidder.0, a.price, a.channel.0
                ));
            }
        }
    }
    for a in run.plain.outcome.assignments() {
        let raw = rows[a.bidder.0][a.channel.0];
        if a.price != raw || a.price == 0 {
            return Err(format!(
                "plain: bidder {} charged {} on channel {}, true bid {raw}",
                a.bidder.0, a.price, a.channel.0
            ));
        }
    }
    Ok(())
}

fn invalid_grants_are_zeros(run: &ScenarioRun) -> Result<(), String> {
    let rows = &run.scenario.rows;
    for (label, result) in [("masked", &run.masked), ("oblivious", &run.oblivious)] {
        for g in &result.invalid_grants {
            let raw = rows[g.bidder.0][g.channel.0];
            if raw != 0 {
                return Err(format!(
                    "{label}: invalidated grant ({}, {}) has true bid {raw} ≠ 0",
                    g.bidder.0, g.channel.0
                ));
            }
        }
    }
    Ok(())
}

fn winner_uniqueness(run: &ScenarioRun) -> Result<(), String> {
    for (label, grants) in [
        ("plain", &run.plain.grants),
        ("masked", &run.masked.grants),
        ("oblivious", &run.oblivious.grants),
    ] {
        let mut seen = std::collections::HashSet::new();
        for g in grants.iter() {
            if !seen.insert(g.bidder.0) {
                return Err(format!("{label}: bidder {} granted twice", g.bidder.0));
            }
        }
    }
    Ok(())
}

fn session_consistency(run: &ScenarioRun) -> Result<(), String> {
    let Some(session) = &run.session else {
        return Ok(()); // starved below quorum under chaos — legitimate
    };
    let fp = session.outcome.fingerprint();
    if fp != session.repeat_fingerprint {
        return Err(format!(
            "same-seed session reruns disagree: {fp:#x} vs {:#x}",
            session.repeat_fingerprint
        ));
    }
    if fp != session.resumed_fingerprint {
        return Err(format!(
            "journal-recovered replay disagrees: {fp:#x} vs {:#x}",
            session.resumed_fingerprint
        ));
    }

    // Charges must be true first prices for original-id assignments.
    let rows = &run.scenario.rows;
    for a in session.outcome.outcome.assignments() {
        let raw = rows[a.bidder.0][a.channel.0];
        if a.price != raw || a.price == 0 {
            return Err(format!(
                "session: bidder {} charged {} on channel {}, true bid {raw}",
                a.bidder.0, a.price, a.channel.0
            ));
        }
    }

    // Interference freedom over the accepted-compact conflict graph.
    let compact_of: std::collections::HashMap<usize, usize> = session
        .outcome
        .accepted
        .iter()
        .enumerate()
        .map(|(compact, &original)| (original, compact))
        .collect();
    for ch in 0..run.scenario.n_channels {
        let holders: Vec<BidderId> =
            session
                .outcome
                .grants
                .iter()
                .filter(|g| g.channel.0 == ch)
                .map(|g| {
                    compact_of.get(&g.bidder.0).copied().map(BidderId).ok_or_else(|| {
                        format!("session: grant for unaccepted bidder {}", g.bidder.0)
                    })
                })
                .collect::<Result<_, _>>()?;
        if !session.outcome.conflicts.is_independent(&holders) {
            return Err(format!("session: channel {ch} holders conflict"));
        }
    }

    // A no-fault session equals the direct pipeline with the session's
    // derived allocation seed.
    if let Some(expected) = &session.expected {
        let n = run.scenario.n_bidders();
        if session.outcome.accepted != (0..n).collect::<Vec<_>>() {
            return Err(format!(
                "no-fault session rejected bidders: accepted {:?}",
                session.outcome.accepted
            ));
        }
        if !session.outcome.provisional.is_empty() {
            return Err(format!(
                "no-fault session left provisional grants {:?}",
                session.outcome.provisional
            ));
        }
        let got = assignment_set(&session.outcome.outcome);
        let want = assignment_set(&expected.outcome);
        if got != want {
            return Err(format!("session assignments {got:?} != plain runner {want:?}"));
        }
        let got_invalid = grant_set(&session.outcome.invalid_grants);
        let want_invalid = grant_set(&expected.invalid_grants);
        if got_invalid != want_invalid {
            return Err(format!(
                "session invalid grants {got_invalid:?} != plain runner {want_invalid:?}"
            ));
        }
    }
    Ok(())
}

fn wire_socket_equivalence(run: &ScenarioRun) -> Result<(), String> {
    let Some(wire) = &run.wire else {
        return Ok(()); // starved below quorum under chaos — legitimate
    };
    let fp = wire.sim.fingerprint();
    if wire.socket_fingerprint != fp {
        return Err(format!(
            "socket round outcome {:#x} != simulated wire round {fp:#x}",
            wire.socket_fingerprint
        ));
    }
    if wire.socket_journal_fingerprint != wire.sim.journal.fingerprint() {
        return Err(format!(
            "socket round journal {:#x} != simulated wire journal {:#x}",
            wire.socket_journal_fingerprint,
            wire.sim.journal.fingerprint()
        ));
    }
    if wire.resumed_fingerprint != fp {
        return Err(format!(
            "mid-charge-killed socket session resumed to {:#x}, expected {fp:#x}",
            wire.resumed_fingerprint
        ));
    }
    // On a reliable link the binary wire path must also agree with the
    // typed in-process session (chaos corrupts typed values and raw
    // bytes differently, so the cross-check is no-fault only).
    if !run.scenario.chaos {
        if let Some(session) = &run.session {
            let typed = session.outcome.fingerprint();
            if fp != typed {
                return Err(format!(
                    "no-fault wire round {fp:#x} != typed session round {typed:#x}"
                ));
            }
        }
    }
    Ok(())
}

fn service_sequential_equivalence(run: &ScenarioRun) -> Result<(), String> {
    let probe = &run.service;
    if probe.sharded != probe.sequential {
        let diff = probe
            .sharded
            .iter()
            .zip(&probe.sequential)
            .find(|(a, b)| a != b)
            .map(|(a, b)| format!("first divergence: sharded {a:?} vs sequential {b:?}"))
            .unwrap_or_else(|| {
                format!(
                    "area counts differ: {} sharded vs {} sequential",
                    probe.sharded.len(),
                    probe.sequential.len()
                )
            });
        return Err(format!("sharded service diverged from sequential reference; {diff}"));
    }
    if probe.sharded_errors != probe.sequential_errors {
        return Err(format!(
            "service error rows diverged: sharded {:?} vs sequential {:?}",
            probe.sharded_errors, probe.sequential_errors
        ));
    }
    if probe.sharded_fingerprint != probe.sequential_fingerprint {
        return Err(format!(
            "aggregate fingerprints diverged: {:#x} vs {:#x}",
            probe.sharded_fingerprint, probe.sequential_fingerprint
        ));
    }
    Ok(())
}

fn incremental_equals_rebuild(run: &ScenarioRun) -> Result<(), String> {
    let probe = &run.churn;
    let inc = &probe.incremental;
    let reb = &probe.rebuild;
    if !inc.errors.is_empty() || !reb.errors.is_empty() {
        return Err(format!(
            "churn probe reported area errors: incremental {:?}, rebuild {:?}",
            inc.errors, reb.errors
        ));
    }
    if inc.fingerprint != reb.fingerprint {
        return Err(format!(
            "churn fingerprints diverged: incremental {:#x} vs rebuild {:#x}",
            inc.fingerprint, reb.fingerprint
        ));
    }
    for (what, a, b) in [
        ("final_bidders", inc.final_bidders, reb.final_bidders),
        ("churn_events", inc.churn_events, reb.churn_events),
        ("total_assignments", inc.total_assignments, reb.total_assignments),
    ] {
        if a != b {
            return Err(format!("churn {what} diverged: incremental {a} vs rebuild {b}"));
        }
    }
    if inc.total_revenue != reb.total_revenue {
        return Err(format!(
            "churn total_revenue diverged: incremental {} vs rebuild {}",
            inc.total_revenue, reb.total_revenue
        ));
    }
    Ok(())
}

/// Looks up a metamorphic run by label; vacuous pass when absent.
fn metamorphic_equivalence(run: &ScenarioRun, label: &str) -> Result<(), String> {
    let Some(meta) = run.metamorphic.iter().find(|m| m.label == label) else {
        return Ok(());
    };
    // Map the variant's outcome back to original bidder ids.
    let mut original_of = vec![usize::MAX; meta.permutation.len()];
    for (original, &variant) in meta.permutation.iter().enumerate() {
        original_of[variant] = original;
    }
    let mut got: Vec<(usize, usize, u32)> = meta
        .result
        .outcome
        .assignments()
        .iter()
        .map(|a| (original_of[a.bidder.0], a.channel.0, a.price))
        .collect();
    got.sort_unstable();
    let want = assignment_set(&run.masked.outcome);
    if got != want {
        return Err(format!("{label}: variant assignments {got:?} != base {want:?}"));
    }
    if !meta.result.invalid_grants.is_empty() {
        return Err(format!(
            "{label}: undisguised variant produced invalid grants {:?}",
            meta.result.invalid_grants
        ));
    }
    Ok(())
}

fn permutation_invariance(run: &ScenarioRun) -> Result<(), String> {
    metamorphic_equivalence(run, "permuted_bidders")
}

fn backend_outcome_equivalence(run: &ScenarioRun) -> Result<(), String> {
    use lppa_prefix::backend::BackendKind;
    let probe = &run.backend;
    let hmac = probe.result(BackendKind::Hmac);

    // The hmac backend replays the masked pipeline's classes and RNG
    // draws, so the equivalence is exact.
    if hmac.result.grants != run.masked.grants
        || assignment_set(&hmac.result.outcome) != assignment_set(&run.masked.outcome)
        || grant_set(&hmac.result.invalid_grants) != grant_set(&run.masked.invalid_grants)
    {
        return Err("hmac backend diverged from the masked pipeline".into());
    }
    if hmac.ledger.is_some() {
        return Err("hmac backend unexpectedly built an audit chain".into());
    }

    // The ledger backend compares exactly like hmac; it only adds the
    // audit chain, which must verify against itself at settle.
    let ledger = probe.result(BackendKind::Ledger);
    if ledger.result.grants != hmac.result.grants
        || assignment_set(&ledger.result.outcome) != assignment_set(&hmac.result.outcome)
        || assignment_set(&ledger.vickrey) != assignment_set(&hmac.vickrey)
    {
        return Err("ledger backend diverged from hmac".into());
    }
    let Some(chain) = ledger.ledger.as_ref() else {
        return Err("ledger backend published no audit chain".into());
    };
    chain.verify().map_err(|e| format!("ledger audit chain invalid: {e}"))?;

    // Bloom is FP-tolerant: never a false negative, and with zero
    // measured false positives the outcome must be exact. The FP budget
    // is counted in *distinct colliding tags*, not flipped probes:
    // probe counts are heavy-tailed because one ~p tag collision is
    // shared by every bidder whose family contains the tag (plain
    // zeros share most of theirs) and by every overlapping `[v, max]`
    // cover, so a single Bernoulli event can flip O(n²) probes. Each
    // distinct tag collides with probability ≤ analytic_fp_rate per
    // (tag, range) trial; the envelope is 2× the expectation plus a
    // small-sample cushion.
    let stats = &probe.bloom_stats;
    if stats.false_negatives != 0 {
        return Err(format!("bloom produced {} false negatives", stats.false_negatives));
    }
    let tag_rate = probe.bloom_params.analytic_fp_rate();
    let budget = (tag_rate * stats.tag_trials as f64).mul_add(2.0, 8.0);
    if stats.false_positive_tags as f64 > budget {
        return Err(format!(
            "bloom: {} distinct colliding tags over {} tag trials ({} probe flips) exceeds \
             budget {budget:.2} (per-tag rate {tag_rate:.2e})",
            stats.false_positive_tags, stats.tag_trials, stats.false_positives
        ));
    }
    let bloom = probe.result(BackendKind::Bloom);
    if stats.false_positives == 0 && bloom.result.grants != hmac.result.grants {
        return Err("bloom diverged without any measured false positive".into());
    }
    // Even a divergent bloom round settles a structurally valid
    // allocation (FPs flip comparisons, never conflict edges).
    grants_interference_free(
        &bloom.result.grants,
        &bloom.result.conflicts,
        run.scenario.n_channels,
        "bloom-backend",
    )
}

/// The pool-reuse grid: `LPPA_BACKEND ∈ {hmac, bloom, ledger}` × arena
/// on/off must land on the same fingerprints.
///
/// "Arena on" is modelled explicitly (no env mutation): every
/// submission is rebuilt through **one** shared [`MaskScratch`] — warmed
/// by reclaiming a throwaway build first, so later builds genuinely
/// check recycled sets out of the pool — and each backend then settles
/// those pool-built submissions. The recorded `ScenarioRun` results are
/// the arena-off side (fresh allocations everywhere). Checksums pin the
/// builds, grant/assignment sets pin every backend's settlement; any
/// state leaking from one bidder's build to the next, or from one
/// backend's round to the next, shows up as a diff.
fn backend_arena_pool_equivalence(run: &ScenarioRun) -> Result<(), String> {
    use lppa::backend::run_private_auction_with_backend;
    use lppa::protocol::{AuctioneerModel, SuSubmission};
    use lppa_prefix::MaskScratch;

    let scenario = &run.scenario;
    let inputs = scenario.bidder_inputs();
    let policy = scenario.policy();

    let mut scratch = MaskScratch::new();
    let mut seed_rng = StdRng::seed_from_u64(scenario.submission_seed());
    let seeds: Vec<u64> = inputs.iter().map(|_| seed_rng.next_u64()).collect();
    if let (Some(&seed), Some((location, raw))) = (seeds.first(), inputs.first()) {
        let mut child = StdRng::seed_from_u64(seed);
        SuSubmission::build_in(*location, raw, &run.ttp, &policy, &mut child, &mut scratch)
            .map_err(|e| format!("pool warm-up build failed: {e}"))?
            .reclaim(&mut scratch);
    }
    let mut pooled = Vec::with_capacity(inputs.len());
    for (i, (&seed, (location, raw))) in seeds.iter().zip(&inputs).enumerate() {
        let mut child = StdRng::seed_from_u64(seed);
        let sub =
            SuSubmission::build_in(*location, raw, &run.ttp, &policy, &mut child, &mut scratch)
                .map_err(|e| format!("pooled build of bidder {i} failed: {e}"))?;
        if sub.checksum() != run.serial_checksums[i] {
            return Err(format!(
                "pooled rebuild of bidder {i} diverged from the fresh serial build"
            ));
        }
        pooled.push(sub);
    }

    for recorded in &run.backend.results {
        let replay = run_private_auction_with_backend(
            &pooled,
            &run.ttp,
            AuctioneerModel::IterativeCharging,
            recorded.kind,
            &mut StdRng::seed_from_u64(scenario.alloc_seed()),
        )
        .map_err(|e| {
            format!("{:?} backend replay over pooled builds failed: {e}", recorded.kind)
        })?;
        if replay.result.grants != recorded.result.grants
            || assignment_set(&replay.result.outcome) != assignment_set(&recorded.result.outcome)
            || grant_set(&replay.result.invalid_grants)
                != grant_set(&recorded.result.invalid_grants)
        {
            return Err(format!(
                "{:?} backend settled pool-built submissions differently from fresh builds",
                recorded.kind
            ));
        }
    }
    Ok(())
}

fn vickrey_charge_correctness(run: &ScenarioRun) -> Result<(), String> {
    use lppa_prefix::backend::BackendKind;
    let rows = &run.scenario.rows;
    for kind in [BackendKind::Hmac, BackendKind::Ledger] {
        let result = run.backend.result(kind);
        let conflicts = &result.result.conflicts;
        for a in result.vickrey.assignments() {
            let trace = result
                .traces
                .iter()
                .find(|t| t.grant.bidder == a.bidder && t.grant.channel == a.channel)
                .ok_or_else(|| {
                    format!(
                        "{kind:?}: vickrey assignment ({}, {}) has no contest trace",
                        a.bidder.0, a.channel.0
                    )
                })?;
            // The winner pays the critical value: the highest *true*
            // bid among the contest's conflicting losers (the TTP opens
            // sealed values, so disguises cannot inflate the price).
            let critical = trace
                .conflicting_losers(conflicts)
                .map(|c| rows[c.0][a.channel.0])
                .max()
                .unwrap_or(0);
            if a.price != critical {
                return Err(format!(
                    "{kind:?}: bidder {} charged {} on channel {}, critical losing bid {critical}",
                    a.bidder.0, a.price, a.channel.0
                ));
            }
            let own = rows[a.bidder.0][a.channel.0];
            if a.price > own {
                return Err(format!(
                    "{kind:?}: bidder {} pays {} above its true value {own}",
                    a.bidder.0, a.price
                ));
            }
        }
        for g in &result.vickrey_invalid {
            if rows[g.bidder.0][g.channel.0] != 0 {
                return Err(format!(
                    "{kind:?}: vickrey invalidated bidder {} channel {} whose true bid is {}",
                    g.bidder.0, g.channel.0, rows[g.bidder.0][g.channel.0]
                ));
            }
        }
    }

    // Truthfulness spot-check on one sampled winner, reduced to its
    // single-channel contest against the critical bid (the multi-minded
    // greedy auction as a whole is *not* truthful; the Vickrey property
    // holds per contest): with the price independent of the winner's
    // own report and ties resolved winner-side as `ge` does, no
    // misreport beats bidding the true value.
    let hmac = run.backend.result(BackendKind::Hmac);
    let assigns = hmac.vickrey.assignments();
    if !assigns.is_empty() {
        let mut rng = StdRng::seed_from_u64(run.scenario.seed ^ 0x71c4_0000_0000_0009);
        let a = &assigns[rng.gen_range(0..assigns.len())];
        let value = i64::from(rows[a.bidder.0][a.channel.0]);
        let critical = a.price;
        let utility =
            |report: u32| if report >= critical { value - i64::from(critical) } else { 0 };
        let truthful = utility(rows[a.bidder.0][a.channel.0]);
        for misreport in
            [0, critical.saturating_sub(1), critical, critical + 1, run.scenario.config.bid_max()]
        {
            if utility(misreport) > truthful {
                return Err(format!(
                    "bidder {} (value {value}, critical {critical}): misreport {misreport} \
                     yields utility {} > truthful {truthful}",
                    a.bidder.0,
                    utility(misreport)
                ));
            }
        }
    }
    Ok(())
}

fn key_rotation_invariance(run: &ScenarioRun) -> Result<(), String> {
    metamorphic_equivalence(run, "rotated_keys")
}

fn transform_shift_invariance(run: &ScenarioRun) -> Result<(), String> {
    metamorphic_equivalence(run, "shifted_transform")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{DisguiseSpec, Scenario, ScenarioParams};

    #[test]
    fn registry_names_are_unique_and_documented() {
        let names: Vec<&str> = registry().iter().map(|i| i.name).collect();
        let unique: std::collections::HashSet<&str> = names.iter().copied().collect();
        assert_eq!(unique.len(), names.len());
        assert!(registry().iter().all(|i| !i.summary.is_empty()));
    }

    #[test]
    fn clean_scenarios_violate_nothing() {
        let params = ScenarioParams::default();
        for seed in 100..110 {
            let scenario = Scenario::generate(&params, seed);
            let run = ScenarioRun::execute(scenario).unwrap();
            let violations = check_all(&run);
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    #[test]
    fn heavily_disguised_scenarios_violate_nothing() {
        let scenario = Scenario::builder(500)
            .bidders(10)
            .channels(3)
            .disguise(DisguiseSpec::Uniform { replace: 0.95 })
            .build();
        let run = ScenarioRun::execute(scenario).unwrap();
        let violations = check_all(&run);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn a_seeded_corruption_is_caught() {
        // Flip one raw bid after the pipelines ran: the charge no longer
        // matches ground truth and the registry must notice.
        let scenario = Scenario::builder(7).bidders(8).channels(3).tie_free().build();
        let mut run = ScenarioRun::execute(scenario).unwrap();
        let a = *run.masked.outcome.assignments().first().expect("fixture awards something");
        run.scenario.rows[a.bidder.0][a.channel.0] = a.price.wrapping_add(1) & 0x7f;
        let violations = check_all(&run);
        assert!(violations.iter().any(|v| v.invariant == "charge_correctness"), "{violations:?}");
    }
}
