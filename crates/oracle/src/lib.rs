//! `lppa-oracle`: the differential-testing backstop of the workspace.
//!
//! LPPA's core promise is an equivalence: the auctioneer working over
//! HMAC-masked prefix tables must reach the same conflict graph, the
//! same winners and the same first-price charges as the plaintext
//! auction (Algorithms 1–3 of the paper), while the fast paths (PR 2)
//! and the fault-tolerant session (PR 3) multiplied the number of
//! implementations of every step. This crate re-proves the equivalences
//! continuously:
//!
//! * [`scenario`] — seeded random scenario generation; a [`Scenario`]
//!   is concrete data (config, locations, bid rows, disguise policy),
//!   so it can be shrunk structurally and serialized whole;
//! * [`pipelines`] — runs one scenario through the plaintext reference,
//!   the masked pipeline, and every shipped variant pair (pairwise vs
//!   indexed conflict graphs, serial vs parallel fan-out, direct vs
//!   midstate HMAC, oblivious vs iterative charging, plain runner vs
//!   `lppa-session` round) plus three metamorphic rebuilds;
//! * [`invariants`] — the named-invariant registry the runs are judged
//!   against;
//! * [`shrink`] — the greedy structural minimizer (halve bidders, drop
//!   channels, shrink `w`) that reduces a failure to a minimal repro;
//! * [`repro`] — self-contained `repro_<seed>.json` files with a
//!   one-line re-run command, written and parsed without external
//!   dependencies.
//!
//! The `fuzz` binary in `lppa-bench` drives N scenarios per invocation
//! and emits a line-oriented JSON report compatible with the bench
//! harness.
//!
//! # Examples
//!
//! ```
//! use lppa_oracle::{fuzz_one, scenario::ScenarioParams};
//!
//! let verdict = fuzz_one(&ScenarioParams::default(), 7);
//! assert!(verdict.violations.is_empty(), "{:?}", verdict.violations);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixture;
pub mod invariants;
pub mod pipelines;
pub mod repro;
pub mod scenario;
pub mod shrink;

pub use invariants::{check_all, registry, Invariant, Violation, PIPELINE_ERROR};
pub use pipelines::ScenarioRun;
pub use repro::{from_json, repro_file_name, rerun_command, to_json, Repro};
pub use scenario::{DisguiseSpec, Scenario, ScenarioBuilder, ScenarioParams};
pub use shrink::{shrink, violation_of, ShrinkResult};

/// The verdict of one fuzzed scenario.
#[derive(Clone, Debug)]
pub struct ScenarioVerdict {
    /// The scenario that ran (unshrunk).
    pub scenario: Scenario,
    /// Every invariant violation it produced (empty on a clean pass).
    pub violations: Vec<Violation>,
}

/// Runs the scenario derived from `seed` through every pipeline and the
/// whole invariant registry. Pipeline errors are reported as the
/// [`PIPELINE_ERROR`] pseudo-invariant rather than propagated — for a
/// generated scenario, "the pipeline refused to run" is a finding, not
/// an excuse.
pub fn fuzz_one(params: &ScenarioParams, seed: u64) -> ScenarioVerdict {
    let scenario = Scenario::generate(params, seed);
    let violations = run_scenario(&scenario);
    ScenarioVerdict { scenario, violations }
}

/// Executes a concrete scenario and evaluates the registry.
pub fn run_scenario(scenario: &Scenario) -> Vec<Violation> {
    match ScenarioRun::execute(scenario.clone()) {
        Ok(run) => check_all(&run),
        Err(e) => vec![Violation { invariant: PIPELINE_ERROR, detail: e.to_string() }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_one_is_deterministic() {
        let params = ScenarioParams::default();
        let a = fuzz_one(&params, 3);
        let b = fuzz_one(&params, 3);
        assert_eq!(a.scenario, b.scenario);
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn run_scenario_reports_pipeline_errors_as_findings() {
        let mut scenario = Scenario::builder(9).bidders(3).channels(1).build();
        scenario.rows[1][0] = scenario.config.bid_max() + 1;
        let violations = run_scenario(&scenario);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].invariant, PIPELINE_ERROR);
    }
}
