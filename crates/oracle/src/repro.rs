//! Self-contained repro files.
//!
//! A failing (usually minimized) scenario is written as
//! `repro_<seed>.json`: a flat, hand-rolled JSON document carrying the
//! complete concrete scenario plus the violated invariant, so the file
//! alone reproduces the failure on any checkout. The workspace is
//! dependency-free, so both the writer and the (small, recursive
//! descent) parser live here.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use lppa::LppaConfig;
use lppa_auction::bidder::Location;

use crate::scenario::{DisguiseSpec, Scenario};

/// Format version stamped into every repro file.
pub const FORMAT_VERSION: u64 = 1;

/// The canonical re-run command for a repro file named `file_name`.
pub fn rerun_command(file_name: &str) -> String {
    format!("cargo run --release -p lppa-bench --bin fuzz -- --repro {file_name}")
}

/// The canonical file name for a scenario's repro.
pub fn repro_file_name(scenario: &Scenario) -> String {
    format!("repro_{}.json", scenario.seed)
}

/// Everything a repro file carries.
#[derive(Clone, Debug, PartialEq)]
pub struct Repro {
    /// The concrete scenario.
    pub scenario: Scenario,
    /// Violated invariant name, if the file records a failure.
    pub invariant: Option<String>,
    /// Failure detail, if any.
    pub detail: Option<String>,
}

/// Serializes a failing scenario to the repro JSON document.
pub fn to_json(scenario: &Scenario, invariant: &str, detail: &str) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    let _ = writeln!(out, "  \"format\": {FORMAT_VERSION},");
    let _ = writeln!(out, "  \"seed\": {},", scenario.seed);
    let _ = writeln!(out, "  \"invariant\": {},", quote(invariant));
    let _ = writeln!(out, "  \"detail\": {},", quote(detail));
    let c = &scenario.config;
    let _ = writeln!(
        out,
        "  \"config\": {{\"loc_bits\": {}, \"bid_bits\": {}, \"lambda\": {}, \"rd\": {}, \"cr\": {}}},",
        c.loc_bits, c.bid_bits, c.lambda, c.rd, c.cr
    );
    let _ = writeln!(out, "  \"n_channels\": {},", scenario.n_channels);
    let _ = writeln!(out, "  \"chaos\": {},", scenario.chaos);
    match scenario.disguise {
        DisguiseSpec::Never => {
            let _ = writeln!(out, "  \"disguise\": {{\"kind\": \"never\"}},");
        }
        DisguiseSpec::Uniform { replace } => {
            let _ =
                writeln!(out, "  \"disguise\": {{\"kind\": \"uniform\", \"replace\": {replace}}},");
        }
        DisguiseSpec::Geometric { replace, decay } => {
            let _ = writeln!(
                out,
                "  \"disguise\": {{\"kind\": \"geometric\", \"replace\": {replace}, \"decay\": {decay}}},"
            );
        }
    }
    let locations: Vec<String> =
        scenario.locations.iter().map(|l| format!("[{}, {}]", l.x, l.y)).collect();
    let _ = writeln!(out, "  \"locations\": [{}],", locations.join(", "));
    let rows: Vec<String> = scenario
        .rows
        .iter()
        .map(|r| {
            let cells: Vec<String> = r.iter().map(u32::to_string).collect();
            format!("[{}]", cells.join(", "))
        })
        .collect();
    let _ = writeln!(out, "  \"rows\": [{}],", rows.join(", "));
    let _ = writeln!(out, "  \"rerun\": {}", quote(&rerun_command(&repro_file_name(scenario))));
    out.push('}');
    out.push('\n');
    out
}

/// Parses a repro document back into a [`Repro`].
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn from_json(input: &str) -> Result<Repro, String> {
    let value = parse_value(&mut Cursor::new(input))?;
    let obj = value.as_object("document")?;
    let format = obj.required("format")?.as_u64("format")?;
    if format != FORMAT_VERSION {
        return Err(format!("unsupported repro format {format}, expected {FORMAT_VERSION}"));
    }
    let seed = obj.required("seed")?.as_u64("seed")?;
    let config_obj = obj.required("config")?.as_object("config")?;
    let config = LppaConfig {
        loc_bits: config_obj.required("loc_bits")?.as_u64("loc_bits")? as u8,
        bid_bits: config_obj.required("bid_bits")?.as_u64("bid_bits")? as u8,
        lambda: config_obj.required("lambda")?.as_u64("lambda")? as u32,
        rd: config_obj.required("rd")?.as_u64("rd")? as u32,
        cr: config_obj.required("cr")?.as_u64("cr")? as u32,
    };
    let n_channels = obj.required("n_channels")?.as_u64("n_channels")? as usize;
    let chaos = obj.required("chaos")?.as_bool("chaos")?;

    let disguise_obj = obj.required("disguise")?.as_object("disguise")?;
    let kind = disguise_obj.required("kind")?.as_str("disguise.kind")?;
    let disguise = match kind {
        "never" => DisguiseSpec::Never,
        "uniform" => DisguiseSpec::Uniform {
            replace: disguise_obj.required("replace")?.as_f64("disguise.replace")?,
        },
        "geometric" => DisguiseSpec::Geometric {
            replace: disguise_obj.required("replace")?.as_f64("disguise.replace")?,
            decay: disguise_obj.required("decay")?.as_f64("disguise.decay")?,
        },
        other => return Err(format!("unknown disguise kind {other:?}")),
    };

    let locations = obj
        .required("locations")?
        .as_array("locations")?
        .iter()
        .map(|v| {
            let pair = v.as_array("location")?;
            if pair.len() != 2 {
                return Err(format!("location must be [x, y], got {} items", pair.len()));
            }
            Ok(Location::new(pair[0].as_u64("x")? as u32, pair[1].as_u64("y")? as u32))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let rows = obj
        .required("rows")?
        .as_array("rows")?
        .iter()
        .map(|v| v.as_array("row")?.iter().map(|b| Ok(b.as_u64("bid")? as u32)).collect())
        .collect::<Result<Vec<Vec<u32>>, String>>()?;

    if rows.len() != locations.len() {
        return Err(format!("{} rows but {} locations", rows.len(), locations.len()));
    }
    if let Some(bad) = rows.iter().find(|r| r.len() != n_channels) {
        return Err(format!("row has {} bids but n_channels is {n_channels}", bad.len()));
    }
    config.validate().map_err(|e| e.to_string())?;

    let invariant = obj.optional("invariant").map(|v| v.as_str("invariant").map(str::to_owned));
    let detail = obj.optional("detail").map(|v| v.as_str("detail").map(str::to_owned));

    Ok(Repro {
        scenario: Scenario { seed, config, n_channels, locations, rows, disguise, chaos },
        invariant: invariant.transpose()?,
        detail: detail.transpose()?,
    })
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------
// A minimal JSON reader (the workspace takes no external dependencies).
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    fn as_object(&self, what: &str) -> Result<&BTreeMap<String, Value>, String> {
        match self {
            Value::Object(map) => Ok(map),
            other => Err(format!("{what}: expected object, got {other:?}")),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Value], String> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(format!("{what}: expected array, got {other:?}")),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Value::String(s) => Ok(s),
            other => Err(format!("{what}: expected string, got {other:?}")),
        }
    }

    fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("{what}: expected bool, got {other:?}")),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Value::Number(n) => Ok(*n),
            other => Err(format!("{what}: expected number, got {other:?}")),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, String> {
        let n = self.as_f64(what)?;
        if n < 0.0 || n.fract() != 0.0 || n > 1.8446744073709552e19 {
            return Err(format!("{what}: expected unsigned integer, got {n}"));
        }
        Ok(n as u64)
    }
}

trait ObjectExt {
    fn required(&self, key: &str) -> Result<&Value, String>;
    fn optional(&self, key: &str) -> Option<&Value>;
}

impl ObjectExt for BTreeMap<String, Value> {
    fn required(&self, key: &str) -> Result<&Value, String> {
        self.get(key).ok_or_else(|| format!("missing required key {key:?}"))
    }

    fn optional(&self, key: &str) -> Option<&Value> {
        self.get(key).filter(|v| !matches!(v, Value::Null))
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str) -> Self {
        Self { bytes: input.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.bytes.get(self.pos).copied();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.peek() {
            Some(b) if b == want => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!(
                "byte {}: expected {:?}, found {:?}",
                self.pos,
                want as char,
                other.map(|b| b as char)
            )),
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }
}

fn parse_value(cur: &mut Cursor) -> Result<Value, String> {
    match cur.peek() {
        Some(b'{') => parse_object(cur),
        Some(b'[') => parse_array(cur),
        Some(b'"') => Ok(Value::String(parse_string(cur)?)),
        Some(b't') | Some(b'f') => {
            if cur.eat_keyword("true") {
                Ok(Value::Bool(true))
            } else if cur.eat_keyword("false") {
                Ok(Value::Bool(false))
            } else {
                Err(format!("byte {}: invalid literal", cur.pos))
            }
        }
        Some(b'n') => {
            if cur.eat_keyword("null") {
                Ok(Value::Null)
            } else {
                Err(format!("byte {}: invalid literal", cur.pos))
            }
        }
        Some(b) if b == b'-' || b.is_ascii_digit() => parse_number(cur),
        other => Err(format!("byte {}: unexpected {:?}", cur.pos, other.map(|b| b as char))),
    }
}

fn parse_object(cur: &mut Cursor) -> Result<Value, String> {
    cur.expect(b'{')?;
    let mut map = BTreeMap::new();
    if cur.peek() == Some(b'}') {
        cur.pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        cur.skip_ws();
        let key = parse_string(cur)?;
        cur.expect(b':')?;
        let value = parse_value(cur)?;
        map.insert(key, value);
        match cur.peek() {
            Some(b',') => {
                cur.pos += 1;
            }
            Some(b'}') => {
                cur.pos += 1;
                return Ok(Value::Object(map));
            }
            other => {
                return Err(format!(
                    "byte {}: expected ',' or '}}', found {:?}",
                    cur.pos,
                    other.map(|b| b as char)
                ))
            }
        }
    }
}

fn parse_array(cur: &mut Cursor) -> Result<Value, String> {
    cur.expect(b'[')?;
    let mut items = Vec::new();
    if cur.peek() == Some(b']') {
        cur.pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(cur)?);
        match cur.peek() {
            Some(b',') => {
                cur.pos += 1;
            }
            Some(b']') => {
                cur.pos += 1;
                return Ok(Value::Array(items));
            }
            other => {
                return Err(format!(
                    "byte {}: expected ',' or ']', found {:?}",
                    cur.pos,
                    other.map(|b| b as char)
                ))
            }
        }
    }
}

fn parse_string(cur: &mut Cursor) -> Result<String, String> {
    cur.expect(b'"')?;
    let mut out = String::new();
    loop {
        match cur.bump() {
            None => return Err("unterminated string".into()),
            Some(b'"') => return Ok(out),
            Some(b'\\') => match cur.bump() {
                Some(b'"') => out.push('"'),
                Some(b'\\') => out.push('\\'),
                Some(b'/') => out.push('/'),
                Some(b'n') => out.push('\n'),
                Some(b'r') => out.push('\r'),
                Some(b't') => out.push('\t'),
                Some(b'u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = cur
                            .bump()
                            .and_then(|b| (b as char).to_digit(16))
                            .ok_or("invalid \\u escape")?;
                        code = code * 16 + d;
                    }
                    out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                }
                other => return Err(format!("invalid escape {other:?}")),
            },
            Some(b) if b < 0x80 => out.push(b as char),
            Some(b) => {
                // Re-decode the UTF-8 sequence starting at this byte.
                let start = cur.pos - 1;
                let len = match b {
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    0xf0..=0xf7 => 4,
                    _ => return Err("invalid UTF-8 in string".into()),
                };
                let end = start + len;
                let slice =
                    cur.bytes.get(start..end).ok_or("truncated UTF-8 sequence in string")?;
                let s = std::str::from_utf8(slice).map_err(|e| e.to_string())?;
                out.push_str(s);
                cur.pos = end;
            }
        }
    }
}

fn parse_number(cur: &mut Cursor) -> Result<Value, String> {
    cur.skip_ws();
    let start = cur.pos;
    while let Some(&b) = cur.bytes.get(cur.pos) {
        if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
            cur.pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&cur.bytes[start..cur.pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Value::Number).map_err(|e| format!("bad number {text:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioParams;

    #[test]
    fn roundtrip_preserves_the_scenario() {
        for seed in [0u64, 7, 99, 12345] {
            let scenario = Scenario::generate(&ScenarioParams::chaotic(), seed);
            let json =
                to_json(&scenario, "outcome_equivalence", "detail with \"quotes\"\nand newline");
            let repro = from_json(&json).unwrap();
            assert_eq!(repro.scenario, scenario, "seed {seed}");
            assert_eq!(repro.invariant.as_deref(), Some("outcome_equivalence"));
            assert!(repro.detail.unwrap().contains("\"quotes\""));
        }
    }

    #[test]
    fn rerun_command_names_the_file() {
        let scenario = Scenario::builder(42).build();
        let json = to_json(&scenario, "x", "y");
        assert!(json.contains("repro_42.json"));
        assert_eq!(repro_file_name(&scenario), "repro_42.json");
    }

    #[test]
    fn malformed_documents_are_rejected_with_context() {
        for (input, needle) in [
            ("", "unexpected"),
            ("{", "expected"),
            ("{\"format\": 99}", "unsupported repro format"),
            ("{\"format\": 1}", "missing required key"),
            ("[1, 2", "expected"),
            ("{\"a\": tru}", "invalid literal"),
        ] {
            let err = from_json(input).unwrap_err();
            assert!(err.contains(needle), "{input:?} → {err}");
        }
    }

    #[test]
    fn disguise_variants_roundtrip() {
        for disguise in [
            DisguiseSpec::Never,
            DisguiseSpec::Uniform { replace: 0.25 },
            DisguiseSpec::Geometric { replace: 0.5, decay: 0.75 },
        ] {
            let mut scenario = Scenario::builder(5).bidders(3).channels(2).build();
            scenario.disguise = disguise;
            let repro = from_json(&to_json(&scenario, "inv", "d")).unwrap();
            assert_eq!(repro.scenario.disguise, disguise);
        }
    }
}
