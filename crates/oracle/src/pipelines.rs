//! Runs one scenario through every implementation variant.
//!
//! The differential surface, matching the variant pairs the codebase
//! actually ships:
//!
//! * **plaintext vs masked** — the same greedy allocation over the
//!   plaintext [`BidTable`] and the masked [`MaskedBidTable`], seeded
//!   with the same allocation RNG;
//! * **pairwise vs indexed** conflict graphs over the same masked
//!   location submissions;
//! * **serial vs `lppa-par`** submission fan-out (compared by wire
//!   checksums);
//! * **oblivious vs iterative-charging** auctioneer models;
//! * **plain runner vs `lppa-session`** round (with the session's
//!   internally derived allocation seed replicated so the comparison is
//!   exact);
//! * **scalar vs multi-lane batched tags** — the same scenario-derived
//!   mask inputs masked per message through `Tag::compute` and as one
//!   `Tag::compute_batch` per supported SHA-256 lane width;
//! * **sharded service vs sequential reference** — a scenario-derived
//!   multi-area workload settled through the work-stealing
//!   `lppa-service` event loop and through its single-threaded
//!   unsharded reference, compared on decision fingerprints;
//! * **incremental churn vs per-round rebuild** — the same seeded churn
//!   schedule (joins, leaves, bid revisions) settled once through the
//!   delta-applying [`lppa_service::run_churn`] incremental path (on a
//!   sharded executor) and once by rebuilding every round from scratch
//!   (single-threaded), compared on decision fingerprints;
//! * **simulated wire vs live sockets** — the binary-frame round over
//!   the seeded `SimTransport` chaos schedule as reference, replayed
//!   over real loopback TCP (same seeds, same ingress chaos) and once
//!   more with the auctioneer killed mid-charge and resumed from its
//!   checkpoint, all compared on outcome and journal fingerprints;
//! * metamorphic rebuilds: permuted bidders, rotated per-round keys,
//!   shifted `rd` / scaled `cr` — each producing an outcome to compare
//!   against the base masked run.

use lppa::backend::{
    bloom_probe_stats, run_private_auction_with_backend, BackendAuctionResult, BloomProbeStats,
};
use lppa::ppbs::location::{build_conflict_graph, build_conflict_graph_pairwise};
use lppa::protocol::{
    build_submissions, run_private_auction_with_model, AuctioneerModel, PrivateAuctionResult,
    SuSubmission,
};
use lppa::psd::table::MaskedBidTable;
use lppa::ttp::Ttp;
use lppa::{LppaConfig, LppaError};
use lppa_auction::allocation::{greedy_allocate, Grant};
use lppa_auction::conflict::ConflictGraph;
use lppa_auction::outcome::AuctionOutcome;
use lppa_crypto::lanes;
use lppa_crypto::tag::Tag;
use lppa_net::{
    resume_socket_round, run_socket_round, run_socket_round_with_kill, AuctioneerRun, KillPoint,
    NetConfig,
};
use lppa_prefix::backend::{BackendKind, BloomParams};
use lppa_prefix::{prefix_family, range_prefixes};
use lppa_rng::rngs::StdRng;
use lppa_rng::seq::SliceRandom;
use lppa_rng::{Rng, RngCore, SeedableRng};
use lppa_session::{run_wire_round, AuctionSession, FaultConfig, SessionConfig, SessionOutcome};

use crate::scenario::Scenario;

/// The plaintext reference pipeline's products.
#[derive(Clone, Debug)]
pub struct PlainRun {
    /// Conflict graph from ground-truth locations.
    pub conflicts: ConflictGraph,
    /// Grant sequence in allocation order.
    pub grants: Vec<Grant>,
    /// First-price outcome.
    pub outcome: AuctionOutcome,
}

/// The session pipeline's products (absent when chaos starves the
/// round below quorum — a legitimate outcome, not a violation).
#[derive(Debug)]
pub struct SessionRun {
    /// The settled session.
    pub outcome: SessionOutcome,
    /// Fingerprint of an independent second run from the same seed.
    pub repeat_fingerprint: u64,
    /// Fingerprint of a journal-recovered replay.
    pub resumed_fingerprint: u64,
    /// What the direct pipeline computes with the session's internally
    /// derived allocation seed (no-fault sessions only).
    pub expected: Option<PrivateAuctionResult>,
}

/// The wire-vs-socket variant pair's products (absent when chaos
/// starves the wire round below quorum — a legitimate outcome).
///
/// All three runs share the session seed: the simulated wire round is
/// the reference, the loopback socket round must reproduce it
/// fingerprint-for-fingerprint (the chaos ingress replays the same
/// seeded schedule), and the killed-then-resumed socket round must
/// recover to it across a process-crash boundary.
#[derive(Debug)]
pub struct WireRun {
    /// The simulated wire round (binary frames over `SimTransport`).
    pub sim: SessionOutcome,
    /// Outcome fingerprint of the loopback socket round.
    pub socket_fingerprint: u64,
    /// Journal fingerprint of the loopback socket round.
    pub socket_journal_fingerprint: u64,
    /// Outcome fingerprint after a mid-charge kill and checkpoint
    /// resume over a fresh TTP connection.
    pub resumed_fingerprint: u64,
}

/// The scalar-vs-batched tag kernel variant pair's products.
///
/// The probe masks scenario-derived messages — a real prefix family, a
/// real range cover, and raw messages straddling the batched path's
/// single-block boundary — through every tag path the workspace ships.
/// All vectors are index-aligned with [`Self::messages`].
#[derive(Debug)]
pub struct TagKernelRun {
    /// The probe messages.
    pub messages: Vec<Vec<u8>>,
    /// Per-message scalar `Tag::compute` reference.
    pub scalar: Vec<Tag>,
    /// `(lane width, batched tags)` for every supported kernel width.
    pub batched: Vec<(usize, Vec<Tag>)>,
    /// Tags from the process-default batch path (`LPPA_SHA_LANES` or
    /// CPU auto-detection).
    pub default_batch: Vec<Tag>,
}

/// The sharded-service-vs-sequential variant pair's products.
///
/// A small multi-area fleet is derived from the scenario seed and
/// settled twice: once through the [`lppa_service::AuctionService`]
/// (shards + persistent work-stealing executor + admission batching)
/// and once through [`lppa_service::run_sequential`] (one thread, no
/// shards, area-id order). The decision projections must be
/// bit-identical; latency fields are timing and excluded.
#[derive(Debug)]
pub struct ServiceRun {
    /// Per-area decision rows from the sharded service, latency zeroed.
    pub sharded: Vec<lppa_service::AreaOutcome>,
    /// Per-area decision rows from the sequential reference, latency
    /// zeroed.
    pub sequential: Vec<lppa_service::AreaOutcome>,
    /// `(area, error)` rows from the sharded service.
    pub sharded_errors: Vec<(u32, String)>,
    /// `(area, error)` rows from the sequential reference.
    pub sequential_errors: Vec<(u32, String)>,
    /// Aggregate decision fingerprint of the sharded run.
    pub sharded_fingerprint: u64,
    /// Aggregate decision fingerprint of the sequential run.
    pub sequential_fingerprint: u64,
}

/// The incremental-churn-vs-rebuild variant pair's products.
///
/// A small churn schedule is derived from the scenario seed and settled
/// twice through [`lppa_service::run_churn`]: once in
/// [`lppa_service::ChurnMode::Incremental`] (delta TagIndex, resident
/// conflict graph and channel orders, on 2 shards × 2 threads) and once
/// in [`lppa_service::ChurnMode::Rebuild`] (full per-round rebuild, one
/// shard, one thread) — so a fingerprint match certifies both
/// mode-equality and shard/thread-grid invariance at once.
#[derive(Debug)]
pub struct ChurnRun {
    /// Report of the delta-applying incremental run.
    pub incremental: lppa_service::ChurnReport,
    /// Report of the from-scratch per-round rebuild run.
    pub rebuild: lppa_service::ChurnReport,
}

/// The masking-backend variant probe's products.
///
/// The same submissions are settled through every [`BackendKind`] with
/// the masked pipeline's allocation seed, so the `hmac` result must be
/// bit-identical to [`ScenarioRun::masked`], `ledger` must match `hmac`
/// while publishing a verified audit chain, and `bloom` may diverge
/// only within the measured false-positive budget in
/// [`Self::bloom_stats`]. Each result also carries the Vickrey
/// resettlement of its grants for the second-price charge invariant.
#[derive(Debug)]
pub struct BackendRun {
    /// One settled round per [`BackendKind::ALL`] entry, in that order,
    /// iterative-charging model, shared allocation seed with
    /// [`ScenarioRun::masked`].
    pub results: Vec<BackendAuctionResult>,
    /// The Bloom parameters the `bloom` entry ran with.
    pub bloom_params: BloomParams,
    /// Measured Bloom-vs-exact disagreement over every (point, range)
    /// pair of the scenario's bid table.
    pub bloom_stats: BloomProbeStats,
}

impl BackendRun {
    /// The settled round for `kind`.
    ///
    /// # Panics
    ///
    /// Panics if the probe was built without `kind` (impossible for
    /// probes from [`ScenarioRun::execute`]).
    pub fn result(&self, kind: BackendKind) -> &BackendAuctionResult {
        self.results.iter().find(|r| r.kind == kind).expect("probe covers every backend")
    }
}

/// A metamorphic rebuild of the masked pipeline.
#[derive(Debug)]
pub struct MetamorphicRun {
    /// Which transformation produced it.
    pub label: &'static str,
    /// Bidder permutation applied before the run (`variant_index =
    /// permutation[original_index]`); identity when the transformation
    /// does not reorder bidders.
    pub permutation: Vec<usize>,
    /// The rebuilt pipeline's result.
    pub result: PrivateAuctionResult,
}

/// Everything one executed scenario produced, ready for the invariant
/// registry.
#[derive(Debug)]
pub struct ScenarioRun {
    /// The scenario that was executed.
    pub scenario: Scenario,
    /// Round-0 TTP.
    pub ttp: Ttp,
    /// The submissions every pipeline consumed (parallel build).
    pub submissions: Vec<SuSubmission>,
    /// Wire checksums of the parallel fan-out build.
    pub parallel_checksums: Vec<u64>,
    /// Wire checksums of the serial reference build.
    pub serial_checksums: Vec<u64>,
    /// TagIndex-based conflict graph over the masked locations.
    pub graph_indexed: ConflictGraph,
    /// O(n²) reference conflict graph over the same submissions.
    pub graph_pairwise: ConflictGraph,
    /// The pruned masked table (for maxima-variant checks).
    pub table_pruned: MaskedBidTable,
    /// Plaintext reference pipeline.
    pub plain: PlainRun,
    /// Masked pipeline, iterative-charging model, shared allocation
    /// seed with `plain`.
    pub masked: PrivateAuctionResult,
    /// Masked pipeline, oblivious model.
    pub oblivious: PrivateAuctionResult,
    /// Session pipeline (None below quorum under chaos).
    pub session: Option<SessionRun>,
    /// Wire/socket pipeline (None below quorum under chaos).
    pub wire: Option<WireRun>,
    /// Scalar-vs-batched tag kernel probe.
    pub tag_kernel: TagKernelRun,
    /// Sharded-service-vs-sequential probe.
    pub service: ServiceRun,
    /// Incremental-churn-vs-rebuild probe.
    pub churn: ChurnRun,
    /// Masking-backend variant probe (hmac / bloom / ledger + Vickrey).
    pub backend: BackendRun,
    /// Metamorphic rebuilds (only for tie-free, disguise-free
    /// scenarios, where exact equivalence is well-defined).
    pub metamorphic: Vec<MetamorphicRun>,
}

impl ScenarioRun {
    /// Whether exact grant-sequence equivalence between the plaintext
    /// and masked pipelines applies: no ties (else the two sides break
    /// them over different value domains) and no disguises (else the
    /// masked side auctions cells the plaintext side does not have).
    pub fn strong_equivalence_applies(&self) -> bool {
        self.scenario.disguise.is_never() && self.scenario.tie_free()
    }

    /// Executes `scenario` through every pipeline variant.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors (invalid configuration, inconsistent
    /// submissions). A pipeline error on a generated scenario is itself
    /// a finding — the fuzzer treats it as the `pipeline_error`
    /// pseudo-invariant.
    pub fn execute(scenario: Scenario) -> Result<Self, LppaError> {
        let ttp = scenario.ttp(0)?;
        let policy = scenario.policy();
        let inputs = scenario.bidder_inputs();

        // Parallel fan-out build vs serial reference build: the child
        // seeds are drawn sequentially in both cases, so the results
        // must be bit-identical regardless of LPPA_THREADS.
        let submissions = build_submissions(
            &inputs,
            &ttp,
            &policy,
            &mut StdRng::seed_from_u64(scenario.submission_seed()),
        )?;
        let parallel_checksums: Vec<u64> = submissions.iter().map(SuSubmission::checksum).collect();
        let serial_checksums = {
            let mut rng = StdRng::seed_from_u64(scenario.submission_seed());
            let seeds: Vec<u64> = inputs.iter().map(|_| rng.next_u64()).collect();
            let mut sums = Vec::with_capacity(inputs.len());
            for (seed, (location, raw)) in seeds.iter().zip(&inputs) {
                let mut child = StdRng::seed_from_u64(*seed);
                sums.push(
                    SuSubmission::build(*location, raw, &ttp, &policy, &mut child)?.checksum(),
                );
            }
            sums
        };

        let locations: Vec<_> = submissions.iter().map(|s| s.location.clone()).collect();
        let graph_indexed = build_conflict_graph(&locations);
        let graph_pairwise = build_conflict_graph_pairwise(&locations);

        let table_pruned =
            MaskedBidTable::collect_pruned(submissions.iter().map(|s| s.bids.clone()).collect())?;

        let plain = {
            let conflicts = scenario.plain_conflicts();
            let table = scenario.plain_table();
            let grants = greedy_allocate(
                &table,
                &conflicts,
                &mut StdRng::seed_from_u64(scenario.alloc_seed()),
            );
            let outcome = AuctionOutcome::from_grants(&grants, &table);
            PlainRun { conflicts, grants, outcome }
        };

        let masked = run_private_auction_with_model(
            &submissions,
            &ttp,
            AuctioneerModel::IterativeCharging,
            &mut StdRng::seed_from_u64(scenario.alloc_seed()),
        )?;
        let oblivious = run_private_auction_with_model(
            &submissions,
            &ttp,
            AuctioneerModel::Oblivious,
            &mut StdRng::seed_from_u64(scenario.alloc_seed()),
        )?;

        let session = Self::run_session(&scenario, &ttp, &submissions)?;
        let wire = Self::run_wire(&scenario, &ttp, &submissions)?;
        let tag_kernel = Self::run_tag_kernel(&scenario, &ttp);
        let service = Self::run_service(&scenario)?;
        let churn = Self::run_churn(&scenario)?;
        let backend = Self::run_backends(&scenario, &ttp, &submissions)?;

        let mut run = Self {
            scenario,
            ttp,
            submissions,
            parallel_checksums,
            serial_checksums,
            graph_indexed,
            graph_pairwise,
            table_pruned,
            plain,
            masked,
            oblivious,
            session,
            wire,
            tag_kernel,
            service,
            churn,
            backend,
            metamorphic: Vec::new(),
        };
        if run.strong_equivalence_applies() {
            run.metamorphic = run.run_metamorphic()?;
        }
        Ok(run)
    }

    /// Runs the scalar-vs-batched tag probe for this scenario.
    ///
    /// Messages are derived from the scenario seed and its domains, so a
    /// repro file replays the exact probe: one genuine prefix family and
    /// one genuine range cover (the hot-path 9-byte mask inputs), plus
    /// raw messages straddling the batched path's 55-byte single-block
    /// boundary — the longer ones exercise the scalar fallback *inside*
    /// the batch API.
    fn run_tag_kernel(scenario: &Scenario, ttp: &Ttp) -> TagKernelRun {
        let key = &ttp.bidder_keys().g0;
        let config = &scenario.config;
        let mut rng = StdRng::seed_from_u64(scenario.seed ^ 0x6c61_6e65_7350_5235);
        let mut messages: Vec<Vec<u8>> = Vec::new();

        let w = config.transformed_bits();
        let value = rng.gen_range(0..=config.transformed_max());
        if let Ok(family) = prefix_family(w, value) {
            messages.extend(family.iter().map(|p| p.to_mask_input().to_vec()));
        }
        let (a, b) = (rng.gen_range(0..=config.loc_max()), rng.gen_range(0..=config.loc_max()));
        if let Ok(cover) = range_prefixes(config.loc_bits, a.min(b), a.max(b)) {
            messages.extend(cover.iter().map(|p| p.to_mask_input().to_vec()));
        }
        for len in [0usize, 1, 9, 54, 55, 56, 120] {
            let mut msg = vec![0u8; len];
            rng.fill_bytes(&mut msg);
            messages.push(msg);
        }

        let scalar = messages.iter().map(|m| Tag::compute(key, m)).collect();
        let batched = lanes::SUPPORTED_WIDTHS
            .into_iter()
            .map(|width| (width, Tag::compute_batch_with_width(key, width, &messages)))
            .collect();
        let default_batch = Tag::compute_batch(key, &messages);
        TagKernelRun { messages, scalar, batched, default_batch }
    }

    /// Runs the masking-backend variant probe.
    ///
    /// Every backend settles the same submissions with the masked
    /// pipeline's allocation seed, so exact backends replay its RNG
    /// draws; the Bloom disagreement budget is measured over every
    /// (point, range) pair the table could probe.
    fn run_backends(
        scenario: &Scenario,
        ttp: &Ttp,
        submissions: &[SuSubmission],
    ) -> Result<BackendRun, LppaError> {
        let results = BackendKind::ALL
            .into_iter()
            .map(|kind| {
                run_private_auction_with_backend(
                    submissions,
                    ttp,
                    AuctioneerModel::IterativeCharging,
                    kind,
                    &mut StdRng::seed_from_u64(scenario.alloc_seed()),
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        let bids: Vec<_> = submissions.iter().map(|s| s.bids.clone()).collect();
        let bloom_params = BloomParams::default();
        let bloom_stats = bloom_probe_stats(bloom_params, &bids);
        Ok(BackendRun { results, bloom_params, bloom_stats })
    }

    /// Runs the sharded-service-vs-sequential probe.
    ///
    /// The fleet is tiny (3 areas, ~6 bidders each) so the probe stays
    /// cheap per scenario, but it still crosses every service layer:
    /// round-robin routing, chunked admission flushes, affinity tasks on
    /// the work-stealing executor, and per-area session rounds — while
    /// the sequential side never touches a thread.
    fn run_service(scenario: &Scenario) -> Result<ServiceRun, LppaError> {
        use lppa_service::{
            run_sequential, AuctionService, ServiceConfig, ServiceReport, WorkloadSpec,
        };
        let spec = WorkloadSpec::new(
            scenario.seed ^ 0x5e4c_0000_0000_0006,
            3,
            18,
            scenario.n_channels.max(1),
        );
        let plans = spec.plans()?;
        let bidders = spec.bidders();
        let config = ServiceConfig {
            shards: 3,
            threads: 2,
            flush_chunk: 8,
            session: SessionConfig::default(),
        };
        let service = AuctionService::new(config, plans.clone());
        for bidder in &bidders {
            service.submit(bidder.clone())?;
        }
        let sharded = service.drain();
        let sequential = run_sequential(config.session, plans, &bidders);
        let decisions = |report: &ServiceReport| {
            report
                .areas
                .iter()
                .map(|a| lppa_service::AreaOutcome { latency_ns: 0, ..a.clone() })
                .collect::<Vec<_>>()
        };
        Ok(ServiceRun {
            sharded: decisions(&sharded),
            sequential: decisions(&sequential),
            sharded_errors: sharded.errors.clone(),
            sequential_errors: sequential.errors.clone(),
            sharded_fingerprint: sharded.fingerprint(),
            sequential_fingerprint: sequential.fingerprint(),
        })
    }

    /// Runs the incremental-churn-vs-rebuild probe.
    ///
    /// The schedule is tiny (2 areas, ~7 bidders each, 3 rounds at 40 %
    /// total churn) but every delta path fires: tombstoned TagIndex
    /// removals, resident-order re-ranking on bid revisions, dirty
    /// conflict rows on joins/leaves — against the rebuild oracle that
    /// re-masks and re-collects each round from the same member state.
    fn run_churn(scenario: &Scenario) -> Result<ChurnRun, LppaError> {
        use lppa_service::{run_churn, ChurnMode, ChurnSpec, WorkloadSpec};
        let spec = ChurnSpec::balanced(
            WorkloadSpec::new(
                scenario.seed ^ 0xc4b2_0000_0000_0007,
                2,
                14,
                scenario.n_channels.max(1),
            ),
            3,
            0.4,
        );
        let incremental = run_churn(&spec, ChurnMode::Incremental, 2, 2)?;
        let rebuild = run_churn(&spec, ChurnMode::Rebuild, 1, 1)?;
        Ok(ChurnRun { incremental, rebuild })
    }

    fn session_config(scenario: &Scenario) -> SessionConfig {
        if scenario.chaos {
            SessionConfig {
                faults: FaultConfig::chaotic().with_env_overrides(),
                ..SessionConfig::default()
            }
        } else {
            SessionConfig::default()
        }
    }

    fn run_session(
        scenario: &Scenario,
        ttp: &Ttp,
        submissions: &[SuSubmission],
    ) -> Result<Option<SessionRun>, LppaError> {
        let config = Self::session_config(scenario);
        let session = AuctionSession::new(ttp, config);
        let seed = scenario.session_seed();
        let outcome = match session.run(submissions, seed) {
            Ok(outcome) => outcome,
            // Chaos legitimately starves a round below quorum.
            Err(LppaError::QuorumNotReached { .. }) if scenario.chaos => return Ok(None),
            Err(e) => return Err(e),
        };
        let repeat_fingerprint = session.run(submissions, seed)?.fingerprint();
        let resumed_fingerprint = session.resume(submissions, &outcome.journal)?.fingerprint();

        // A no-fault session must match the direct pipeline run with the
        // session's own derived allocation seed (the second draw of the
        // session's master stream — see `AuctionSession::run`).
        let expected = if scenario.chaos {
            None
        } else {
            let mut master = StdRng::seed_from_u64(seed);
            let _transport_seed = master.next_u64();
            let auction_seed = master.next_u64();
            Some(run_private_auction_with_model(
                submissions,
                ttp,
                config.model,
                &mut StdRng::seed_from_u64(auction_seed),
            )?)
        };
        Ok(Some(SessionRun { outcome, repeat_fingerprint, resumed_fingerprint, expected }))
    }

    /// Runs the wire/socket probe: the simulated binary-frame round as
    /// reference, a loopback socket round that must reproduce it, and a
    /// mid-charge-killed socket round resumed from its checkpoint.
    fn run_wire(
        scenario: &Scenario,
        ttp: &Ttp,
        submissions: &[SuSubmission],
    ) -> Result<Option<WireRun>, LppaError> {
        let config = Self::session_config(scenario);
        let seed = scenario.session_seed();
        let sim = match run_wire_round(ttp, config, submissions, seed) {
            Ok(outcome) => outcome,
            // Chaos legitimately starves a round below quorum.
            Err(LppaError::QuorumNotReached { .. }) if scenario.chaos => return Ok(None),
            Err(e) => return Err(e),
        };
        // Loopback with tight backoff so fuzz scenarios stay fast.
        let net =
            NetConfig { backoff_ms: 5, backoff_cap_ms: 80, retries: 10, ..NetConfig::default() };
        let net_err =
            |err: lppa_net::NetError| LppaError::Internal { what: format!("socket probe: {err}") };
        let socket = run_socket_round(ttp, config, submissions, seed, &net).map_err(net_err)?;
        let killed = run_socket_round_with_kill(
            ttp,
            config,
            submissions,
            seed,
            &net,
            Some(KillPoint::MidCharge { served: 1 }),
        )
        .map_err(net_err)?;
        let AuctioneerRun::KilledInCharge(checkpoint) = killed else {
            return Err(LppaError::Internal {
                what: format!("socket probe: kill point never fired: {killed:?}"),
            });
        };
        let resumed = resume_socket_round(ttp, config, submissions.len(), &checkpoint, &net)
            .map_err(net_err)?;
        Ok(Some(WireRun {
            socket_fingerprint: socket.fingerprint(),
            socket_journal_fingerprint: socket.journal.fingerprint(),
            resumed_fingerprint: resumed.fingerprint(),
            sim,
        }))
    }

    /// The metamorphic rebuilds: each transforms the scenario in a way
    /// that must not move the outcome, then runs the masked pipeline
    /// with the same allocation seed.
    fn run_metamorphic(&self) -> Result<Vec<MetamorphicRun>, LppaError> {
        let scenario = &self.scenario;
        let n = scenario.n_bidders();
        let identity: Vec<usize> = (0..n).collect();
        let mut runs = Vec::new();

        // 1. Bidder permutation: relabeling bidders permutes the
        //    outcome and nothing else.
        {
            let mut perm = identity.clone();
            perm.shuffle(&mut StdRng::seed_from_u64(scenario.permute_seed()));
            let inputs = scenario.bidder_inputs();
            let mut permuted_inputs = vec![inputs[0].clone(); n];
            for (original, &variant) in perm.iter().enumerate() {
                permuted_inputs[variant] = inputs[original].clone();
            }
            let submissions = build_submissions(
                &permuted_inputs,
                &self.ttp,
                &scenario.policy(),
                &mut StdRng::seed_from_u64(scenario.submission_seed()),
            )?;
            let result = run_private_auction_with_model(
                &submissions,
                &self.ttp,
                AuctioneerModel::IterativeCharging,
                &mut StdRng::seed_from_u64(scenario.alloc_seed()),
            )?;
            runs.push(MetamorphicRun { label: "permuted_bidders", permutation: perm, result });
        }

        // 2. Key rotation: round-1 keys, same bids, same outcome.
        {
            let ttp = scenario.ttp(1)?;
            let submissions = build_submissions(
                &scenario.bidder_inputs(),
                &ttp,
                &scenario.policy(),
                &mut StdRng::seed_from_u64(scenario.submission_seed()),
            )?;
            let result = run_private_auction_with_model(
                &submissions,
                &ttp,
                AuctioneerModel::IterativeCharging,
                &mut StdRng::seed_from_u64(scenario.alloc_seed()),
            )?;
            runs.push(MetamorphicRun {
                label: "rotated_keys",
                permutation: identity.clone(),
                result,
            });
        }

        // 3. rd shift + cr scale: the transform parameters are secret
        //    bookkeeping; winners and charges must not move.
        if let Some(config) = shifted_config(&scenario.config) {
            let ttp = scenario.ttp_with_config(0, config)?;
            let submissions = build_submissions(
                &scenario.bidder_inputs(),
                &ttp,
                &scenario.policy(),
                &mut StdRng::seed_from_u64(scenario.submission_seed()),
            )?;
            let result = run_private_auction_with_model(
                &submissions,
                &ttp,
                AuctioneerModel::IterativeCharging,
                &mut StdRng::seed_from_u64(scenario.alloc_seed()),
            )?;
            runs.push(MetamorphicRun { label: "shifted_transform", permutation: identity, result });
        }

        Ok(runs)
    }
}

/// An alternative configuration with `rd` shifted and `cr` scaled, or
/// `None` if the shift would leave the valid domain.
pub fn shifted_config(config: &LppaConfig) -> Option<LppaConfig> {
    let shifted = LppaConfig { rd: config.rd + 5, cr: (config.cr * 2).min(8), ..*config };
    if shifted == *config || shifted.validate().is_err() {
        return None;
    }
    Some(shifted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{DisguiseSpec, ScenarioParams};

    #[test]
    fn execute_covers_every_pipeline() {
        let scenario = Scenario::builder(11).bidders(8).channels(3).tie_free().build();
        let run = ScenarioRun::execute(scenario).unwrap();
        assert!(run.strong_equivalence_applies());
        assert_eq!(run.submissions.len(), 8);
        assert_eq!(run.parallel_checksums, run.serial_checksums);
        assert!(run.session.is_some());
        let wire = run.wire.as_ref().expect("wire probe should run");
        assert_eq!(wire.sim.fingerprint(), wire.socket_fingerprint);
        assert_eq!(wire.sim.fingerprint(), wire.resumed_fingerprint);
        assert_eq!(run.metamorphic.len(), 3, "all three metamorphic rebuilds should run");
        assert_eq!(run.service.sharded, run.service.sequential);
        assert_eq!(run.service.sharded.len(), 3, "errors: {:?}", run.service.sharded_errors);
        assert_eq!(run.service.sharded_fingerprint, run.service.sequential_fingerprint);
        assert!(run.churn.incremental.churn_events > 0, "churn probe should apply events");
        assert_eq!(run.churn.incremental.fingerprint, run.churn.rebuild.fingerprint);
        // The backend probe settles every kind, with the ledger audited
        // and the hmac entry bit-identical to the masked pipeline.
        assert_eq!(run.backend.results.len(), BackendKind::ALL.len());
        let hmac = run.backend.result(BackendKind::Hmac);
        assert_eq!(hmac.result.grants, run.masked.grants);
        assert!(run.backend.result(BackendKind::Ledger).ledger.is_some());
        assert_eq!(run.backend.bloom_stats.false_negatives, 0);
        assert!(!hmac.traces.is_empty());
    }

    #[test]
    fn tag_kernel_probe_covers_every_width_and_the_fallback() {
        let scenario = Scenario::builder(21).bidders(4).channels(2).build();
        let run = ScenarioRun::execute(scenario).unwrap();
        let probe = &run.tag_kernel;
        assert_eq!(probe.scalar.len(), probe.messages.len());
        assert_eq!(probe.batched.len(), lanes::SUPPORTED_WIDTHS.len());
        // The probe must include both 9-byte hot-path inputs and
        // multi-block messages (the in-batch scalar fallback).
        assert!(probe.messages.iter().any(|m| m.len() == 9));
        assert!(probe.messages.iter().any(|m| m.len() > 55));
        for (width, tags) in &probe.batched {
            assert_eq!(tags, &probe.scalar, "lane width {width}");
        }
        assert_eq!(probe.default_batch, probe.scalar);
    }

    #[test]
    fn disguised_scenarios_skip_metamorphic_rebuilds() {
        let scenario = Scenario::builder(12)
            .bidders(6)
            .channels(2)
            .disguise(DisguiseSpec::Uniform { replace: 0.8 })
            .build();
        let run = ScenarioRun::execute(scenario).unwrap();
        assert!(!run.strong_equivalence_applies());
        assert!(run.metamorphic.is_empty());
    }

    #[test]
    fn generated_scenarios_execute() {
        let params = ScenarioParams::default();
        for seed in 0..6 {
            let scenario = Scenario::generate(&params, seed);
            ScenarioRun::execute(scenario).unwrap();
        }
    }

    #[test]
    fn shifted_config_stays_valid() {
        let base = LppaConfig::default();
        let shifted = shifted_config(&base).unwrap();
        shifted.validate().unwrap();
        assert_eq!(shifted.rd, base.rd + 5);
    }
}
