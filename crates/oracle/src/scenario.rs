//! Seeded random auction scenarios.
//!
//! A [`Scenario`] is *concrete data*: the protocol configuration, every
//! bidder's location and raw bid row, the disguise policy and the chaos
//! toggle. Everything else — keys, masking randomness, allocation
//! randomness — is derived deterministically from the scenario seed, so
//! a scenario value is a complete, self-contained reproduction of one
//! differential-testing case. Concreteness is what makes the shrinking
//! minimizer possible: dropping a bidder or a channel edits the data
//! directly instead of hunting for a new seed.

use lppa::ttp::Ttp;
use lppa::zero_replace::ZeroReplacePolicy;
use lppa::{LppaConfig, LppaError};
use lppa_auction::bidder::{generate_bidders, BidModel, BidTable, Location};
use lppa_auction::conflict::ConflictGraph;
use lppa_rng::rngs::StdRng;
use lppa_rng::{Rng, RngCore, SeedableRng};
use lppa_spectrum::area::AreaProfile;
use lppa_spectrum::geo::GridSpec;
use lppa_spectrum::synth::SyntheticMapBuilder;

/// Domain-separation constants for the seed streams a scenario derives.
const STREAM_GENERATE: u64 = 0x5ce7_a51a_9e4e_11aa;
const STREAM_MASTER: u64 = 0x17e4_0000_7f4a_7c15;
const STREAM_SUBMIT: u64 = 0x50b5_u64 << 32;
const STREAM_ALLOC: u64 = 0xa110_c000_0000_0001;
const STREAM_SESSION: u64 = 0x5e55_1000_0000_0001;
const STREAM_PERMUTE: u64 = 0x9e37_79b9_0000_0002;

/// How raw zeros are disguised — a serializable mirror of
/// [`ZeroReplacePolicy`], kept simple so repro files stay readable.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DisguiseSpec {
    /// Zeros are never disguised.
    Never,
    /// Each zero is disguised with probability `replace`, uniformly in
    /// `[1, bmax]`.
    Uniform {
        /// Disguise probability.
        replace: f64,
    },
    /// Each zero is disguised with probability `replace`, geometrically
    /// decaying over the value range.
    Geometric {
        /// Disguise probability.
        replace: f64,
        /// Geometric decay factor.
        decay: f64,
    },
}

impl DisguiseSpec {
    /// Whether this spec never disguises anything.
    pub fn is_never(&self) -> bool {
        matches!(self, DisguiseSpec::Never)
    }

    /// The concrete policy for a bid domain capped at `bmax`.
    pub fn policy(&self, bmax: u32) -> ZeroReplacePolicy {
        match *self {
            DisguiseSpec::Never => ZeroReplacePolicy::never(bmax),
            DisguiseSpec::Uniform { replace } => ZeroReplacePolicy::uniform(replace, bmax),
            DisguiseSpec::Geometric { replace, decay } => {
                ZeroReplacePolicy::geometric(replace, decay, bmax)
            }
        }
    }
}

/// Knobs of the scenario sampler.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioParams {
    /// Minimum bidder count (≥ 1).
    pub min_bidders: usize,
    /// Maximum bidder count.
    pub max_bidders: usize,
    /// Maximum channel count (≥ 1).
    pub max_channels: usize,
    /// Probability a scenario draws its bids from a synthetic spectrum
    /// map (exercising propagation/terrain) instead of direct sampling.
    pub map_fraction: f64,
    /// Whether scenarios run their session round under chaotic
    /// transport faults.
    pub chaos: bool,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        Self { min_bidders: 2, max_bidders: 16, max_channels: 5, map_fraction: 0.25, chaos: false }
    }
}

impl ScenarioParams {
    /// Default knobs with chaotic session faults enabled.
    pub fn chaotic() -> Self {
        Self { chaos: true, ..Self::default() }
    }
}

/// One complete, concrete differential-testing case.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Master seed; every derived randomness stream namespaces it.
    pub seed: u64,
    /// Shared protocol parameters.
    pub config: LppaConfig,
    /// Number of auctioned channels.
    pub n_channels: usize,
    /// One location per bidder.
    pub locations: Vec<Location>,
    /// Raw bid rows, `n_bidders × n_channels`.
    pub rows: Vec<Vec<u32>>,
    /// The zero-disguise policy all bidders share.
    pub disguise: DisguiseSpec,
    /// Whether the session pipeline runs under chaotic faults.
    pub chaos: bool,
}

impl Scenario {
    /// Samples a random scenario from `seed`.
    pub fn generate(params: &ScenarioParams, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ STREAM_GENERATE);
        let config = LppaConfig {
            loc_bits: rng.gen_range(5..=8),
            bid_bits: rng.gen_range(4..=8),
            lambda: rng.gen_range(1..=4),
            rd: rng.gen_range(0..=12),
            cr: rng.gen_range(1..=6),
        };
        debug_assert!(config.validate().is_ok(), "sampled config must be valid: {config:?}");

        let k = rng.gen_range(1..=params.max_channels.max(1));
        let mut n = rng.gen_range(params.min_bidders.max(1)..=params.max_bidders.max(1));
        let tie_free = rng.gen_bool(0.5);
        if tie_free {
            // Distinct positive bids per column need enough headroom.
            n = n.min(config.bid_max() as usize);
        }

        let use_map = !tie_free && rng.gen_bool(params.map_fraction);
        let (locations, rows) = if use_map {
            Self::sample_from_map(&config, n, k, &mut rng)
        } else {
            let locations = Self::sample_locations(&config, n, &mut rng);
            let rows = if tie_free {
                Self::sample_tie_free_rows(&config, n, k, &mut rng)
            } else {
                Self::sample_free_rows(&config, n, k, &mut rng)
            };
            (locations, rows)
        };

        // Keep half the cases disguise-free so the strong equivalence
        // invariants stay exercised.
        let disguise = if tie_free || rng.gen_bool(0.2) {
            DisguiseSpec::Never
        } else if rng.gen_bool(0.5) {
            DisguiseSpec::Uniform { replace: rng.gen_range(0.1..0.9) }
        } else {
            DisguiseSpec::Geometric {
                replace: rng.gen_range(0.1..0.9),
                decay: rng.gen_range(0.5..0.9),
            }
        };

        Self { seed, config, n_channels: k, locations, rows, disguise, chaos: params.chaos }
    }

    /// A fluent builder for hand-written fixtures (integration tests).
    pub fn builder(seed: u64) -> ScenarioBuilder {
        ScenarioBuilder::new(seed)
    }

    fn sample_locations(config: &LppaConfig, n: usize, rng: &mut StdRng) -> Vec<Location> {
        let loc_max = config.loc_max();
        // Cluster half the bidders so conflict edges actually appear
        // even on large coordinate domains.
        let cluster = (8 * config.lambda).min(loc_max);
        (0..n)
            .map(|_| {
                if rng.gen_bool(0.5) {
                    Location::new(rng.gen_range(0..=cluster), rng.gen_range(0..=cluster))
                } else {
                    Location::new(rng.gen_range(0..=loc_max), rng.gen_range(0..=loc_max))
                }
            })
            .collect()
    }

    fn sample_free_rows(
        config: &LppaConfig,
        n: usize,
        k: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<u32>> {
        let zero_prob = rng.gen_range(0.2..0.7);
        let bmax = config.bid_max();
        (0..n)
            .map(|_| {
                (0..k)
                    .map(|_| if rng.gen_bool(zero_prob) { 0 } else { rng.gen_range(1..=bmax) })
                    .collect()
            })
            .collect()
    }

    fn sample_tie_free_rows(
        config: &LppaConfig,
        n: usize,
        k: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<u32>> {
        let mut rows = vec![vec![0u32; k]; n];
        for ch in 0..k {
            let mut values: Vec<u32> = (1..=config.bid_max()).collect();
            for (i, row) in rows.iter_mut().enumerate() {
                if (i + ch) % 3 == 0 {
                    row[ch] = 0; // unavailable channel
                } else {
                    let idx = rng.gen_range(0..values.len());
                    row[ch] = values.swap_remove(idx);
                }
            }
        }
        rows
    }

    /// Bids derived from a small synthetic spectrum map: exercises
    /// propagation, terrain shadowing and grid-boundary bidders.
    fn sample_from_map(
        config: &LppaConfig,
        n: usize,
        k: usize,
        rng: &mut StdRng,
    ) -> (Vec<Location>, Vec<Vec<u32>>) {
        let dim_max = (config.loc_max() + 1).min(20) as u16;
        let rows_n = rng.gen_range(4..=dim_max);
        let cols_n = rng.gen_range(4..=dim_max);
        let profile = match rng.gen_range(0..4u8) {
            0 => AreaProfile::area1(),
            1 => AreaProfile::area2(),
            2 => AreaProfile::area3(),
            _ => AreaProfile::area4(),
        };
        let map = SyntheticMapBuilder::new(profile)
            .grid(GridSpec::new(rows_n, cols_n, rng.gen_range(20.0..80.0)))
            .channels(k)
            .seed(rng.next_u64())
            .build();
        let model = BidModel { bmax: config.bid_max(), ..BidModel::default() };
        let bidders = generate_bidders(&map, n, &model, rng);
        let table = BidTable::generate(&map, &bidders, &model, rng);
        let locations = bidders.iter().map(|b| b.location).collect();
        let rows = (0..n).map(|i| table.row(lppa_auction::bidder::BidderId(i)).to_vec()).collect();
        (locations, rows)
    }

    /// Number of bidders.
    pub fn n_bidders(&self) -> usize {
        self.rows.len()
    }

    /// Whether every column's positive bids are pairwise distinct — the
    /// precondition for exact plaintext/masked outcome equivalence
    /// (equal raw bids tie-break differently once `cr` slots separate
    /// them).
    pub fn tie_free(&self) -> bool {
        (0..self.n_channels).all(|ch| {
            let mut seen = std::collections::HashSet::new();
            self.rows.iter().map(|r| r[ch]).filter(|&b| b > 0).all(|b| seen.insert(b))
        })
    }

    /// The 32-byte master secret every TTP key schedule derives from.
    pub fn master(&self) -> [u8; 32] {
        let mut bytes = [0u8; 32];
        StdRng::seed_from_u64(self.seed ^ STREAM_MASTER).fill_bytes(&mut bytes);
        bytes
    }

    /// The TTP for `round` (rounds rotate keys; the outcome must not
    /// move — that is the key-rotation metamorphic invariant).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from [`Ttp::from_master`].
    pub fn ttp(&self, round: u64) -> Result<Ttp, LppaError> {
        Ttp::from_master(&self.master(), round, self.n_channels, self.config)
    }

    /// As [`Scenario::ttp`], but under an alternative configuration —
    /// used by the `rd`-shift / `cr`-scale metamorphic invariant.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from [`Ttp::from_master`].
    pub fn ttp_with_config(&self, round: u64, config: LppaConfig) -> Result<Ttp, LppaError> {
        Ttp::from_master(&self.master(), round, self.n_channels, config)
    }

    /// The shared zero-disguise policy.
    pub fn policy(&self) -> ZeroReplacePolicy {
        self.disguise.policy(self.config.bid_max())
    }

    /// `(location, raw bids)` pairs in bidder order.
    pub fn bidder_inputs(&self) -> Vec<(Location, Vec<u32>)> {
        self.locations.iter().copied().zip(self.rows.iter().cloned()).collect()
    }

    /// Seed of the submission-building randomness stream.
    pub fn submission_seed(&self) -> u64 {
        self.seed ^ STREAM_SUBMIT
    }

    /// Seed of the allocation randomness stream (shared by the
    /// plaintext and masked pipelines so their grant sequences are
    /// comparable).
    pub fn alloc_seed(&self) -> u64 {
        self.seed ^ STREAM_ALLOC
    }

    /// Seed driving the `lppa-session` round.
    pub fn session_seed(&self) -> u64 {
        self.seed ^ STREAM_SESSION
    }

    /// Seed of the bidder-permutation metamorphic variant.
    pub fn permute_seed(&self) -> u64 {
        self.seed ^ STREAM_PERMUTE
    }

    /// The plaintext reference bid table.
    pub fn plain_table(&self) -> BidTable {
        BidTable::from_rows(self.rows.clone())
    }

    /// The plaintext reference conflict graph.
    pub fn plain_conflicts(&self) -> ConflictGraph {
        ConflictGraph::from_locations(&self.locations, self.config.lambda)
    }
}

/// Hand-written scenario construction for integration tests: the same
/// concrete [`Scenario`] type the fuzzer uses, with every knob pinned
/// explicitly instead of sampled.
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    seed: u64,
    config: LppaConfig,
    n_bidders: usize,
    n_channels: usize,
    tie_free: bool,
    disguise: DisguiseSpec,
    chaos: bool,
}

impl ScenarioBuilder {
    fn new(seed: u64) -> Self {
        Self {
            seed,
            config: LppaConfig::default(),
            n_bidders: 10,
            n_channels: 4,
            tie_free: false,
            disguise: DisguiseSpec::Never,
            chaos: false,
        }
    }

    /// Sets the protocol configuration.
    pub fn config(mut self, config: LppaConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the bidder count.
    pub fn bidders(mut self, n: usize) -> Self {
        self.n_bidders = n;
        self
    }

    /// Sets the channel count.
    pub fn channels(mut self, k: usize) -> Self {
        self.n_channels = k;
        self
    }

    /// Requests distinct positive bids per column (tie-free), the
    /// precondition for exact masked/plaintext grant equivalence.
    pub fn tie_free(mut self) -> Self {
        self.tie_free = true;
        self
    }

    /// Sets the zero-disguise policy.
    pub fn disguise(mut self, disguise: DisguiseSpec) -> Self {
        self.disguise = disguise;
        self
    }

    /// Runs the session pipeline under chaotic faults.
    pub fn chaos(mut self) -> Self {
        self.chaos = true;
        self
    }

    /// Materializes the scenario (locations and rows sampled from the
    /// builder seed).
    pub fn build(self) -> Scenario {
        let mut rng = StdRng::seed_from_u64(self.seed ^ STREAM_GENERATE);
        let n = if self.tie_free {
            self.n_bidders.min(self.config.bid_max() as usize)
        } else {
            self.n_bidders
        };
        let locations = Scenario::sample_locations(&self.config, n, &mut rng);
        let rows = if self.tie_free {
            Scenario::sample_tie_free_rows(&self.config, n, self.n_channels, &mut rng)
        } else {
            Scenario::sample_free_rows(&self.config, n, self.n_channels, &mut rng)
        };
        Scenario {
            seed: self.seed,
            config: self.config,
            n_channels: self.n_channels,
            locations,
            rows,
            disguise: self.disguise,
            chaos: self.chaos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let params = ScenarioParams::default();
        for seed in 0..20 {
            assert_eq!(Scenario::generate(&params, seed), Scenario::generate(&params, seed));
        }
    }

    #[test]
    fn generated_scenarios_are_well_formed() {
        let params = ScenarioParams::default();
        for seed in 0..40 {
            let s = Scenario::generate(&params, seed);
            s.config.validate().unwrap();
            assert!(s.n_bidders() >= 1 && s.n_bidders() <= params.max_bidders);
            assert!(s.n_channels >= 1 && s.n_channels <= params.max_channels);
            assert_eq!(s.locations.len(), s.n_bidders());
            let loc_max = s.config.loc_max();
            for loc in &s.locations {
                assert!(loc.x <= loc_max && loc.y <= loc_max, "{loc:?} vs {loc_max}");
            }
            let bmax = s.config.bid_max();
            for row in &s.rows {
                assert_eq!(row.len(), s.n_channels);
                assert!(row.iter().all(|&b| b <= bmax));
            }
        }
    }

    #[test]
    fn tie_free_detection_matches_construction() {
        for seed in 0..30 {
            let s = Scenario::builder(seed).bidders(12).channels(3).tie_free().build();
            assert!(s.tie_free(), "builder promised tie-free, seed {seed}");
        }
        // A deliberate tie is detected.
        let mut s = Scenario::builder(1).bidders(4).channels(1).tie_free().build();
        let v = s.rows.iter().map(|r| r[0]).find(|&b| b > 0).unwrap();
        for row in &mut s.rows {
            row[0] = v;
        }
        assert!(!s.tie_free());
    }

    #[test]
    fn seed_streams_are_distinct() {
        let s = Scenario::builder(7).build();
        let streams =
            [s.submission_seed(), s.alloc_seed(), s.session_seed(), s.permute_seed(), s.seed];
        let unique: std::collections::HashSet<u64> = streams.iter().copied().collect();
        assert_eq!(unique.len(), streams.len());
    }

    #[test]
    fn ttp_rotation_changes_keys_but_not_config() {
        let s = Scenario::builder(3).channels(2).build();
        let t0 = s.ttp(0).unwrap();
        let t1 = s.ttp(1).unwrap();
        assert_eq!(t0.config(), t1.config());
        assert_ne!(
            t0.bidder_keys().g0.midstate().compute(b"x"),
            t1.bidder_keys().g0.midstate().compute(b"x"),
            "rotated rounds must derive fresh keys"
        );
    }
}
