//! Shared fixtures for integration tests.
//!
//! The top-level `tests/` used to hand-roll the same setup over and
//! over: a tie-free plaintext/masked table pair here, a synthetic map
//! plus bidder population there. Both now route through the oracle's
//! [`Scenario`] machinery, so integration fixtures and fuzzed scenarios
//! are the same data built the same way — a repro file from the fuzzer
//! drops straight into any integration test.

use lppa::protocol::{build_submissions, SuSubmission};
use lppa::psd::table::MaskedBidTable;
use lppa::LppaError;
use lppa_auction::bidder::{generate_bidders, BidModel, BidTable, Bidder, Location};
use lppa_auction::conflict::ConflictGraph;
use lppa_rng::rngs::StdRng;
use lppa_rng::SeedableRng;
use lppa_spectrum::area::AreaProfile;
use lppa_spectrum::geo::GridSpec;
use lppa_spectrum::synth::SyntheticMapBuilder;
use lppa_spectrum::SpectrumMap;

use crate::scenario::Scenario;

/// Builds the scenario's full submission set exactly the way the
/// differential pipelines do (round-0 TTP, the scenario's disguise
/// policy, the dedicated submission seed stream).
///
/// # Errors
///
/// Propagates protocol errors from key derivation or masking.
pub fn submissions(scenario: &Scenario) -> Result<Vec<SuSubmission>, LppaError> {
    let ttp = scenario.ttp(0)?;
    build_submissions(
        &scenario.bidder_inputs(),
        &ttp,
        &scenario.policy(),
        &mut StdRng::seed_from_u64(scenario.submission_seed()),
    )
}

/// A matching plaintext/masked table pair over one scenario, plus the
/// ground-truth conflict graph — the classic equivalence fixture.
pub struct MatchedTables {
    /// The plaintext reference table.
    pub plain: BidTable,
    /// The pruned masked table over the same raw bids.
    pub masked: MaskedBidTable,
    /// Conflict graph from the scenario's true locations.
    pub conflicts: ConflictGraph,
}

/// Materializes [`MatchedTables`] for a scenario. Build the scenario
/// with `.tie_free()` when the test needs exact grant-sequence
/// equivalence.
///
/// # Errors
///
/// Propagates protocol errors from submission building or collection.
pub fn matched_tables(scenario: &Scenario) -> Result<MatchedTables, LppaError> {
    let subs = submissions(scenario)?;
    let masked = MaskedBidTable::collect_pruned(subs.into_iter().map(|s| s.bids).collect())?;
    Ok(MatchedTables {
        plain: scenario.plain_table(),
        masked,
        conflicts: scenario.plain_conflicts(),
    })
}

/// A synthetic spectrum map plus helpers for populating it — the other
/// setup block every integration test used to duplicate.
pub struct MapFixture {
    /// The built map.
    pub map: SpectrumMap,
}

impl MapFixture {
    /// Builds a map with explicit geometry.
    pub fn new(profile: AreaProfile, grid: GridSpec, channels: usize, seed: u64) -> Self {
        let map =
            SyntheticMapBuilder::new(profile).grid(grid).channels(channels).seed(seed).build();
        Self { map }
    }

    /// The geometry most integration tests share: a 40×40 grid over a
    /// 60 km side (small enough for 6-bit coordinates, large enough
    /// that PU footprints do not smother the whole area).
    pub fn forty_by_forty(profile: AreaProfile, channels: usize, seed: u64) -> Self {
        Self::new(profile, GridSpec::new(40, 40, 60.0), channels, seed)
    }

    /// Samples a bidder population and its bid table, in the draw order
    /// every existing test uses (bidders first, then the table, from
    /// one RNG).
    pub fn population(
        &self,
        n: usize,
        model: &BidModel,
        rng: &mut StdRng,
    ) -> (Vec<Bidder>, BidTable) {
        let bidders = generate_bidders(&self.map, n, model, rng);
        let table = BidTable::generate(&self.map, &bidders, model, rng);
        (bidders, table)
    }
}

/// Flattens a population into the `(location, raw bids)` pairs the
/// protocol entry points consume.
pub fn raw_bids(bidders: &[Bidder], table: &BidTable) -> Vec<(Location, Vec<u32>)> {
    bidders.iter().map(|b| (b.location, table.row(b.id).to_vec())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lppa_auction::BidOracle;

    #[test]
    fn matched_tables_agree_with_the_pipeline() {
        let scenario = Scenario::builder(5).bidders(9).channels(3).tie_free().build();
        let fx = matched_tables(&scenario).unwrap();
        assert_eq!(fx.plain.n_bidders(), 9);
        assert_eq!(fx.masked.n_bidders(), 9);
        assert_eq!(fx.conflicts, scenario.plain_conflicts());
    }

    #[test]
    fn submissions_match_the_scenario_shape() {
        let scenario = Scenario::builder(6).bidders(5).channels(2).build();
        let subs = submissions(&scenario).unwrap();
        assert_eq!(subs.len(), 5);
        // Deterministic: a second build is bit-identical on the wire.
        let again = submissions(&scenario).unwrap();
        let sums: Vec<u64> = subs.iter().map(SuSubmission::checksum).collect();
        let again_sums: Vec<u64> = again.iter().map(SuSubmission::checksum).collect();
        assert_eq!(sums, again_sums);
    }

    #[test]
    fn map_fixture_population_is_well_formed() {
        let fx = MapFixture::forty_by_forty(AreaProfile::area3(), 4, 7);
        let model = BidModel::default();
        let mut rng = StdRng::seed_from_u64(8);
        let (bidders, table) = fx.population(6, &model, &mut rng);
        assert_eq!(bidders.len(), 6);
        let raw = raw_bids(&bidders, &table);
        assert_eq!(raw.len(), 6);
        assert!(raw.iter().all(|(_, row)| row.len() == 4));
    }
}
