//! A zero-dependency parallel runtime for the LPPA workspace.
//!
//! The auction pipeline has two embarrassingly parallel hot spots — the
//! bidder-side submission masking (every bidder masks its own tags
//! independently) and the auctioneer-side index construction. The
//! workspace is hermetic by design, so instead of `rayon` this crate
//! provides the two primitives those paths actually need, built on
//! `std::thread::scope`:
//!
//! * [`par_map`] — map a function over a slice, results in input order;
//! * [`par_chunks`] — map a function over fixed-size chunks of a slice,
//!   results in chunk order.
//!
//! # Scheduling
//!
//! Work is split into chunks and workers *self-schedule*: each thread
//! repeatedly claims the next unclaimed chunk from a shared atomic
//! counter ("work-stealing lite" — the cheap half of a deque scheduler,
//! which is all uniform workloads need). Results travel back over a
//! channel labelled with their chunk number and are reassembled in
//! order, so the output is **deterministic and identical for every
//! thread count** — a property the repo's reproducibility CI gate
//! checks by running the whole suite under `LPPA_THREADS=1` and
//! `LPPA_THREADS=4`.
//!
//! # Thread count
//!
//! The worker count comes from the `LPPA_THREADS` environment variable
//! (clamped to ≥ 1), defaulting to [`std::thread::available_parallelism`].
//! It is read once per process and cached. With one worker the
//! primitives run inline on the calling thread — no threads are spawned
//! and no channel is allocated.
//!
//! # Examples
//!
//! ```
//! let squares = lppa_par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, [1, 4, 9, 16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, OnceLock};

pub use executor::Executor;

/// Environment variable controlling the worker-thread count.
pub const THREADS_ENV: &str = "LPPA_THREADS";

/// Upper bound any worker-count knob is clamped to. A typo like
/// `LPPA_THREADS=100000` must not fork-bomb the host; no machine this
/// workspace targets benefits from more workers than this.
pub const MAX_WORKERS: usize = 512;

/// Chunks per worker that [`par_map`] aims for, so slow chunks can be
/// compensated by idle workers picking up remaining ones.
const CHUNKS_PER_THREAD: usize = 4;

/// Parses a `LPPA_THREADS`-style worker-count value.
///
/// The accepted grammar is deliberately strict and shared by every
/// worker-count knob in the workspace (`LPPA_THREADS` here,
/// `LPPA_SHARDS` in `lppa-service`), so the knobs cannot drift apart:
///
/// * surrounding ASCII whitespace is trimmed (`" 4 "`, `"4\n"` → 4);
/// * only plain decimal digits are accepted — signs (`"+4"`, `"-1"`),
///   hex, separators and embedded whitespace are all rejected;
/// * `0` is rejected: a zero-worker pool cannot make progress, and
///   silently reading it as 1 would hide the misconfiguration;
/// * values that overflow `usize` are rejected rather than saturated;
/// * accepted values are clamped to [`MAX_WORKERS`].
///
/// `None` means unset or invalid; callers fall back to their default
/// (the machine's available parallelism for `LPPA_THREADS`).
///
/// # Examples
///
/// ```
/// assert_eq!(lppa_par::parse_threads(Some(" 4 ")), Some(4));
/// assert_eq!(lppa_par::parse_threads(Some("0")), None);
/// assert_eq!(lppa_par::parse_threads(Some("+4")), None);
/// assert_eq!(lppa_par::parse_threads(Some("99999999999999999999")), None);
/// ```
pub fn parse_threads(value: Option<&str>) -> Option<usize> {
    let v = value?.trim();
    if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    v.parse::<usize>().ok().filter(|&n| n >= 1).map(|n| n.min(MAX_WORKERS))
}

/// Parses a non-negative integer knob (tick counts, ports, millisecond
/// budgets) under the same strict grammar as [`parse_threads`]: trimmed
/// ASCII whitespace, plain decimal digits only, overflow rejected.
/// Unlike worker counts, `0` is a legal value — "no delay" and "retry
/// forever disabled" are real configurations.
///
/// # Examples
///
/// ```
/// assert_eq!(lppa_par::parse_count(Some(" 250 ")), Some(250));
/// assert_eq!(lppa_par::parse_count(Some("0")), Some(0));
/// assert_eq!(lppa_par::parse_count(Some("+1")), None);
/// assert_eq!(lppa_par::parse_count(Some("")), None);
/// assert_eq!(lppa_par::parse_count(Some("99999999999999999999999")), None);
/// ```
pub fn parse_count(value: Option<&str>) -> Option<u64> {
    let v = value?.trim();
    if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    v.parse::<u64>().ok()
}

/// Parses a probability knob in `[0, 1]` under the strict grammar:
/// trimmed ASCII whitespace, then plain decimal digits with at most one
/// interior `.`. Signs, exponents (`1e-3`), hex, `.5`/`1.` forms and
/// values above 1 are all rejected — an invalid rate must fall back to
/// the caller's default, never silently clamp.
///
/// # Examples
///
/// ```
/// assert_eq!(lppa_par::parse_rate(Some("0.25")), Some(0.25));
/// assert_eq!(lppa_par::parse_rate(Some(" 1 ")), Some(1.0));
/// assert_eq!(lppa_par::parse_rate(Some("+0.5")), None);
/// assert_eq!(lppa_par::parse_rate(Some("1e-3")), None);
/// assert_eq!(lppa_par::parse_rate(Some("1.5")), None);
/// ```
pub fn parse_rate(value: Option<&str>) -> Option<f64> {
    let v = value?.trim();
    let (int, frac) = match v.split_once('.') {
        Some((i, f)) => (i, f),
        None => (v, "0"),
    };
    let digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
    if !digits(int) || !digits(frac) {
        return None;
    }
    // All-digit integer and fraction parts make `f64::from_str` total
    // and exact enough; the range check is what matters.
    v.parse::<f64>().ok().filter(|r| (0.0..=1.0).contains(r))
}

/// Parses a boolean knob: exactly `0` (off) or `1` (on) after trimming.
/// `true`/`yes`/`on` spellings are rejected — one spelling per knob.
///
/// # Examples
///
/// ```
/// assert_eq!(lppa_par::parse_flag(Some("1")), Some(true));
/// assert_eq!(lppa_par::parse_flag(Some(" 0\n")), Some(false));
/// assert_eq!(lppa_par::parse_flag(Some("true")), None);
/// assert_eq!(lppa_par::parse_flag(Some("")), None);
/// ```
pub fn parse_flag(value: Option<&str>) -> Option<bool> {
    match value?.trim() {
        "0" => Some(false),
        "1" => Some(true),
        _ => None,
    }
}

/// The number of worker threads the primitives in this crate use.
///
/// `LPPA_THREADS` if set to a positive integer, else
/// [`std::thread::available_parallelism`] (1 if even that is unknown).
/// Cached after the first call.
pub fn thread_count() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        parse_threads(std::env::var(THREADS_ENV).ok().as_deref())
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Maps `f` over `items` in parallel; the result order matches the
/// input order regardless of thread count or scheduling.
///
/// Panics in `f` propagate to the caller (via the scoped-thread join).
///
/// # Examples
///
/// ```
/// let lens = lppa_par::par_map(&["a", "bcd", ""], |s| s.len());
/// assert_eq!(lens, [1, 3, 0]);
/// ```
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_aligned(items, 1, f)
}

/// [`par_map`] with the chunk size rounded up to a multiple of `align`.
///
/// Per-item work that feeds a lane-batched kernel (e.g. the multi-lane
/// SHA-256 tag path, where `align` is `lppa_crypto::lanes::lane_width()`)
/// wastes lanes at every chunk boundary; aligning the chunk size keeps
/// every chunk except the last a whole number of kernel passes. `align`
/// of 0 or 1 degenerates to plain [`par_map`]. The output is identical
/// for every `align`, thread count and schedule — alignment only moves
/// chunk boundaries, never results.
///
/// # Examples
///
/// ```
/// let doubled = lppa_par::par_map_aligned(&[1u8, 2, 3, 4, 5], 4, |&x| x * 2);
/// assert_eq!(doubled, [2, 4, 6, 8, 10]);
/// ```
pub fn par_map_aligned<T, R, F>(items: &[T], align: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = thread_count();
    // Aim for several chunks per worker for load balance, but never
    // more chunks than items.
    let mut chunk_size = items.len().div_ceil(threads * CHUNKS_PER_THREAD).max(1);
    if align > 1 {
        chunk_size = chunk_size.div_ceil(align) * align;
    }
    let per_chunk = par_chunks(items, chunk_size, |_, chunk| chunk.iter().map(&f).collect());
    flatten_in_order(per_chunk)
}

/// [`par_map_aligned`] with a per-chunk staging value: each worker chunk
/// checks one `S` out of `init()` and threads it mutably through every
/// item it maps, so scratch buffers (tag-set pools, prefix staging)
/// amortize across a whole chunk instead of being rebuilt per item.
///
/// `f` must give the same result for any prior state of its stage (the
/// workspace's scratch types guarantee exactly that: pooled buffers are
/// observationally identical to fresh ones), which keeps the output
/// independent of chunk boundaries and thread count, like
/// [`par_map_aligned`].
///
/// # Examples
///
/// ```
/// let out = lppa_par::par_map_staged(&[1u32, 2, 3], 1, Vec::new, |buf: &mut Vec<u32>, &x| {
///     buf.push(x); // per-chunk scratch, reused across the chunk's items
///     x * 2
/// });
/// assert_eq!(out, [2, 4, 6]);
/// ```
pub fn par_map_staged<T, R, S, I, F>(items: &[T], align: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let threads = thread_count();
    let mut chunk_size = items.len().div_ceil(threads * CHUNKS_PER_THREAD).max(1);
    if align > 1 {
        chunk_size = chunk_size.div_ceil(align) * align;
    }
    let per_chunk = par_chunks(items, chunk_size, |_, chunk| {
        let mut stage = init();
        chunk.iter().map(|item| f(&mut stage, item)).collect::<Vec<R>>()
    });
    flatten_in_order(per_chunk)
}

/// Splits `items` into `chunk_size`-sized chunks (the last may be
/// shorter) and maps `f` over them in parallel. `f` receives the chunk
/// index and the chunk; results come back in chunk order.
///
/// Runs inline on the calling thread when a single worker is configured
/// or there is at most one chunk.
///
/// # Panics
///
/// Panics if `chunk_size` is zero, or if `f` panics on any chunk.
///
/// # Examples
///
/// ```
/// let sums = lppa_par::par_chunks(&[1u32, 2, 3, 4, 5], 2, |_, c| {
///     c.iter().sum::<u32>()
/// });
/// assert_eq!(sums, [3, 7, 5]);
/// ```
pub fn par_chunks<T, R, F>(items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let n_chunks = items.len().div_ceil(chunk_size);
    let threads = thread_count().min(n_chunks);
    if threads <= 1 {
        return items.chunks(chunk_size).enumerate().map(|(i, c)| f(i, c)).collect();
    }

    let next_chunk = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next_chunk = &next_chunk;
            let f = &f;
            scope.spawn(move || loop {
                let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let lo = c * chunk_size;
                let hi = (lo + chunk_size).min(items.len());
                // The receiver outlives the scope; send cannot fail
                // unless the main thread already panicked.
                let _ = tx.send((c, f(c, &items[lo..hi])));
            });
        }
    });
    drop(tx);

    // Reassemble in chunk order so the caller sees a deterministic
    // result for every thread count.
    let mut slots: Vec<Option<R>> = (0..n_chunks).map(|_| None).collect();
    for (c, out) in rx {
        slots[c] = Some(out);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(c, slot)| slot.unwrap_or_else(|| panic!("chunk {c} produced no result")))
        .collect()
}

/// Concatenates per-chunk result vectors, preserving chunk order.
fn flatten_in_order<R>(per_chunk: Vec<Vec<R>>) -> Vec<R> {
    let total = per_chunk.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for chunk in per_chunk {
        out.extend(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        assert_eq!(par_map(&items, |&x| x * 3 + 1), expected);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[42u32], |&x| x + 1), [43]);
    }

    #[test]
    fn aligned_map_matches_plain_map_for_every_alignment() {
        let items: Vec<u64> = (0..333).collect();
        let expected: Vec<u64> = items.iter().map(|x| x ^ 0x55).collect();
        for align in [0usize, 1, 4, 8, 64, 1000] {
            assert_eq!(par_map_aligned(&items, align, |&x| x ^ 0x55), expected, "align={align}");
        }
    }

    #[test]
    fn par_chunks_covers_every_item_exactly_once() {
        let items: Vec<usize> = (0..97).collect();
        for chunk_size in [1usize, 2, 7, 50, 97, 200] {
            let chunks = par_chunks(&items, chunk_size, |_, c| c.to_vec());
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, items, "chunk_size={chunk_size}");
        }
    }

    #[test]
    fn par_chunks_passes_consistent_chunk_indices() {
        let items: Vec<usize> = (0..40).collect();
        let indexed = par_chunks(&items, 7, |i, c| (i, c[0]));
        for (position, (index, first)) in indexed.iter().enumerate() {
            assert_eq!(*index, position);
            assert_eq!(*first, position * 7);
        }
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_panics() {
        par_chunks(&[1u8], 0, |_, c| c.len());
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 2 ")), Some(2));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("-1")), None);
        assert_eq!(parse_threads(Some("many")), None);
        assert_eq!(parse_threads(None), None);
    }

    #[test]
    fn parse_threads_handles_whitespace_consistently() {
        // Surrounding whitespace of any common kind is trimmed...
        assert_eq!(parse_threads(Some("\t8\n")), Some(8));
        assert_eq!(parse_threads(Some("  16")), Some(16));
        // ...but whitespace-only and embedded whitespace are invalid.
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("   ")), None);
        assert_eq!(parse_threads(Some("1 6")), None);
    }

    #[test]
    fn parse_threads_rejects_signs_overflow_and_radix_tricks() {
        // `usize::from_str` would accept "+4"; the strict grammar does not.
        assert_eq!(parse_threads(Some("+4")), None);
        assert_eq!(parse_threads(Some("-0")), None);
        // One past usize::MAX and an absurdly long digit string.
        assert_eq!(parse_threads(Some("18446744073709551616")), None);
        assert_eq!(parse_threads(Some(&"9".repeat(80))), None);
        assert_eq!(parse_threads(Some("0x8")), None);
        assert_eq!(parse_threads(Some("4.0")), None);
    }

    #[test]
    fn parse_threads_clamps_to_max_workers() {
        assert_eq!(parse_threads(Some("100000")), Some(MAX_WORKERS));
        assert_eq!(parse_threads(Some(&MAX_WORKERS.to_string())), Some(MAX_WORKERS));
        assert_eq!(parse_threads(Some("511")), Some(511));
    }

    #[test]
    fn parse_count_is_strict_but_allows_zero() {
        assert_eq!(parse_count(Some("0")), Some(0));
        assert_eq!(parse_count(Some(" 42\t")), Some(42));
        assert_eq!(parse_count(Some("18446744073709551615")), Some(u64::MAX));
        for bad in ["", "   ", "+1", "-1", "1 2", "0x10", "1.0", "18446744073709551616"] {
            assert_eq!(parse_count(Some(bad)), None, "{bad:?}");
        }
        assert_eq!(parse_count(None), None);
    }

    #[test]
    fn parse_rate_accepts_unit_interval_decimals_only() {
        assert_eq!(parse_rate(Some("0")), Some(0.0));
        assert_eq!(parse_rate(Some("1")), Some(1.0));
        assert_eq!(parse_rate(Some("0.25")), Some(0.25));
        assert_eq!(parse_rate(Some(" 0.5 ")), Some(0.5));
        assert_eq!(parse_rate(Some("1.0")), Some(1.0));
        assert_eq!(parse_rate(Some("1.000")), Some(1.0));
        for bad in [
            "", "  ", "+0.5", "-0.5", ".5", "1.", "1e-3", "1E0", "2", "1.01", "0.2.3", "0x1", "NaN",
        ] {
            assert_eq!(parse_rate(Some(bad)), None, "{bad:?}");
        }
        assert_eq!(parse_rate(None), None);
    }

    #[test]
    fn parse_flag_is_binary() {
        assert_eq!(parse_flag(Some("1")), Some(true));
        assert_eq!(parse_flag(Some(" 0 ")), Some(false));
        for bad in ["", " ", "true", "false", "yes", "on", "2", "01", "+1"] {
            assert_eq!(parse_flag(Some(bad)), None, "{bad:?}");
        }
        assert_eq!(parse_flag(None), None);
    }

    #[test]
    fn thread_count_is_at_least_one_and_stable() {
        let first = thread_count();
        assert!(first >= 1);
        assert_eq!(thread_count(), first);
    }

    #[test]
    fn results_match_sequential_reference_under_any_schedule() {
        // Large enough to exercise multi-chunk scheduling when the
        // suite runs with LPPA_THREADS > 1.
        let items: Vec<u64> = (0..5000).map(|i| i * 2654435761 % 1013).collect();
        let sequential: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 0xabcd).collect();
        assert_eq!(par_map(&items, |&x| x.wrapping_mul(x) ^ 0xabcd), sequential);
    }
}
