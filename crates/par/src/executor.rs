//! A persistent work-stealing executor.
//!
//! [`par_map`](crate::par_map) and friends are fork-join primitives:
//! they spawn scoped workers, drain one batch and join. That is the
//! right shape for a single hot loop, but a long-lived service driving
//! thousands of concurrent auction rounds cannot afford a thread
//! spawn/join cycle per batch. [`Executor`] keeps a fixed pool of
//! workers alive for the lifetime of the service and schedules
//! heterogeneous tasks onto them:
//!
//! * **per-worker deques + a global injector** — [`Executor::spawn`]
//!   pushes to the injector; [`Executor::spawn_on`] pushes to a specific
//!   worker's deque for affinity (the service pins each shard's tasks to
//!   `shard % workers` so a shard's state stays warm in one core's
//!   cache). A worker pops its own deque first (FIFO, preserving a
//!   shard's task order), then the injector, then *steals* from sibling
//!   deques — an idle worker never waits while queued work exists;
//! * **panic isolation** — a panicking task is caught, counted and
//!   dropped; the worker survives and sibling tasks are unaffected. The
//!   caller polls [`Executor::panicked`] to turn lost tasks into a
//!   per-shard failure instead of a poisoned process;
//! * **graceful shutdown** — [`Executor::shutdown`] stops accepting new
//!   tasks, drains everything already queued, then joins the workers.
//!   It is idempotent: a second call (or a call racing `Drop`) is a
//!   no-op.
//!
//! Determinism contract: the executor never reorders *results* because
//! it never owns any — tasks communicate through their own captured
//! state, and the service layer assembles per-area outputs by area id.
//! Scheduling (worker count, stealing, affinity) only affects timing,
//! which is why service outcomes are bit-identical for every
//! `LPPA_THREADS`/`LPPA_SHARDS` setting.
//!
//! # Examples
//!
//! ```
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let pool = lppa_par::Executor::new(4);
//! let hits = Arc::new(AtomicUsize::new(0));
//! for _ in 0..64 {
//!     let hits = Arc::clone(&hits);
//!     pool.spawn(move || {
//!         hits.fetch_add(1, Ordering::Relaxed);
//!     });
//! }
//! pool.wait_idle();
//! assert_eq!(hits.load(Ordering::Relaxed), 64);
//! pool.shutdown();
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// How long an idle worker parks before re-checking the queues. The
/// condvar is always notified on submission, so the timeout is purely a
/// lost-wakeup backstop — it bounds shutdown latency, not throughput.
const PARK_TIMEOUT: Duration = Duration::from_millis(20);

/// State shared between the handle and the workers.
struct Shared {
    /// Global injector queue: tasks with no placement preference.
    injector: Mutex<VecDeque<Job>>,
    /// One deque per worker; `spawn_on(w, …)` targets `deques[w]`, and
    /// workers steal from siblings' fronts when local + injector are dry.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Tasks submitted but not yet finished (queued or running).
    pending: AtomicUsize,
    /// Tasks whose closure panicked (isolated, not propagated).
    panicked: AtomicUsize,
    /// Tasks run to completion (including panicked ones).
    completed: AtomicUsize,
    /// Set once by `shutdown`; workers exit when they see it *and* all
    /// queues are drained.
    stopping: AtomicBool,
    /// Pairs with `sleep_cv` (worker parking) and `idle_cv`
    /// (`wait_idle` blocking). Guards nothing by itself — the queues
    /// have their own locks — it exists so the condvars have a mutex.
    coord: Mutex<()>,
    /// Notified whenever work is submitted or shutdown begins.
    sleep_cv: Condvar,
    /// Notified whenever `pending` reaches zero.
    idle_cv: Condvar,
}

impl Shared {
    /// Claims the next job for worker `me`: own deque, then the
    /// injector, then stealing from siblings (starting after `me` so
    /// steal pressure spreads instead of piling on worker 0).
    fn claim(&self, me: usize) -> Option<Job> {
        if let Some(job) = self.deques[me].lock().expect("deque lock").pop_front() {
            return Some(job);
        }
        if let Some(job) = self.injector.lock().expect("injector lock").pop_front() {
            return Some(job);
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (me + offset) % n;
            if let Some(job) = self.deques[victim].lock().expect("deque lock").pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Whether any queue still holds unclaimed work.
    fn queues_empty(&self) -> bool {
        self.injector.lock().expect("injector lock").is_empty()
            && self.deques.iter().all(|d| d.lock().expect("deque lock").is_empty())
    }

    fn run_job(&self, job: Job) {
        // A panicking task must not take its worker (or siblings on the
        // same worker) down with it: catch, count, continue. The boxed
        // closure owns its captures, so resuming after the catch cannot
        // observe broken invariants of *ours*; the caller's shared state
        // is its own responsibility (same contract as `thread::spawn`).
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            self.panicked.fetch_add(1, Ordering::Relaxed);
        }
        self.completed.fetch_add(1, Ordering::Relaxed);
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.coord.lock().expect("coord lock");
            self.idle_cv.notify_all();
        }
    }

    /// The worker main loop.
    fn work(&self, me: usize) {
        loop {
            if let Some(job) = self.claim(me) {
                self.run_job(job);
                continue;
            }
            if self.stopping.load(Ordering::Acquire) && self.queues_empty() {
                return;
            }
            let guard = self.coord.lock().expect("coord lock");
            // Re-check under the coordination lock: a submission between
            // the failed claim and this park would otherwise be missed
            // until the timeout.
            if !self.queues_empty() || self.stopping.load(Ordering::Acquire) {
                continue;
            }
            let _ = self.sleep_cv.wait_timeout(guard, PARK_TIMEOUT).expect("park");
        }
    }
}

/// A persistent pool of worker threads with per-worker deques, a global
/// injector and sibling stealing. See the [module docs](self).
pub struct Executor {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Latched by the first `shutdown` call; later calls are no-ops.
    shut: AtomicBool,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.worker_count())
            .field("pending", &self.shared.pending.load(Ordering::Relaxed))
            .field("completed", &self.completed())
            .field("panicked", &self.panicked())
            .field("shut_down", &self.is_shut_down())
            .finish()
    }
}

impl Executor {
    /// Spawns a pool of `threads` workers (clamped to
    /// `[1, MAX_WORKERS]`).
    pub fn new(threads: usize) -> Self {
        let threads = threads.clamp(1, crate::MAX_WORKERS);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            panicked: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            stopping: AtomicBool::new(false),
            coord: Mutex::new(()),
            sleep_cv: Condvar::new(),
            idle_cv: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lppa-exec-{me}"))
                    .spawn(move || shared.work(me))
                    .expect("spawn executor worker")
            })
            .collect();
        Self { shared, workers: Mutex::new(workers), shut: AtomicBool::new(false) }
    }

    /// A pool sized from the `LPPA_THREADS` environment (the same
    /// [`thread_count`](crate::thread_count) the fork-join primitives
    /// use).
    pub fn from_env() -> Self {
        Self::new(crate::thread_count())
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.shared.deques.len()
    }

    /// Submits `job` to the global injector. Returns `false` (dropping
    /// the job) if the executor is shutting down.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, job: F) -> bool {
        self.submit(None, Box::new(job))
    }

    /// Submits `job` to worker `worker % worker_count()`'s own deque.
    ///
    /// Affinity is a scheduling hint, not an exclusivity guarantee: an
    /// idle sibling may steal the task. Tasks spawned on the same worker
    /// are *queued* FIFO, but because a steal can run one while the next
    /// is claimed by the owner, mutual exclusion between them must come
    /// from the state they share (the service locks its shard state).
    ///
    /// Returns `false` (dropping the job) if the executor is shutting
    /// down.
    pub fn spawn_on<F: FnOnce() + Send + 'static>(&self, worker: usize, job: F) -> bool {
        self.submit(Some(worker % self.worker_count()), Box::new(job))
    }

    fn submit(&self, target: Option<usize>, job: Job) -> bool {
        if self.shared.stopping.load(Ordering::Acquire) {
            return false;
        }
        // Count before queueing so `wait_idle` can never observe the
        // queue-empty/pending-zero window mid-submission.
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        match target {
            Some(w) => self.shared.deques[w].lock().expect("deque lock").push_back(job),
            None => self.shared.injector.lock().expect("injector lock").push_back(job),
        }
        let _guard = self.shared.coord.lock().expect("coord lock");
        self.shared.sleep_cv.notify_all();
        true
    }

    /// Blocks until every submitted task has finished (the pool is
    /// quiescent). New tasks may be submitted afterwards; the service's
    /// epoch loop alternates `spawn*` waves with `wait_idle` barriers.
    pub fn wait_idle(&self) {
        let mut guard = self.shared.coord.lock().expect("coord lock");
        while self.shared.pending.load(Ordering::Acquire) > 0 {
            let (g, _) = self.shared.idle_cv.wait_timeout(guard, PARK_TIMEOUT).expect("wait idle");
            guard = g;
        }
    }

    /// Tasks run to completion so far (panicked ones included).
    pub fn completed(&self) -> usize {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// Tasks whose closure panicked. The panics were isolated — workers
    /// and sibling tasks kept running — but the tasks did not finish
    /// their work; a service maps them back to failed shards.
    pub fn panicked(&self) -> usize {
        self.shared.panicked.load(Ordering::Relaxed)
    }

    /// Whether `shutdown` has completed.
    pub fn is_shut_down(&self) -> bool {
        self.shut.load(Ordering::Acquire)
    }

    /// Graceful shutdown: rejects new submissions, drains all queued
    /// work, then joins every worker. Idempotent — the second and later
    /// calls return immediately — and safe to race with `Drop`.
    pub fn shutdown(&self) {
        // `stopping` gates submissions; workers exit once it is set and
        // the queues are empty, so everything queued before this line
        // still runs ("graceful").
        self.shared.stopping.store(true, Ordering::Release);
        {
            let _guard = self.shared.coord.lock().expect("coord lock");
            self.shared.sleep_cv.notify_all();
        }
        if self.shut.swap(true, Ordering::AcqRel) {
            return; // someone already joined (or is joining) the workers
        }
        let workers = std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for handle in workers {
            // Worker threads never panic out of their loop (jobs are
            // caught), so join failure means the runtime itself is
            // broken — propagate.
            handle.join().expect("executor worker panicked outside a task");
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn spawn_on_prefers_the_target_worker() {
        // With a single worker, affinity and the injector collapse to
        // the same FIFO — tasks run in submission order.
        let pool = Executor::new(1);
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..8 {
            let log = Arc::clone(&log);
            assert!(pool.spawn_on(3, move || log.lock().unwrap().push(i)));
        }
        pool.wait_idle();
        assert_eq!(*log.lock().unwrap(), (0..8).collect::<Vec<_>>());
        pool.shutdown();
    }

    #[test]
    fn stealing_drains_an_overloaded_worker() {
        let pool = Executor::new(4);
        let hits = Arc::new(AtomicUsize::new(0));
        // Everything lands on worker 0's deque; siblings must steal.
        for _ in 0..64 {
            let hits = Arc::clone(&hits);
            pool.spawn_on(0, move || {
                std::thread::sleep(Duration::from_micros(200));
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 64);
        assert_eq!(pool.completed(), 64);
        pool.shutdown();
    }

    #[test]
    fn wait_idle_on_empty_pool_returns_immediately() {
        let pool = Executor::new(2);
        pool.wait_idle();
        assert_eq!(pool.completed(), 0);
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(Executor::new(0).worker_count(), 1);
        assert_eq!(Executor::new(usize::MAX).worker_count(), crate::MAX_WORKERS);
    }
}
