//! Lifecycle tests for the persistent work-stealing [`Executor`]:
//! graceful shutdown with queued work, panic-in-task isolation, and
//! shutdown idempotence — the failure modes a long-lived service layer
//! actually hits.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use lppa_par::Executor;

#[test]
fn shutdown_drains_queued_work_before_joining() {
    // Queue far more slow tasks than workers and shut down immediately:
    // graceful shutdown must run every queued task, not drop the
    // backlog on the floor.
    let pool = Executor::new(2);
    let done = Arc::new(AtomicUsize::new(0));
    for _ in 0..40 {
        let done = Arc::clone(&done);
        assert!(pool.spawn(move || {
            std::thread::sleep(Duration::from_millis(1));
            done.fetch_add(1, Ordering::Relaxed);
        }));
    }
    pool.shutdown();
    assert_eq!(done.load(Ordering::Relaxed), 40, "queued work was dropped by shutdown");
    assert_eq!(pool.completed(), 40);
    assert!(pool.is_shut_down());
}

#[test]
fn shutdown_drains_affinity_deques_too() {
    // Same contract for spawn_on: per-worker deques are part of the
    // graceful drain, including deques of workers other than the one
    // that happens to see `stopping` first.
    let pool = Executor::new(3);
    let done = Arc::new(AtomicUsize::new(0));
    for shard in 0..30 {
        let done = Arc::clone(&done);
        assert!(pool.spawn_on(shard, move || {
            done.fetch_add(1, Ordering::Relaxed);
        }));
    }
    pool.shutdown();
    assert_eq!(done.load(Ordering::Relaxed), 30);
}

#[test]
fn panic_in_task_does_not_poison_siblings() {
    // One shard's panic must not take down the worker or any sibling
    // shard's tasks: every non-panicking task still completes, the
    // panic count is reported, and the pool stays usable afterwards.
    let pool = Executor::new(3);
    let survivors = Arc::new(AtomicUsize::new(0));
    for i in 0..30 {
        let survivors = Arc::clone(&survivors);
        pool.spawn_on(i % 3, move || {
            if i % 5 == 0 {
                panic!("shard {i} blew up");
            }
            survivors.fetch_add(1, Ordering::Relaxed);
        });
    }
    pool.wait_idle();
    assert_eq!(survivors.load(Ordering::Relaxed), 24);
    assert_eq!(pool.panicked(), 6);
    assert_eq!(pool.completed(), 30);

    // The workers survived: the pool still executes new work.
    let after = Arc::new(AtomicUsize::new(0));
    for _ in 0..10 {
        let after = Arc::clone(&after);
        assert!(pool.spawn(move || {
            after.fetch_add(1, Ordering::Relaxed);
        }));
    }
    pool.wait_idle();
    assert_eq!(after.load(Ordering::Relaxed), 10);
    pool.shutdown();
}

#[test]
fn double_shutdown_is_idempotent() {
    let pool = Executor::new(2);
    let done = Arc::new(AtomicUsize::new(0));
    for _ in 0..8 {
        let done = Arc::clone(&done);
        pool.spawn(move || {
            done.fetch_add(1, Ordering::Relaxed);
        });
    }
    pool.shutdown();
    // The second (and third) call must return immediately without
    // panicking, deadlocking or double-joining.
    pool.shutdown();
    pool.shutdown();
    assert_eq!(done.load(Ordering::Relaxed), 8);
    assert!(pool.is_shut_down());
}

#[test]
fn concurrent_shutdown_calls_do_not_race() {
    // Two threads racing to shut the same pool down: exactly one joins
    // the workers, both return, all queued work still runs.
    let pool = Arc::new(Executor::new(2));
    let done = Arc::new(AtomicUsize::new(0));
    for _ in 0..20 {
        let done = Arc::clone(&done);
        pool.spawn(move || {
            std::thread::sleep(Duration::from_micros(500));
            done.fetch_add(1, Ordering::Relaxed);
        });
    }
    let racers: Vec<_> = (0..2)
        .map(|_| {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.shutdown())
        })
        .collect();
    for racer in racers {
        racer.join().unwrap();
    }
    assert_eq!(done.load(Ordering::Relaxed), 20);
    assert!(pool.is_shut_down());
}

#[test]
fn spawn_after_shutdown_is_rejected() {
    let pool = Executor::new(1);
    pool.shutdown();
    let ran = Arc::new(AtomicUsize::new(0));
    let ran2 = Arc::clone(&ran);
    assert!(!pool.spawn(move || {
        ran2.fetch_add(1, Ordering::Relaxed);
    }));
    let ran3 = Arc::clone(&ran);
    assert!(!pool.spawn_on(0, move || {
        ran3.fetch_add(1, Ordering::Relaxed);
    }));
    assert_eq!(ran.load(Ordering::Relaxed), 0);
    assert_eq!(pool.completed(), 0);
}

#[test]
fn drop_without_shutdown_drains_gracefully() {
    let done = Arc::new(AtomicUsize::new(0));
    {
        let pool = Executor::new(2);
        for _ in 0..16 {
            let done = Arc::clone(&done);
            pool.spawn(move || {
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        // `pool` dropped here: Drop delegates to shutdown.
    }
    assert_eq!(done.load(Ordering::Relaxed), 16);
}

#[test]
fn wait_idle_then_more_work_then_shutdown() {
    // The epoch-loop usage pattern: waves of tasks separated by
    // wait_idle barriers, then one final drain.
    let pool = Executor::new(4);
    let log = Arc::new(Mutex::new(Vec::new()));
    for wave in 0..3 {
        for i in 0..12 {
            let log = Arc::clone(&log);
            pool.spawn_on(i, move || log.lock().unwrap().push(wave));
        }
        pool.wait_idle();
    }
    pool.shutdown();
    let log = log.lock().unwrap();
    assert_eq!(log.len(), 36);
    // The barrier held: wave values are non-decreasing in log order.
    assert!(log.windows(2).all(|w| w[0] <= w[1]), "waves interleaved: {log:?}");
}
