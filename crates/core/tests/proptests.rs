//! Property-based tests of the LPPA protocol layers: transform
//! round-trips, masked comparisons, conflict construction and charging.
//!
//! Run with the in-tree harness: each property draws its inputs from a
//! seeded RNG; failures print the exact reproduction seed (see
//! `lppa_rng::testing`).

use lppa::ppbs::bid::AdvancedBidSubmission;
use lppa::ppbs::location::{
    build_conflict_graph, build_conflict_graph_pairwise, LocationSubmission,
};
use lppa::psd::table::MaskedBidTable;
use lppa::ttp::{ChargeDecision, ChargeRequest, Ttp};
use lppa::zero_replace::ZeroReplacePolicy;
use lppa::LppaConfig;
use lppa_auction::bidder::{BidderId, Location};
use lppa_rng::testing::check;
use lppa_rng::{Rng, StdRng};
use lppa_spectrum::ChannelId;

/// Generator: a valid protocol configuration (re-draws until the
/// sampled parameters validate).
fn config(rng: &mut StdRng) -> LppaConfig {
    loop {
        let loc_bits = rng.gen_range(4u8..=8);
        let bid_bits = rng.gen_range(4u8..=8);
        let lambda = rng.gen_range(1u32..5).min((1u32 << loc_bits) / 4).max(1);
        let rd = rng.gen_range(0u32..12);
        let cr = rng.gen_range(1u32..5);
        let candidate = LppaConfig { loc_bits, bid_bits, lambda, rd, cr };
        if candidate.validate().is_ok() {
            return candidate;
        }
    }
}

/// Offset + cr transform always decodes back to the raw bid.
#[test]
fn transform_roundtrip() {
    check("transform_roundtrip", |rng| {
        let config = config(rng);
        let raw = rng.gen_range(1..=config.bid_max());
        let offset = config.offset_bid(raw);
        let slot = rng.gen_range(0..config.cr);
        let transformed = config.cr * offset + slot;
        assert!(transformed <= config.transformed_max());
        let decoded = config.decode_transformed(transformed);
        assert!(!config.is_zero_price(decoded));
        assert_eq!(config.decode_offset(decoded), raw);
    });
}

/// Zero-band values always decode to zero and are always flagged.
#[test]
fn zero_band_roundtrip() {
    check("zero_band_roundtrip", |rng| {
        let config = config(rng);
        let z = rng.gen_range(0..=config.rd);
        let slot = rng.gen_range(0..config.cr);
        let transformed = config.cr * z + slot;
        let decoded = config.decode_transformed(transformed);
        assert!(config.is_zero_price(decoded));
        assert_eq!(config.decode_offset(decoded), 0);
    });
}

/// Masked bid comparisons agree with plaintext for arbitrary bids.
#[test]
fn masked_comparison_matches_plaintext() {
    check("masked_comparison_matches_plaintext", |rng| {
        let a = rng.gen_range(0u32..=127);
        let b = rng.gen_range(0u32..=127);
        let config = LppaConfig::default();
        let ttp = Ttp::new(1, config, rng).unwrap();
        let policy = ZeroReplacePolicy::never(config.bid_max());
        let sa =
            AdvancedBidSubmission::build(&[a], ttp.bidder_keys(), &config, &policy, rng).unwrap();
        let sb =
            AdvancedBidSubmission::build(&[b], ttp.bidder_keys(), &config, &policy, rng).unwrap();
        let ge = sa.bids()[0].point.in_range(&sb.bids()[0].range);
        if a > b {
            assert!(ge, "{a} vs {b}");
        } else if a < b {
            assert!(!ge, "{a} vs {b}");
        }
        // Equal values may order either way (random cr slots), but the
        // relation must stay antisymmetric-or-tie with the reverse test.
        let le = sb.bids()[0].point.in_range(&sa.bids()[0].range);
        assert!(ge || le, "comparison must be total");
    });
}

/// Masked conflict tests agree with the coordinate predicate for
/// arbitrary locations and λ.
#[test]
fn masked_conflicts_match_predicate() {
    check("masked_conflicts_match_predicate", |rng| {
        let lambda = rng.gen_range(1u32..8);
        let config = LppaConfig { lambda, ..LppaConfig::default() };
        if config.validate().is_err() {
            return;
        }
        let a = Location::new(rng.gen_range(0u32..=127), rng.gen_range(0u32..=127));
        let b = Location::new(rng.gen_range(0u32..=127), rng.gen_range(0u32..=127));
        let ttp = Ttp::new(1, config, rng).unwrap();
        let sa = LocationSubmission::build(a, &ttp.bidder_keys().g0, &config, rng).unwrap();
        let sb = LocationSubmission::build(b, &ttp.bidder_keys().g0, &config, rng).unwrap();
        assert_eq!(sa.conflicts_with(&sb), a.conflicts_with(&b, lambda));
        assert_eq!(sb.conflicts_with(&sa), a.conflicts_with(&b, lambda));
    });
}

/// The inverted-index conflict graph is identical to the pairwise
/// reference for arbitrary bidder sets — including the degenerate
/// 0- and 1-bidder graphs and the fully-colliding case where every
/// bidder shares one location (maximal owner lists, complete graph).
#[test]
fn indexed_conflict_graph_equals_pairwise() {
    check("indexed_conflict_graph_equals_pairwise", |rng| {
        let config = LppaConfig::default();
        let ttp = Ttp::new(1, config, rng).unwrap();
        let g0 = &ttp.bidder_keys().g0;
        let n = rng.gen_range(0usize..=24);
        let colliding = rng.gen_bool(0.2);
        let base = Location::new(rng.gen_range(0..=127), rng.gen_range(0..=127));
        let submissions: Vec<LocationSubmission> = (0..n)
            .map(|_| {
                let loc = if colliding {
                    base
                } else {
                    Location::new(rng.gen_range(0..=127), rng.gen_range(0..=127))
                };
                LocationSubmission::build(loc, g0, &config, rng).unwrap()
            })
            .collect();
        assert_eq!(
            build_conflict_graph(&submissions),
            build_conflict_graph_pairwise(&submissions),
            "n={n} colliding={colliding}"
        );
    });
}

/// The index-probed winner set equals the linear-scan reference for
/// arbitrary tables and candidate subsets — including single-bidder
/// candidate sets and padded ranges carrying disguised zeros.
#[test]
fn indexed_maxima_equals_linear_scan() {
    check("indexed_maxima_equals_linear_scan", |rng| {
        let config = LppaConfig::default();
        let k = rng.gen_range(1usize..=3);
        let ttp = Ttp::new(k, config, rng).unwrap();
        // A random disguise rate exercises ranges whose presented value
        // is a fake positive while the sealed price is zero.
        let policy = ZeroReplacePolicy::uniform(rng.gen_range(0.0..=1.0), config.bid_max());
        let n = rng.gen_range(1usize..=16);
        let submissions: Vec<AdvancedBidSubmission> = (0..n)
            .map(|_| {
                let bids: Vec<u32> =
                    (0..k)
                        .map(|_| {
                            if rng.gen_bool(0.4) {
                                0
                            } else {
                                rng.gen_range(1..=config.bid_max())
                            }
                        })
                        .collect();
                AdvancedBidSubmission::build(&bids, ttp.bidder_keys(), &config, &policy, rng)
                    .unwrap()
            })
            .collect();
        let table = MaskedBidTable::collect(submissions).unwrap();
        for ch in 0..k {
            let mut candidates: Vec<BidderId> =
                (0..n).filter(|_| rng.gen_bool(0.7)).map(BidderId).collect();
            if candidates.is_empty() {
                candidates.push(BidderId(rng.gen_range(0..n)));
            }
            assert_eq!(
                table.maxima_indexed(ChannelId(ch), &candidates),
                table.maxima_linear(ChannelId(ch), &candidates),
                "ch={ch} candidates={candidates:?}"
            );
        }
    });
}

/// The TTP always reconstructs the exact raw price from a genuine
/// submission, and flags every genuine zero as invalid.
#[test]
fn charging_recovers_raw_prices() {
    check("charging_recovers_raw_prices", |rng| {
        let raw = rng.gen_range(0u32..=127);
        let config = LppaConfig::default();
        let ttp = Ttp::new(1, config, rng).unwrap();
        let policy = ZeroReplacePolicy::never(config.bid_max());
        let sub =
            AdvancedBidSubmission::build(&[raw], ttp.bidder_keys(), &config, &policy, rng).unwrap();
        let request = ChargeRequest {
            channel: lppa_spectrum::ChannelId(0),
            sealed: sub.bids()[0].sealed.clone(),
            point: sub.bids()[0].point.clone(),
        };
        let decision = ttp.open_charge(&request).unwrap();
        if raw == 0 {
            assert_eq!(decision, ChargeDecision::InvalidZero);
        } else {
            assert_eq!(decision, ChargeDecision::Valid { raw_price: raw });
        }
    });
}

/// Disguised zeros are always detected at charging, whatever the
/// disguise distribution.
#[test]
fn disguised_zeros_never_charge() {
    check("disguised_zeros_never_charge", |rng| {
        let replace = rng.gen_range(0.5f64..1.0);
        let config = LppaConfig::default();
        let ttp = Ttp::new(1, config, rng).unwrap();
        let policy = ZeroReplacePolicy::uniform(replace, config.bid_max());
        let sub =
            AdvancedBidSubmission::build(&[0], ttp.bidder_keys(), &config, &policy, rng).unwrap();
        let request = ChargeRequest {
            channel: lppa_spectrum::ChannelId(0),
            sealed: sub.bids()[0].sealed.clone(),
            point: sub.bids()[0].point.clone(),
        };
        assert_eq!(ttp.open_charge(&request).unwrap(), ChargeDecision::InvalidZero);
    });
}

/// Zero-replacement sampling stays within the declared support and
/// respects the stay-zero probability approximately.
#[test]
fn policy_sampling_support() {
    check("policy_sampling_support", |rng| {
        let replace = rng.gen_range(0.0f64..=1.0);
        let decay = rng.gen_range(0.1f64..=1.0);
        let policy = ZeroReplacePolicy::geometric(replace, decay, 31);
        for _ in 0..50 {
            if let Some(t) = policy.sample(rng) {
                assert!((1..=31).contains(&t));
            }
        }
    });
}
