//! Property-based tests of the LPPA protocol layers: transform
//! round-trips, masked comparisons, conflict construction and charging.
//!
//! Run with the in-tree harness: each property draws its inputs from a
//! seeded RNG; failures print the exact reproduction seed (see
//! `lppa_rng::testing`).

use lppa::ppbs::bid::AdvancedBidSubmission;
use lppa::ppbs::location::LocationSubmission;
use lppa::ttp::{ChargeDecision, ChargeRequest, Ttp};
use lppa::zero_replace::ZeroReplacePolicy;
use lppa::LppaConfig;
use lppa_auction::bidder::Location;
use lppa_rng::testing::check;
use lppa_rng::{Rng, StdRng};

/// Generator: a valid protocol configuration (re-draws until the
/// sampled parameters validate).
fn config(rng: &mut StdRng) -> LppaConfig {
    loop {
        let loc_bits = rng.gen_range(4u8..=8);
        let bid_bits = rng.gen_range(4u8..=8);
        let lambda = rng.gen_range(1u32..5).min((1u32 << loc_bits) / 4).max(1);
        let rd = rng.gen_range(0u32..12);
        let cr = rng.gen_range(1u32..5);
        let candidate = LppaConfig { loc_bits, bid_bits, lambda, rd, cr };
        if candidate.validate().is_ok() {
            return candidate;
        }
    }
}

/// Offset + cr transform always decodes back to the raw bid.
#[test]
fn transform_roundtrip() {
    check("transform_roundtrip", |rng| {
        let config = config(rng);
        let raw = rng.gen_range(1..=config.bid_max());
        let offset = config.offset_bid(raw);
        let slot = rng.gen_range(0..config.cr);
        let transformed = config.cr * offset + slot;
        assert!(transformed <= config.transformed_max());
        let decoded = config.decode_transformed(transformed);
        assert!(!config.is_zero_price(decoded));
        assert_eq!(config.decode_offset(decoded), raw);
    });
}

/// Zero-band values always decode to zero and are always flagged.
#[test]
fn zero_band_roundtrip() {
    check("zero_band_roundtrip", |rng| {
        let config = config(rng);
        let z = rng.gen_range(0..=config.rd);
        let slot = rng.gen_range(0..config.cr);
        let transformed = config.cr * z + slot;
        let decoded = config.decode_transformed(transformed);
        assert!(config.is_zero_price(decoded));
        assert_eq!(config.decode_offset(decoded), 0);
    });
}

/// Masked bid comparisons agree with plaintext for arbitrary bids.
#[test]
fn masked_comparison_matches_plaintext() {
    check("masked_comparison_matches_plaintext", |rng| {
        let a = rng.gen_range(0u32..=127);
        let b = rng.gen_range(0u32..=127);
        let config = LppaConfig::default();
        let ttp = Ttp::new(1, config, rng).unwrap();
        let policy = ZeroReplacePolicy::never(config.bid_max());
        let sa =
            AdvancedBidSubmission::build(&[a], ttp.bidder_keys(), &config, &policy, rng).unwrap();
        let sb =
            AdvancedBidSubmission::build(&[b], ttp.bidder_keys(), &config, &policy, rng).unwrap();
        let ge = sa.bids()[0].point.in_range(&sb.bids()[0].range);
        if a > b {
            assert!(ge, "{a} vs {b}");
        } else if a < b {
            assert!(!ge, "{a} vs {b}");
        }
        // Equal values may order either way (random cr slots), but the
        // relation must stay antisymmetric-or-tie with the reverse test.
        let le = sb.bids()[0].point.in_range(&sa.bids()[0].range);
        assert!(ge || le, "comparison must be total");
    });
}

/// Masked conflict tests agree with the coordinate predicate for
/// arbitrary locations and λ.
#[test]
fn masked_conflicts_match_predicate() {
    check("masked_conflicts_match_predicate", |rng| {
        let lambda = rng.gen_range(1u32..8);
        let config = LppaConfig { lambda, ..LppaConfig::default() };
        if config.validate().is_err() {
            return;
        }
        let a = Location::new(rng.gen_range(0u32..=127), rng.gen_range(0u32..=127));
        let b = Location::new(rng.gen_range(0u32..=127), rng.gen_range(0u32..=127));
        let ttp = Ttp::new(1, config, rng).unwrap();
        let sa = LocationSubmission::build(a, &ttp.bidder_keys().g0, &config, rng).unwrap();
        let sb = LocationSubmission::build(b, &ttp.bidder_keys().g0, &config, rng).unwrap();
        assert_eq!(sa.conflicts_with(&sb), a.conflicts_with(&b, lambda));
        assert_eq!(sb.conflicts_with(&sa), a.conflicts_with(&b, lambda));
    });
}

/// The TTP always reconstructs the exact raw price from a genuine
/// submission, and flags every genuine zero as invalid.
#[test]
fn charging_recovers_raw_prices() {
    check("charging_recovers_raw_prices", |rng| {
        let raw = rng.gen_range(0u32..=127);
        let config = LppaConfig::default();
        let ttp = Ttp::new(1, config, rng).unwrap();
        let policy = ZeroReplacePolicy::never(config.bid_max());
        let sub =
            AdvancedBidSubmission::build(&[raw], ttp.bidder_keys(), &config, &policy, rng).unwrap();
        let request = ChargeRequest {
            channel: lppa_spectrum::ChannelId(0),
            sealed: sub.bids()[0].sealed.clone(),
            point: sub.bids()[0].point.clone(),
        };
        let decision = ttp.open_charge(&request).unwrap();
        if raw == 0 {
            assert_eq!(decision, ChargeDecision::InvalidZero);
        } else {
            assert_eq!(decision, ChargeDecision::Valid { raw_price: raw });
        }
    });
}

/// Disguised zeros are always detected at charging, whatever the
/// disguise distribution.
#[test]
fn disguised_zeros_never_charge() {
    check("disguised_zeros_never_charge", |rng| {
        let replace = rng.gen_range(0.5f64..1.0);
        let config = LppaConfig::default();
        let ttp = Ttp::new(1, config, rng).unwrap();
        let policy = ZeroReplacePolicy::uniform(replace, config.bid_max());
        let sub =
            AdvancedBidSubmission::build(&[0], ttp.bidder_keys(), &config, &policy, rng).unwrap();
        let request = ChargeRequest {
            channel: lppa_spectrum::ChannelId(0),
            sealed: sub.bids()[0].sealed.clone(),
            point: sub.bids()[0].point.clone(),
        };
        assert_eq!(ttp.open_charge(&request).unwrap(), ChargeDecision::InvalidZero);
    });
}

/// Zero-replacement sampling stays within the declared support and
/// respects the stay-zero probability approximately.
#[test]
fn policy_sampling_support() {
    check("policy_sampling_support", |rng| {
        let replace = rng.gen_range(0.0f64..=1.0);
        let decay = rng.gen_range(0.1f64..=1.0);
        let policy = ZeroReplacePolicy::geometric(replace, decay, 31);
        for _ in 0..50 {
            if let Some(t) = policy.sample(rng) {
                assert!((1..=31).contains(&t));
            }
        }
    });
}
