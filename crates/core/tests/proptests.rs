//! Property-based tests of the LPPA protocol layers: transform
//! round-trips, masked comparisons, conflict construction and charging.

use lppa::ppbs::bid::AdvancedBidSubmission;
use lppa::ppbs::location::LocationSubmission;
use lppa::ttp::{ChargeDecision, ChargeRequest, Ttp};
use lppa::zero_replace::ZeroReplacePolicy;
use lppa::LppaConfig;
use lppa_auction::bidder::Location;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a valid protocol configuration.
fn config() -> impl Strategy<Value = LppaConfig> {
    (4u8..=8, 4u8..=8, 1u32..5, 0u32..12, 1u32..5).prop_map(
        |(loc_bits, bid_bits, lambda, rd, cr)| {
            let lambda = lambda.min((1u32 << loc_bits) / 4).max(1);
            LppaConfig { loc_bits, bid_bits, lambda, rd, cr }
        },
    )
}

proptest! {
    /// Offset + cr transform always decodes back to the raw bid.
    #[test]
    fn transform_roundtrip(config in config(), raw_frac in 0.0f64..1.0, slot_frac in 0.0f64..1.0) {
        prop_assume!(config.validate().is_ok());
        let raw = 1 + ((config.bid_max() - 1) as f64 * raw_frac) as u32;
        let offset = config.offset_bid(raw);
        let slot = (config.cr as f64 * slot_frac) as u32 % config.cr;
        let transformed = config.cr * offset + slot;
        prop_assert!(transformed <= config.transformed_max());
        let decoded = config.decode_transformed(transformed);
        prop_assert!(!config.is_zero_price(decoded));
        prop_assert_eq!(config.decode_offset(decoded), raw);
    }

    /// Zero-band values always decode to zero and are always flagged.
    #[test]
    fn zero_band_roundtrip(config in config(), z_frac in 0.0f64..1.0, slot_frac in 0.0f64..1.0) {
        prop_assume!(config.validate().is_ok());
        let z = ((config.rd + 1) as f64 * z_frac) as u32 % (config.rd + 1);
        let slot = (config.cr as f64 * slot_frac) as u32 % config.cr;
        let transformed = config.cr * z + slot;
        let decoded = config.decode_transformed(transformed);
        prop_assert!(config.is_zero_price(decoded));
        prop_assert_eq!(config.decode_offset(decoded), 0);
    }

    /// Masked bid comparisons agree with plaintext for arbitrary bids.
    #[test]
    fn masked_comparison_matches_plaintext(
        a in 0u32..=127,
        b in 0u32..=127,
        seed in any::<u64>(),
    ) {
        let config = LppaConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let ttp = Ttp::new(1, config, &mut rng).unwrap();
        let policy = ZeroReplacePolicy::never(config.bid_max());
        let sa = AdvancedBidSubmission::build(&[a], ttp.bidder_keys(), &config, &policy, &mut rng).unwrap();
        let sb = AdvancedBidSubmission::build(&[b], ttp.bidder_keys(), &config, &policy, &mut rng).unwrap();
        let ge = sa.bids()[0].point.in_range(&sb.bids()[0].range);
        if a > b {
            prop_assert!(ge, "{a} vs {b}");
        } else if a < b {
            prop_assert!(!ge, "{a} vs {b}");
        }
        // Equal values may order either way (random cr slots), but the
        // relation must stay antisymmetric-or-tie with the reverse test.
        let le = sb.bids()[0].point.in_range(&sa.bids()[0].range);
        prop_assert!(ge || le, "comparison must be total");
    }

    /// Masked conflict tests agree with the coordinate predicate for
    /// arbitrary locations and λ.
    #[test]
    fn masked_conflicts_match_predicate(
        ax in 0u32..=127, ay in 0u32..=127,
        bx in 0u32..=127, by in 0u32..=127,
        lambda in 1u32..8,
        seed in any::<u64>(),
    ) {
        let config = LppaConfig { lambda, ..LppaConfig::default() };
        prop_assume!(config.validate().is_ok());
        let mut rng = StdRng::seed_from_u64(seed);
        let ttp = Ttp::new(1, config, &mut rng).unwrap();
        let a = Location::new(ax, ay);
        let b = Location::new(bx, by);
        let sa = LocationSubmission::build(a, &ttp.bidder_keys().g0, &config, &mut rng).unwrap();
        let sb = LocationSubmission::build(b, &ttp.bidder_keys().g0, &config, &mut rng).unwrap();
        prop_assert_eq!(sa.conflicts_with(&sb), a.conflicts_with(&b, lambda));
        prop_assert_eq!(sb.conflicts_with(&sa), a.conflicts_with(&b, lambda));
    }

    /// The TTP always reconstructs the exact raw price from a genuine
    /// submission, and flags every genuine zero as invalid.
    #[test]
    fn charging_recovers_raw_prices(raw in 0u32..=127, seed in any::<u64>()) {
        let config = LppaConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let ttp = Ttp::new(1, config, &mut rng).unwrap();
        let policy = ZeroReplacePolicy::never(config.bid_max());
        let sub = AdvancedBidSubmission::build(&[raw], ttp.bidder_keys(), &config, &policy, &mut rng).unwrap();
        let request = ChargeRequest {
            channel: lppa_spectrum::ChannelId(0),
            sealed: sub.bids()[0].sealed.clone(),
            point: sub.bids()[0].point.clone(),
        };
        let decision = ttp.open_charge(&request).unwrap();
        if raw == 0 {
            prop_assert_eq!(decision, ChargeDecision::InvalidZero);
        } else {
            prop_assert_eq!(decision, ChargeDecision::Valid { raw_price: raw });
        }
    }

    /// Disguised zeros are always detected at charging, whatever the
    /// disguise distribution.
    #[test]
    fn disguised_zeros_never_charge(seed in any::<u64>(), replace in 0.5f64..1.0) {
        let config = LppaConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let ttp = Ttp::new(1, config, &mut rng).unwrap();
        let policy = ZeroReplacePolicy::uniform(replace, config.bid_max());
        let sub = AdvancedBidSubmission::build(&[0], ttp.bidder_keys(), &config, &policy, &mut rng).unwrap();
        let request = ChargeRequest {
            channel: lppa_spectrum::ChannelId(0),
            sealed: sub.bids()[0].sealed.clone(),
            point: sub.bids()[0].point.clone(),
        };
        prop_assert_eq!(ttp.open_charge(&request).unwrap(), ChargeDecision::InvalidZero);
    }

    /// Zero-replacement sampling stays within the declared support and
    /// respects the stay-zero probability approximately.
    #[test]
    fn policy_sampling_support(replace in 0.0f64..=1.0, decay in 0.1f64..=1.0, seed in any::<u64>()) {
        let policy = ZeroReplacePolicy::geometric(replace, decay, 31);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            if let Some(t) = policy.sample(&mut rng) {
                prop_assert!((1..=31).contains(&t));
            }
        }
    }
}
