//! The auctioneer's masked bid table.
//!
//! After the bidding phase the auctioneer holds one
//! [`AdvancedBidSubmission`] per bidder. It cannot read any price, but
//! within a channel it can test `a ≥ b` through prefix membership — which
//! is enough to drive the greedy allocation (as the [`BidOracle`]
//! implementation) and to rank a column (which is also exactly the
//! information the §VI attacker can exploit, see
//! `lppa_attack::ChannelRankings`).

use lppa_auction::allocation::BidOracle;
use lppa_auction::bidder::BidderId;
use lppa_prefix::TagIndex;
use lppa_spectrum::ChannelId;

use std::borrow::Borrow;

use crate::error::LppaError;
use crate::ppbs::bid::AdvancedBidSubmission;

/// All bidders' masked submissions, as the auctioneer stores them.
#[derive(Clone, Debug)]
pub struct MaskedBidTable<S = AdvancedBidSubmission> {
    submissions: Vec<S>,
    n_channels: usize,
    prune_plain_zeros: bool,
    /// Per-channel *tie classes*: `classes[ch][b]` is bidder `b`'s rank
    /// class on channel `ch` by descending masked bid, `0` highest, with
    /// equal transformed values (mutual masked `≥`) sharing a class.
    /// Computed once per collect — every later winner selection is then
    /// pure integer work instead of `O(m)` masked membership tests.
    classes: Vec<Vec<u32>>,
    /// One inverted index per channel over every bidder's *point* tags,
    /// built lazily on first use. Probing a range against it yields all
    /// bidders whose masked bid is ≥ that range's lower bound — the
    /// reference path ([`Self::maxima_indexed`]) the class-based winner
    /// selection is property-tested against.
    point_indexes: std::sync::OnceLock<Vec<TagIndex>>,
}

impl<S: Borrow<AdvancedBidSubmission> + Sync> MaskedBidTable<S> {
    /// Collects the submissions into a fully oblivious table: every cell
    /// is an entry, because the auctioneer cannot tell zeros apart.
    ///
    /// # Errors
    ///
    /// Returns [`LppaError::ChannelCountMismatch`] if the submissions do
    /// not all cover the same channels, or [`LppaError::InvalidConfig`]
    /// if there are none.
    pub fn collect(submissions: Vec<S>) -> Result<Self, LppaError> {
        Self::collect_inner(submissions, false, None)
    }

    /// Collects the submissions with *plain-zero pruning*: cells whose
    /// presented value is an undisguised zero are treated as absent.
    ///
    /// This models the iterative charging protocol
    /// (`crate::protocol::AuctioneerModel::IterativeCharging`): whenever
    /// a plain zero wins, the TTP detects it (the winner's prefixes match
    /// its sealed zero-band value), reveals it, and the auctioneer
    /// strikes the cell and re-auctions the channel. Since a plain zero
    /// never beats a positive-looking entry, striking them all up front
    /// yields the same final allocation as the round-by-round iteration.
    pub fn collect_pruned(submissions: Vec<S>) -> Result<Self, LppaError> {
        Self::collect_inner(submissions, true, None)
    }

    /// As [`Self::collect`], with *precomputed* per-channel tie classes
    /// (see [`Self::classes`]) — for callers that maintain the channel
    /// orders incrementally across rounds (`crate::incremental`) and so
    /// skip the per-collect masked ranking sort.
    ///
    /// # Errors
    ///
    /// As for [`Self::collect`], plus [`LppaError::InvalidConfig`] if
    /// the class table is not `n_channels × n_bidders`.
    pub fn collect_with_classes(
        submissions: Vec<S>,
        classes: Vec<Vec<u32>>,
    ) -> Result<Self, LppaError> {
        Self::collect_inner(submissions, false, Some(classes))
    }

    /// As [`Self::collect_pruned`], with precomputed tie classes; see
    /// [`Self::collect_with_classes`].
    ///
    /// # Errors
    ///
    /// As for [`Self::collect_with_classes`].
    pub fn collect_pruned_with_classes(
        submissions: Vec<S>,
        classes: Vec<Vec<u32>>,
    ) -> Result<Self, LppaError> {
        Self::collect_inner(submissions, true, Some(classes))
    }

    fn collect_inner(
        submissions: Vec<S>,
        prune_plain_zeros: bool,
        classes: Option<Vec<Vec<u32>>>,
    ) -> Result<Self, LppaError> {
        let n_channels = submissions
            .first()
            .map(|s| s.borrow().n_channels())
            .ok_or_else(|| LppaError::InvalidConfig { reason: "no submissions".into() })?;
        for s in &submissions {
            if s.borrow().n_channels() != n_channels {
                return Err(LppaError::ChannelCountMismatch {
                    submitted: s.borrow().n_channels(),
                    expected: n_channels,
                });
            }
        }
        let classes = match classes {
            Some(classes) => {
                if classes.len() != n_channels
                    || classes.iter().any(|col| col.len() != submissions.len())
                {
                    return Err(LppaError::InvalidConfig {
                        reason: "class table is not n_channels × n_bidders".into(),
                    });
                }
                classes
            }
            None => compute_classes(&submissions),
        };
        Ok(Self {
            submissions,
            n_channels,
            prune_plain_zeros,
            classes,
            point_indexes: std::sync::OnceLock::new(),
        })
    }

    /// The per-channel tie classes driving winner selection;
    /// `classes()[ch][b]` is bidder `b`'s descending-bid rank class on
    /// channel `ch` (`0` highest, ties share a class).
    pub fn classes(&self) -> &[Vec<u32>] {
        &self.classes
    }

    /// Tears the table down to its tie-class vectors so a pooled round
    /// loop can recycle their backing storage.
    pub(crate) fn into_classes(self) -> Vec<Vec<u32>> {
        self.classes
    }

    /// The per-channel point-tag indexes, built on first use (the
    /// class-based winner selection never needs them).
    fn point_index(&self, channel: ChannelId) -> &TagIndex {
        &self.point_indexes.get_or_init(|| {
            let channels: Vec<usize> = (0..self.n_channels).collect();
            lppa_par::par_map(&channels, |&ch| {
                let tags_per_point = self.submissions[0].borrow().bids()[ch].point.len();
                let mut index = TagIndex::with_capacity(self.submissions.len() * tags_per_point);
                for (bidder, s) in self.submissions.iter().enumerate() {
                    index.insert_all(s.borrow().bids()[ch].point.iter(), bidder as u32);
                }
                index
            })
        })[channel.0]
    }

    /// The stored submissions (owned or borrowed, per `S`).
    pub fn submissions(&self) -> &[S] {
        &self.submissions
    }

    /// The masked comparison `bid(a, channel) ≥ bid(b, channel)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range; use [`Self::try_ge`] for
    /// untrusted indices.
    pub fn ge(&self, channel: ChannelId, a: BidderId, b: BidderId) -> bool {
        let pa = &self.submissions[a.0].borrow().bids()[channel.0];
        let pb = &self.submissions[b.0].borrow().bids()[channel.0];
        pa.point.in_range(&pb.range)
    }

    /// Bounds-checked [`Self::ge`] for indices from untrusted inputs.
    ///
    /// # Errors
    ///
    /// Returns [`LppaError::Internal`] naming the out-of-range index.
    pub fn try_ge(&self, channel: ChannelId, a: BidderId, b: BidderId) -> Result<bool, LppaError> {
        let cell = |bidder: BidderId| {
            self.submissions
                .get(bidder.0)
                .and_then(|s| s.borrow().bids().get(channel.0))
                .ok_or_else(|| LppaError::Internal {
                    what: format!("bid cell ({}, {}) out of range", bidder.0, channel.0),
                })
        };
        Ok(cell(a)?.point.in_range(&cell(b)?.range))
    }

    /// Ranks all bidders on `channel` by descending masked bid — the
    /// §VI attacker's view of a column.
    pub fn rank_channel(&self, channel: ChannelId) -> Vec<BidderId> {
        let mut order: Vec<BidderId> = (0..self.submissions.len()).map(BidderId).collect();
        // The masked ≥ relation is a total preorder on the column;
        // testing both directions keeps the comparator consistent even
        // when two transformed values tie (equal raw bids landing in the
        // same cr slot).
        order.sort_by(|&a, &b| {
            if a == b {
                return std::cmp::Ordering::Equal;
            }
            match (self.ge(channel, a, b), self.ge(channel, b, a)) {
                (true, false) => std::cmp::Ordering::Less, // larger bid sorts first
                (false, true) => std::cmp::Ordering::Greater,
                // Tied transformed values — or, unreachable for a sound
                // oracle, mutually incomparable ones.
                _ => std::cmp::Ordering::Equal,
            }
        });
        order
    }

    /// Per-channel descending rankings for every channel.
    pub fn channel_rankings(&self) -> Vec<Vec<BidderId>> {
        (0..self.n_channels).map(|c| self.rank_channel(ChannelId(c))).collect()
    }

    /// One maximal element of the column restricted to `candidates`:
    /// a single tournament pass of masked comparisons. `None` iff
    /// `candidates` is empty.
    fn scan_best(&self, channel: ChannelId, candidates: &[BidderId]) -> Option<BidderId> {
        let (&first, rest) = candidates.split_first()?;
        let mut best = first;
        for &c in rest {
            if !self.ge(channel, best, c) {
                best = c;
            }
        }
        Some(best)
    }

    /// Finds the bidders holding the column maximum among `candidates`
    /// (usually one; several only on a transformed-value tie), using the
    /// per-channel point-tag index.
    ///
    /// After the `O(m)` tournament pass finds one maximal element
    /// `best`, the tie set `{c : bid(c) ≥ bid(best)}` is collected by
    /// probing `best`'s range tags against the prebuilt index — a
    /// constant number of probes plus one mark per hit — instead of `m`
    /// further masked membership tests. A probe hit is literally the
    /// predicate `point(c) ∩ range(best) ≠ ∅` that [`Self::ge`]
    /// evaluates, so the result equals [`Self::maxima_linear`] exactly;
    /// the property suite asserts as much.
    ///
    /// Returns an empty vector for empty `candidates`.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn maxima_indexed(&self, channel: ChannelId, candidates: &[BidderId]) -> Vec<BidderId> {
        let Some(best) = self.scan_best(channel, candidates) else { return Vec::new() };
        let range = &self.submissions[best.0].borrow().bids()[channel.0].range;
        let index = self.point_index(channel);
        let mut hit = vec![false; self.submissions.len()];
        for tag in range.iter() {
            for &owner in index.owners(tag) {
                hit[owner as usize] = true;
            }
        }
        // Filter in candidate order so callers observe the same tie
        // ordering as the linear reference.
        candidates.iter().copied().filter(|&c| hit[c.0]).collect()
    }

    /// Reference implementation of [`Self::maxima_indexed`]: the
    /// tournament pass followed by a second linear pass of masked
    /// comparisons against the champion.
    ///
    /// Returns an empty vector for empty `candidates`.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn maxima_linear(&self, channel: ChannelId, candidates: &[BidderId]) -> Vec<BidderId> {
        let Some(best) = self.scan_best(channel, candidates) else { return Vec::new() };
        candidates.iter().copied().filter(|&c| self.ge(channel, c, best)).collect()
    }
}

impl<S: Borrow<AdvancedBidSubmission> + Sync> BidOracle for MaskedBidTable<S> {
    fn n_bidders(&self) -> usize {
        self.submissions.len()
    }

    fn n_channels(&self) -> usize {
        self.n_channels
    }

    /// In the oblivious model every cell is an entry — the auctioneer
    /// cannot distinguish zeros, which is precisely why disguised zeros
    /// can win and why the TTP must invalidate them at charging time. In
    /// the pruned (iterative-charging) model, cells whose presented value
    /// is a plain zero are absent.
    fn has_entry(&self, bidder: BidderId, channel: ChannelId) -> bool {
        if self.prune_plain_zeros {
            self.submissions[bidder.0].borrow().presented_positive()[channel.0]
        } else {
            true
        }
    }

    fn select_winner(
        &self,
        channel: ChannelId,
        candidates: &[BidderId],
        rng: &mut dyn lppa_rng::RngCore,
    ) -> BidderId {
        // Integer-only maxima via the precomputed tie classes: the
        // candidates in the lowest class are exactly the mutual-`≥` tie
        // set of the column maximum, the same set (in the same candidate
        // order) as [`Self::maxima_indexed`] — asserted by the property
        // suite — so the RNG draw sequence is unchanged.
        let classes = &self.classes[channel.0];
        let Some(best) = candidates.iter().map(|c| classes[c.0]).min() else {
            // Empty candidates break the trait contract; mirror the old
            // fallback shape instead of panicking mid-auction.
            return candidates.first().copied().unwrap_or(BidderId(0));
        };
        // Count-then-draw-then-scan replaces collecting the maxima into
        // a Vec and calling `choose`: `choose` on a length-`m` slice
        // draws exactly `gen_range(0..m)`, so the RNG stream and the
        // picked bidder are bit-identical — with zero allocations in the
        // auction's innermost loop.
        let m = candidates.iter().filter(|c| classes[c.0] == best).count();
        if m == 0 {
            return candidates[0];
        }
        let pick = lppa_rng::Rng::gen_range(rng, 0..m);
        candidates
            .iter()
            .copied()
            .filter(|c| classes[c.0] == best)
            .nth(pick)
            .unwrap_or(candidates[0])
    }
}

/// Computes the per-channel tie classes of [`MaskedBidTable::classes`]
/// from scratch: one stable masked-comparison sort per channel
/// (channels rank in parallel), then a single adjacent-pair walk
/// assigning class ids. Within a class the sort leaves bidder ids
/// ascending — the canonical order incremental maintainers must match.
pub fn compute_classes<S: Borrow<AdvancedBidSubmission> + Sync>(
    submissions: &[S],
) -> Vec<Vec<u32>> {
    let n_channels = submissions.first().map_or(0, |s| s.borrow().n_channels());
    let channels: Vec<usize> = (0..n_channels).collect();
    lppa_par::par_map(&channels, |&ch| {
        let ge = |a: usize, b: usize| {
            submissions[a].borrow().bids()[ch]
                .point
                .in_range(&submissions[b].borrow().bids()[ch].range)
        };
        let mut order: Vec<usize> = (0..submissions.len()).collect();
        // Stable sort under the masked total preorder: descending bid,
        // ties (mutual ≥) kept in ascending-id order.
        order.sort_by(|&a, &b| match (ge(a, b), ge(b, a)) {
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            _ => std::cmp::Ordering::Equal,
        });
        let mut classes = vec![0u32; submissions.len()];
        let mut class = 0u32;
        for (i, &id) in order.iter().enumerate() {
            // Descending order makes `prev ≥ id` a given; the pair is
            // tied iff `id ≥ prev` holds too.
            if i > 0 && !ge(id, order[i - 1]) {
                class += 1;
            }
            classes[id] = class;
        }
        classes
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LppaConfig;
    use crate::ttp::Ttp;
    use crate::zero_replace::ZeroReplacePolicy;
    use lppa_rng::rngs::StdRng;
    use lppa_rng::SeedableRng;

    fn table_for(raw_rows: &[Vec<u32>], seed: u64) -> (MaskedBidTable, Vec<Vec<u32>>) {
        let config = LppaConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let k = raw_rows[0].len();
        let ttp = Ttp::new(k, config, &mut rng).unwrap();
        let policy = ZeroReplacePolicy::never(config.bid_max());
        let submissions = raw_rows
            .iter()
            .map(|row| {
                AdvancedBidSubmission::build(row, ttp.bidder_keys(), &config, &policy, &mut rng)
                    .unwrap()
            })
            .collect();
        (MaskedBidTable::collect(submissions).unwrap(), raw_rows.to_vec())
    }

    #[test]
    fn ge_matches_plaintext_for_distinct_bids() {
        let (table, raws) = table_for(&[vec![5, 80], vec![9, 3], vec![1, 40]], 1);
        for (ch, _) in raws[0].iter().enumerate() {
            for a in 0..3usize {
                for b in 0..3usize {
                    let (ra, rb) = (raws[a][ch], raws[b][ch]);
                    if ra == rb {
                        continue;
                    }
                    assert_eq!(
                        table.ge(ChannelId(ch), BidderId(a), BidderId(b)),
                        ra > rb,
                        "ch={ch} {ra} vs {rb}"
                    );
                }
            }
        }
    }

    #[test]
    fn ranking_matches_plaintext_order() {
        let rows = vec![vec![5u32], vec![90], vec![13], vec![0], vec![55]];
        let (table, raws) = table_for(&rows, 2);
        let ranking = table.rank_channel(ChannelId(0));
        let ranked_raws: Vec<u32> = ranking.iter().map(|b| raws[b.0][0]).collect();
        let mut expected: Vec<u32> = rows.iter().map(|r| r[0]).collect();
        expected.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(ranked_raws, expected);
        assert_eq!(table.channel_rankings().len(), 1);
    }

    #[test]
    fn select_winner_picks_the_plaintext_maximum() {
        let (table, _) = table_for(&[vec![5], vec![90], vec![13]], 3);
        let mut rng = StdRng::seed_from_u64(4);
        let winner =
            table.select_winner(ChannelId(0), &[BidderId(0), BidderId(1), BidderId(2)], &mut rng);
        assert_eq!(winner, BidderId(1));
        // Restricting candidates excludes the global maximum.
        let winner = table.select_winner(ChannelId(0), &[BidderId(0), BidderId(2)], &mut rng);
        assert_eq!(winner, BidderId(2));
    }

    #[test]
    fn every_cell_is_an_entry() {
        let (table, _) = table_for(&[vec![0, 0], vec![1, 0]], 5);
        for b in 0..2 {
            for c in 0..2 {
                assert!(BidOracle::has_entry(&table, BidderId(b), ChannelId(c)));
            }
        }
        assert_eq!(BidOracle::n_bidders(&table), 2);
        assert_eq!(BidOracle::n_channels(&table), 2);
    }

    #[test]
    fn collect_rejects_mismatched_submissions() {
        let config = LppaConfig::default();
        let mut rng = StdRng::seed_from_u64(6);
        let policy = ZeroReplacePolicy::never(config.bid_max());
        let ttp2 = Ttp::new(2, config, &mut rng).unwrap();
        let ttp3 = Ttp::new(3, config, &mut rng).unwrap();
        let a =
            AdvancedBidSubmission::build(&[1, 2], ttp2.bidder_keys(), &config, &policy, &mut rng)
                .unwrap();
        let b = AdvancedBidSubmission::build(
            &[1, 2, 3],
            ttp3.bidder_keys(),
            &config,
            &policy,
            &mut rng,
        )
        .unwrap();
        assert!(matches!(
            MaskedBidTable::collect(vec![a, b]),
            Err(LppaError::ChannelCountMismatch { .. })
        ));
        assert!(MaskedBidTable::<AdvancedBidSubmission>::collect(vec![]).is_err());
    }
}
