//! The auctioneer's masked bid table.
//!
//! After the bidding phase the auctioneer holds one
//! [`AdvancedBidSubmission`] per bidder. It cannot read any price, but
//! within a channel it can test `a ≥ b` through prefix membership — which
//! is enough to drive the greedy allocation (as the [`BidOracle`]
//! implementation) and to rank a column (which is also exactly the
//! information the §VI attacker can exploit, see
//! `lppa_attack::ChannelRankings`).

use lppa_auction::allocation::BidOracle;
use lppa_auction::bidder::BidderId;
use lppa_prefix::TagIndex;
use lppa_rng::seq::SliceRandom;
use lppa_spectrum::ChannelId;

use crate::error::LppaError;
use crate::ppbs::bid::AdvancedBidSubmission;

/// All bidders' masked submissions, as the auctioneer stores them.
#[derive(Clone, Debug)]
pub struct MaskedBidTable {
    submissions: Vec<AdvancedBidSubmission>,
    n_channels: usize,
    prune_plain_zeros: bool,
    /// One inverted index per channel over every bidder's *point* tags,
    /// built once at collect time. Probing a range against it yields all
    /// bidders whose masked bid is ≥ that range's lower bound — the
    /// second half of every winner selection.
    point_indexes: Vec<TagIndex>,
}

impl MaskedBidTable {
    /// Collects the submissions into a fully oblivious table: every cell
    /// is an entry, because the auctioneer cannot tell zeros apart.
    ///
    /// # Errors
    ///
    /// Returns [`LppaError::ChannelCountMismatch`] if the submissions do
    /// not all cover the same channels, or [`LppaError::InvalidConfig`]
    /// if there are none.
    pub fn collect(submissions: Vec<AdvancedBidSubmission>) -> Result<Self, LppaError> {
        Self::collect_inner(submissions, false)
    }

    /// Collects the submissions with *plain-zero pruning*: cells whose
    /// presented value is an undisguised zero are treated as absent.
    ///
    /// This models the iterative charging protocol
    /// (`crate::protocol::AuctioneerModel::IterativeCharging`): whenever
    /// a plain zero wins, the TTP detects it (the winner's prefixes match
    /// its sealed zero-band value), reveals it, and the auctioneer
    /// strikes the cell and re-auctions the channel. Since a plain zero
    /// never beats a positive-looking entry, striking them all up front
    /// yields the same final allocation as the round-by-round iteration.
    pub fn collect_pruned(submissions: Vec<AdvancedBidSubmission>) -> Result<Self, LppaError> {
        Self::collect_inner(submissions, true)
    }

    fn collect_inner(
        submissions: Vec<AdvancedBidSubmission>,
        prune_plain_zeros: bool,
    ) -> Result<Self, LppaError> {
        let n_channels = submissions
            .first()
            .map(AdvancedBidSubmission::n_channels)
            .ok_or_else(|| LppaError::InvalidConfig { reason: "no submissions".into() })?;
        for s in &submissions {
            if s.n_channels() != n_channels {
                return Err(LppaError::ChannelCountMismatch {
                    submitted: s.n_channels(),
                    expected: n_channels,
                });
            }
        }
        // One point-tag index per channel, built in parallel across
        // channels (channels are independent columns of the table).
        let channels: Vec<usize> = (0..n_channels).collect();
        let point_indexes = lppa_par::par_map(&channels, |&ch| {
            let tags_per_point = submissions[0].bids()[ch].point.len();
            let mut index = TagIndex::with_capacity(submissions.len() * tags_per_point);
            for (bidder, s) in submissions.iter().enumerate() {
                index.insert_all(s.bids()[ch].point.iter(), bidder as u32);
            }
            index
        });
        Ok(Self { submissions, n_channels, prune_plain_zeros, point_indexes })
    }

    /// The stored submissions.
    pub fn submissions(&self) -> &[AdvancedBidSubmission] {
        &self.submissions
    }

    /// The masked comparison `bid(a, channel) ≥ bid(b, channel)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range; use [`Self::try_ge`] for
    /// untrusted indices.
    pub fn ge(&self, channel: ChannelId, a: BidderId, b: BidderId) -> bool {
        let pa = &self.submissions[a.0].bids()[channel.0];
        let pb = &self.submissions[b.0].bids()[channel.0];
        pa.point.in_range(&pb.range)
    }

    /// Bounds-checked [`Self::ge`] for indices from untrusted inputs.
    ///
    /// # Errors
    ///
    /// Returns [`LppaError::Internal`] naming the out-of-range index.
    pub fn try_ge(&self, channel: ChannelId, a: BidderId, b: BidderId) -> Result<bool, LppaError> {
        let cell = |bidder: BidderId| {
            self.submissions.get(bidder.0).and_then(|s| s.bids().get(channel.0)).ok_or_else(|| {
                LppaError::Internal {
                    what: format!("bid cell ({}, {}) out of range", bidder.0, channel.0),
                }
            })
        };
        Ok(cell(a)?.point.in_range(&cell(b)?.range))
    }

    /// Ranks all bidders on `channel` by descending masked bid — the
    /// §VI attacker's view of a column.
    pub fn rank_channel(&self, channel: ChannelId) -> Vec<BidderId> {
        let mut order: Vec<BidderId> = (0..self.submissions.len()).map(BidderId).collect();
        // The masked ≥ relation is a total preorder on the column;
        // testing both directions keeps the comparator consistent even
        // when two transformed values tie (equal raw bids landing in the
        // same cr slot).
        order.sort_by(|&a, &b| {
            if a == b {
                return std::cmp::Ordering::Equal;
            }
            match (self.ge(channel, a, b), self.ge(channel, b, a)) {
                (true, false) => std::cmp::Ordering::Less, // larger bid sorts first
                (false, true) => std::cmp::Ordering::Greater,
                // Tied transformed values — or, unreachable for a sound
                // oracle, mutually incomparable ones.
                _ => std::cmp::Ordering::Equal,
            }
        });
        order
    }

    /// Per-channel descending rankings for every channel.
    pub fn channel_rankings(&self) -> Vec<Vec<BidderId>> {
        (0..self.n_channels).map(|c| self.rank_channel(ChannelId(c))).collect()
    }

    /// One maximal element of the column restricted to `candidates`:
    /// a single tournament pass of masked comparisons. `None` iff
    /// `candidates` is empty.
    fn scan_best(&self, channel: ChannelId, candidates: &[BidderId]) -> Option<BidderId> {
        let (&first, rest) = candidates.split_first()?;
        let mut best = first;
        for &c in rest {
            if !self.ge(channel, best, c) {
                best = c;
            }
        }
        Some(best)
    }

    /// Finds the bidders holding the column maximum among `candidates`
    /// (usually one; several only on a transformed-value tie), using the
    /// per-channel point-tag index.
    ///
    /// After the `O(m)` tournament pass finds one maximal element
    /// `best`, the tie set `{c : bid(c) ≥ bid(best)}` is collected by
    /// probing `best`'s range tags against the prebuilt index — a
    /// constant number of probes plus one mark per hit — instead of `m`
    /// further masked membership tests. A probe hit is literally the
    /// predicate `point(c) ∩ range(best) ≠ ∅` that [`Self::ge`]
    /// evaluates, so the result equals [`Self::maxima_linear`] exactly;
    /// the property suite asserts as much.
    ///
    /// Returns an empty vector for empty `candidates`.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn maxima_indexed(&self, channel: ChannelId, candidates: &[BidderId]) -> Vec<BidderId> {
        let Some(best) = self.scan_best(channel, candidates) else { return Vec::new() };
        let range = &self.submissions[best.0].bids()[channel.0].range;
        let index = &self.point_indexes[channel.0];
        let mut hit = vec![false; self.submissions.len()];
        for tag in range.iter() {
            for &owner in index.owners(tag) {
                hit[owner as usize] = true;
            }
        }
        // Filter in candidate order so callers observe the same tie
        // ordering as the linear reference.
        candidates.iter().copied().filter(|&c| hit[c.0]).collect()
    }

    /// Reference implementation of [`Self::maxima_indexed`]: the
    /// tournament pass followed by a second linear pass of masked
    /// comparisons against the champion.
    ///
    /// Returns an empty vector for empty `candidates`.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range.
    pub fn maxima_linear(&self, channel: ChannelId, candidates: &[BidderId]) -> Vec<BidderId> {
        let Some(best) = self.scan_best(channel, candidates) else { return Vec::new() };
        candidates.iter().copied().filter(|&c| self.ge(channel, c, best)).collect()
    }
}

impl BidOracle for MaskedBidTable {
    fn n_bidders(&self) -> usize {
        self.submissions.len()
    }

    fn n_channels(&self) -> usize {
        self.n_channels
    }

    /// In the oblivious model every cell is an entry — the auctioneer
    /// cannot distinguish zeros, which is precisely why disguised zeros
    /// can win and why the TTP must invalidate them at charging time. In
    /// the pruned (iterative-charging) model, cells whose presented value
    /// is a plain zero are absent.
    fn has_entry(&self, bidder: BidderId, channel: ChannelId) -> bool {
        if self.prune_plain_zeros {
            self.submissions[bidder.0].presented_positive()[channel.0]
        } else {
            true
        }
    }

    fn select_winner(
        &self,
        channel: ChannelId,
        candidates: &[BidderId],
        rng: &mut dyn lppa_rng::RngCore,
    ) -> BidderId {
        let maxima = self.maxima_indexed(channel, candidates);
        // Non-empty whenever `candidates` is (the trait contract); fall
        // back to the first candidate instead of panicking mid-auction.
        match maxima.choose(rng) {
            Some(&winner) => winner,
            None => candidates[0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LppaConfig;
    use crate::ttp::Ttp;
    use crate::zero_replace::ZeroReplacePolicy;
    use lppa_rng::rngs::StdRng;
    use lppa_rng::SeedableRng;

    fn table_for(raw_rows: &[Vec<u32>], seed: u64) -> (MaskedBidTable, Vec<Vec<u32>>) {
        let config = LppaConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let k = raw_rows[0].len();
        let ttp = Ttp::new(k, config, &mut rng).unwrap();
        let policy = ZeroReplacePolicy::never(config.bid_max());
        let submissions = raw_rows
            .iter()
            .map(|row| {
                AdvancedBidSubmission::build(row, ttp.bidder_keys(), &config, &policy, &mut rng)
                    .unwrap()
            })
            .collect();
        (MaskedBidTable::collect(submissions).unwrap(), raw_rows.to_vec())
    }

    #[test]
    fn ge_matches_plaintext_for_distinct_bids() {
        let (table, raws) = table_for(&[vec![5, 80], vec![9, 3], vec![1, 40]], 1);
        for (ch, _) in raws[0].iter().enumerate() {
            for a in 0..3usize {
                for b in 0..3usize {
                    let (ra, rb) = (raws[a][ch], raws[b][ch]);
                    if ra == rb {
                        continue;
                    }
                    assert_eq!(
                        table.ge(ChannelId(ch), BidderId(a), BidderId(b)),
                        ra > rb,
                        "ch={ch} {ra} vs {rb}"
                    );
                }
            }
        }
    }

    #[test]
    fn ranking_matches_plaintext_order() {
        let rows = vec![vec![5u32], vec![90], vec![13], vec![0], vec![55]];
        let (table, raws) = table_for(&rows, 2);
        let ranking = table.rank_channel(ChannelId(0));
        let ranked_raws: Vec<u32> = ranking.iter().map(|b| raws[b.0][0]).collect();
        let mut expected: Vec<u32> = rows.iter().map(|r| r[0]).collect();
        expected.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(ranked_raws, expected);
        assert_eq!(table.channel_rankings().len(), 1);
    }

    #[test]
    fn select_winner_picks_the_plaintext_maximum() {
        let (table, _) = table_for(&[vec![5], vec![90], vec![13]], 3);
        let mut rng = StdRng::seed_from_u64(4);
        let winner =
            table.select_winner(ChannelId(0), &[BidderId(0), BidderId(1), BidderId(2)], &mut rng);
        assert_eq!(winner, BidderId(1));
        // Restricting candidates excludes the global maximum.
        let winner = table.select_winner(ChannelId(0), &[BidderId(0), BidderId(2)], &mut rng);
        assert_eq!(winner, BidderId(2));
    }

    #[test]
    fn every_cell_is_an_entry() {
        let (table, _) = table_for(&[vec![0, 0], vec![1, 0]], 5);
        for b in 0..2 {
            for c in 0..2 {
                assert!(BidOracle::has_entry(&table, BidderId(b), ChannelId(c)));
            }
        }
        assert_eq!(BidOracle::n_bidders(&table), 2);
        assert_eq!(BidOracle::n_channels(&table), 2);
    }

    #[test]
    fn collect_rejects_mismatched_submissions() {
        let config = LppaConfig::default();
        let mut rng = StdRng::seed_from_u64(6);
        let policy = ZeroReplacePolicy::never(config.bid_max());
        let ttp2 = Ttp::new(2, config, &mut rng).unwrap();
        let ttp3 = Ttp::new(3, config, &mut rng).unwrap();
        let a =
            AdvancedBidSubmission::build(&[1, 2], ttp2.bidder_keys(), &config, &policy, &mut rng)
                .unwrap();
        let b = AdvancedBidSubmission::build(
            &[1, 2, 3],
            ttp3.bidder_keys(),
            &config,
            &policy,
            &mut rng,
        )
        .unwrap();
        assert!(matches!(
            MaskedBidTable::collect(vec![a, b]),
            Err(LppaError::ChannelCountMismatch { .. })
        ));
        assert!(MaskedBidTable::collect(vec![]).is_err());
    }
}
