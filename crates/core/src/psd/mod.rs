//! Private Spectrum Distribution (PSD): greedy allocation over masked
//! bids and TTP-assisted charging (§V of the paper).

pub mod table;
