//! Error types of the LPPA protocol crate.

use lppa_prefix::PrefixError;

/// Errors raised while configuring or executing the LPPA protocol.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum LppaError {
    /// A protocol parameter is out of range or inconsistent.
    InvalidConfig {
        /// Which parameter, and why.
        reason: String,
    },
    /// A prefix-level operation failed (bad width, empty range, …).
    Prefix(PrefixError),
    /// A submission referenced a different number of channels than the
    /// auction sells.
    ChannelCountMismatch {
        /// Channels in the submission.
        submitted: usize,
        /// Channels in the auction.
        expected: usize,
    },
    /// A raw bid exceeded the configured maximum.
    BidOutOfRange {
        /// The offending bid.
        bid: u32,
        /// The configured maximum.
        bmax: u32,
    },
    /// A location coordinate exceeded the configured domain.
    LocationOutOfRange {
        /// The offending coordinate.
        coordinate: u32,
        /// The largest representable coordinate.
        max: u32,
    },
    /// The TTP could not authenticate a sealed bid forwarded for
    /// charging.
    ChargeAuthentication,
    /// The winning bid's masked prefixes do not match its sealed price —
    /// the bidder manipulated its submission.
    ChargeManipulated,
}

impl std::fmt::Display for LppaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LppaError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            LppaError::Prefix(e) => write!(f, "prefix operation failed: {e}"),
            LppaError::ChannelCountMismatch { submitted, expected } => {
                write!(f, "submission covers {submitted} channels, auction has {expected}")
            }
            LppaError::BidOutOfRange { bid, bmax } => {
                write!(f, "bid {bid} exceeds maximum {bmax}")
            }
            LppaError::LocationOutOfRange { coordinate, max } => {
                write!(f, "coordinate {coordinate} exceeds domain maximum {max}")
            }
            LppaError::ChargeAuthentication => {
                write!(f, "sealed winning bid failed authentication")
            }
            LppaError::ChargeManipulated => {
                write!(f, "winning bid's prefixes do not match its sealed price")
            }
        }
    }
}

impl std::error::Error for LppaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LppaError::Prefix(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PrefixError> for LppaError {
    fn from(e: PrefixError) -> Self {
        LppaError::Prefix(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<(LppaError, &str)> = vec![
            (LppaError::InvalidConfig { reason: "rd too big".into() }, "rd too big"),
            (LppaError::Prefix(PrefixError::EmptyRange { lo: 2, hi: 1 }), "prefix"),
            (LppaError::ChannelCountMismatch { submitted: 3, expected: 5 }, "3 channels"),
            (LppaError::BidOutOfRange { bid: 200, bmax: 127 }, "200"),
            (LppaError::LocationOutOfRange { coordinate: 9, max: 7 }, "9"),
            (LppaError::ChargeAuthentication, "authentication"),
            (LppaError::ChargeManipulated, "do not match"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err:?}");
        }
    }

    #[test]
    fn prefix_errors_convert_and_chain() {
        let err: LppaError = PrefixError::WidthOutOfRange { width: 0 }.into();
        assert!(matches!(err, LppaError::Prefix(_)));
        use std::error::Error as _;
        assert!(err.source().is_some());
        assert!(LppaError::ChargeAuthentication.source().is_none());
    }
}
