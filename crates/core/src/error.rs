//! Error types of the LPPA protocol crate.

use lppa_prefix::PrefixError;

/// Errors raised while configuring or executing the LPPA protocol.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum LppaError {
    /// A protocol parameter is out of range or inconsistent.
    InvalidConfig {
        /// Which parameter, and why.
        reason: String,
    },
    /// A prefix-level operation failed (bad width, empty range, …).
    Prefix(PrefixError),
    /// A submission referenced a different number of channels than the
    /// auction sells.
    ChannelCountMismatch {
        /// Channels in the submission.
        submitted: usize,
        /// Channels in the auction.
        expected: usize,
    },
    /// A raw bid exceeded the configured maximum.
    BidOutOfRange {
        /// The offending bid.
        bid: u32,
        /// The configured maximum.
        bmax: u32,
    },
    /// A location coordinate exceeded the configured domain.
    LocationOutOfRange {
        /// The offending coordinate.
        coordinate: u32,
        /// The largest representable coordinate.
        max: u32,
    },
    /// The TTP could not authenticate a sealed bid forwarded for
    /// charging.
    ChargeAuthentication,
    /// The winning bid's masked prefixes do not match its sealed price —
    /// the bidder manipulated its submission.
    ChargeManipulated,
    /// A received submission is structurally broken: wrong tag-set
    /// cardinality, empty tag sets, or a failed integrity checksum.
    ///
    /// Unlike [`LppaError::ChannelCountMismatch`] &c., which describe a
    /// *bidder-side* domain violation, this describes damage observable
    /// at the auctioneer's edge — typically transport truncation or
    /// deliberate tampering.
    MalformedSubmission {
        /// What is broken, human-readable.
        reason: String,
    },
    /// One bidder's submission was rejected during a fault-tolerant
    /// collection round. The round continues without the bidder; this
    /// error records who and why (the cause chains through
    /// [`std::error::Error::source`]).
    SubmissionRejected {
        /// Index of the rejected bidder in the collection order.
        bidder: usize,
        /// The underlying rejection.
        cause: Box<LppaError>,
    },
    /// A fault-tolerant collection phase closed with fewer intact
    /// submissions than the session's configured quorum.
    QuorumNotReached {
        /// Submissions accepted before the deadline.
        accepted: usize,
        /// Minimum required to commit the round.
        required: usize,
    },
    /// The periodically-online TTP never became reachable within the
    /// charging deadline; charges were deferred, not decided.
    TtpUnavailable {
        /// Ticks waited before giving up.
        waited: u64,
    },
    /// The audited backend's commitment ledger failed its settle-time
    /// replay: an entry was altered, the chain was reordered, or it was
    /// truncated against the published root. Carries the rendered
    /// [`lppa_crypto::commit::LedgerError`] naming the first offending
    /// entry.
    LedgerTampered {
        /// The underlying chain failure.
        detail: String,
    },
    /// An internal invariant was violated — the protocol-layer
    /// replacement for a panic in library code.
    Internal {
        /// Which invariant.
        what: String,
    },
}

impl std::fmt::Display for LppaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LppaError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            LppaError::Prefix(e) => write!(f, "prefix operation failed: {e}"),
            LppaError::ChannelCountMismatch { submitted, expected } => {
                write!(f, "submission covers {submitted} channels, auction has {expected}")
            }
            LppaError::BidOutOfRange { bid, bmax } => {
                write!(f, "bid {bid} exceeds maximum {bmax}")
            }
            LppaError::LocationOutOfRange { coordinate, max } => {
                write!(f, "coordinate {coordinate} exceeds domain maximum {max}")
            }
            LppaError::ChargeAuthentication => {
                write!(f, "sealed winning bid failed authentication")
            }
            LppaError::ChargeManipulated => {
                write!(f, "winning bid's prefixes do not match its sealed price")
            }
            LppaError::MalformedSubmission { reason } => {
                write!(f, "malformed submission: {reason}")
            }
            LppaError::SubmissionRejected { bidder, cause } => {
                write!(f, "submission from bidder {bidder} rejected: {cause}")
            }
            LppaError::QuorumNotReached { accepted, required } => {
                write!(f, "collection quorum not reached: {accepted} accepted, {required} required")
            }
            LppaError::TtpUnavailable { waited } => {
                write!(f, "TTP unreachable for {waited} ticks; charging deferred")
            }
            LppaError::LedgerTampered { detail } => {
                write!(f, "commitment ledger audit failed: {detail}")
            }
            LppaError::Internal { what } => {
                write!(f, "internal invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for LppaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LppaError::Prefix(e) => Some(e),
            LppaError::SubmissionRejected { cause, .. } => Some(cause.as_ref()),
            _ => None,
        }
    }
}

impl From<PrefixError> for LppaError {
    fn from(e: PrefixError) -> Self {
        LppaError::Prefix(e)
    }
}

impl LppaError {
    /// Wraps `self` as a per-bidder rejection, preserving it as the
    /// chained [`std::error::Error::source`].
    pub fn rejected_for(self, bidder: usize) -> LppaError {
        LppaError::SubmissionRejected { bidder, cause: Box::new(self) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<(LppaError, &str)> = vec![
            (LppaError::InvalidConfig { reason: "rd too big".into() }, "rd too big"),
            (LppaError::Prefix(PrefixError::EmptyRange { lo: 2, hi: 1 }), "prefix"),
            (LppaError::ChannelCountMismatch { submitted: 3, expected: 5 }, "3 channels"),
            (LppaError::BidOutOfRange { bid: 200, bmax: 127 }, "200"),
            (LppaError::LocationOutOfRange { coordinate: 9, max: 7 }, "9"),
            (LppaError::ChargeAuthentication, "authentication"),
            (LppaError::ChargeManipulated, "do not match"),
            (LppaError::MalformedSubmission { reason: "ragged point".into() }, "ragged point"),
            (LppaError::ChargeAuthentication.rejected_for(4), "bidder 4"),
            (LppaError::QuorumNotReached { accepted: 2, required: 5 }, "2 accepted"),
            (LppaError::TtpUnavailable { waited: 64 }, "64 ticks"),
            (LppaError::LedgerTampered { detail: "entry 2 digest".into() }, "entry 2 digest"),
            (LppaError::Internal { what: "empty maxima".into() }, "empty maxima"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err:?}");
        }
    }

    #[test]
    fn prefix_errors_convert_and_chain() {
        let err: LppaError = PrefixError::WidthOutOfRange { width: 0 }.into();
        assert!(matches!(err, LppaError::Prefix(_)));
        use std::error::Error as _;
        assert!(err.source().is_some());
        assert!(LppaError::ChargeAuthentication.source().is_none());
    }

    #[test]
    fn rejection_chains_to_root_cause() {
        use std::error::Error as _;
        // Prefix failure → per-bidder rejection: the chain walks all the
        // way down to the PrefixError.
        let root: LppaError = PrefixError::EmptyTagSet.into();
        let rejected = root.rejected_for(7);
        let mid = rejected.source().expect("rejection has a source");
        assert!(mid.to_string().contains("prefix"));
        let leaf = mid.source().expect("Prefix chains to PrefixError");
        assert!(leaf.to_string().contains("empty"));
        assert!(leaf.source().is_none());
    }
}
