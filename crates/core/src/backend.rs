//! The backend-generic auction pipeline: pluggable masked comparisons,
//! commitment-ledger auditing, and sealed-bid Vickrey settlement.
//!
//! [`BackendBidTable`] is the masked bid table probed through a
//! [`MaskingBackend`] instead of raw tag-set intersection. Its tie
//! classes are computed with the *identical* stable-sort walk as
//! [`crate::psd::table::compute_classes`], only with `ge` answered by
//! the backend — so for the exact backends (`hmac`, `ledger`) the
//! classes, the RNG draw sequence and therefore the entire auction
//! outcome are bit-identical to the default pipeline, while the
//! `bloom` backend may deviate exactly where a filter false positive
//! flips a comparison.
//!
//! [`run_private_auction_with_backend`] runs allocation + charging
//! over that table and adds two things the default pipeline lacks:
//!
//! * a **Vickrey settlement** of every grant — the traced contest's
//!   conflicting losers' sealed true values go to the TTP, which
//!   prices the win at the critical losing bid
//!   ([`crate::ttp::Ttp::open_vickrey`]);
//! * for [`BackendKind::Ledger`], an **audit chain**: every accepted
//!   submission, grant and charge verdict is appended to a
//!   [`CommitmentLedger`] which is replay-verified at settle time;
//!   tampering surfaces as [`LppaError::LedgerTampered`].

use std::collections::HashSet;

use lppa_auction::allocation::{BidOracle, Grant};
use lppa_auction::bidder::BidderId;
use lppa_auction::conflict::ConflictGraph;
use lppa_auction::outcome::{Assignment, AuctionOutcome};
use lppa_auction::pricing::{greedy_allocate_traced, GrantTrace};
use lppa_crypto::commit::{CommitmentLedger, LedgerEntry};
use lppa_crypto::tag::Tag;
pub use lppa_prefix::backend::{
    Backend, BackendKind, BackendPoint, BackendRange, BloomParams, MaskingBackend,
};
use lppa_rng::seq::SliceRandom;
use lppa_rng::Rng;
use lppa_spectrum::ChannelId;

use crate::error::LppaError;
use crate::ppbs::bid::AdvancedBidSubmission;
use crate::ppbs::location::{build_conflict_graph, LocationSubmission};
use crate::protocol::{AuctioneerModel, PrivateAuctionResult, SuSubmission};
use crate::ttp::{ChargeDecision, ChargeRequest, Ttp};

/// A masked bid table whose comparisons run through a pluggable
/// [`MaskingBackend`].
#[derive(Clone, Debug)]
pub struct BackendBidTable {
    submissions: Vec<AdvancedBidSubmission>,
    n_channels: usize,
    prune_plain_zeros: bool,
    classes: Vec<Vec<u32>>,
    kind: BackendKind,
}

impl BackendBidTable {
    /// Collects `submissions` under the backend named by `kind` (with
    /// its default parameters), pruning plain zeros per `model` exactly
    /// like [`crate::psd::table::MaskedBidTable`].
    ///
    /// # Errors
    ///
    /// [`LppaError::InvalidConfig`] for an empty batch,
    /// [`LppaError::ChannelCountMismatch`] for ragged channel counts.
    pub fn collect(
        kind: BackendKind,
        submissions: Vec<AdvancedBidSubmission>,
        model: AuctioneerModel,
    ) -> Result<Self, LppaError> {
        let backend = kind.backend();
        let n_channels = submissions
            .first()
            .ok_or_else(|| LppaError::InvalidConfig { reason: "no submissions".into() })?
            .n_channels();
        for s in &submissions {
            if s.n_channels() != n_channels {
                return Err(LppaError::ChannelCountMismatch {
                    submitted: s.n_channels(),
                    expected: n_channels,
                });
            }
        }
        let classes = backend_classes(&backend, &submissions, n_channels);
        Ok(Self {
            submissions,
            n_channels,
            prune_plain_zeros: matches!(model, AuctioneerModel::IterativeCharging),
            classes,
            kind,
        })
    }

    /// Which backend answered the comparisons.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    /// The collected submissions, in bidder order.
    pub fn submissions(&self) -> &[AdvancedBidSubmission] {
        &self.submissions
    }

    /// Per-channel tie classes (see
    /// [`crate::psd::table::MaskedBidTable::classes`]); class 0 is the
    /// channel maximum under backend comparisons.
    pub fn classes(&self) -> &[Vec<u32>] {
        &self.classes
    }

    /// Bidders of `channel` in descending backend-bid order, ties in
    /// ascending id order — the same ranking shape
    /// `lppa_attack::ChannelRankings` consumes, so per-backend leakage
    /// is measured on exactly what this backend would let an
    /// auctioneer observe.
    pub fn rank_channel(&self, channel: ChannelId) -> Vec<BidderId> {
        let classes = &self.classes[channel.0];
        let mut order: Vec<usize> = (0..self.submissions.len()).collect();
        order.sort_by_key(|&i| (classes[i], i));
        order.into_iter().map(BidderId).collect()
    }

    /// [`Self::rank_channel`] for every channel.
    pub fn channel_rankings(&self) -> Vec<Vec<BidderId>> {
        (0..self.n_channels).map(|c| self.rank_channel(ChannelId(c))).collect()
    }
}

impl BidOracle for BackendBidTable {
    fn n_bidders(&self) -> usize {
        self.submissions.len()
    }

    fn n_channels(&self) -> usize {
        self.n_channels
    }

    fn has_entry(&self, bidder: BidderId, channel: ChannelId) -> bool {
        if self.prune_plain_zeros {
            self.submissions[bidder.0].presented_positive()[channel.0]
        } else {
            true
        }
    }

    fn select_winner(
        &self,
        channel: ChannelId,
        candidates: &[BidderId],
        rng: &mut dyn lppa_rng::RngCore,
    ) -> BidderId {
        // Identical integer logic to MaskedBidTable::select_winner: the
        // same classes mean the same maxima set and the same single RNG
        // draw, which is what makes the hmac backend bit-identical to
        // the default pipeline.
        let classes = &self.classes[channel.0];
        let Some(best) = candidates.iter().map(|c| classes[c.0]).min() else {
            return candidates.first().copied().unwrap_or(BidderId(0));
        };
        let maxima: Vec<BidderId> =
            candidates.iter().copied().filter(|c| classes[c.0] == best).collect();
        match maxima.choose(rng) {
            Some(&winner) => winner,
            None => candidates[0],
        }
    }
}

/// Computes per-channel tie classes through `backend` probes
/// (channels in parallel), then the adjacent-pair class walk of
/// [`crate::psd::table::compute_classes`].
///
/// Unlike `compute_classes`, the descending order is not a pairwise
/// comparison sort: a lossy backend's `ge` can be intransitive (a Bloom
/// false positive asserts `a ≥ b` spuriously), which a comparison sort
/// rejects as an inconsistent comparator. Each bidder is instead ranked
/// by its **dominance count** `#{b : ge(a, b)}`, stably, ties in index
/// order. For an exact backend the count is strictly monotone in the
/// bid (`v_a > v_b` implies `a`'s dominated set properly contains
/// `b`'s), so the resulting order — and therefore the classes — is
/// bit-identical to `compute_classes`; for a lossy backend it is a
/// deterministic total order that degrades gracefully with the
/// false-positive rate.
pub fn backend_classes(
    backend: &Backend,
    submissions: &[AdvancedBidSubmission],
    n_channels: usize,
) -> Vec<Vec<u32>> {
    let channels: Vec<usize> = (0..n_channels).collect();
    lppa_par::par_map(&channels, |&ch| {
        let n = submissions.len();
        let points: Vec<BackendPoint> =
            submissions.iter().map(|s| backend.compile_point(&s.bids()[ch].point)).collect();
        let ranges: Vec<BackendRange> =
            submissions.iter().map(|s| backend.compile_range(&s.bids()[ch].range)).collect();
        let mut ge = vec![false; n * n];
        let mut dominated = vec![0usize; n];
        for a in 0..n {
            for b in 0..n {
                let hit = backend.probe(&points[a], &ranges[b]);
                ge[a * n + b] = hit;
                dominated[a] += usize::from(hit);
            }
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&a| std::cmp::Reverse(dominated[a]));
        let mut classes = vec![0u32; n];
        let mut class = 0u32;
        for (i, &id) in order.iter().enumerate() {
            if i > 0 && !ge[id * n + order[i - 1]] {
                class += 1;
            }
            classes[id] = class;
        }
        classes
    })
}

/// How often the Bloom backend's probes disagreed with the exact tag
/// intersection over a full bid table — both raw probe flips (for
/// reporting) and the distinct colliding tags the differential oracle
/// budgets against [`BloomParams::analytic_fp_rate`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BloomProbeStats {
    /// Probed (point, range) pairs: every bidder pair on every channel.
    pub probes: usize,
    /// Probes where Bloom said member and the exact test said not — the
    /// only legal disagreement direction.
    pub false_positives: usize,
    /// Probes where Bloom said non-member and the exact test said
    /// member. Must be zero: Bloom filters cannot lose an inserted tag.
    pub false_negatives: usize,
    /// Largest point tag-family probed, for the analytic pair bound.
    pub max_point_tags: usize,
    /// Distinct point tags that spuriously hit at least one filter —
    /// the Bernoulli unit the oracle budgets. Probe-level FP counts are
    /// heavy-tailed: one colliding tag is shared by every bidder whose
    /// point family contains it (plain zeros share most of theirs) and
    /// range covers of `[v, max]` overlap heavily, so a single ~`p`
    /// tag event can fan out to `O(n²)` flipped probes.
    pub false_positive_tags: usize,
    /// Per-tag Bernoulli trials: Σ over channels of (distinct point
    /// tags probed) × (ranges probed against). `false_positive_tags`
    /// is expected below `analytic_fp_rate × tag_trials`.
    pub tag_trials: usize,
}

/// Measures [`BloomProbeStats`] for `params` over every (bidder a,
/// bidder b, channel) comparison in `submissions`.
pub fn bloom_probe_stats(
    params: BloomParams,
    submissions: &[AdvancedBidSubmission],
) -> BloomProbeStats {
    let backend = Backend::Bloom(params);
    let n_channels = submissions.first().map_or(0, |s| s.n_channels());
    let mut stats = BloomProbeStats {
        probes: 0,
        false_positives: 0,
        false_negatives: 0,
        max_point_tags: 0,
        false_positive_tags: 0,
        tag_trials: 0,
    };
    let mut colliding: HashSet<Tag> = HashSet::new();
    for ch in 0..n_channels {
        let points: Vec<BackendPoint> =
            submissions.iter().map(|s| backend.compile_point(&s.bids()[ch].point)).collect();
        let ranges: Vec<BackendRange> =
            submissions.iter().map(|s| backend.compile_range(&s.bids()[ch].range)).collect();
        let distinct: HashSet<Tag> =
            submissions.iter().flat_map(|s| s.bids()[ch].point.iter().copied()).collect();
        stats.tag_trials += distinct.len() * ranges.len();
        for (a, sa) in submissions.iter().enumerate() {
            stats.max_point_tags = stats.max_point_tags.max(sa.bids()[ch].point.len());
            for (b, sb) in submissions.iter().enumerate() {
                let exact = sa.bids()[ch].point.in_range(&sb.bids()[ch].range);
                let probed = backend.probe(&points[a], &ranges[b]);
                stats.probes += 1;
                stats.false_negatives += usize::from(!probed && exact);
                if probed && !exact {
                    stats.false_positives += 1;
                    // Attribute the flip to the specific colliding
                    // tag(s), deduplicated across bidders and ranges.
                    if let BackendRange::Bloom(filter) = &ranges[b] {
                        let range = &sb.bids()[ch].range;
                        for tag in sa.bids()[ch].point.iter() {
                            if filter.contains(tag) && !range.iter().any(|rt| rt == tag) {
                                colliding.insert(*tag);
                            }
                        }
                    }
                }
            }
        }
    }
    stats.false_positive_tags = colliding.len();
    stats
}

/// Everything one backend round settles: the first-price result (shape
/// of [`PrivateAuctionResult`]), the Vickrey resettlement of the same
/// allocation, the contest traces both were priced from, and — for the
/// ledger backend — the verified audit chain.
#[derive(Clone, Debug)]
pub struct BackendAuctionResult {
    /// Which backend ran the round.
    pub kind: BackendKind,
    /// First-price settlement, exactly the default pipeline's shape.
    pub result: PrivateAuctionResult,
    /// Second-price settlement of the *same* grants: each winner pays
    /// its contest's critical losing bid.
    pub vickrey: AuctionOutcome,
    /// Grants the TTP invalidated during Vickrey settlement (disguised
    /// zeros — the same set first-price charging invalidates).
    pub vickrey_invalid: Vec<Grant>,
    /// Contest traces of the allocation, for auditing the critical
    /// prices.
    pub traces: Vec<GrantTrace>,
    /// The settle-time-verified audit chain
    /// ([`BackendKind::Ledger`] only).
    pub ledger: Option<CommitmentLedger>,
}

/// Builds the TTP charge request for one grant straight from the
/// submissions (the backend table needs no [`crate::MaskedBidTable`]).
///
/// # Errors
///
/// [`LppaError::Internal`] if the grant indexes outside the bid table.
pub fn charge_request_for(
    submissions: &[AdvancedBidSubmission],
    grant: &Grant,
) -> Result<ChargeRequest, LppaError> {
    let bid = submissions
        .get(grant.bidder.0)
        .and_then(|s| s.bids().get(grant.channel.0))
        .ok_or_else(|| LppaError::Internal {
            what: format!("grant ({}, {}) outside bid table", grant.bidder.0, grant.channel.0),
        })?;
    Ok(ChargeRequest {
        channel: grant.channel,
        sealed: bid.sealed.clone(),
        point: bid.point.clone(),
    })
}

/// Runs one complete private auction through the backend named by
/// `kind`: conflict graph from masked locations, backend-probed
/// allocation, first-price TTP charging, and Vickrey resettlement of
/// the same grants. See [`run_private_auction_with_backend_graph`].
///
/// # Errors
///
/// As [`crate::protocol::run_private_auction_with_model`], plus
/// [`LppaError::LedgerTampered`] if the ledger backend's settle-time
/// audit fails.
pub fn run_private_auction_with_backend<R: Rng>(
    submissions: &[SuSubmission],
    ttp: &Ttp,
    model: AuctioneerModel,
    kind: BackendKind,
    rng: &mut R,
) -> Result<BackendAuctionResult, LppaError> {
    let locations: Vec<LocationSubmission> =
        submissions.iter().map(|s| s.location.clone()).collect();
    let conflicts = build_conflict_graph(&locations);
    run_private_auction_with_backend_graph(submissions, conflicts, ttp, model, kind, rng)
}

/// [`run_private_auction_with_backend`] over a prebuilt conflict graph.
///
/// The allocation replays [`greedy_allocate_traced`] over the backend
/// table: for the exact backends this draws the same RNG sequence as
/// the default pipeline's `greedy_allocate` and lands on bit-identical
/// grants. Each grant is then settled twice — first price (the
/// paper's rule) and Vickrey — against the same TTP.
///
/// # Errors
///
/// As [`run_private_auction_with_backend`].
pub fn run_private_auction_with_backend_graph<R: Rng>(
    submissions: &[SuSubmission],
    conflicts: ConflictGraph,
    ttp: &Ttp,
    model: AuctioneerModel,
    kind: BackendKind,
    rng: &mut R,
) -> Result<BackendAuctionResult, LppaError> {
    let bids: Vec<AdvancedBidSubmission> = submissions.iter().map(|s| s.bids.clone()).collect();
    let table = BackendBidTable::collect(kind, bids, model)?;

    let mut ledger = match kind {
        BackendKind::Ledger => Some(CommitmentLedger::new()),
        _ => None,
    };
    if let Some(ledger) = ledger.as_mut() {
        for (i, s) in submissions.iter().enumerate() {
            let mut payload = Vec::with_capacity(12);
            payload.extend_from_slice(&(i as u32).to_le_bytes());
            payload.extend_from_slice(&s.checksum().to_le_bytes());
            ledger.append("submission", &payload);
        }
    }

    let traces = greedy_allocate_traced(&table, &conflicts, rng);
    let grants: Vec<Grant> = traces.iter().map(|t| t.grant).collect();
    if let Some(ledger) = ledger.as_mut() {
        for g in &grants {
            ledger.append("grant", &grant_payload(g));
        }
    }

    // First-price charging, as in the default pipeline.
    let requests: Vec<ChargeRequest> = grants
        .iter()
        .map(|g| charge_request_for(table.submissions(), g))
        .collect::<Result<_, _>>()?;
    let decisions = ttp.open_charges(&requests)?;
    let mut assignments = Vec::new();
    let mut invalid_grants = Vec::new();
    for (grant, decision) in grants.iter().zip(&decisions) {
        match decision {
            ChargeDecision::Valid { raw_price } => assignments.push(Assignment {
                bidder: grant.bidder,
                channel: grant.channel,
                price: *raw_price,
            }),
            ChargeDecision::InvalidZero => invalid_grants.push(*grant),
        }
    }
    if let Some(ledger) = ledger.as_mut() {
        for (grant, decision) in grants.iter().zip(&decisions) {
            ledger.append("charge", &decision_payload(grant, decision));
        }
    }

    // Vickrey resettlement of the same grants: forward each contest's
    // conflicting losers' sealed true values alongside the winner.
    let mut vickrey_assignments = Vec::new();
    let mut vickrey_invalid = Vec::new();
    for (trace, request) in traces.iter().zip(&requests) {
        let losers: Vec<_> = trace
            .conflicting_losers(&conflicts)
            .map(|c| table.submissions()[c.0].bids()[trace.grant.channel.0].sealed.clone())
            .collect();
        let decision = ttp.open_vickrey(request, &losers)?;
        match decision {
            ChargeDecision::Valid { raw_price } => vickrey_assignments.push(Assignment {
                bidder: trace.grant.bidder,
                channel: trace.grant.channel,
                price: raw_price,
            }),
            ChargeDecision::InvalidZero => vickrey_invalid.push(trace.grant),
        }
        if let Some(ledger) = ledger.as_mut() {
            ledger.append("vickrey", &decision_payload(&trace.grant, &decision));
        }
    }

    // Settle: the ledger backend replays its chain before committing.
    if let Some(ledger) = ledger.as_ref() {
        ledger.verify().map_err(|e| LppaError::LedgerTampered { detail: e.to_string() })?;
    }

    let n = submissions.len();
    Ok(BackendAuctionResult {
        kind,
        result: PrivateAuctionResult {
            outcome: AuctionOutcome::from_assignments(assignments, n),
            invalid_grants,
            conflicts,
            grants,
        },
        vickrey: AuctionOutcome::from_assignments(vickrey_assignments, n),
        vickrey_invalid,
        traces,
        ledger,
    })
}

fn grant_payload(grant: &Grant) -> [u8; 8] {
    let mut payload = [0u8; 8];
    payload[..4].copy_from_slice(&(grant.bidder.0 as u32).to_le_bytes());
    payload[4..].copy_from_slice(&(grant.channel.0 as u32).to_le_bytes());
    payload
}

fn decision_payload(grant: &Grant, decision: &ChargeDecision) -> [u8; 13] {
    let mut payload = [0u8; 13];
    payload[..8].copy_from_slice(&grant_payload(grant));
    match decision {
        ChargeDecision::Valid { raw_price } => {
            payload[8] = 1;
            payload[9..].copy_from_slice(&raw_price.to_le_bytes());
        }
        ChargeDecision::InvalidZero => payload[8] = 0,
    }
    payload
}

/// The settle-time / dispute-resolution audit: replays `entries` from
/// genesis and checks the head against the published `expected_root`.
///
/// # Errors
///
/// [`LppaError::LedgerTampered`] naming the first broken link — a
/// flipped byte, a reordered entry, or a truncated/extended chain.
pub fn settle_ledger(
    entries: &[LedgerEntry],
    expected_root: [u8; 32],
) -> Result<CommitmentLedger, LppaError> {
    let replayed = CommitmentLedger::replay(entries)
        .map_err(|e| LppaError::LedgerTampered { detail: e.to_string() })?;
    replayed
        .verify_against(expected_root)
        .map_err(|e| LppaError::LedgerTampered { detail: e.to_string() })?;
    Ok(replayed)
}

#[cfg(test)]
mod tests {
    use lppa_auction::bidder::Location;
    use lppa_rng::rngs::StdRng;
    use lppa_rng::SeedableRng;

    use super::*;
    use crate::config::LppaConfig;
    use crate::protocol::{build_submissions, run_private_auction_with_model};
    use crate::psd::table::compute_classes;
    use crate::zero_replace::ZeroReplacePolicy;

    fn fixture(seed: u64, disguise: f64) -> (Ttp, Vec<SuSubmission>, Vec<Vec<u32>>) {
        let config = LppaConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = vec![
            vec![40u32, 0, 7, 99],
            vec![25, 60, 7, 99],
            vec![55, 10, 0, 12],
            vec![55, 10, 3, 1],
            vec![0, 90, 64, 50],
            vec![13, 90, 64, 0],
        ];
        let ttp = Ttp::new(4, config, &mut rng).unwrap();
        let policy = ZeroReplacePolicy::uniform(disguise, config.bid_max());
        let bidders: Vec<(Location, Vec<u32>)> = rows
            .iter()
            .enumerate()
            .map(|(i, row)| {
                (Location::new(10 + 30 * (i as u32 % 3), 10 + 40 * (i as u32 / 3)), row.clone())
            })
            .collect();
        let submissions = build_submissions(&bidders, &ttp, &policy, &mut rng).unwrap();
        (ttp, submissions, rows)
    }

    fn assignment_set(outcome: &AuctionOutcome) -> Vec<(usize, usize, u32)> {
        let mut v: Vec<(usize, usize, u32)> =
            outcome.assignments().iter().map(|a| (a.bidder.0, a.channel.0, a.price)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn exact_backend_classes_match_compute_classes() {
        let (_, submissions, _) = fixture(11, 0.5);
        let bids: Vec<AdvancedBidSubmission> = submissions.iter().map(|s| s.bids.clone()).collect();
        let want = compute_classes(&bids);
        for backend in [Backend::Hmac, Backend::Ledger] {
            assert_eq!(backend_classes(&backend, &bids, 4), want, "{backend:?}");
        }
    }

    #[test]
    fn hmac_backend_is_bit_identical_to_the_default_pipeline() {
        for model in [AuctioneerModel::Oblivious, AuctioneerModel::IterativeCharging] {
            for seed in [1u64, 7, 23] {
                let (ttp, submissions, _) = fixture(seed, 0.4);
                let reference = run_private_auction_with_model(
                    &submissions,
                    &ttp,
                    model,
                    &mut StdRng::seed_from_u64(seed ^ 0xa110),
                )
                .unwrap();
                let backend = run_private_auction_with_backend(
                    &submissions,
                    &ttp,
                    model,
                    BackendKind::Hmac,
                    &mut StdRng::seed_from_u64(seed ^ 0xa110),
                )
                .unwrap();
                assert_eq!(
                    assignment_set(&backend.result.outcome),
                    assignment_set(&reference.outcome),
                    "seed {seed} {model:?}"
                );
                assert_eq!(backend.result.grants, reference.grants);
                assert_eq!(backend.result.invalid_grants, reference.invalid_grants);
                assert!(backend.ledger.is_none());
            }
        }
    }

    #[test]
    fn ledger_backend_matches_hmac_and_verifies_deterministically() {
        let (ttp, submissions, _) = fixture(5, 0.4);
        let run = |kind| {
            run_private_auction_with_backend(
                &submissions,
                &ttp,
                AuctioneerModel::default(),
                kind,
                &mut StdRng::seed_from_u64(99),
            )
            .unwrap()
        };
        let hmac = run(BackendKind::Hmac);
        let ledger_a = run(BackendKind::Ledger);
        let ledger_b = run(BackendKind::Ledger);
        assert_eq!(assignment_set(&ledger_a.result.outcome), assignment_set(&hmac.result.outcome));
        assert_eq!(assignment_set(&ledger_a.vickrey), assignment_set(&hmac.vickrey));
        let chain_a = ledger_a.ledger.unwrap();
        let chain_b = ledger_b.ledger.unwrap();
        // Deterministic audit chain: same round, same root.
        assert_eq!(chain_a.root(), chain_b.root());
        assert!(chain_a.len() >= submissions.len() + 2 * hmac.result.grants.len());
        settle_ledger(chain_a.entries(), chain_a.root()).unwrap();
    }

    #[test]
    fn tampered_ledgers_fail_settlement_with_a_typed_error() {
        let (ttp, submissions, _) = fixture(5, 0.0);
        let run = run_private_auction_with_backend(
            &submissions,
            &ttp,
            AuctioneerModel::default(),
            BackendKind::Ledger,
            &mut StdRng::seed_from_u64(3),
        )
        .unwrap();
        let chain = run.ledger.unwrap();
        let root = chain.root();
        // Byte flip.
        let mut flipped = chain.entries().to_vec();
        flipped[1].payload[0] ^= 0x40;
        assert!(matches!(settle_ledger(&flipped, root), Err(LppaError::LedgerTampered { .. })));
        // Reorder.
        let mut reordered = chain.entries().to_vec();
        reordered.swap(0, 1);
        assert!(matches!(settle_ledger(&reordered, root), Err(LppaError::LedgerTampered { .. })));
        // Truncate.
        let truncated = &chain.entries()[..chain.len() - 1];
        assert!(matches!(settle_ledger(truncated, root), Err(LppaError::LedgerTampered { .. })));
        // Honest chain still settles.
        settle_ledger(chain.entries(), root).unwrap();
    }

    #[test]
    fn vickrey_prices_are_critical_losing_bids() {
        // Disguise-free fixture: presented == true values, so the
        // expected critical price is computable from the raw rows.
        let (ttp, submissions, rows) = fixture(2, 0.0);
        let run = run_private_auction_with_backend(
            &submissions,
            &ttp,
            AuctioneerModel::default(),
            BackendKind::Hmac,
            &mut StdRng::seed_from_u64(8),
        )
        .unwrap();
        assert!(!run.vickrey.assignments().is_empty());
        for a in run.vickrey.assignments() {
            let trace = run
                .traces
                .iter()
                .find(|t| t.grant.bidder == a.bidder && t.grant.channel == a.channel)
                .expect("assignment has a trace");
            let expected = trace
                .conflicting_losers(&run.result.conflicts)
                .map(|c| rows[c.0][a.channel.0])
                .max()
                .unwrap_or(0);
            assert_eq!(a.price, expected, "bidder {} channel {}", a.bidder.0, a.channel.0);
            // Critical value never exceeds the first price.
            assert!(a.price <= rows[a.bidder.0][a.channel.0]);
        }
        // Vickrey invalidates exactly the first-price invalid set.
        assert_eq!(run.vickrey_invalid, run.result.invalid_grants);
    }

    #[test]
    fn bloom_probe_stats_count_no_false_negatives() {
        let (_, submissions, _) = fixture(13, 0.6);
        let bids: Vec<AdvancedBidSubmission> = submissions.iter().map(|s| s.bids.clone()).collect();
        let stats = bloom_probe_stats(BloomParams::default(), &bids);
        assert_eq!(stats.false_negatives, 0);
        assert_eq!(stats.probes, bids.len() * bids.len() * 4);
        assert!(stats.max_point_tags > 0);
        // Every probe flip is attributed to at least one colliding tag,
        // and the trial count covers all four channels' range probes.
        assert!(stats.false_positives == 0 || stats.false_positive_tags > 0);
        assert!(stats.false_positive_tags <= stats.false_positives);
        assert!(stats.tag_trials >= bids.len() * 4);
    }

    #[test]
    fn generous_bloom_parameters_reproduce_exact_classes() {
        // 64 bits/tag with 8 hashes: per-tag FP ≈ 2.6e-8 — far below
        // anything this fixture's ~10k probes could hit, so the classes
        // coincide with the exact ones (deterministic fixture).
        let (_, submissions, _) = fixture(4, 0.3);
        let bids: Vec<AdvancedBidSubmission> = submissions.iter().map(|s| s.bids.clone()).collect();
        let generous = Backend::Bloom(BloomParams { bits_per_tag: 64, hashes: 8 });
        assert_eq!(backend_classes(&generous, &bids, 4), compute_classes(&bids));
    }

    #[test]
    fn backend_rankings_match_masked_table_rankings_for_exact_backends() {
        let (_, submissions, _) = fixture(21, 0.5);
        let bids: Vec<AdvancedBidSubmission> = submissions.iter().map(|s| s.bids.clone()).collect();
        let masked = crate::psd::table::MaskedBidTable::collect(bids.clone()).unwrap();
        let table = BackendBidTable::collect(BackendKind::Ledger, bids, AuctioneerModel::Oblivious)
            .unwrap();
        assert_eq!(table.channel_rankings(), masked.channel_rankings());
    }

    #[test]
    fn collect_rejects_empty_and_ragged_batches() {
        assert!(matches!(
            BackendBidTable::collect(BackendKind::Hmac, vec![], AuctioneerModel::default()),
            Err(LppaError::InvalidConfig { .. })
        ));
    }
}
