//! Identifier mixing between auction rounds (§V.C.3 of the paper).
//!
//! "We can mix the buyers' IDs once the auction finished or use the
//! different ID pools in each auction." — a bidder that keeps one
//! identifier across rounds lets the auctioneer intersect observations
//! and mine its published wins (see `lppa_attack::multi_round`). A
//! [`PseudonymPool`] hands every bidder a fresh, uniformly drawn
//! pseudonym per round, so cross-round linking by identifier carries no
//! information.

use lppa_auction::bidder::BidderId;
use lppa_rng::seq::SliceRandom;
use lppa_rng::Rng;

/// One round's pseudonym assignment: a random bijection between true
/// bidder indices and wire identifiers.
///
/// # Examples
///
/// ```
/// use lppa::pseudonym::PseudonymPool;
/// use lppa_auction::bidder::BidderId;
/// use lppa_rng::SeedableRng;
///
/// let mut rng = lppa_rng::rngs::StdRng::seed_from_u64(4);
/// let round = PseudonymPool::assign(5, &mut rng);
/// let wire = round.pseudonym_of(BidderId(2));
/// assert_eq!(round.true_of(wire), BidderId(2));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PseudonymPool {
    /// `to_wire[true_id] = wire_id`.
    to_wire: Vec<usize>,
    /// `to_true[wire_id] = true_id`.
    to_true: Vec<usize>,
}

impl PseudonymPool {
    /// Draws a fresh uniform pseudonym assignment for `n` bidders.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn assign<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        assert!(n > 0, "pseudonym pool needs at least one bidder");
        let mut to_wire: Vec<usize> = (0..n).collect();
        to_wire.shuffle(rng);
        let mut to_true = vec![0usize; n];
        for (true_id, &wire) in to_wire.iter().enumerate() {
            to_true[wire] = true_id;
        }
        Self { to_wire, to_true }
    }

    /// The identity assignment (no mixing) — what a naive deployment
    /// does, and what the multi-round attacks exploit.
    pub fn identity(n: usize) -> Self {
        assert!(n > 0, "pseudonym pool needs at least one bidder");
        Self { to_wire: (0..n).collect(), to_true: (0..n).collect() }
    }

    /// Number of bidders covered.
    pub fn len(&self) -> usize {
        self.to_wire.len()
    }

    /// Whether the pool is empty (never true — construction requires
    /// `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.to_wire.is_empty()
    }

    /// The wire identifier a bidder uses this round.
    ///
    /// # Panics
    ///
    /// Panics if `true_id` is out of range.
    pub fn pseudonym_of(&self, true_id: BidderId) -> BidderId {
        BidderId(self.to_wire[true_id.0])
    }

    /// The true bidder behind a wire identifier.
    ///
    /// # Panics
    ///
    /// Panics if `wire_id` is out of range.
    pub fn true_of(&self, wire_id: BidderId) -> BidderId {
        BidderId(self.to_true[wire_id.0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lppa_rng::rngs::StdRng;
    use lppa_rng::SeedableRng;

    #[test]
    fn assignment_is_a_bijection() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool = PseudonymPool::assign(20, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for i in 0..20 {
            let wire = pool.pseudonym_of(BidderId(i));
            assert!(seen.insert(wire), "duplicate pseudonym {wire}");
            assert_eq!(pool.true_of(wire), BidderId(i));
        }
        assert_eq!(pool.len(), 20);
        assert!(!pool.is_empty());
    }

    #[test]
    fn identity_pool_maps_to_self() {
        let pool = PseudonymPool::identity(5);
        for i in 0..5 {
            assert_eq!(pool.pseudonym_of(BidderId(i)), BidderId(i));
        }
    }

    #[test]
    fn fresh_rounds_break_linkage() {
        // Across many re-draws, a fixed bidder's pseudonym is close to
        // uniform: the most common wire id appears no more than a few
        // times above expectation.
        let n = 10;
        let rounds = 2000;
        let mut counts = vec![0usize; n];
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..rounds {
            let pool = PseudonymPool::assign(n, &mut rng);
            counts[pool.pseudonym_of(BidderId(3)).0] += 1;
        }
        let expected = rounds / n;
        for (wire, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 2 && c < expected * 2,
                "wire {wire} drawn {c} times, expected ≈{expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one bidder")]
    fn empty_pool_panics() {
        PseudonymPool::identity(0);
    }
}
