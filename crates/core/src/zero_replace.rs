//! Zero-replacement policies (§IV.C.2–3 of the paper).
//!
//! A zero bid reveals that a channel is unavailable at the bidder's
//! location, so the advanced scheme lets each bidder *disguise* zeros:
//! with probability `p_t` a zero's masked prefixes are replaced by those
//! of the value `t ∈ {1, …, bmax}`, and with probability `p_0` the zero
//! stays a zero. The paper requires `p_1 ≥ p_2 ≥ … ≥ p_bmax` so large
//! disguises (which can spuriously win the auction) stay rare — and
//! studies the tradeoff as the total replacement probability `1 − p_0`
//! grows.
//!
//! Each bidder chooses its own policy according to its privacy demand.

use lppa_rng::Rng;

/// A per-bidder zero-replacement distribution over `{0, 1, …, bmax}`.
///
/// # Examples
///
/// ```
/// use lppa::zero_replace::ZeroReplacePolicy;
/// use lppa_rng::SeedableRng;
///
/// let policy = ZeroReplacePolicy::geometric(0.5, 0.7, 127);
/// assert!((policy.replace_probability() - 0.5).abs() < 1e-9);
/// let mut rng = lppa_rng::rngs::StdRng::seed_from_u64(1);
/// match policy.sample(&mut rng) {
///     Some(t) => assert!((1..=127).contains(&t)), // disguise as t
///     None => {}                                   // stay zero
/// }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ZeroReplacePolicy {
    /// `probs[t]` = probability of disguising as `t` (index 0 = stay
    /// zero). Sums to 1.
    probs: Vec<f64>,
}

impl ZeroReplacePolicy {
    /// Never disguise (`p_0 = 1`): the basic scheme's behaviour.
    pub fn never(bmax: u32) -> Self {
        let mut probs = vec![0.0; bmax as usize + 1];
        probs[0] = 1.0;
        Self { probs }
    }

    /// Disguise with total probability `replace_prob`, spreading mass
    /// over `{1, …, bmax}` geometrically: `p_t ∝ decay^(t−1)`. A decay
    /// below 1 honours the paper's monotonicity requirement
    /// `p_1 ≥ … ≥ p_bmax`.
    ///
    /// # Panics
    ///
    /// Panics if `replace_prob ∉ [0, 1]`, `decay ∉ (0, 1]`, or
    /// `bmax == 0`.
    pub fn geometric(replace_prob: f64, decay: f64, bmax: u32) -> Self {
        assert!((0.0..=1.0).contains(&replace_prob), "replace_prob must be in [0, 1]");
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
        assert!(bmax > 0, "bmax must be positive");
        let mut probs = Vec::with_capacity(bmax as usize + 1);
        probs.push(1.0 - replace_prob);
        let mut weights: Vec<f64> = Vec::with_capacity(bmax as usize);
        let mut w = 1.0;
        for _ in 0..bmax {
            weights.push(w);
            w *= decay;
        }
        let total: f64 = weights.iter().sum();
        probs.extend(weights.iter().map(|w| replace_prob * w / total));
        Self { probs }
    }

    /// Disguise with total probability `replace_prob`, uniformly over
    /// `{1, …, bmax}` — the paper's best-protection case
    /// (`p_0 = p_1 = … = p_bmax` when `replace_prob = bmax/(bmax+1)`).
    ///
    /// # Panics
    ///
    /// Panics as for [`ZeroReplacePolicy::geometric`].
    pub fn uniform(replace_prob: f64, bmax: u32) -> Self {
        Self::geometric(replace_prob, 1.0, bmax)
    }

    /// Builds a policy from an explicit distribution (`probs[0]` = stay
    /// zero).
    ///
    /// # Panics
    ///
    /// Panics if the distribution is empty, has negative entries or does
    /// not sum to 1 (±1e-6).
    pub fn from_probabilities(probs: Vec<f64>) -> Self {
        assert!(!probs.is_empty(), "distribution must be non-empty");
        assert!(probs.iter().all(|&p| p >= 0.0), "negative probability");
        let total: f64 = probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "probabilities sum to {total}, not 1");
        Self { probs }
    }

    /// The total disguise probability `1 − p_0`.
    pub fn replace_probability(&self) -> f64 {
        1.0 - self.probs[0]
    }

    /// The probability `p_t` of disguising as `t` (or of staying zero for
    /// `t = 0`). Zero for out-of-range `t`.
    pub fn prob(&self, t: u32) -> f64 {
        self.probs.get(t as usize).copied().unwrap_or(0.0)
    }

    /// The largest disguise value with non-zero probability support.
    pub fn bmax(&self) -> u32 {
        (self.probs.len() - 1) as u32
    }

    /// Samples a disguise: `Some(t)` to masquerade as `t ≥ 1`, `None` to
    /// stay zero.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<u32> {
        let mut x: f64 = rng.gen();
        for (t, &p) in self.probs.iter().enumerate() {
            if x < p {
                return (t > 0).then_some(t as u32);
            }
            x -= p;
        }
        // Floating-point slack: fall into the last bucket.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lppa_rng::rngs::StdRng;
    use lppa_rng::SeedableRng;

    #[test]
    fn never_policy_always_stays_zero() {
        let policy = ZeroReplacePolicy::never(15);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(policy.sample(&mut rng), None);
        }
        assert_eq!(policy.replace_probability(), 0.0);
    }

    #[test]
    fn geometric_is_monotone_decreasing() {
        let policy = ZeroReplacePolicy::geometric(0.6, 0.8, 20);
        for t in 1..20u32 {
            assert!(policy.prob(t) >= policy.prob(t + 1), "t={t}");
        }
        assert!((policy.replace_probability() - 0.6).abs() < 1e-9);
        let total: f64 = (0..=20).map(|t| policy.prob(t)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_spreads_evenly() {
        let policy = ZeroReplacePolicy::uniform(0.5, 10);
        for t in 1..=10u32 {
            assert!((policy.prob(t) - 0.05).abs() < 1e-9);
        }
    }

    #[test]
    fn sample_matches_distribution() {
        let policy = ZeroReplacePolicy::geometric(0.4, 0.5, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 40_000usize;
        let mut counts = [0usize; 8];
        for _ in 0..n {
            match policy.sample(&mut rng) {
                None => counts[0] += 1,
                Some(t) => counts[t as usize] += 1,
            }
        }
        for t in 0..=6u32 {
            let expected = policy.prob(t);
            let observed = counts[t as usize] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.015,
                "t={t} observed {observed} expected {expected}"
            );
        }
    }

    #[test]
    fn from_probabilities_roundtrip() {
        let policy = ZeroReplacePolicy::from_probabilities(vec![0.7, 0.2, 0.1]);
        assert_eq!(policy.bmax(), 2);
        assert!((policy.replace_probability() - 0.3).abs() < 1e-12);
        assert_eq!(policy.prob(5), 0.0);
    }

    #[test]
    #[should_panic(expected = "sum")]
    fn bad_distribution_panics() {
        ZeroReplacePolicy::from_probabilities(vec![0.5, 0.2]);
    }

    #[test]
    #[should_panic(expected = "replace_prob")]
    fn bad_replace_prob_panics() {
        ZeroReplacePolicy::geometric(1.5, 0.5, 4);
    }

    #[test]
    fn full_replacement_never_stays_zero() {
        let policy = ZeroReplacePolicy::uniform(1.0, 5);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            assert!(policy.sample(&mut rng).is_some());
        }
    }
}
