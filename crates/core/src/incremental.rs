//! Incremental masked auction state: delta updates between rounds.
//!
//! The batch auctioneer ([`crate::protocol::run_private_auction_with_model`])
//! rebuilds everything each round — it re-indexes every bidder's x-range
//! tags, re-probes every point family and re-collects the masked table,
//! `O(n · w)` work even when only a handful of bidders changed. An
//! [`IncrementalAuctioneer`] keeps the masked state *resident* and
//! applies per-bidder deltas instead:
//!
//! - **join** inserts one bidder's x-axis tags into the persistent
//!   [`TagIndex`]es and probes only that bidder's tags to discover its
//!   conflict edges — `O(w + candidates)`, not a rebuild;
//! - **leave** retires the bidder's tags through the index's tombstoned
//!   [`TagIndex::remove`] path and clears one adjacency row — `O(w +
//!   degree)`;
//! - **revise** swaps a bidder's submission in place (detach + attach),
//!   so a bid change never touches the other `n − 1` bidders.
//!
//! ## Equality with the batch path
//!
//! [`build_conflict_graph`] adds the edge `(i, j)`, `i < j`, iff
//! `point_x(i) ∩ range_x(j) ≠ ∅` and `point_y(i) ∈ range_y(j)` — a
//! *directional* test evaluated in the lower-to-higher direction. The
//! incremental graph reproduces it exactly: a join probes **both**
//! directions (its point family against the resident range index, its
//! range cover against the resident point index), so any pair the
//! canonical direction would connect shows up as a candidate, and every
//! candidate is then confirmed with the canonical
//! [`LocationSubmission::conflicts_with`] test in canonical order.
//! Spurious one-directional padding hits are filtered by that re-check;
//! genuine conflicts hit in both directions. The per-round runner
//! ([`IncrementalAuctioneer::run_round`]) then feeds the resident graph
//! into the shared phase-2–4 pipeline
//! ([`crate::protocol::run_private_auction_with_graph`]), so for equal
//! live sets and equal RNG state the whole round result is bit-identical
//! to a from-scratch rebuild — the property tests and the
//! `incremental_equals_rebuild` oracle invariant hold it to that.

use std::collections::BTreeSet;

use lppa_auction::bidder::BidderId;
use lppa_auction::conflict::ConflictGraph;
use lppa_prefix::TagIndex;
use lppa_rng::Rng;

use crate::arena::{CsrRows, RoundScratch};
use crate::error::LppaError;
use crate::ppbs::bid::AdvancedBidSubmission;
use crate::ppbs::location::{build_conflict_graph, LocationSubmission};
use crate::protocol::{settle_allocation_in, AuctioneerModel, PrivateAuctionResult};
use crate::psd::table::MaskedBidTable;
use crate::ttp::Ttp;

/// Delta-maintained masked auction state; see the module docs.
///
/// Slot ids are stable for a bidder's lifetime and reused lowest-first
/// after a leave; the compact per-round [`BidderId`] of a live bidder is
/// its rank in [`live_slots`](IncrementalAuctioneer::live_slots).
#[derive(Clone, Debug)]
pub struct IncrementalAuctioneer {
    model: AuctioneerModel,
    slots: Vec<Option<crate::protocol::SuSubmission>>,
    free: BTreeSet<u32>,
    /// Per-slot live conflict neighbours, ascending — CSR slab rows
    /// patched in place (identical iteration order to the `BTreeSet`
    /// rows they replaced, without per-edge node allocations).
    adj: CsrRows,
    /// Reusable staging for attach candidates / detach neighbour sweeps.
    edge_buf: Vec<u32>,
    /// Persistent index of every live bidder's x-axis range cover.
    x_ranges: TagIndex,
    /// Persistent index of every live bidder's x-axis point family.
    x_points: TagIndex,
    /// Per-channel live slots by **descending masked bid** (ties in
    /// ascending slot order) — the resident form of the table's tie
    /// classes. A join or revision re-ranks one bidder in `O(log n)`
    /// masked comparisons; a from-scratch collect pays a full
    /// masked-comparison sort per channel instead.
    orders: Vec<Vec<u32>>,
    /// Per-channel class-boundary flags parallel to `orders`:
    /// `breaks[ch][i]` is `true` iff `orders[ch][i]` starts a new tie
    /// class relative to its predecessor (always `false` at `i == 0`).
    /// Maintained with **no** extra masked comparisons — an insert knows
    /// its tie-class bounds from the ranking binary searches, and on a
    /// removal tie transitivity merges the two adjacent flags — so
    /// reading the round's classes is pure integer work.
    breaks: Vec<Vec<bool>>,
    live: usize,
}

impl IncrementalAuctioneer {
    /// Empty state under the given auctioneer model.
    pub fn new(model: AuctioneerModel) -> Self {
        Self {
            model,
            slots: Vec::new(),
            free: BTreeSet::new(),
            adj: CsrRows::new(),
            edge_buf: Vec::new(),
            x_ranges: TagIndex::new(),
            x_points: TagIndex::new(),
            orders: Vec::new(),
            breaks: Vec::new(),
            live: 0,
        }
    }

    /// Number of live bidders.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Live slot ids, ascending; position = compact round [`BidderId`].
    pub fn live_slots(&self) -> Vec<u32> {
        (0..self.slots.len() as u32).filter(|&s| self.slots[s as usize].is_some()).collect()
    }

    /// Entries currently held by the persistent x-axis indexes
    /// (`(range entries, point entries)`) — observability for tests and
    /// metrics.
    pub fn index_entries(&self) -> (usize, usize) {
        (self.x_ranges.entry_count(), self.x_points.entry_count())
    }

    /// Admits a masked submission; returns its stable slot id.
    ///
    /// Costs `O(w)` index insertions plus one canonical conflict test
    /// per x-axis candidate pair.
    pub fn join(&mut self, submission: crate::protocol::SuSubmission) -> u32 {
        let slot = match self.free.pop_first() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                self.adj.push_row();
                (self.slots.len() - 1) as u32
            }
        };
        self.attach(slot, submission);
        self.live += 1;
        slot
    }

    /// Retires the bidder in `slot`, returning its submission.
    ///
    /// Costs `O(w)` tombstoned index removals plus `O(degree)` adjacency
    /// updates.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not live.
    pub fn leave(&mut self, slot: u32) -> crate::protocol::SuSubmission {
        let submission = self.detach(slot);
        self.free.insert(slot);
        self.live -= 1;
        submission
    }

    /// Replaces the bidder's submission in place (a bid revision, or any
    /// re-mask), returning the retired one so callers can recycle its
    /// tag sets. The slot keeps its id; only this bidder's tags move.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not live.
    pub fn revise(
        &mut self,
        slot: u32,
        submission: crate::protocol::SuSubmission,
    ) -> crate::protocol::SuSubmission {
        let old = self.detach(slot);
        self.attach(slot, submission);
        old
    }

    /// Bid-only revision fast path: when the new submission carries the
    /// *same masked location* (same raw location re-masked from the same
    /// seed — builds draw location randomness before bid randomness, so
    /// those bytes are bit-identical), the conflict edges and x-axis
    /// index entries cannot change. Only the bidder's rank in each
    /// channel order moves: `O(k · (log n + n))` integer-and-compare
    /// work, no tag index churn, no conflict re-probing.
    ///
    /// Falls back to the full [`revise`](IncrementalAuctioneer::revise)
    /// when the location checksum differs.
    ///
    /// Like [`revise`](IncrementalAuctioneer::revise), returns the
    /// retired submission for tag-set recycling.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not live.
    pub fn revise_bids(
        &mut self,
        slot: u32,
        submission: crate::protocol::SuSubmission,
    ) -> crate::protocol::SuSubmission {
        {
            let old = self.slots[slot as usize].as_ref().expect("revise_bids of a non-live slot");
            if old.location.checksum() != submission.location.checksum() {
                return self.revise(slot, submission);
            }
        }
        for ch in 0..self.orders.len() {
            self.order_remove(ch, slot);
        }
        let k = submission.bids.n_channels();
        if self.orders.len() < k {
            self.orders.resize_with(k, Vec::new);
            self.breaks.resize_with(k, Vec::new);
        }
        let old =
            self.slots[slot as usize].replace(submission).expect("revise_bids of a non-live slot");
        for ch in 0..k {
            self.order_insert(ch, slot);
        }
        old
    }

    /// First half of a two-phase bid-only revision: takes the resident
    /// submission out of `slot` (dropping it from every channel order)
    /// so the caller can salvage its parts — typically reusing the
    /// masked location via [`SuSubmission::rebuild_bids_in`] — before
    /// handing a replacement to
    /// [`put_revised`](IncrementalAuctioneer::put_revised).
    ///
    /// The slot stays live but empty in between; no other engine call
    /// may run until `put_revised` restores it. The replacement **must**
    /// carry a masked location identical to the taken one (the fast-path
    /// precondition [`revise_bids`](IncrementalAuctioneer::revise_bids)
    /// checks by checksum; here the caller guarantees it, normally by
    /// moving the same [`LocationSubmission`] value back in).
    ///
    /// [`SuSubmission::rebuild_bids_in`]: crate::protocol::SuSubmission::rebuild_bids_in
    /// [`LocationSubmission`]: crate::ppbs::location::LocationSubmission
    ///
    /// # Panics
    ///
    /// Panics if the slot is not live.
    pub fn take_for_revise(&mut self, slot: u32) -> crate::protocol::SuSubmission {
        let submission =
            self.slots[slot as usize].take().expect("take_for_revise of a non-live slot");
        for ch in 0..self.orders.len() {
            self.order_remove(ch, slot);
        }
        submission
    }

    /// Second half of a two-phase bid-only revision: installs the
    /// replacement built from the parts
    /// [`take_for_revise`](IncrementalAuctioneer::take_for_revise)
    /// returned and re-ranks the slot in every channel order. Together
    /// the two halves perform exactly
    /// [`revise_bids`](IncrementalAuctioneer::revise_bids)' fast path.
    pub fn put_revised(&mut self, slot: u32, submission: crate::protocol::SuSubmission) {
        let k = submission.bids.n_channels();
        if self.orders.len() < k {
            self.orders.resize_with(k, Vec::new);
            self.breaks.resize_with(k, Vec::new);
        }
        self.slots[slot as usize] = Some(submission);
        for ch in 0..k {
            self.order_insert(ch, slot);
        }
    }

    /// Wires `slot`'s submission into the resident state: discovers its
    /// conflict edges by probing both index directions, then indexes its
    /// own tags.
    fn attach(&mut self, slot: u32, submission: crate::protocol::SuSubmission) {
        // Candidate peers whose x-sets may intersect ours, from either
        // probe direction (see the module docs for why both are needed).
        // Sort-and-dedup keeps the same ascending visit order a BTreeSet
        // would give, without per-hit tree inserts.
        let mut candidates = std::mem::take(&mut self.edge_buf);
        candidates.clear();
        for tag in submission.location.point_x().iter() {
            candidates.extend_from_slice(self.x_ranges.owners(tag));
        }
        for tag in submission.location.range_x().iter() {
            candidates.extend_from_slice(self.x_points.owners(tag));
        }
        candidates.sort_unstable();
        candidates.dedup();
        for &peer in &candidates {
            debug_assert_ne!(peer, slot, "own tags are indexed after probing");
            let other = self.slots[peer as usize].as_ref().expect("indexed peer is live");
            // Canonical direction: lower slot's point against higher
            // slot's range, both axes — exactly the batch predicate.
            let conflicting = if peer < slot {
                other.location.conflicts_with(&submission.location)
            } else {
                submission.location.conflicts_with(&other.location)
            };
            if conflicting {
                self.adj.insert(slot as usize, peer);
                self.adj.insert(peer as usize, slot);
            }
        }
        self.edge_buf = candidates;
        self.x_ranges.insert_all(submission.location.range_x().iter(), slot);
        self.x_points.insert_all(submission.location.point_x().iter(), slot);
        let k = submission.bids.n_channels();
        if self.orders.len() < k {
            self.orders.resize_with(k, Vec::new);
            self.breaks.resize_with(k, Vec::new);
        }
        self.slots[slot as usize] = Some(submission);
        for ch in 0..k {
            self.order_insert(ch, slot);
        }
    }

    /// The masked column comparison `bid(a, ch) ≥ bid(b, ch)` between
    /// two live slots.
    fn bid_ge(&self, ch: usize, a: u32, b: u32) -> bool {
        let sa = self.slots[a as usize].as_ref().expect("live slot");
        let sb = self.slots[b as usize].as_ref().expect("live slot");
        sa.bids.bids()[ch].point.in_range(&sb.bids.bids()[ch].range)
    }

    /// Ranks `slot` into channel `ch`'s resident order: two binary
    /// searches under the masked total preorder find its tie class, a
    /// third (integer) one its canonical ascending-slot position inside
    /// it.
    fn order_insert(&mut self, ch: usize, slot: u32) {
        let order = &self.orders[ch];
        // First position `slot`'s bid is ≥ of — everything before is
        // strictly greater.
        let lo = order.partition_point(|&o| !self.bid_ge(ch, slot, o));
        // Residents at `lo..` that are still ≥ `slot` are its ties.
        let hi = lo + order[lo..].partition_point(|&o| self.bid_ge(ch, o, slot));
        let pos = lo + order[lo..hi].partition_point(|&o| o < slot);
        self.orders[ch].insert(pos, slot);
        // Boundary flags from the class bounds alone: `slot` starts a
        // new class iff it landed at the top of its class below a
        // strictly-greater predecessor; the displaced successor starts
        // one iff `slot` landed past the bottom of its class.
        let breaks = &mut self.breaks[ch];
        breaks.insert(pos, pos == lo && lo > 0);
        if pos + 1 < breaks.len() {
            breaks[pos + 1] = pos == hi;
        }
    }

    /// Drops `slot` from channel `ch`'s resident order, fusing the
    /// boundary flags around the gap: mutual masked `≥` is transitive,
    /// so the survivors are tied iff both removed pairs were.
    fn order_remove(&mut self, ch: usize, slot: u32) {
        let Some(pos) = self.orders[ch].iter().position(|&s| s == slot) else {
            return;
        };
        self.orders[ch].remove(pos);
        let gone = self.breaks[ch].remove(pos);
        if pos < self.breaks[ch].len() {
            self.breaks[ch][pos] = pos > 0 && (gone || self.breaks[ch][pos]);
        }
    }

    /// Unwires `slot` from the resident state: removes its tags from
    /// both indexes (tombstoned `O(w)` path) and clears its adjacency
    /// row.
    fn detach(&mut self, slot: u32) -> crate::protocol::SuSubmission {
        let submission = self.slots[slot as usize].take().expect("detach of a non-live slot");
        self.x_ranges.remove_all(submission.location.range_x().iter(), slot);
        self.x_points.remove_all(submission.location.point_x().iter(), slot);
        for ch in 0..self.orders.len() {
            self.order_remove(ch, slot);
        }
        let mut neighbors = std::mem::take(&mut self.edge_buf);
        neighbors.clear();
        neighbors.extend_from_slice(self.adj.row(slot as usize));
        for &nb in &neighbors {
            self.adj.remove(nb as usize, slot);
        }
        self.adj.clear_row(slot as usize);
        self.edge_buf = neighbors;
        submission
    }

    /// The compacted conflict graph over the live set — equal to
    /// [`build_conflict_graph`] over the live submissions in
    /// [`live_slots`](IncrementalAuctioneer::live_slots) order.
    pub fn conflict_graph(&self) -> ConflictGraph {
        self.conflict_graph_from(&self.live_slots(), Vec::new(), &mut Vec::new())
    }

    /// [`conflict_graph`](Self::conflict_graph) over a precomputed live
    /// order, recycling `buf` as the adjacency-matrix backing store and
    /// `lut` as slot→compact-rank staging. The rank lookup replaces a
    /// per-edge binary search; neighbours are always live, so stale
    /// entries for dead slots are never read.
    fn conflict_graph_from(
        &self,
        order: &[u32],
        buf: Vec<bool>,
        lut: &mut Vec<u32>,
    ) -> ConflictGraph {
        lut.clear();
        lut.resize(self.slots.len(), 0);
        for (i, &slot) in order.iter().enumerate() {
            lut[slot as usize] = i as u32;
        }
        let mut graph = ConflictGraph::disconnected_from(order.len(), buf);
        for (i, &slot) in order.iter().enumerate() {
            for &nb in self.adj.row(slot as usize) {
                let j = lut[nb as usize] as usize;
                if i < j {
                    graph.add_conflict(BidderId(i), BidderId(j));
                }
            }
        }
        graph
    }

    /// The per-channel tie classes over compact ids, read off the
    /// resident orders and their maintained boundary flags — equal to
    /// [`compute_classes`](crate::psd::table::compute_classes) over
    /// [`compact_submissions`](IncrementalAuctioneer::compact_submissions)'
    /// bids, with **zero** masked comparisons per round.
    #[cfg_attr(not(test), allow(dead_code))]
    fn channel_classes(&self) -> Vec<Vec<u32>> {
        self.channel_classes_in(&self.live_slots(), &mut RoundScratch::new())
    }

    /// [`channel_classes`](Self::channel_classes) over a precomputed
    /// live order, filling class vectors checked out of `scratch`.
    fn channel_classes_in(&self, live: &[u32], scratch: &mut RoundScratch) -> Vec<Vec<u32>> {
        self.orders
            .iter()
            .zip(&self.breaks)
            .map(|(order, breaks)| {
                let mut classes = scratch.take_classes();
                classes.resize(live.len(), 0);
                let mut class = 0u32;
                for (i, &slot) in order.iter().enumerate() {
                    class += u32::from(breaks[i]);
                    let compact = live.binary_search(&slot).expect("ordered slot is live");
                    classes[compact] = class;
                }
                classes
            })
            .collect()
    }

    /// The live submissions, cloned in compact order — what a
    /// from-scratch rebuild would collect.
    pub fn compact_submissions(&self) -> Vec<crate::protocol::SuSubmission> {
        self.live_slots()
            .into_iter()
            .map(|s| self.slots[s as usize].as_ref().expect("live slot").clone())
            .collect()
    }

    /// Runs one auction round over the resident state: the persistent
    /// conflict graph replaces phase 1, then the shared phase-2–4
    /// pipeline (masked table, greedy allocation, TTP charging) runs
    /// unchanged. Grants use compact ids into
    /// [`live_slots`](IncrementalAuctioneer::live_slots).
    ///
    /// Bit-identical to
    /// [`run_private_auction_with_model`](crate::protocol::run_private_auction_with_model)
    /// over [`compact_submissions`](IncrementalAuctioneer::compact_submissions)
    /// with the same RNG state.
    ///
    /// # Errors
    ///
    /// As for [`crate::protocol::run_private_auction`].
    pub fn run_round<R: Rng>(
        &self,
        ttp: &Ttp,
        rng: &mut R,
    ) -> Result<PrivateAuctionResult, LppaError> {
        self.run_round_in(ttp, rng, &mut RoundScratch::new())
    }

    /// [`run_round`](Self::run_round) over caller-owned
    /// [`RoundScratch`]: tie classes, the conflict-matrix backing store,
    /// allocation buffers and charge-verification tag sets all come from
    /// the pool and return to it, so a warm sustained-churn round runs
    /// nearly allocation-free. Control flow and RNG consumption are
    /// identical to [`run_round`](Self::run_round), so the result is
    /// bitwise-equal.
    ///
    /// The scratch also memoizes TTP charge verdicts per `(slot,
    /// channel)`; a caller that reuses one scratch across rounds **must**
    /// call [`RoundScratch::charge_clear_slot`] for every slot it joins,
    /// leaves or revises in between, or stale verdicts may be replayed.
    ///
    /// # Errors
    ///
    /// As for [`crate::protocol::run_private_auction`].
    pub fn run_round_in<R: Rng>(
        &self,
        ttp: &Ttp,
        rng: &mut R,
        scratch: &mut RoundScratch,
    ) -> Result<PrivateAuctionResult, LppaError> {
        // Phase 2 from resident state: borrow the bid submissions in
        // place (locations are already distilled into the resident
        // graph) and read the tie classes off the maintained channel
        // orders — no clones and no per-round masked ranking sort.
        let order = self.live_slots();
        let bids: Vec<&AdvancedBidSubmission> = order
            .iter()
            .map(|&s| &self.slots[s as usize].as_ref().expect("live slot").bids)
            .collect();
        let classes = self.channel_classes_in(&order, scratch);
        let table = match self.model {
            AuctioneerModel::Oblivious => MaskedBidTable::collect_with_classes(bids, classes)?,
            AuctioneerModel::IterativeCharging => {
                MaskedBidTable::collect_pruned_with_classes(bids, classes)?
            }
        };
        let mut lut = scratch.take_classes();
        let conflicts = self.conflict_graph_from(&order, scratch.take_matrix(), &mut lut);
        scratch.recycle_classes([lut]);
        let result = settle_allocation_in(&table, conflicts, ttp, rng, scratch, Some(&order));
        scratch.recycle_classes(table.into_classes());
        result
    }
}

/// Sanity helper for tests and the differential oracle: the graph a
/// batch rebuild would produce over `submissions`.
pub fn rebuild_conflict_graph(submissions: &[crate::protocol::SuSubmission]) -> ConflictGraph {
    let locations: Vec<LocationSubmission> =
        submissions.iter().map(|s| s.location.clone()).collect();
    build_conflict_graph(&locations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LppaConfig;
    use crate::protocol::{run_private_auction_with_model, SuSubmission};
    use crate::zero_replace::ZeroReplacePolicy;
    use lppa_auction::bidder::Location;
    use lppa_rng::rngs::StdRng;
    use lppa_rng::SeedableRng;

    fn ttp(k: usize, seed: u64) -> Ttp {
        let mut rng = StdRng::seed_from_u64(seed);
        Ttp::new(k, LppaConfig::default(), &mut rng).unwrap()
    }

    fn submission(ttp: &Ttp, loc: Location, bids: &[u32], seed: u64) -> SuSubmission {
        let policy = ZeroReplacePolicy::never(ttp.config().bid_max());
        let mut rng = StdRng::seed_from_u64(seed);
        SuSubmission::build(loc, bids, ttp, &policy, &mut rng).unwrap()
    }

    #[test]
    fn churned_graph_matches_batch_rebuild_every_round() {
        let ttp = ttp(1, 0xa1);
        let mut rng = StdRng::seed_from_u64(0x90a7);
        let mut state = IncrementalAuctioneer::new(AuctioneerModel::IterativeCharging);
        let mut live: Vec<u32> = Vec::new();
        for round in 0..10 {
            for _ in 0..rng.gen_range(1..4) {
                if live.is_empty() || rng.gen_bool(0.6) {
                    let loc = Location::new(rng.gen_range(0..30), rng.gen_range(0..30));
                    let sub = submission(&ttp, loc, &[1], rng.gen());
                    live.push(state.join(sub));
                } else {
                    let i = rng.gen_range(0..live.len());
                    state.leave(live.swap_remove(i));
                }
            }
            let compacted = state.compact_submissions();
            assert_eq!(state.conflict_graph(), rebuild_conflict_graph(&compacted), "round {round}");
        }
    }

    #[test]
    fn run_round_is_bit_identical_to_batch_auction() {
        let ttp = ttp(2, 0xb2);
        let mut rng = StdRng::seed_from_u64(0x1c4e);
        let mut state = IncrementalAuctioneer::new(AuctioneerModel::IterativeCharging);
        let mut live: Vec<u32> = Vec::new();
        for round in 0..5u64 {
            for _ in 0..rng.gen_range(1..4) {
                let op = rng.gen_range(0..3);
                if op == 0 || live.is_empty() {
                    let loc = Location::new(rng.gen_range(0..40), rng.gen_range(0..40));
                    let bids = [rng.gen_range(0..9), rng.gen_range(0..9)];
                    live.push(state.join(submission(&ttp, loc, &bids, rng.gen())));
                } else if op == 1 {
                    let i = rng.gen_range(0..live.len());
                    state.leave(live.swap_remove(i));
                } else {
                    let i = rng.gen_range(0..live.len());
                    let loc = Location::new(rng.gen_range(0..40), rng.gen_range(0..40));
                    let bids = [rng.gen_range(0..9), rng.gen_range(0..9)];
                    state.revise(live[i], submission(&ttp, loc, &bids, rng.gen()));
                }
            }
            if state.live_count() == 0 {
                continue;
            }
            let round_seed = rng.gen::<u64>();
            let delta = state.run_round(&ttp, &mut StdRng::seed_from_u64(round_seed)).unwrap();
            let scratch = run_private_auction_with_model(
                &state.compact_submissions(),
                &ttp,
                AuctioneerModel::IterativeCharging,
                &mut StdRng::seed_from_u64(round_seed),
            )
            .unwrap();
            assert_eq!(delta.grants, scratch.grants, "round {round}");
            assert_eq!(delta.invalid_grants, scratch.invalid_grants, "round {round}");
            assert_eq!(delta.outcome.assignments(), scratch.outcome.assignments(), "round {round}");
            assert_eq!(delta.conflicts, scratch.conflicts, "round {round}");
        }
    }

    #[test]
    fn resident_channel_orders_match_scratch_classes() {
        let ttp = ttp(3, 0xe5);
        let mut rng = StdRng::seed_from_u64(0x0c7a);
        let mut state = IncrementalAuctioneer::new(AuctioneerModel::IterativeCharging);
        let mut live: Vec<u32> = Vec::new();
        for round in 0..12 {
            for _ in 0..rng.gen_range(1..5) {
                let op = rng.gen_range(0..3);
                if op == 0 || live.is_empty() {
                    let loc = Location::new(rng.gen_range(0..40), rng.gen_range(0..40));
                    let bids = [rng.gen_range(0..6), rng.gen_range(0..6), rng.gen_range(0..6)];
                    live.push(state.join(submission(&ttp, loc, &bids, rng.gen())));
                } else if op == 1 {
                    let i = rng.gen_range(0..live.len());
                    state.leave(live.swap_remove(i));
                } else {
                    let i = rng.gen_range(0..live.len());
                    let loc = Location::new(rng.gen_range(0..40), rng.gen_range(0..40));
                    let bids = [rng.gen_range(0..6), rng.gen_range(0..6), rng.gen_range(0..6)];
                    state.revise(live[i], submission(&ttp, loc, &bids, rng.gen()));
                }
            }
            if state.live_count() == 0 {
                continue;
            }
            let bids: Vec<_> = state.compact_submissions().into_iter().map(|s| s.bids).collect();
            assert_eq!(
                state.channel_classes(),
                crate::psd::table::compute_classes(&bids),
                "round {round}"
            );
        }
    }

    #[test]
    fn revise_bids_fast_path_matches_full_revise() {
        let ttp = ttp(2, 0xf6);
        let mut rng = StdRng::seed_from_u64(0xbead);
        let mut fast = IncrementalAuctioneer::new(AuctioneerModel::IterativeCharging);
        let mut full = IncrementalAuctioneer::new(AuctioneerModel::IterativeCharging);
        let seeds: Vec<u64> = (0..12).map(|_| rng.gen()).collect();
        let locs: Vec<Location> =
            (0..12).map(|_| Location::new(rng.gen_range(0..30), rng.gen_range(0..30))).collect();
        for (i, (&seed, &loc)) in seeds.iter().zip(&locs).enumerate() {
            let bids = [i as u32 % 7, (i as u32 * 3) % 7];
            fast.join(submission(&ttp, loc, &bids, seed));
            full.join(submission(&ttp, loc, &bids, seed));
        }
        for round in 0..6u64 {
            let i = rng.gen_range(0..12u32);
            let bids = [rng.gen_range(0..9), rng.gen_range(0..9)];
            // Same seed + same location: only the bids move.
            fast.revise_bids(i, submission(&ttp, locs[i as usize], &bids, seeds[i as usize]));
            full.revise(i, submission(&ttp, locs[i as usize], &bids, seeds[i as usize]));
            assert_eq!(fast.conflict_graph(), full.conflict_graph(), "round {round}");
            assert_eq!(fast.channel_classes(), full.channel_classes(), "round {round}");
            let round_seed = rng.gen::<u64>();
            let a = fast.run_round(&ttp, &mut StdRng::seed_from_u64(round_seed)).unwrap();
            let b = full.run_round(&ttp, &mut StdRng::seed_from_u64(round_seed)).unwrap();
            assert_eq!(a.grants, b.grants, "round {round}");
            assert_eq!(a.outcome.assignments(), b.outcome.assignments(), "round {round}");
        }
        // A relocation through revise_bids must fall back to the full
        // path and still track conflicts correctly.
        let moved = Location::new(99, 99);
        fast.revise_bids(0, submission(&ttp, moved, &[1, 1], 777));
        full.revise(0, submission(&ttp, moved, &[1, 1], 777));
        assert_eq!(fast.conflict_graph(), full.conflict_graph());
    }

    #[test]
    fn leave_tombstones_are_reclaimed_by_the_index() {
        let ttp = ttp(1, 0xc3);
        let mut state = IncrementalAuctioneer::new(AuctioneerModel::IterativeCharging);
        let mut rng = StdRng::seed_from_u64(7);
        let slots: Vec<u32> = (0..20)
            .map(|i| {
                let loc = Location::new(rng.gen_range(0..50), rng.gen_range(0..50));
                state.join(submission(&ttp, loc, &[1], i))
            })
            .collect();
        let full = state.index_entries();
        for &s in &slots[5..] {
            state.leave(s);
        }
        // Live entries shrink with the live set; slot ids recycle
        // lowest-first on the next join.
        let drained = state.index_entries();
        assert!(drained.0 < full.0 && drained.1 < full.1);
        assert_eq!(state.live_count(), 5);
        let loc = Location::new(1, 1);
        assert_eq!(state.join(submission(&ttp, loc, &[1], 99)), 5);
    }

    #[test]
    fn revise_moves_only_the_revised_bidder() {
        let ttp = ttp(1, 0xd4);
        let mut state = IncrementalAuctioneer::new(AuctioneerModel::IterativeCharging);
        let a = state.join(submission(&ttp, Location::new(0, 0), &[4], 1));
        let b = state.join(submission(&ttp, Location::new(2, 2), &[5], 2));
        let c = state.join(submission(&ttp, Location::new(90, 90), &[6], 3));
        assert_eq!(state.conflict_graph().edge_count(), 1);

        // Relocate b away from a: the edge must dissolve.
        state.revise(b, submission(&ttp, Location::new(60, 60), &[5], 4));
        assert_eq!(state.conflict_graph().edge_count(), 0);

        // And back next to c: a new edge, nothing else.
        state.revise(b, submission(&ttp, Location::new(89, 91), &[7], 5));
        let g = state.conflict_graph();
        assert_eq!(g.edge_count(), 1);
        let order = state.live_slots();
        let rank = |s: u32| order.binary_search(&s).unwrap();
        assert!(g.are_conflicting(BidderId(rank(b)), BidderId(rank(c))));
        let _ = a;
    }
}
