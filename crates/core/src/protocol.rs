//! The end-to-end LPPA protocol: bidder side, auctioneer side, TTP
//! charging.
//!
//! The flow mirrors the paper's architecture (Fig. 1a):
//!
//! 1. the TTP issues keys to the bidders ([`crate::ttp::Ttp`]);
//! 2. each SU builds a [`SuSubmission`] — masked location plus masked,
//!    transformed bids — and sends it to the auctioneer;
//! 3. the auctioneer constructs the conflict graph and runs the greedy
//!    allocation entirely on masked data;
//! 4. winning sealed bids go to the TTP in one batch; valid charges come
//!    back, disguised zeros are flagged invalid (the channel grant is
//!    wasted — the §VI performance cost of the defence).

use lppa_auction::allocation::{greedy_allocate, greedy_allocate_in, Grant};
use lppa_prefix::MaskScratch;

use crate::arena::RoundScratch;
use lppa_auction::bidder::{BidderId, Location};
use lppa_auction::conflict::ConflictGraph;
use lppa_auction::outcome::{Assignment, AuctionOutcome};
use lppa_rng::rngs::StdRng;
use lppa_rng::{Rng, SeedableRng};

use crate::config::LppaConfig;
use crate::error::LppaError;
use crate::ppbs::bid::AdvancedBidSubmission;
use crate::ppbs::location::{build_conflict_graph, LocationSubmission};
use crate::psd::table::MaskedBidTable;
use crate::ttp::{ChargeDecision, ChargeRequest, Ttp};
use crate::zero_replace::ZeroReplacePolicy;

/// Everything one secondary user transmits to the auctioneer.
#[derive(Clone, Debug)]
pub struct SuSubmission {
    /// Masked location (conflict-graph material).
    pub location: LocationSubmission,
    /// Masked, transformed per-channel bids.
    pub bids: AdvancedBidSubmission,
}

impl SuSubmission {
    /// Builds a submission on the bidder side.
    ///
    /// # Errors
    ///
    /// Propagates location/bid domain violations and configuration
    /// errors.
    pub fn build<R: Rng + ?Sized>(
        location: Location,
        raw_bids: &[u32],
        ttp: &Ttp,
        policy: &ZeroReplacePolicy,
        rng: &mut R,
    ) -> Result<Self, LppaError> {
        Self::build_in(location, raw_bids, ttp, policy, rng, &mut MaskScratch::new())
    }

    /// [`SuSubmission::build`] staging every tag set through a pooled
    /// [`MaskScratch`]: bit-identical output, and allocation-free masking
    /// once the pool holds enough retired sets (see
    /// [`reclaim`](Self::reclaim)).
    ///
    /// # Errors
    ///
    /// As for [`SuSubmission::build`].
    pub fn build_in<R: Rng + ?Sized>(
        location: Location,
        raw_bids: &[u32],
        ttp: &Ttp,
        policy: &ZeroReplacePolicy,
        rng: &mut R,
        scratch: &mut MaskScratch,
    ) -> Result<Self, LppaError> {
        let keys = ttp.bidder_keys();
        let config = ttp.config();
        Ok(Self {
            location: LocationSubmission::build_in(location, &keys.g0, config, rng, scratch)?,
            bids: AdvancedBidSubmission::build_in(raw_bids, keys, config, policy, rng, scratch)?,
        })
    }

    /// Rebuilds only the bid half of a submission, reusing a resident
    /// masked location unchanged.
    ///
    /// For a bidder whose location **and** seed are unchanged since its
    /// last full build, re-masking the location reproduces the resident
    /// tags bit for bit — so a revise can skip those HMACs entirely. The
    /// caller passes the resident [`LocationSubmission`] back in along
    /// with the plaintext `location` it was built from; this replays the
    /// location build's RNG draws (see
    /// [`LocationSubmission::replay_build_draws`]) so the bid build
    /// starts at the same stream position as a full
    /// [`build_in`](Self::build_in), then masks the new bids for real.
    /// Output is bit-identical to a full rebuild with the same RNG seed.
    ///
    /// # Errors
    ///
    /// As for [`SuSubmission::build`].
    pub fn rebuild_bids_in<R: Rng + ?Sized>(
        resident: LocationSubmission,
        location: Location,
        raw_bids: &[u32],
        ttp: &Ttp,
        policy: &ZeroReplacePolicy,
        rng: &mut R,
        scratch: &mut MaskScratch,
    ) -> Result<Self, LppaError> {
        let keys = ttp.bidder_keys();
        let config = ttp.config();
        LocationSubmission::replay_build_draws(location, config, rng, scratch)?;
        Ok(Self {
            location: resident,
            bids: AdvancedBidSubmission::build_in(raw_bids, keys, config, policy, rng, scratch)?,
        })
    }

    /// Retires this submission, recycling every backing tag set into
    /// `scratch` — the churn service reclaims leavers' and revisers'
    /// submissions so sustained rounds stop touching the allocator.
    pub fn reclaim(self, scratch: &mut MaskScratch) {
        self.location.reclaim(scratch);
        self.bids.reclaim(scratch);
    }

    /// Total transmission size in bytes.
    pub fn wire_len(&self) -> usize {
        self.location.wire_len() + self.bids.wire_len()
    }

    /// Transport integrity checksum over everything transmitted.
    ///
    /// The sender computes it once and attaches it to the wire message;
    /// the receiver recomputes and discards mismatching deliveries as
    /// corrupt. It digests only public wire bytes (masked tags and
    /// ciphertexts), so it leaks nothing new.
    pub fn checksum(&self) -> u64 {
        self.location.checksum().rotate_left(13).wrapping_add(self.bids.checksum())
    }
}

/// Structural validation of a received [`SuSubmission`] at the
/// auctioneer's edge.
///
/// Checks that the channel count matches the auction, every prefix
/// family carries exactly `width + 1` tags and every range cover is
/// padded to the worst-case cardinality — the shape every genuine
/// bidder produces by construction. Ragged or truncated submissions are
/// the fingerprint of transport damage or tampering and must be
/// quarantined per bidder, not allowed to poison the round.
///
/// # Errors
///
/// [`LppaError::ChannelCountMismatch`] or
/// [`LppaError::MalformedSubmission`] naming the broken part.
pub fn validate_submission(sub: &SuSubmission, ttp: &Ttp) -> Result<(), LppaError> {
    validate_submission_with(sub, ttp.n_channels(), ttp.config())
}

/// [`validate_submission`] against explicit public round parameters.
///
/// Validation needs only the channel count and the (public) auction
/// configuration — never the TTP's keys — so a networked auctioneer
/// that learned both from the round announcement can run the identical
/// check without holding a [`Ttp`].
///
/// # Errors
///
/// As [`validate_submission`].
pub fn validate_submission_with(
    sub: &SuSubmission,
    expected: usize,
    config: &LppaConfig,
) -> Result<(), LppaError> {
    if sub.bids.n_channels() != expected {
        return Err(LppaError::ChannelCountMismatch { submitted: sub.bids.n_channels(), expected });
    }
    sub.location.validate(config)?;
    let width = config.transformed_bits();
    let want_point = usize::from(width) + 1;
    let want_range = lppa_prefix::max_cover_len(width);
    for (ch, bid) in sub.bids.bids().iter().enumerate() {
        if bid.point.len() != want_point {
            return Err(LppaError::MalformedSubmission {
                reason: format!(
                    "channel {ch} point has {} tags, expected {want_point}",
                    bid.point.len()
                ),
            });
        }
        if bid.range.len() != want_range {
            return Err(LppaError::MalformedSubmission {
                reason: format!(
                    "channel {ch} range has {} tags, expected {want_range}",
                    bid.range.len()
                ),
            });
        }
    }
    Ok(())
}

/// How the auctioneer handles cells it cannot prove are genuine bids.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AuctioneerModel {
    /// Fully oblivious single-shot charging: every cell is an entry, the
    /// TTP is consulted exactly once, and every invalid (zero) win is a
    /// final, wasted grant. This is the most conservative reading of the
    /// paper and over-counts wasted grants in the long tail, where
    /// columns hold only plain zeros.
    Oblivious,
    /// Iterative charging: when a winner turns out to be an *undisguised*
    /// zero, the TTP can prove it (the sealed zero-band value matches the
    /// submitted prefixes), reveal it, and the auctioneer strikes the
    /// cell and re-auctions the channel. Disguised-zero wins stay final —
    /// retrying those would reveal which bids were disguises and defeat
    /// the defence. Equivalent to pruning plain-zero cells up front,
    /// which is how it is implemented. This model matches the paper's
    /// §VI performance curves and is the default.
    #[default]
    IterativeCharging,
}

/// The auctioneer's result of a private auction round.
#[derive(Clone, Debug)]
pub struct PrivateAuctionResult {
    /// Valid assignments with TTP-decrypted first-price charges.
    pub outcome: AuctionOutcome,
    /// Grants the TTP invalidated (disguised zeros that won) — wasted
    /// spectrum, the price of the defence.
    pub invalid_grants: Vec<Grant>,
    /// The conflict graph the auctioneer reconstructed from masked
    /// locations.
    pub conflicts: ConflictGraph,
    /// The raw grants in allocation order (before charging).
    pub grants: Vec<Grant>,
}

/// Runs the auctioneer + TTP side of one complete LPPA auction.
///
/// `table` and the location submissions come from collected
/// [`SuSubmission`]s; `ttp` performs the charging step.
///
/// # Errors
///
/// Returns an error if the submissions are inconsistent or the TTP
/// detects tampering. Disguised zeros are *not* errors — they surface in
/// `invalid_grants`.
pub fn run_private_auction<R: Rng>(
    submissions: &[SuSubmission],
    ttp: &Ttp,
    rng: &mut R,
) -> Result<PrivateAuctionResult, LppaError> {
    run_private_auction_with_model(submissions, ttp, AuctioneerModel::default(), rng)
}

/// As [`run_private_auction`], with an explicit [`AuctioneerModel`].
///
/// # Errors
///
/// As for [`run_private_auction`].
pub fn run_private_auction_with_model<R: Rng>(
    submissions: &[SuSubmission],
    ttp: &Ttp,
    model: AuctioneerModel,
    rng: &mut R,
) -> Result<PrivateAuctionResult, LppaError> {
    // Phase 1: conflict graph from masked locations.
    let locations: Vec<LocationSubmission> =
        submissions.iter().map(|s| s.location.clone()).collect();
    let conflicts = build_conflict_graph(&locations);
    run_private_auction_with_graph(submissions, conflicts, ttp, model, rng)
}

/// Phases 2–4 of [`run_private_auction_with_model`] over a *prebuilt*
/// conflict graph: masked table collection, greedy allocation and TTP
/// charging.
///
/// This is the entry point for callers that maintain the conflict graph
/// incrementally across rounds (see [`crate::incremental`]) instead of
/// rebuilding it from the submissions; with a graph equal to
/// [`build_conflict_graph`]'s output, the result is bit-identical to
/// the full run.
///
/// # Errors
///
/// As for [`run_private_auction`].
///
/// # Panics
///
/// The allocation panics if `conflicts` is not sized to
/// `submissions.len()`.
pub fn run_private_auction_with_graph<R: Rng>(
    submissions: &[SuSubmission],
    conflicts: ConflictGraph,
    ttp: &Ttp,
    model: AuctioneerModel,
    rng: &mut R,
) -> Result<PrivateAuctionResult, LppaError> {
    // Phase 2: masked table.
    let bids = submissions.iter().map(|s| s.bids.clone()).collect();
    let table = match model {
        AuctioneerModel::Oblivious => MaskedBidTable::collect(bids)?,
        AuctioneerModel::IterativeCharging => MaskedBidTable::collect_pruned(bids)?,
    };
    settle_allocation(&table, conflicts, ttp, rng)
}

/// Phases 3–4 over an already-collected table: greedy allocation and
/// TTP charging. Shared by the batch path above and the incremental
/// engine (which collects its table with precomputed tie classes).
pub(crate) fn settle_allocation<S, R>(
    table: &MaskedBidTable<S>,
    conflicts: ConflictGraph,
    ttp: &Ttp,
    rng: &mut R,
) -> Result<PrivateAuctionResult, LppaError>
where
    S: std::borrow::Borrow<AdvancedBidSubmission> + Sync,
    R: Rng,
{
    settle_allocation_in(table, conflicts, ttp, rng, &mut RoundScratch::new(), None)
}

/// [`settle_allocation`] over caller-owned scratch: the allocation loop
/// runs on pooled buffers and the charging step borrows each winning
/// bid's sealed value and masked point in place (no [`ChargeRequest`]
/// clones), verifying through the scratch's tag-set pool. Control flow
/// and RNG consumption match [`settle_allocation`] exactly.
///
/// `slots`, when given, maps each compact bidder id to its stable slot
/// id and turns on the scratch's per-slot charge-decision memo: a
/// decision is a pure function of the TTP's channel key and the slot's
/// resident `(sealed, point)` pair, so re-verifying an unchurned winner
/// re-derives the identical verdict — the memo skips that HMAC work
/// without moving an output bit. The caller owns invalidation
/// ([`RoundScratch::charge_clear_slot`] on every churn event).
pub(crate) fn settle_allocation_in<S, R>(
    table: &MaskedBidTable<S>,
    conflicts: ConflictGraph,
    ttp: &Ttp,
    rng: &mut R,
    scratch: &mut RoundScratch,
    slots: Option<&[u32]>,
) -> Result<PrivateAuctionResult, LppaError>
where
    S: std::borrow::Borrow<AdvancedBidSubmission> + Sync,
    R: Rng,
{
    // Phase 3: greedy allocation over masked comparisons.
    let grants = greedy_allocate_in(table, &conflicts, rng, &mut scratch.alloc);

    // Phase 4: charging through the TTP, borrowing winning bids in
    // place. Fail-fast like `Ttp::open_charges`: the first tampering
    // verdict aborts the round.
    let k = ttp.n_channels();
    let mut assignments = Vec::new();
    let mut invalid_grants = Vec::new();
    for grant in &grants {
        let bid = table
            .submissions()
            .get(grant.bidder.0)
            .and_then(|s| s.borrow().bids().get(grant.channel.0))
            .ok_or_else(|| LppaError::Internal {
                what: format!("grant ({}, {}) outside bid table", grant.bidder.0, grant.channel.0),
            })?;
        let slot = slots.map(|order| order[grant.bidder.0]);
        let memo = slot.and_then(|s| scratch.charge_get(s, grant.channel.0));
        let decision = match memo {
            Some(decision) => decision,
            None => {
                let decision = ttp.open_charge_parts(
                    grant.channel,
                    &bid.sealed,
                    &bid.point,
                    &mut scratch.mask,
                )?;
                if let Some(s) = slot {
                    scratch.charge_put(s, k, grant.channel.0, decision);
                }
                decision
            }
        };
        match decision {
            ChargeDecision::Valid { raw_price } => assignments.push(Assignment {
                bidder: grant.bidder,
                channel: grant.channel,
                price: raw_price,
            }),
            ChargeDecision::InvalidZero => invalid_grants.push(*grant),
        }
    }

    Ok(PrivateAuctionResult {
        outcome: AuctionOutcome::from_assignments(assignments, table.submissions().len()),
        invalid_grants,
        conflicts,
        grants,
    })
}

/// Builds the TTP charging requests for `grants` over `table`.
///
/// # Errors
///
/// Returns [`LppaError::Internal`] if a grant references a cell outside
/// the table — impossible for grants produced by the allocation, but
/// checked instead of indexed so corrupted grant lists cannot panic the
/// auctioneer.
pub fn charge_requests<S: std::borrow::Borrow<AdvancedBidSubmission> + Sync>(
    table: &MaskedBidTable<S>,
    grants: &[Grant],
) -> Result<Vec<ChargeRequest>, LppaError> {
    grants
        .iter()
        .map(|g| {
            let bid = table
                .submissions()
                .get(g.bidder.0)
                .and_then(|s| s.borrow().bids().get(g.channel.0))
                .ok_or_else(|| LppaError::Internal {
                    what: format!("grant ({}, {}) outside bid table", g.bidder.0, g.channel.0),
                })?;
            Ok(ChargeRequest {
                channel: g.channel,
                sealed: bid.sealed.clone(),
                point: bid.point.clone(),
            })
        })
        .collect()
}

/// The result of a fault-tolerant private auction round: the valid
/// subset was auctioned, and every per-bidder failure is reported
/// instead of aborting the round.
///
/// All bidder ids in `outcome`, `invalid_grants` and `grants` are
/// *original* submission indices; `conflicts` is over the accepted
/// subset in `accepted` order (compact ids), since rejected bidders have
/// no usable location.
#[derive(Clone, Debug)]
pub struct TolerantAuctionResult {
    /// Valid assignments with TTP-decrypted charges, original ids.
    pub outcome: AuctionOutcome,
    /// Disguised-zero wins the TTP invalidated, original ids.
    pub invalid_grants: Vec<Grant>,
    /// Raw grants in allocation order (before charging), original ids.
    pub grants: Vec<Grant>,
    /// Conflict graph over the accepted subset (compact ids, index into
    /// `accepted`).
    pub conflicts: ConflictGraph,
    /// Original indices of the submissions that entered the auction.
    pub accepted: Vec<usize>,
    /// Per-bidder rejections: `(original index, cause)`. Collect-stage
    /// rejections come from [`validate_submission`]; charge-stage ones
    /// are [`LppaError::ChargeAuthentication`] /
    /// [`LppaError::ChargeManipulated`] verdicts whose grants were
    /// struck.
    pub rejected: Vec<(usize, LppaError)>,
}

/// Fault-tolerant variant of [`run_private_auction_with_model`]: instead
/// of aborting on the first bad submission, each bidder is validated
/// independently, the auction runs over the valid subset, and charging
/// uses the per-request TTP interface so one manipulated price strikes
/// only its own grant.
///
/// # Errors
///
/// Returns [`LppaError::QuorumNotReached`] (with `required == 1`) only
/// when *no* submission survives validation; per-bidder failures land in
/// [`TolerantAuctionResult::rejected`].
pub fn run_private_auction_tolerant<R: Rng>(
    submissions: &[SuSubmission],
    ttp: &Ttp,
    model: AuctioneerModel,
    rng: &mut R,
) -> Result<TolerantAuctionResult, LppaError> {
    let mut accepted_idx: Vec<usize> = Vec::new();
    let mut accepted: Vec<SuSubmission> = Vec::new();
    let mut rejected: Vec<(usize, LppaError)> = Vec::new();
    for (i, sub) in submissions.iter().enumerate() {
        match validate_submission(sub, ttp) {
            Ok(()) => {
                accepted_idx.push(i);
                accepted.push(sub.clone());
            }
            Err(cause) => rejected.push((i, cause)),
        }
    }
    if accepted.is_empty() {
        return Err(LppaError::QuorumNotReached { accepted: 0, required: 1 });
    }

    // Phases 1–3 over the accepted subset (compact ids).
    let locations: Vec<LocationSubmission> = accepted.iter().map(|s| s.location.clone()).collect();
    let conflicts = build_conflict_graph(&locations);
    let bids = accepted.iter().map(|s| s.bids.clone()).collect();
    let table = match model {
        AuctioneerModel::Oblivious => MaskedBidTable::collect(bids)?,
        AuctioneerModel::IterativeCharging => MaskedBidTable::collect_pruned(bids)?,
    };
    let compact_grants = greedy_allocate(&table, &conflicts, rng);

    // Phase 4: per-request charging — a bad verdict strikes one grant.
    let requests = charge_requests(&table, &compact_grants)?;
    let verdicts = ttp.open_charges_tolerant(&requests);

    let to_original = |g: &Grant| Grant { bidder: BidderId(accepted_idx[g.bidder.0]), ..*g };
    let mut assignments = Vec::new();
    let mut invalid_grants = Vec::new();
    for (grant, verdict) in compact_grants.iter().zip(verdicts) {
        let original = to_original(grant);
        match verdict {
            Ok(ChargeDecision::Valid { raw_price }) => assignments.push(Assignment {
                bidder: original.bidder,
                channel: original.channel,
                price: raw_price,
            }),
            Ok(ChargeDecision::InvalidZero) => invalid_grants.push(original),
            Err(cause) => rejected.push((original.bidder.0, cause)),
        }
    }
    rejected.sort_by_key(|(i, _)| *i);

    Ok(TolerantAuctionResult {
        outcome: AuctionOutcome::from_assignments(assignments, submissions.len()),
        invalid_grants,
        grants: compact_grants.iter().map(to_original).collect(),
        conflicts,
        accepted: accepted_idx,
        rejected,
    })
}

/// Convenience wrapper: builds every submission and runs the auction.
///
/// `bidders` supplies `(location, raw bid vector)` pairs; all bidders
/// share `policy`.
///
/// # Errors
///
/// As for [`SuSubmission::build`] and [`run_private_auction`].
pub fn run_private_auction_from_bids<R: Rng>(
    bidders: &[(Location, Vec<u32>)],
    ttp: &Ttp,
    policy: &ZeroReplacePolicy,
    rng: &mut R,
) -> Result<PrivateAuctionResult, LppaError> {
    run_private_auction_from_bids_with_model(bidders, ttp, policy, AuctioneerModel::default(), rng)
}

/// As [`run_private_auction_from_bids`], with an explicit
/// [`AuctioneerModel`].
///
/// # Errors
///
/// As for [`run_private_auction_from_bids`].
pub fn run_private_auction_from_bids_with_model<R: Rng>(
    bidders: &[(Location, Vec<u32>)],
    ttp: &Ttp,
    policy: &ZeroReplacePolicy,
    model: AuctioneerModel,
    rng: &mut R,
) -> Result<PrivateAuctionResult, LppaError> {
    let submissions = build_submissions(bidders, ttp, policy, rng)?;
    run_private_auction_with_model(&submissions, ttp, model, rng)
}

/// Builds every bidder's [`SuSubmission`] in parallel.
///
/// Bidders are independent by construction — each one masks its own
/// tags under the shared keys — so the batch fans out across the
/// `lppa_par` worker pool, with chunk sizes aligned to the SHA-256 lane
/// width so each worker's run of bidders feeds the multi-lane tag kernel
/// in whole passes. To keep the output independent of the thread count,
/// one child seed per bidder is drawn *sequentially* from the caller's
/// RNG first; each submission is then derived from its own seeded
/// [`StdRng`]. The result is bit-identical for every `LPPA_THREADS` and
/// `LPPA_SHA_LANES` value (the reproducibility CI gate diffs pinned-seed
/// runs across both knobs to prove it).
///
/// # Errors
///
/// Returns the first (by bidder order) domain or configuration error, as
/// for [`SuSubmission::build`].
pub fn build_submissions<R: Rng>(
    bidders: &[(Location, Vec<u32>)],
    ttp: &Ttp,
    policy: &ZeroReplacePolicy,
    rng: &mut R,
) -> Result<Vec<SuSubmission>, LppaError> {
    let seeded: Vec<(u64, &(Location, Vec<u32>))> =
        bidders.iter().map(|bidder| (rng.next_u64(), bidder)).collect();
    lppa_par::par_map_staged(
        &seeded,
        lppa_crypto::lanes::lane_width(),
        MaskScratch::new,
        |scratch, (seed, bidder)| {
            let (location, raw_bids) = bidder;
            let mut child = StdRng::seed_from_u64(*seed);
            SuSubmission::build_in(*location, raw_bids, ttp, policy, &mut child, scratch)
        },
    )
    .into_iter()
    .collect()
}

/// Re-derives which bidder a grant belongs to for bookkeeping.
pub fn grant_bidders(grants: &[Grant]) -> Vec<BidderId> {
    grants.iter().map(|g| g.bidder).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LppaConfig;
    use lppa_rng::rngs::StdRng;
    use lppa_rng::SeedableRng;

    fn ttp(k: usize, seed: u64) -> (Ttp, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ttp = Ttp::new(k, LppaConfig::default(), &mut rng).unwrap();
        (ttp, rng)
    }

    #[test]
    fn private_auction_matches_plaintext_semantics_without_disguises() {
        // With no zero disguises, the private auction must award channels
        // to plaintext maxima, respect conflicts, and charge first price.
        let (ttp, mut rng) = ttp(3, 1);
        let policy = ZeroReplacePolicy::never(ttp.config().bid_max());
        let bidders: Vec<(Location, Vec<u32>)> = vec![
            (Location::new(0, 0), vec![50, 0, 10]),
            (Location::new(100, 100), vec![40, 20, 0]),
            (Location::new(1, 1), vec![60, 0, 5]), // conflicts with bidder 0
        ];
        let result = run_private_auction_from_bids(&bidders, &ttp, &policy, &mut rng).unwrap();

        assert!(result.invalid_grants.is_empty(), "no disguises, no invalid wins");
        // Bidder 2 outbids bidder 0 on channel 0 and they conflict, so
        // bidder 0 cannot also hold channel 0.
        let holders0: Vec<BidderId> = result
            .outcome
            .assignments()
            .iter()
            .filter(|a| a.channel == lppa_spectrum::ChannelId(0))
            .map(|a| a.bidder)
            .collect();
        assert!(result.conflicts.is_independent(&holders0));
        // Every charge equals the raw bid.
        for a in result.outcome.assignments() {
            assert_eq!(a.price, bidders[a.bidder.0].1[a.channel.0], "{a:?}");
            assert!(a.price > 0);
        }
    }

    #[test]
    fn conflict_graph_matches_plaintext() {
        let (ttp, mut rng) = ttp(1, 2);
        let policy = ZeroReplacePolicy::never(ttp.config().bid_max());
        let locs = [
            Location::new(10, 10),
            Location::new(12, 12),
            Location::new(90, 90),
            Location::new(13, 9),
        ];
        let bidders: Vec<(Location, Vec<u32>)> = locs.iter().map(|&l| (l, vec![5u32])).collect();
        let result = run_private_auction_from_bids(&bidders, &ttp, &policy, &mut rng).unwrap();
        let plain = ConflictGraph::from_locations(&locs, ttp.config().lambda);
        assert_eq!(result.conflicts, plain);
    }

    #[test]
    fn disguised_zero_wins_are_invalidated_not_charged() {
        // One genuine small bid, many bidders whose zeros always disguise
        // as large values: disguises will win but must never be charged.
        let (ttp, mut rng) = ttp(1, 3);
        let bmax = ttp.config().bid_max();
        let always_high = ZeroReplacePolicy::from_probabilities({
            let mut p = vec![0.0; bmax as usize + 1];
            p[bmax as usize] = 1.0; // always disguise as bmax
            p
        });
        // All bidders conflict (same spot) so exactly one grant happens.
        let bidders: Vec<(Location, Vec<u32>)> = vec![
            (Location::new(5, 5), vec![1]),
            (Location::new(5, 5), vec![0]),
            (Location::new(5, 5), vec![0]),
        ];
        let result = run_private_auction_from_bids(&bidders, &ttp, &always_high, &mut rng).unwrap();
        // The disguised zeros (presenting bmax) beat the genuine bid 1.
        assert_eq!(result.grants.len(), 1);
        assert_eq!(result.invalid_grants.len(), 1);
        assert!(result.outcome.assignments().is_empty());
        assert_eq!(result.outcome.revenue(), 0);
    }

    #[test]
    fn revenue_decreases_with_disguise_probability() {
        // The Fig. 5e effect in miniature: more disguising, less revenue.
        let (ttp, _) = ttp(4, 4);
        let run = |replace: f64, seed: u64| -> u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let policy = ZeroReplacePolicy::uniform(replace, ttp.config().bid_max());
            use lppa_rng::Rng as _;
            let bidders: Vec<(Location, Vec<u32>)> = (0..20)
                .map(|_| {
                    let loc = Location::new(rng.gen_range(0..=127), rng.gen_range(0..=127));
                    let bids = (0..4)
                        .map(|_| if rng.gen_bool(0.5) { 0 } else { rng.gen_range(1..=80) })
                        .collect();
                    (loc, bids)
                })
                .collect();
            run_private_auction_from_bids(&bidders, &ttp, &policy, &mut rng)
                .unwrap()
                .outcome
                .revenue()
        };
        let mut none_total = 0u64;
        let mut full_total = 0u64;
        for seed in 0..8 {
            none_total += run(0.0, seed);
            full_total += run(1.0, seed);
        }
        assert!(
            full_total < none_total,
            "full disguising ({full_total}) should cost revenue vs none ({none_total})"
        );
    }

    #[test]
    fn submission_wire_len_accounts_location_and_bids() {
        let (ttp, mut rng) = ttp(2, 5);
        let policy = ZeroReplacePolicy::never(ttp.config().bid_max());
        let sub =
            SuSubmission::build(Location::new(3, 4), &[1, 2], &ttp, &policy, &mut rng).unwrap();
        assert_eq!(sub.wire_len(), sub.location.wire_len() + sub.bids.wire_len());
        assert!(sub.wire_len() > 0);
    }

    #[test]
    fn validate_submission_accepts_genuine_and_names_damage() {
        let (ttp, mut rng) = ttp(2, 6);
        let policy = ZeroReplacePolicy::never(ttp.config().bid_max());
        let sub =
            SuSubmission::build(Location::new(9, 9), &[3, 0], &ttp, &policy, &mut rng).unwrap();
        assert!(validate_submission(&sub, &ttp).is_ok());

        // Ragged channel count.
        let ttp3 = Ttp::new(3, *ttp.config(), &mut rng).unwrap();
        let ragged =
            SuSubmission::build(Location::new(9, 9), &[1, 2, 3], &ttp3, &policy, &mut rng).unwrap();
        assert!(matches!(
            validate_submission(&ragged, &ttp),
            Err(LppaError::ChannelCountMismatch { submitted: 3, expected: 2 })
        ));

        // Truncated point tags on one channel.
        let mut bids = sub.bids.bids().to_vec();
        let kept: Vec<_> = bids[1].point.iter().copied().take(3).collect();
        bids[1].point = lppa_prefix::MaskedPoint::from_tags(kept).unwrap();
        let truncated = SuSubmission {
            location: sub.location.clone(),
            bids: crate::ppbs::bid::AdvancedBidSubmission::from_parts(
                bids,
                sub.bids.presented_positive().to_vec(),
            )
            .unwrap(),
        };
        let err = validate_submission(&truncated, &ttp).unwrap_err();
        assert!(err.to_string().contains("channel 1 point"), "{err}");
    }

    #[test]
    fn checksum_detects_bid_tampering() {
        let (ttp, mut rng) = ttp(2, 7);
        let policy = ZeroReplacePolicy::never(ttp.config().bid_max());
        let sub =
            SuSubmission::build(Location::new(4, 5), &[7, 9], &ttp, &policy, &mut rng).unwrap();
        let original = sub.checksum();
        // Re-mask channel 0's point as a different value: same shape,
        // different tags — the checksum must move.
        let config = *ttp.config();
        let forged = lppa_prefix::MaskedPoint::mask(
            &ttp.bidder_keys().gb[0],
            config.transformed_bits(),
            config.cr * config.offset_bid(100),
        )
        .unwrap();
        let mut bids = sub.bids.bids().to_vec();
        bids[0].point = forged;
        let tampered = SuSubmission {
            location: sub.location,
            bids: crate::ppbs::bid::AdvancedBidSubmission::from_parts(
                bids,
                sub.bids.presented_positive().to_vec(),
            )
            .unwrap(),
        };
        assert_ne!(original, tampered.checksum());
        // Shape is intact, so structural validation still passes — the
        // checksum is the transport-level defence, the TTP the
        // protocol-level one.
        assert!(validate_submission(&tampered, &ttp).is_ok());
    }

    #[test]
    fn tolerant_auction_quarantines_ragged_and_continues() {
        let (ttp, mut rng) = ttp(2, 8);
        let policy = ZeroReplacePolicy::never(ttp.config().bid_max());
        let good_a =
            SuSubmission::build(Location::new(0, 0), &[50, 10], &ttp, &policy, &mut rng).unwrap();
        let ttp3 = Ttp::new(3, *ttp.config(), &mut rng).unwrap();
        let ragged =
            SuSubmission::build(Location::new(5, 5), &[1, 2, 3], &ttp3, &policy, &mut rng).unwrap();
        let good_b =
            SuSubmission::build(Location::new(90, 90), &[20, 40], &ttp, &policy, &mut rng).unwrap();

        let result = run_private_auction_tolerant(
            &[good_a, ragged, good_b],
            &ttp,
            AuctioneerModel::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(result.accepted, vec![0, 2]);
        assert_eq!(result.rejected.len(), 1);
        assert_eq!(result.rejected[0].0, 1);
        // Original ids survive translation: bidder 2 (not compact id 1)
        // appears in the outcome.
        let winners: Vec<usize> = result.outcome.assignments().iter().map(|a| a.bidder.0).collect();
        assert!(winners.contains(&0) && winners.contains(&2), "{winners:?}");
        assert!(!winners.contains(&1));
        // Both valid bidders are far apart: each takes a channel.
        assert_eq!(result.outcome.assignments().len(), 2);
    }

    #[test]
    fn tolerant_auction_strikes_manipulated_grants_only() {
        // One bidder presents the prefixes of a huge bid but seals a tiny
        // one: it wins allocation, the TTP flags manipulation, and only
        // that grant is struck — honest winners keep theirs.
        let (ttp, mut rng) = ttp(1, 9);
        let config = *ttp.config();
        let policy = ZeroReplacePolicy::never(config.bid_max());
        let honest =
            SuSubmission::build(Location::new(0, 0), &[30], &ttp, &policy, &mut rng).unwrap();
        let mut cheat =
            SuSubmission::build(Location::new(1, 1), &[2], &ttp, &policy, &mut rng).unwrap();
        // Forge the presented point/range as bid 120, keep the sealed 2.
        let shown = config.cr * config.offset_bid(120);
        let keys = ttp.bidder_keys();
        let mut bids = cheat.bids.bids().to_vec();
        bids[0].point =
            lppa_prefix::MaskedPoint::mask(&keys.gb[0], config.transformed_bits(), shown).unwrap();
        bids[0].range = lppa_prefix::MaskedRange::mask_padded(
            &keys.gb[0],
            config.transformed_bits(),
            shown,
            config.transformed_max(),
            &mut rng,
        )
        .unwrap();
        cheat.bids = crate::ppbs::bid::AdvancedBidSubmission::from_parts(
            bids,
            cheat.bids.presented_positive().to_vec(),
        )
        .unwrap();

        let result = run_private_auction_tolerant(
            &[honest, cheat],
            &ttp,
            AuctioneerModel::default(),
            &mut rng,
        )
        .unwrap();
        // The cheat won the (conflicting) contest but was struck.
        assert!(result
            .rejected
            .iter()
            .any(|(i, e)| *i == 1 && matches!(e, LppaError::ChargeManipulated)));
        assert!(result.outcome.assignments().iter().all(|a| a.bidder.0 != 1));
    }

    #[test]
    fn grant_bidders_projects() {
        let grants = vec![
            Grant { bidder: BidderId(3), channel: lppa_spectrum::ChannelId(0) },
            Grant { bidder: BidderId(1), channel: lppa_spectrum::ChannelId(2) },
        ];
        assert_eq!(grant_bidders(&grants), vec![BidderId(3), BidderId(1)]);
    }
}
