//! The end-to-end LPPA protocol: bidder side, auctioneer side, TTP
//! charging.
//!
//! The flow mirrors the paper's architecture (Fig. 1a):
//!
//! 1. the TTP issues keys to the bidders ([`crate::ttp::Ttp`]);
//! 2. each SU builds a [`SuSubmission`] — masked location plus masked,
//!    transformed bids — and sends it to the auctioneer;
//! 3. the auctioneer constructs the conflict graph and runs the greedy
//!    allocation entirely on masked data;
//! 4. winning sealed bids go to the TTP in one batch; valid charges come
//!    back, disguised zeros are flagged invalid (the channel grant is
//!    wasted — the §VI performance cost of the defence).

use lppa_auction::allocation::{greedy_allocate, Grant};
use lppa_auction::bidder::{BidderId, Location};
use lppa_auction::conflict::ConflictGraph;
use lppa_auction::outcome::{Assignment, AuctionOutcome};
use lppa_rng::rngs::StdRng;
use lppa_rng::{Rng, SeedableRng};

use crate::error::LppaError;
use crate::ppbs::bid::AdvancedBidSubmission;
use crate::ppbs::location::{build_conflict_graph, LocationSubmission};
use crate::psd::table::MaskedBidTable;
use crate::ttp::{ChargeDecision, ChargeRequest, Ttp};
use crate::zero_replace::ZeroReplacePolicy;

/// Everything one secondary user transmits to the auctioneer.
#[derive(Clone, Debug)]
pub struct SuSubmission {
    /// Masked location (conflict-graph material).
    pub location: LocationSubmission,
    /// Masked, transformed per-channel bids.
    pub bids: AdvancedBidSubmission,
}

impl SuSubmission {
    /// Builds a submission on the bidder side.
    ///
    /// # Errors
    ///
    /// Propagates location/bid domain violations and configuration
    /// errors.
    pub fn build<R: Rng + ?Sized>(
        location: Location,
        raw_bids: &[u32],
        ttp: &Ttp,
        policy: &ZeroReplacePolicy,
        rng: &mut R,
    ) -> Result<Self, LppaError> {
        let keys = ttp.bidder_keys();
        let config = ttp.config();
        Ok(Self {
            location: LocationSubmission::build(location, &keys.g0, config, rng)?,
            bids: AdvancedBidSubmission::build(raw_bids, keys, config, policy, rng)?,
        })
    }

    /// Total transmission size in bytes.
    pub fn wire_len(&self) -> usize {
        self.location.wire_len() + self.bids.wire_len()
    }
}

/// How the auctioneer handles cells it cannot prove are genuine bids.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AuctioneerModel {
    /// Fully oblivious single-shot charging: every cell is an entry, the
    /// TTP is consulted exactly once, and every invalid (zero) win is a
    /// final, wasted grant. This is the most conservative reading of the
    /// paper and over-counts wasted grants in the long tail, where
    /// columns hold only plain zeros.
    Oblivious,
    /// Iterative charging: when a winner turns out to be an *undisguised*
    /// zero, the TTP can prove it (the sealed zero-band value matches the
    /// submitted prefixes), reveal it, and the auctioneer strikes the
    /// cell and re-auctions the channel. Disguised-zero wins stay final —
    /// retrying those would reveal which bids were disguises and defeat
    /// the defence. Equivalent to pruning plain-zero cells up front,
    /// which is how it is implemented. This model matches the paper's
    /// §VI performance curves and is the default.
    #[default]
    IterativeCharging,
}

/// The auctioneer's result of a private auction round.
#[derive(Clone, Debug)]
pub struct PrivateAuctionResult {
    /// Valid assignments with TTP-decrypted first-price charges.
    pub outcome: AuctionOutcome,
    /// Grants the TTP invalidated (disguised zeros that won) — wasted
    /// spectrum, the price of the defence.
    pub invalid_grants: Vec<Grant>,
    /// The conflict graph the auctioneer reconstructed from masked
    /// locations.
    pub conflicts: ConflictGraph,
    /// The raw grants in allocation order (before charging).
    pub grants: Vec<Grant>,
}

/// Runs the auctioneer + TTP side of one complete LPPA auction.
///
/// `table` and the location submissions come from collected
/// [`SuSubmission`]s; `ttp` performs the charging step.
///
/// # Errors
///
/// Returns an error if the submissions are inconsistent or the TTP
/// detects tampering. Disguised zeros are *not* errors — they surface in
/// `invalid_grants`.
pub fn run_private_auction<R: Rng>(
    submissions: &[SuSubmission],
    ttp: &Ttp,
    rng: &mut R,
) -> Result<PrivateAuctionResult, LppaError> {
    run_private_auction_with_model(submissions, ttp, AuctioneerModel::default(), rng)
}

/// As [`run_private_auction`], with an explicit [`AuctioneerModel`].
///
/// # Errors
///
/// As for [`run_private_auction`].
pub fn run_private_auction_with_model<R: Rng>(
    submissions: &[SuSubmission],
    ttp: &Ttp,
    model: AuctioneerModel,
    rng: &mut R,
) -> Result<PrivateAuctionResult, LppaError> {
    // Phase 1: conflict graph from masked locations.
    let locations: Vec<LocationSubmission> =
        submissions.iter().map(|s| s.location.clone()).collect();
    let conflicts = build_conflict_graph(&locations);

    // Phase 2: masked table.
    let bids = submissions.iter().map(|s| s.bids.clone()).collect();
    let table = match model {
        AuctioneerModel::Oblivious => MaskedBidTable::collect(bids)?,
        AuctioneerModel::IterativeCharging => MaskedBidTable::collect_pruned(bids)?,
    };

    // Phase 3: greedy allocation over masked comparisons.
    let grants = greedy_allocate(&table, &conflicts, rng);

    // Phase 4: batch charging through the TTP.
    let requests: Vec<ChargeRequest> = grants
        .iter()
        .map(|g| {
            let bid = &table.submissions()[g.bidder.0].bids()[g.channel.0];
            ChargeRequest {
                channel: g.channel,
                sealed: bid.sealed.clone(),
                point: bid.point.clone(),
            }
        })
        .collect();
    let decisions = ttp.open_charges(&requests)?;

    let mut assignments = Vec::new();
    let mut invalid_grants = Vec::new();
    for (grant, decision) in grants.iter().zip(decisions) {
        match decision {
            ChargeDecision::Valid { raw_price } => assignments.push(Assignment {
                bidder: grant.bidder,
                channel: grant.channel,
                price: raw_price,
            }),
            ChargeDecision::InvalidZero => invalid_grants.push(*grant),
        }
    }

    Ok(PrivateAuctionResult {
        outcome: AuctionOutcome::from_assignments(assignments, submissions.len()),
        invalid_grants,
        conflicts,
        grants,
    })
}

/// Convenience wrapper: builds every submission and runs the auction.
///
/// `bidders` supplies `(location, raw bid vector)` pairs; all bidders
/// share `policy`.
///
/// # Errors
///
/// As for [`SuSubmission::build`] and [`run_private_auction`].
pub fn run_private_auction_from_bids<R: Rng>(
    bidders: &[(Location, Vec<u32>)],
    ttp: &Ttp,
    policy: &ZeroReplacePolicy,
    rng: &mut R,
) -> Result<PrivateAuctionResult, LppaError> {
    run_private_auction_from_bids_with_model(bidders, ttp, policy, AuctioneerModel::default(), rng)
}

/// As [`run_private_auction_from_bids`], with an explicit
/// [`AuctioneerModel`].
///
/// # Errors
///
/// As for [`run_private_auction_from_bids`].
pub fn run_private_auction_from_bids_with_model<R: Rng>(
    bidders: &[(Location, Vec<u32>)],
    ttp: &Ttp,
    policy: &ZeroReplacePolicy,
    model: AuctioneerModel,
    rng: &mut R,
) -> Result<PrivateAuctionResult, LppaError> {
    let submissions = build_submissions(bidders, ttp, policy, rng)?;
    run_private_auction_with_model(&submissions, ttp, model, rng)
}

/// Builds every bidder's [`SuSubmission`] in parallel.
///
/// Bidders are independent by construction — each one masks its own
/// tags under the shared keys — so the batch fans out across the
/// `lppa_par` worker pool. To keep the output independent of the thread
/// count, one child seed per bidder is drawn *sequentially* from the
/// caller's RNG first; each submission is then derived from its own
/// seeded [`StdRng`]. The result is bit-identical for every
/// `LPPA_THREADS` value (the reproducibility CI gate runs the suite
/// under 1 and 4 threads to prove it).
///
/// # Errors
///
/// Returns the first (by bidder order) domain or configuration error, as
/// for [`SuSubmission::build`].
pub fn build_submissions<R: Rng>(
    bidders: &[(Location, Vec<u32>)],
    ttp: &Ttp,
    policy: &ZeroReplacePolicy,
    rng: &mut R,
) -> Result<Vec<SuSubmission>, LppaError> {
    let seeded: Vec<(u64, &(Location, Vec<u32>))> =
        bidders.iter().map(|bidder| (rng.next_u64(), bidder)).collect();
    lppa_par::par_map(&seeded, |(seed, (location, raw_bids))| {
        let mut child = StdRng::seed_from_u64(*seed);
        SuSubmission::build(*location, raw_bids, ttp, policy, &mut child)
    })
    .into_iter()
    .collect()
}

/// Re-derives which bidder a grant belongs to for bookkeeping.
pub fn grant_bidders(grants: &[Grant]) -> Vec<BidderId> {
    grants.iter().map(|g| g.bidder).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LppaConfig;
    use lppa_rng::rngs::StdRng;
    use lppa_rng::SeedableRng;

    fn ttp(k: usize, seed: u64) -> (Ttp, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ttp = Ttp::new(k, LppaConfig::default(), &mut rng).unwrap();
        (ttp, rng)
    }

    #[test]
    fn private_auction_matches_plaintext_semantics_without_disguises() {
        // With no zero disguises, the private auction must award channels
        // to plaintext maxima, respect conflicts, and charge first price.
        let (ttp, mut rng) = ttp(3, 1);
        let policy = ZeroReplacePolicy::never(ttp.config().bid_max());
        let bidders: Vec<(Location, Vec<u32>)> = vec![
            (Location::new(0, 0), vec![50, 0, 10]),
            (Location::new(100, 100), vec![40, 20, 0]),
            (Location::new(1, 1), vec![60, 0, 5]), // conflicts with bidder 0
        ];
        let result = run_private_auction_from_bids(&bidders, &ttp, &policy, &mut rng).unwrap();

        assert!(result.invalid_grants.is_empty(), "no disguises, no invalid wins");
        // Bidder 2 outbids bidder 0 on channel 0 and they conflict, so
        // bidder 0 cannot also hold channel 0.
        let holders0: Vec<BidderId> = result
            .outcome
            .assignments()
            .iter()
            .filter(|a| a.channel == lppa_spectrum::ChannelId(0))
            .map(|a| a.bidder)
            .collect();
        assert!(result.conflicts.is_independent(&holders0));
        // Every charge equals the raw bid.
        for a in result.outcome.assignments() {
            assert_eq!(a.price, bidders[a.bidder.0].1[a.channel.0], "{a:?}");
            assert!(a.price > 0);
        }
    }

    #[test]
    fn conflict_graph_matches_plaintext() {
        let (ttp, mut rng) = ttp(1, 2);
        let policy = ZeroReplacePolicy::never(ttp.config().bid_max());
        let locs = [
            Location::new(10, 10),
            Location::new(12, 12),
            Location::new(90, 90),
            Location::new(13, 9),
        ];
        let bidders: Vec<(Location, Vec<u32>)> = locs.iter().map(|&l| (l, vec![5u32])).collect();
        let result = run_private_auction_from_bids(&bidders, &ttp, &policy, &mut rng).unwrap();
        let plain = ConflictGraph::from_locations(&locs, ttp.config().lambda);
        assert_eq!(result.conflicts, plain);
    }

    #[test]
    fn disguised_zero_wins_are_invalidated_not_charged() {
        // One genuine small bid, many bidders whose zeros always disguise
        // as large values: disguises will win but must never be charged.
        let (ttp, mut rng) = ttp(1, 3);
        let bmax = ttp.config().bid_max();
        let always_high = ZeroReplacePolicy::from_probabilities({
            let mut p = vec![0.0; bmax as usize + 1];
            p[bmax as usize] = 1.0; // always disguise as bmax
            p
        });
        // All bidders conflict (same spot) so exactly one grant happens.
        let bidders: Vec<(Location, Vec<u32>)> = vec![
            (Location::new(5, 5), vec![1]),
            (Location::new(5, 5), vec![0]),
            (Location::new(5, 5), vec![0]),
        ];
        let result = run_private_auction_from_bids(&bidders, &ttp, &always_high, &mut rng).unwrap();
        // The disguised zeros (presenting bmax) beat the genuine bid 1.
        assert_eq!(result.grants.len(), 1);
        assert_eq!(result.invalid_grants.len(), 1);
        assert!(result.outcome.assignments().is_empty());
        assert_eq!(result.outcome.revenue(), 0);
    }

    #[test]
    fn revenue_decreases_with_disguise_probability() {
        // The Fig. 5e effect in miniature: more disguising, less revenue.
        let (ttp, _) = ttp(4, 4);
        let run = |replace: f64, seed: u64| -> u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let policy = ZeroReplacePolicy::uniform(replace, ttp.config().bid_max());
            use lppa_rng::Rng as _;
            let bidders: Vec<(Location, Vec<u32>)> = (0..20)
                .map(|_| {
                    let loc = Location::new(rng.gen_range(0..=127), rng.gen_range(0..=127));
                    let bids = (0..4)
                        .map(|_| if rng.gen_bool(0.5) { 0 } else { rng.gen_range(1..=80) })
                        .collect();
                    (loc, bids)
                })
                .collect();
            run_private_auction_from_bids(&bidders, &ttp, &policy, &mut rng)
                .unwrap()
                .outcome
                .revenue()
        };
        let mut none_total = 0u64;
        let mut full_total = 0u64;
        for seed in 0..8 {
            none_total += run(0.0, seed);
            full_total += run(1.0, seed);
        }
        assert!(
            full_total < none_total,
            "full disguising ({full_total}) should cost revenue vs none ({none_total})"
        );
    }

    #[test]
    fn submission_wire_len_accounts_location_and_bids() {
        let (ttp, mut rng) = ttp(2, 5);
        let policy = ZeroReplacePolicy::never(ttp.config().bid_max());
        let sub =
            SuSubmission::build(Location::new(3, 4), &[1, 2], &ttp, &policy, &mut rng).unwrap();
        assert_eq!(sub.wire_len(), sub.location.wire_len() + sub.bids.wire_len());
        assert!(sub.wire_len() > 0);
    }

    #[test]
    fn grant_bidders_projects() {
        let grants = vec![
            Grant { bidder: BidderId(3), channel: lppa_spectrum::ChannelId(0) },
            Grant { bidder: BidderId(1), channel: lppa_spectrum::ChannelId(2) },
        ];
        assert_eq!(grant_bidders(&grants), vec![BidderId(3), BidderId(1)]);
    }
}
