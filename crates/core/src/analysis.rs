//! Closed-form analysis of the advanced bid scheme (Theorems 1–4 of the
//! paper) and Monte-Carlo estimators to validate them.
//!
//! The theorems quantify the privacy/performance tradeoff of zero
//! replacement on a single channel with `N` true bids `b_1 ≤ … ≤ b_N`
//! and `m` zeros, each zero independently presenting a disguise value
//! `r ∈ {0, …, bmax}` with probability `p_r`:
//!
//! * **Theorem 1** — probability that no (disguised) zero wins the
//!   channel;
//! * **Theorem 2** — probability of *no location leakage* when the
//!   auctioneer attributes the channel to the holders of the `t` largest
//!   masked bids (all `t` attributed bids are in fact zeros);
//! * **Theorem 3** — expected number `E[μ]` of true (plaintext) bids
//!   among the `t` largest under uniform replacement;
//! * **Theorem 4** — the transmission cost of the advanced protocol.
//!
//! The printed formulas for Theorems 2 and 3 contain transcription
//! ambiguities in the source text; this module provides the formulas *as
//! printed* plus independently derived exact forms and Monte-Carlo
//! estimators, so the benches can display all of them side by side.

use lppa_rng::Rng;

use crate::zero_replace::ZeroReplacePolicy;

/// Binomial coefficient over `f64` (exact for the small arguments used
/// here; returns 0 for `k > n`).
pub fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Sum of disguise probabilities over an inclusive value range.
fn prob_range(policy: &ZeroReplacePolicy, lo: u32, hi: u32) -> f64 {
    if lo > hi {
        return 0.0;
    }
    (lo..=hi).map(|r| policy.prob(r)).sum()
}

/// **Theorem 1**: probability that no zero wins, given the largest true
/// bid `b_n` and `m` zeros.
///
/// `p_f = [(1 − S_>)^(m+1) − (1 − S_≥)^(m+1)] / ((m+1)·p_{b_n})`, with
/// the analytic limit `(1 − S_>)^m` when `p_{b_n} = 0`.
pub fn theorem1_zero_loses(policy: &ZeroReplacePolicy, b_n: u32, m: usize) -> f64 {
    let bmax = policy.bmax();
    let s_gt = if b_n >= bmax { 0.0 } else { prob_range(policy, b_n + 1, bmax) };
    let p_bn = policy.prob(b_n);
    if p_bn < 1e-12 {
        return (1.0 - s_gt).powi(m as i32);
    }
    let a = (1.0 - s_gt).powi(m as i32 + 1);
    let b = (1.0 - s_gt - p_bn).powi(m as i32 + 1);
    (a - b) / ((m as f64 + 1.0) * p_bn)
}

/// Monte-Carlo estimator for the Theorem 1 event.
pub fn simulate_zero_loses<R: Rng + ?Sized>(
    policy: &ZeroReplacePolicy,
    b_n: u32,
    m: usize,
    trials: usize,
    rng: &mut R,
) -> f64 {
    let mut losses = 0usize;
    for _ in 0..trials {
        let mut above = false;
        let mut tied = 0usize;
        for _ in 0..m {
            let value = policy.sample(rng).unwrap_or(0);
            if value > b_n {
                above = true;
                break;
            }
            if value == b_n {
                tied += 1;
            }
        }
        if above {
            continue; // a zero won outright
        }
        // tied zeros at b_n plus the original: uniform winner.
        if tied == 0 || rng.gen_range(0..=tied) == 0 {
            losses += 1;
        }
    }
    losses as f64 / trials as f64
}

/// **Theorem 2** (exact form): probability that the `t` largest masked
/// bids are all zeros, i.e. the attribution leaks nothing.
///
/// Derivation: let `k` zeros disguise strictly above `b_n`. If `k ≥ t`
/// the top-`t` are zeros regardless. Otherwise `t − k` more slots are
/// filled from the tie group at `b_n` (`j` zeros plus the original); no
/// leakage requires the original to escape a uniform `(t−k)`-subset of
/// the `j + 1` tied candidates, which happens with probability
/// `(j + 1 − (t − k)) / (j + 1)`.
pub fn theorem2_no_leakage(policy: &ZeroReplacePolicy, b_n: u32, m: usize, t: usize) -> f64 {
    let bmax = policy.bmax();
    let s_gt = if b_n >= bmax { 0.0 } else { prob_range(policy, b_n + 1, bmax) };
    let s_lt = if b_n == 0 { 0.0 } else { prob_range(policy, 0, b_n - 1) };
    let p_bn = policy.prob(b_n);

    let mut total = 0.0;
    for k in 0..=m {
        let p_k = binomial(m as u64, k as u64) * s_gt.powi(k as i32);
        if k >= t {
            total += p_k * (1.0 - s_gt).powi((m - k) as i32);
            continue;
        }
        let need = t - k;
        let mut inner = 0.0;
        for j in need..=(m - k) {
            let escape = (j + 1 - need) as f64 / (j + 1) as f64;
            inner += binomial((m - k) as u64, j as u64)
                * p_bn.powi(j as i32)
                * s_lt.powi((m - k - j) as i32)
                * escape;
        }
        total += p_k * inner;
    }
    total
}

/// **Theorem 2** exactly as printed in the paper, where the escape factor
/// is `(j − 1)/j`. Kept for comparison with
/// [`theorem2_no_leakage`] and the Monte-Carlo estimate.
pub fn theorem2_as_printed(policy: &ZeroReplacePolicy, b_n: u32, m: usize, t: usize) -> f64 {
    let bmax = policy.bmax();
    let s_gt = if b_n >= bmax { 0.0 } else { prob_range(policy, b_n + 1, bmax) };
    let s_le = prob_range(policy, 0, b_n);
    let s_lt = if b_n == 0 { 0.0 } else { prob_range(policy, 0, b_n - 1) };
    let p_bn = policy.prob(b_n);

    let mut total = 0.0;
    for k in t..=m {
        total += binomial(m as u64, k as u64) * s_gt.powi(k as i32) * s_le.powi((m - k) as i32);
    }
    for k in 0..t.min(m + 1) {
        let mut inner = 0.0;
        for j in (t - k)..=(m.saturating_sub(k)) {
            if j == 0 {
                continue;
            }
            inner += ((j - 1) as f64 / j as f64)
                * binomial((m - k) as u64, j as u64)
                * s_lt.powi((m - k - j) as i32)
                * p_bn.powi(j as i32);
        }
        total += binomial(m as u64, k as u64) * s_gt.powi(k as i32) * inner;
    }
    total
}

/// Monte-Carlo estimator for the Theorem 2 event: the auctioneer takes
/// the `t` largest of `m` disguised zeros and the true bids
/// `true_bids` (ascending), breaking ties uniformly; success iff no true
/// bid is selected.
pub fn simulate_no_leakage<R: Rng + ?Sized>(
    policy: &ZeroReplacePolicy,
    true_bids: &[u32],
    m: usize,
    t: usize,
    trials: usize,
    rng: &mut R,
) -> f64 {
    let mut safe = 0usize;
    for _ in 0..trials {
        // (value, is_true_bid, random tiebreak)
        let mut pool: Vec<(u32, bool, u64)> = Vec::with_capacity(true_bids.len() + m);
        for &b in true_bids {
            pool.push((b, true, rng.gen()));
        }
        for _ in 0..m {
            pool.push((policy.sample(rng).unwrap_or(0), false, rng.gen()));
        }
        pool.sort_by(|a, b| b.0.cmp(&a.0).then(a.2.cmp(&b.2)));
        if pool.iter().take(t).all(|&(_, is_true, _)| !is_true) {
            safe += 1;
        }
    }
    safe as f64 / trials as f64
}

/// Monte-Carlo estimator of **Theorem 3**'s quantity: the expected
/// number of *true* bids among the `t` largest, under `policy`.
pub fn simulate_expected_true_selected<R: Rng + ?Sized>(
    policy: &ZeroReplacePolicy,
    true_bids: &[u32],
    m: usize,
    t: usize,
    trials: usize,
    rng: &mut R,
) -> f64 {
    let mut total = 0usize;
    for _ in 0..trials {
        let mut pool: Vec<(u32, bool, u64)> = Vec::with_capacity(true_bids.len() + m);
        for &b in true_bids {
            pool.push((b, true, rng.gen()));
        }
        for _ in 0..m {
            pool.push((policy.sample(rng).unwrap_or(0), false, rng.gen()));
        }
        pool.sort_by(|a, b| b.0.cmp(&a.0).then(a.2.cmp(&b.2)));
        total += pool.iter().take(t).filter(|&&(_, is_true, _)| is_true).count();
    }
    total as f64 / trials as f64
}

/// **Theorem 3** as printed: `E[μ]` under the uniform policy
/// `p = 1/(1 + bmax)`, given the ascending true bids. Kept for
/// side-by-side comparison with the Monte-Carlo estimate — the printed
/// combinatorial form does not reproduce simulation for all parameters
/// (see EXPERIMENTS.md).
pub fn theorem3_as_printed(bmax: u32, true_bids_sorted: &[u32], m: usize, t: usize) -> f64 {
    let n = true_bids_sorted.len();
    let p = 1.0 / (1.0 + f64::from(bmax));
    let mut expectation = 0.0;
    for mu in 1..=t.min(n) {
        let b_n_mu = f64::from(true_bids_sorted[n - mu]);
        let outer =
            binomial((f64::from(bmax) - b_n_mu - mu as f64).max(0.0) as u64, (t - mu) as u64);
        let mut sum_j = 0.0;
        for j in (t - mu)..=m {
            let mut sum_i = 0.0;
            let upper = j as i64 - t as i64 + mu as i64;
            if upper < 0 {
                continue;
            }
            for i in 0..=(upper as usize) {
                sum_i += binomial(j as u64, i as u64)
                    * binomial((i + mu - 1) as u64, (mu - 1) as u64)
                    * if t == mu {
                        // C(j−i−1, −1) degenerates; only the empty
                        // arrangement (i = j) contributes.
                        if i == j {
                            1.0
                        } else {
                            0.0
                        }
                    } else {
                        binomial((j as i64 - i as i64 - 1).max(0) as u64, (t - mu - 1) as u64)
                    };
            }
            sum_j += binomial(m as u64, j as u64) * sum_i * (1.0 + b_n_mu).powi((m - j) as i32);
        }
        expectation += mu as f64 * p.powi(m as i32) * outer * sum_j;
    }
    expectation
}

/// **Theorem 4**: total bits of prefix material transmitted by the
/// advanced bid protocol — `h · k · N · (3w − 1) · (w + 1)` where `w` is
/// the transmitted bid width and `h` the ratio of HMAC-tag bits to
/// prefix bits.
///
/// With 128-bit tags, `h = 128 / (w + 1)` and the expression collapses
/// to `128 · k · N · (3w − 1)` bits: each bid ships a `(w+1)`-tag family
/// plus a `(2w−2)`-tag padded range.
pub fn theorem4_bid_bits(n_bidders: usize, n_channels: usize, width: u8) -> u64 {
    let tags_per_bid = 3 * u64::from(width) - 1;
    128 * n_bidders as u64 * n_channels as u64 * tags_per_bid
}

/// Closed-form per-party cost model of one auction round, extending
/// Theorem 4's transmission count with computation counts. Validated
/// against actually-built submissions in the tests and the
/// `comm_cost` binary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// HMAC invocations per bidder (location family + padded ranges per
    /// axis, plus per channel: family + genuine range prefixes; padding
    /// tags are random, not hashed).
    pub bidder_hmacs_worst_case: u64,
    /// Masked tags each bidder transmits (location + all channels).
    pub bidder_tags: u64,
    /// Bytes each bidder transmits (tags + sealed prices).
    pub bidder_bytes: u64,
    /// Pairwise conflict tests the auctioneer evaluates.
    pub auctioneer_conflict_tests: u64,
    /// Upper bound on masked comparisons during allocation: each of the
    /// ≤ N awards scans its column once (≤ N−1 comparisons) plus the
    /// tie sweep (≤ N).
    pub auctioneer_comparisons_bound: u64,
}

/// Computes the cost model for `n_bidders` and `n_channels` under
/// `config`.
pub fn cost_model(
    config: &crate::config::LppaConfig,
    n_bidders: usize,
    n_channels: usize,
) -> CostModel {
    let n = n_bidders as u64;
    let k = n_channels as u64;
    let w_loc = u64::from(config.loc_bits);
    let w_bid = u64::from(config.transformed_bits());

    // Per axis: family (w+1 tags, all hashed) + range padded to 2w−2
    // tags of which at most 2w−2 are genuine hashes.
    let loc_tags = 2 * ((w_loc + 1) + (2 * w_loc - 2));
    // Per channel: family (w+1) + padded range (2w−2).
    let bid_tags = k * ((w_bid + 1) + (2 * w_bid - 2));
    let tag_len = 16u64;
    let sealed_len = 36u64; // nonce 12 + ct 8 + mac 16

    CostModel {
        bidder_hmacs_worst_case: loc_tags + bid_tags,
        bidder_tags: loc_tags + bid_tags,
        bidder_bytes: (loc_tags + bid_tags) * tag_len + k * sealed_len,
        auctioneer_conflict_tests: n * (n - 1) / 2,
        auctioneer_comparisons_bound: n * 2 * n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lppa_rng::rngs::StdRng;
    use lppa_rng::SeedableRng;

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(3, 7), 0.0);
        assert!((binomial(20, 10) - 184_756.0).abs() < 1e-6);
    }

    #[test]
    fn theorem1_never_policy_is_certain() {
        let policy = ZeroReplacePolicy::never(15);
        assert!((theorem1_zero_loses(&policy, 5, 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn theorem1_matches_monte_carlo() {
        let mut rng = StdRng::seed_from_u64(42);
        for (replace, b_n, m) in [(0.3, 10u32, 5usize), (0.7, 14, 8), (0.95, 3, 12)] {
            let policy = ZeroReplacePolicy::uniform(replace, 15);
            let closed = theorem1_zero_loses(&policy, b_n, m);
            let mc = simulate_zero_loses(&policy, b_n, m, 60_000, &mut rng);
            assert!(
                (closed - mc).abs() < 0.01,
                "replace={replace} b_n={b_n} m={m}: closed {closed} vs mc {mc}"
            );
        }
    }

    #[test]
    fn theorem1_is_monotone_in_replacement() {
        // More disguising → zeros win more often → p_f decreases.
        let mut prev = 1.0;
        for replace in [0.1, 0.3, 0.5, 0.9] {
            let policy = ZeroReplacePolicy::uniform(replace, 31);
            let p = theorem1_zero_loses(&policy, 20, 10);
            assert!(p <= prev + 1e-12, "replace={replace}");
            prev = p;
        }
    }

    #[test]
    fn theorem2_exact_matches_monte_carlo() {
        let mut rng = StdRng::seed_from_u64(7);
        // The closed form assumes only the largest true bid matters, so
        // give the pool one dominant bid (others far below b_n, below any
        // plausible selection boundary is not required — they are simply
        // smaller than b_n and the formula's event ignores them).
        let b_n = 12u32;
        let true_bids = vec![b_n];
        for (replace, m, t) in [(0.5, 8usize, 2usize), (0.8, 10, 3), (0.9, 12, 1)] {
            let policy = ZeroReplacePolicy::uniform(replace, 15);
            let closed = theorem2_no_leakage(&policy, b_n, m, t);
            let mc = simulate_no_leakage(&policy, &true_bids, m, t, 60_000, &mut rng);
            assert!(
                (closed - mc).abs() < 0.012,
                "replace={replace} m={m} t={t}: closed {closed} vs mc {mc}"
            );
        }
    }

    #[test]
    fn theorem2_printed_form_is_close_to_exact() {
        // The printed escape factor (j−1)/j differs from the derived
        // (j+1−(t−k))/(j+1); both must agree in the no-tie limit.
        let policy = ZeroReplacePolicy::uniform(0.6, 255);
        // With a large domain, ties at b_n are rare: p_{b_n} ≈ 0.
        let exact = theorem2_no_leakage(&policy, 200, 10, 3);
        let printed = theorem2_as_printed(&policy, 200, 10, 3);
        assert!((exact - printed).abs() < 0.02, "exact {exact} vs printed {printed}");
    }

    #[test]
    fn theorem2_more_replacement_more_protection() {
        let mut prev = 0.0;
        for replace in [0.2, 0.5, 0.8, 0.99] {
            let policy = ZeroReplacePolicy::uniform(replace, 31);
            let p = theorem2_no_leakage(&policy, 25, 12, 2);
            assert!(p >= prev - 1e-12, "replace={replace}");
            prev = p;
        }
    }

    #[test]
    fn theorem3_mc_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let policy = ZeroReplacePolicy::uniform(0.9, 15);
        let true_bids = vec![3, 7, 12];
        let e = simulate_expected_true_selected(&policy, &true_bids, 10, 4, 20_000, &mut rng);
        assert!((0.0..=4.0).contains(&e));
        // With NO disguising every top-4 pick includes all 3 true bids
        // (zeros stay 0, true bids positive).
        let none = ZeroReplacePolicy::never(15);
        let e_none = simulate_expected_true_selected(&none, &true_bids, 10, 4, 5_000, &mut rng);
        assert!(e_none > 2.9, "e_none={e_none}");
        // Full uniform disguising buries true bids: fewer selected.
        assert!(e < e_none);
    }

    #[test]
    fn theorem3_printed_is_finite_and_nonnegative() {
        let v = theorem3_as_printed(15, &[3, 7, 12], 10, 4);
        assert!(v.is_finite() && v >= 0.0, "v={v}");
    }

    #[test]
    fn cost_model_matches_real_submissions() {
        use crate::protocol::SuSubmission;
        use crate::ttp::Ttp;
        use lppa_auction::bidder::Location;

        let config = crate::config::LppaConfig::default();
        let k = 5;
        let mut rng = StdRng::seed_from_u64(3);
        let ttp = Ttp::new(k, config, &mut rng).unwrap();
        let policy = ZeroReplacePolicy::geometric(0.4, 0.8, config.bid_max());
        let model = cost_model(&config, 10, k);

        let sub =
            SuSubmission::build(Location::new(30, 40), &[0, 5, 99, 0, 17], &ttp, &policy, &mut rng)
                .unwrap();
        assert_eq!(sub.wire_len() as u64, model.bidder_bytes);
        let tags = (sub.location.wire_len() as u64
            + sub
                .bids
                .bids()
                .iter()
                .map(|b| (b.point.wire_len() + b.range.wire_len()) as u64)
                .sum::<u64>())
            / 16;
        assert_eq!(tags, model.bidder_tags);
    }

    #[test]
    fn cost_model_scales_linearly_in_channels() {
        let config = crate::config::LppaConfig::default();
        let small = cost_model(&config, 10, 10);
        let large = cost_model(&config, 10, 20);
        let per_channel = (large.bidder_bytes - small.bidder_bytes) / 10;
        assert!(per_channel > 0);
        // The location part is channel-independent.
        assert_eq!(large.bidder_bytes - 20 * per_channel, small.bidder_bytes - 10 * per_channel);
    }

    #[test]
    fn theorem4_matches_protocol_shape() {
        // 10 bidders × 4 channels × width 10: (3·10−1)=29 tags per bid,
        // 128 bits per tag.
        assert_eq!(theorem4_bid_bits(10, 4, 10), 128 * 10 * 4 * 29);
        // Linear in N and k.
        assert_eq!(theorem4_bid_bits(20, 4, 10), 2 * theorem4_bid_bits(10, 4, 10));
        assert_eq!(theorem4_bid_bits(10, 8, 10), 2 * theorem4_bid_bits(10, 4, 10));
    }
}
