//! Arena-backed scratch memory for the round hot path.
//!
//! Steady-state rounds used to be dominated by allocator traffic: every
//! round re-allocated masked tag sets, the greedy allocator's entry
//! bitmap, per-channel class vectors and an `n × n` conflict matrix,
//! then freed them all again. This module centralizes the *typed pool*
//! discipline that replaces that churn:
//!
//! * [`MaskScratch`] (re-exported from `lppa_prefix`) pools retired
//!   [`TagSet`](lppa_prefix::masked::TagSet)s and the prefix staging
//!   buffer, so masking a submission or verifying a charge touches the
//!   allocator only until the pool is warm;
//! * [`AllocScratch`] (re-exported from `lppa_auction`) holds the greedy
//!   allocator's entry bitmap, liveness row, candidate list and
//!   round-robin pool;
//! * [`RoundScratch`] composes both with the per-round buffers the
//!   incremental engine needs — the compacted live-slot order, pooled
//!   per-channel class vectors and the conflict-matrix backing store;
//! * [`CsrRows`] is a compressed-sparse-row slab for adjacency rows,
//!   replacing one `BTreeSet<u32>` (and its per-node allocations) per
//!   slot with slices of one flat `Vec<u32>` patched in place.
//!
//! Buffers are *checked out, cleared and reused* — never freed — so a
//! sustained-churn round runs allocation-free after warm-up. Pooling
//! only changes where memory comes from: every consumer is either
//! capacity-independent or iteration-order independent, so outcomes are
//! bit-identical with pooling on or off. The `arena_on_off_identical`
//! oracle invariant and the CI grid diff hold the whole engine to that.

use std::sync::OnceLock;

use crate::ttp::ChargeDecision;

pub use lppa_auction::allocation::AllocScratch;
pub use lppa_prefix::MaskScratch;

/// Environment knob disabling the pooled round path (`LPPA_ARENA=0`).
/// Default is on; the setting is cached on first read.
pub const ARENA_ENV: &str = "LPPA_ARENA";

/// Whether pooled scratch memory is enabled for service round loops
/// (`LPPA_ARENA`, default on). Explicit plumbing — e.g. the oracle's
/// arena on/off differential — bypasses this and passes the flag
/// directly.
pub fn arena_enabled() -> bool {
    static CACHED: OnceLock<bool> = OnceLock::new();
    *CACHED.get_or_init(|| {
        lppa_par::parse_flag(std::env::var(ARENA_ENV).ok().as_deref()).unwrap_or(true)
    })
}

/// Per-area round scratch: everything one settlement round needs,
/// checked out per round and reset instead of freed.
#[derive(Debug, Default)]
pub struct RoundScratch {
    /// Pooled tag sets + prefix staging (submission builds, charge
    /// verification).
    pub mask: MaskScratch,
    /// Greedy-allocation buffers.
    pub alloc: AllocScratch,
    /// Pooled per-channel class vectors, recycled from the previous
    /// round's bid table.
    classes: Vec<Vec<u32>>,
    /// Conflict-matrix backing store, recycled from the previous round's
    /// result.
    matrix: Vec<bool>,
    /// Memoized TTP charge decisions, `slot × channel`. A decision is a
    /// pure function of the area's channel key and the slot's resident
    /// `(sealed, point)` pair, so it stays valid exactly as long as the
    /// slot's submission does — the churn layer calls
    /// [`charge_clear_slot`](Self::charge_clear_slot) on every join,
    /// leave and revision.
    charges: Vec<Option<ChargeDecision>>,
    /// Channels per charge row (fixed per area after first use).
    charge_k: usize,
}

impl RoundScratch {
    /// A cold scratch; every pool warms on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a cleared `u32` buffer for one channel's class vector.
    pub fn take_classes(&mut self) -> Vec<u32> {
        let mut v = self.classes.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// Parks class vectors for reuse, keeping their capacity.
    pub fn recycle_classes<I: IntoIterator<Item = Vec<u32>>>(&mut self, vecs: I) {
        self.classes.extend(vecs);
    }

    /// Checks out the conflict-matrix backing buffer (empty when cold).
    pub fn take_matrix(&mut self) -> Vec<bool> {
        std::mem::take(&mut self.matrix)
    }

    /// The memoized TTP charge decision for `(slot, channel)`, if the
    /// slot's submission has not churned since it was cached.
    pub fn charge_get(&self, slot: u32, channel: usize) -> Option<ChargeDecision> {
        if self.charge_k == 0 || channel >= self.charge_k {
            return None;
        }
        *self.charges.get(slot as usize * self.charge_k + channel)?
    }

    /// Memoizes the TTP's decision for `(slot, channel)` under `k`
    /// channels per slot. No-op if a conflicting `k` was fixed earlier.
    pub fn charge_put(&mut self, slot: u32, k: usize, channel: usize, decision: ChargeDecision) {
        if k == 0 {
            return;
        }
        if self.charge_k == 0 {
            self.charge_k = k;
        }
        if self.charge_k != k || channel >= k {
            return;
        }
        let idx = slot as usize * self.charge_k + channel;
        if idx >= self.charges.len() {
            self.charges.resize(idx + self.charge_k - channel, None);
        }
        self.charges[idx] = Some(decision);
    }

    /// Drops every memoized charge decision for `slot` — must be called
    /// whenever the slot's submission changes (join, leave, revision).
    pub fn charge_clear_slot(&mut self, slot: u32) {
        if self.charge_k == 0 {
            return;
        }
        let start = slot as usize * self.charge_k;
        let end = (start + self.charge_k).min(self.charges.len());
        if start < end {
            self.charges[start..end].fill(None);
        }
    }

    /// Parks a conflict-matrix buffer for the next round.
    pub fn recycle_matrix(&mut self, matrix: Vec<bool>) {
        // Keep the larger buffer: area populations drift, and holding
        // the high-water mark avoids re-growing next round.
        if matrix.capacity() > self.matrix.capacity() {
            self.matrix = matrix;
        }
    }
}

/// Compressed-sparse-row adjacency: every row is a sorted `u32` slice of
/// one shared slab, patched in place.
///
/// Rows keep a private capacity inside the slab; an insert into a full
/// row relocates it to the slab's tail with doubled capacity (the old
/// span becomes garbage, reclaimed by periodic compaction). All
/// operations are deterministic and iteration is ascending — exactly the
/// order a `BTreeSet<u32>` row yields — so swapping the representation
/// cannot move a single output bit.
#[derive(Clone, Debug, Default)]
pub struct CsrRows {
    /// The shared slab. Live row spans never overlap.
    data: Vec<u32>,
    /// Per-row `(start, len, cap)` into `data`.
    rows: Vec<RowMeta>,
    /// Dead slab capacity left behind by row relocations.
    garbage: usize,
}

#[derive(Clone, Copy, Debug)]
struct RowMeta {
    start: usize,
    len: u32,
    cap: u32,
}

/// Initial capacity granted to a row on its first insert.
const ROW_MIN_CAP: usize = 4;

impl CsrRows {
    /// No rows, empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends one empty row (zero capacity until its first insert).
    pub fn push_row(&mut self) {
        self.rows.push(RowMeta { start: 0, len: 0, cap: 0 });
    }

    /// The sorted contents of `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: usize) -> &[u32] {
        let m = self.rows[row];
        &self.data[m.start..m.start + m.len as usize]
    }

    /// Inserts `value` into `row`, keeping it sorted; returns `false` if
    /// it was already present.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn insert(&mut self, row: usize, value: u32) -> bool {
        let m = self.rows[row];
        let slice = &self.data[m.start..m.start + m.len as usize];
        let Err(pos) = slice.binary_search(&value) else { return false };
        if (m.len as usize) < m.cap as usize {
            // In-place: shift the tail right by one inside the row span.
            self.data.copy_within(m.start + pos..m.start + m.len as usize, m.start + pos + 1);
            self.data[m.start + pos] = value;
            self.rows[row].len += 1;
        } else {
            // Relocate to the slab tail with doubled capacity.
            let new_cap = (m.cap as usize * 2).max(ROW_MIN_CAP);
            let new_start = self.data.len();
            self.data.reserve(new_cap);
            for i in 0..pos {
                self.data.push(self.data[m.start + i]);
            }
            self.data.push(value);
            for i in pos..m.len as usize {
                self.data.push(self.data[m.start + i]);
            }
            // Pad the span out to its capacity so later inserts can
            // shift within it.
            self.data.resize(new_start + new_cap, 0);
            self.garbage += m.cap as usize;
            self.rows[row] = RowMeta { start: new_start, len: m.len + 1, cap: new_cap as u32 };
            self.maybe_compact();
        }
        true
    }

    /// Removes `value` from `row`; returns `false` if it was absent.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn remove(&mut self, row: usize, value: u32) -> bool {
        let m = self.rows[row];
        let slice = &self.data[m.start..m.start + m.len as usize];
        let Ok(pos) = slice.binary_search(&value) else { return false };
        self.data.copy_within(m.start + pos + 1..m.start + m.len as usize, m.start + pos);
        self.rows[row].len -= 1;
        true
    }

    /// Empties `row`, keeping its slab capacity for reuse.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn clear_row(&mut self, row: usize) {
        self.rows[row].len = 0;
    }

    /// Rebuilds the slab without garbage once dead spans dominate it.
    fn maybe_compact(&mut self) {
        if self.garbage < 1024 || self.garbage * 2 < self.data.len() {
            return;
        }
        let mut fresh = Vec::with_capacity(self.data.len() - self.garbage);
        for m in &mut self.rows {
            let start = fresh.len();
            fresh.extend_from_slice(&self.data[m.start..m.start + m.len as usize]);
            // Keep each row's grown capacity so compaction cannot force
            // an immediate relocation storm.
            fresh.resize(start + m.cap as usize, 0);
            m.start = start;
        }
        self.data = fresh;
        self.garbage = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn csr_rows_match_btreeset_under_random_churn() {
        use lppa_rng::rngs::StdRng;
        use lppa_rng::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xa5e);
        let n = 40usize;
        let mut csr = CsrRows::new();
        let mut mirror: Vec<BTreeSet<u32>> = Vec::new();
        for _ in 0..n {
            csr.push_row();
            mirror.push(BTreeSet::new());
        }
        for _ in 0..5000 {
            let row = rng.gen_range(0..n);
            let value = rng.gen_range(0..64u32);
            match rng.gen_range(0..10) {
                0..=5 => {
                    assert_eq!(csr.insert(row, value), mirror[row].insert(value));
                }
                6..=8 => {
                    assert_eq!(csr.remove(row, value), mirror[row].remove(&value));
                }
                _ => {
                    csr.clear_row(row);
                    mirror[row].clear();
                }
            }
            // Ascending iteration must match the BTreeSet exactly.
            let got: Vec<u32> = csr.row(row).to_vec();
            let want: Vec<u32> = mirror[row].iter().copied().collect();
            assert_eq!(got, want);
        }
        for (row, expected) in mirror.iter().enumerate().take(n) {
            let want: Vec<u32> = expected.iter().copied().collect();
            assert_eq!(csr.row(row), &want[..]);
        }
    }

    #[test]
    fn csr_compaction_preserves_rows() {
        let mut csr = CsrRows::new();
        for _ in 0..8 {
            csr.push_row();
        }
        // Force many relocations: grow every row repeatedly.
        for round in 0..200u32 {
            for row in 0..8 {
                csr.insert(row, round * 8 + row as u32);
            }
        }
        for row in 0..8usize {
            let got = csr.row(row);
            assert_eq!(got.len(), 200);
            assert!(got.windows(2).all(|w| w[0] < w[1]), "row {row} must stay sorted");
        }
    }

    #[test]
    fn round_scratch_pools_keep_capacity() {
        let mut scratch = RoundScratch::new();
        let mut v = scratch.take_classes();
        v.extend(0..100u32);
        let cap = v.capacity();
        scratch.recycle_classes([v]);
        let v2 = scratch.take_classes();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap);

        scratch.recycle_matrix(vec![true; 64]);
        let m = scratch.take_matrix();
        assert!(m.capacity() >= 64);
        assert!(scratch.take_matrix().is_empty(), "checkout empties the slot");
    }

    #[test]
    fn arena_env_flag_parses() {
        // parse_flag semantics: unset/garbage ⇒ default on.
        assert_eq!(lppa_par::parse_flag(None), None);
        assert_eq!(lppa_par::parse_flag(Some("0")), Some(false));
        assert_eq!(lppa_par::parse_flag(Some("1")), Some(true));
    }
}
