//! The periodically-available Trusted Third Party.
//!
//! The TTP's two jobs (§II.C, §V.B):
//!
//! 1. **Key distribution** — generate the location-masking key `g0`, the
//!    per-channel bid-masking keys `gb_1..gb_k` and its own symmetric key
//!    `gc`, and share them with the bidders (never the auctioneer).
//! 2. **Charging** — open the sealed winning bids the auctioneer
//!    forwards, flag disguised zeros as invalid, verify that the winner's
//!    masked prefixes are consistent with the sealed price (no bid
//!    manipulation), and return the plaintext charge.
//!
//! Charging requests are accepted in batches so a periodically-online
//! TTP can drain several auctions per connection (§V.C.2).

use lppa_crypto::keys::{HmacKey, SealKey};
use lppa_crypto::seal::SealedValue;
use lppa_prefix::{MaskScratch, MaskedPoint};
use lppa_rng::Rng;
use lppa_spectrum::ChannelId;

use crate::config::LppaConfig;
use crate::error::LppaError;

/// The key material the TTP shares with every bidder.
#[derive(Clone, Debug)]
pub struct BidderKeys {
    /// Location-prefix masking key `g0`.
    pub g0: HmacKey,
    /// Per-channel bid-prefix masking keys `gb_r`.
    pub gb: Vec<HmacKey>,
    /// The TTP's sealing key `gc` (bidders encrypt, TTP decrypts).
    pub gc: SealKey,
}

/// One winning bid forwarded by the auctioneer for charging.
#[derive(Clone, Debug)]
pub struct ChargeRequest {
    /// The channel that was won.
    pub channel: ChannelId,
    /// The sealed (offset- and `cr`-transformed) bid value.
    pub sealed: SealedValue,
    /// The winner's masked prefix family for that channel, used to detect
    /// manipulated prices.
    pub point: MaskedPoint,
}

/// The TTP's verdict on one charging request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChargeDecision {
    /// A genuine winning bid; charge the winner `raw_price`.
    Valid {
        /// The plaintext first-price charge.
        raw_price: u32,
    },
    /// The "winning" bid was a disguised zero — the auctioneer is told
    /// the win is invalid (and learns nothing about the price).
    InvalidZero,
}

/// The trusted third party.
#[derive(Clone, Debug)]
pub struct Ttp {
    keys: BidderKeys,
    config: LppaConfig,
}

impl Ttp {
    /// Creates a TTP for an auction of `n_channels` channels, generating
    /// fresh keys from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`LppaError::InvalidConfig`] if `config` is inconsistent
    /// or `n_channels` is zero.
    pub fn new<R: Rng + ?Sized>(
        n_channels: usize,
        config: LppaConfig,
        rng: &mut R,
    ) -> Result<Self, LppaError> {
        config.validate()?;
        if n_channels == 0 {
            return Err(LppaError::InvalidConfig { reason: "auction needs channels".into() });
        }
        let keys = BidderKeys {
            g0: HmacKey::random(rng),
            gb: (0..n_channels).map(|_| HmacKey::random(rng)).collect(),
            gc: SealKey::random(rng),
        };
        Ok(Self { keys, config })
    }

    /// Creates a TTP whose keys are derived from a 32-byte master secret
    /// and a round counter.
    ///
    /// With a master secret distributed once, bidders recompute every
    /// round's keys offline — the deployment §V.C.2 wants for a TTP that
    /// is only periodically online. Fresh rounds get independent keys.
    ///
    /// # Errors
    ///
    /// As for [`Ttp::new`].
    pub fn from_master(
        master: &[u8; 32],
        round: u64,
        n_channels: usize,
        config: LppaConfig,
    ) -> Result<Self, LppaError> {
        config.validate()?;
        if n_channels == 0 {
            return Err(LppaError::InvalidConfig { reason: "auction needs channels".into() });
        }
        let schedule = lppa_crypto::kdf::KeySchedule::derive(master, round, n_channels);
        Ok(Self { keys: BidderKeys { g0: schedule.g0, gb: schedule.gb, gc: schedule.gc }, config })
    }

    /// The key material distributed to bidders.
    pub fn bidder_keys(&self) -> &BidderKeys {
        &self.keys
    }

    /// Number of channels this TTP issued keys for.
    pub fn n_channels(&self) -> usize {
        self.keys.gb.len()
    }

    /// The shared protocol configuration.
    pub fn config(&self) -> &LppaConfig {
        &self.config
    }

    /// Processes one charging request.
    ///
    /// # Errors
    ///
    /// * [`LppaError::ChargeAuthentication`] — the sealed value failed
    ///   authentication (corrupted or sealed under a foreign key);
    /// * [`LppaError::ChargeManipulated`] — the sealed price is valid but
    ///   does not match the masked prefixes the winner submitted, i.e.
    ///   the bidder lied to the allocation stage;
    /// * [`LppaError::ChannelCountMismatch`] — unknown channel.
    pub fn open_charge(&self, request: &ChargeRequest) -> Result<ChargeDecision, LppaError> {
        self.open_charge_parts(
            request.channel,
            &request.sealed,
            &request.point,
            &mut MaskScratch::new(),
        )
    }

    /// [`Self::open_charge`] over borrowed request parts, staging the
    /// verification mask through a pooled scratch — the hot settlement
    /// path charges winners without cloning their sealed values or tag
    /// sets and, with a warm scratch, without allocating.
    ///
    /// # Errors
    ///
    /// As for [`Self::open_charge`].
    pub fn open_charge_parts(
        &self,
        channel: ChannelId,
        sealed: &SealedValue,
        point: &MaskedPoint,
        scratch: &mut MaskScratch,
    ) -> Result<ChargeDecision, LppaError> {
        let key = self.keys.gb.get(channel.0).ok_or(LppaError::ChannelCountMismatch {
            submitted: channel.0 + 1,
            expected: self.keys.gb.len(),
        })?;

        let transformed =
            sealed.open(&self.keys.gc).map_err(|_| LppaError::ChargeAuthentication)?;
        let transformed =
            u32::try_from(transformed).map_err(|_| LppaError::ChargeAuthentication)?;

        let offset_value = self.config.decode_transformed(transformed);
        if self.config.is_zero_price(offset_value) {
            // Disguised zero: notify the auctioneer the win is invalid.
            // No prefix check — a disguised zero's prefixes intentionally
            // do not match its sealed value.
            return Ok(ChargeDecision::InvalidZero);
        }

        // Verify the winner did not manipulate its price: the masked
        // family of the sealed transformed value must equal the family it
        // submitted for allocation.
        let expected =
            MaskedPoint::mask_in(key, self.config.transformed_bits(), transformed, scratch)?;
        let manipulated = expected != *point;
        scratch.reclaim_point(expected);
        if manipulated {
            return Err(LppaError::ChargeManipulated);
        }
        Ok(ChargeDecision::Valid { raw_price: self.config.decode_offset(offset_value) })
    }

    /// Batch interface: processes several requests in one TTP session.
    ///
    /// # Errors
    ///
    /// Fails on the first erroneous request, as the whole batch comes
    /// from one auctioneer session.
    pub fn open_charges(
        &self,
        requests: &[ChargeRequest],
    ) -> Result<Vec<ChargeDecision>, LppaError> {
        requests.iter().map(|r| self.open_charge(r)).collect()
    }

    /// Fault-tolerant batch interface: one verdict per request, in
    /// request order, where a bad request poisons only its own slot.
    ///
    /// Charging is a pure function of the request and the TTP's keys, so
    /// decisions are *idempotent* (a duplicated request yields the same
    /// verdict) and *order-independent* (reordering a batch permutes the
    /// verdicts identically). Both properties matter over an unreliable
    /// auctioneer↔TTP link, where retransmissions duplicate and reorder
    /// requests; the test suite pins them down.
    pub fn open_charges_tolerant(
        &self,
        requests: &[ChargeRequest],
    ) -> Vec<Result<ChargeDecision, LppaError>> {
        requests.iter().map(|r| self.open_charge(r)).collect()
    }

    /// Sealed-bid second-price (Vickrey) charging: validates the
    /// `winner` exactly like [`Self::open_charge`], but prices the win
    /// at the *critical losing bid* — the maximum true raw value among
    /// the sealed bids of the conflicting losers in the winner's
    /// contest, forwarded by the auctioneer as `losers`.
    ///
    /// The TTP opens each loser's sealed true value, so disguised
    /// zeros among the losers correctly contribute their true price of
    /// 0 (not their presented disguise), and a manipulated *winner* is
    /// still caught by the prefix check. A contest with no conflicting
    /// losers charges 0 — the winner was unopposed.
    ///
    /// # Errors
    ///
    /// As [`Self::open_charge`] for the winner;
    /// [`LppaError::ChargeAuthentication`] if any loser's sealed value
    /// fails to open, since every forwarded seal came from a validated
    /// submission.
    pub fn open_vickrey(
        &self,
        winner: &ChargeRequest,
        losers: &[SealedValue],
    ) -> Result<ChargeDecision, LppaError> {
        match self.open_charge(winner)? {
            ChargeDecision::InvalidZero => Ok(ChargeDecision::InvalidZero),
            ChargeDecision::Valid { .. } => {
                let mut price = 0u32;
                for sealed in losers {
                    let transformed =
                        sealed.open(&self.keys.gc).map_err(|_| LppaError::ChargeAuthentication)?;
                    let transformed =
                        u32::try_from(transformed).map_err(|_| LppaError::ChargeAuthentication)?;
                    let offset_value = self.config.decode_transformed(transformed);
                    if !self.config.is_zero_price(offset_value) {
                        price = price.max(self.config.decode_offset(offset_value));
                    }
                }
                Ok(ChargeDecision::Valid { raw_price: price })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lppa_rng::rngs::StdRng;
    use lppa_rng::SeedableRng;

    fn setup() -> (Ttp, StdRng) {
        let mut rng = StdRng::seed_from_u64(77);
        let ttp = Ttp::new(4, LppaConfig::default(), &mut rng).unwrap();
        (ttp, rng)
    }

    /// Builds a genuine charging request for raw bid `raw` on `channel`.
    fn genuine_request(ttp: &Ttp, channel: ChannelId, raw: u32, rng: &mut StdRng) -> ChargeRequest {
        let config = ttp.config();
        let offset = if raw == 0 { rng.gen_range(0..=config.rd) } else { config.offset_bid(raw) };
        let transformed = config.cr * offset + rng.gen_range(0..config.cr);
        let point = MaskedPoint::mask(
            &ttp.bidder_keys().gb[channel.0],
            config.transformed_bits(),
            transformed,
        )
        .unwrap();
        let sealed = SealedValue::seal(&ttp.bidder_keys().gc, u64::from(transformed), rng);
        ChargeRequest { channel, sealed, point }
    }

    #[test]
    fn valid_charge_roundtrip() {
        let (ttp, mut rng) = setup();
        for raw in [1u32, 17, 127] {
            let req = genuine_request(&ttp, ChannelId(2), raw, &mut rng);
            assert_eq!(ttp.open_charge(&req).unwrap(), ChargeDecision::Valid { raw_price: raw });
        }
    }

    #[test]
    fn zero_price_is_invalid() {
        let (ttp, mut rng) = setup();
        for _ in 0..10 {
            let req = genuine_request(&ttp, ChannelId(0), 0, &mut rng);
            assert_eq!(ttp.open_charge(&req).unwrap(), ChargeDecision::InvalidZero);
        }
    }

    #[test]
    fn disguised_zero_is_invalid_even_with_foreign_prefixes() {
        // A disguised zero presents the prefixes of some t ≥ 1 but seals
        // its true (zero-band) value; the TTP must flag it invalid.
        let (ttp, mut rng) = setup();
        let config = *ttp.config();
        let disguise_transformed = config.cr * config.offset_bid(9); // looks like bid 9
        let point = MaskedPoint::mask(
            &ttp.bidder_keys().gb[1],
            config.transformed_bits(),
            disguise_transformed,
        )
        .unwrap();
        let true_zero = rng.gen_range(0..=config.rd) * config.cr;
        let sealed = SealedValue::seal(&ttp.bidder_keys().gc, u64::from(true_zero), &mut rng);
        let req = ChargeRequest { channel: ChannelId(1), sealed, point };
        assert_eq!(ttp.open_charge(&req).unwrap(), ChargeDecision::InvalidZero);
    }

    #[test]
    fn manipulated_price_is_detected() {
        // Seal one price but submit the prefixes of a higher one.
        let (ttp, mut rng) = setup();
        let config = *ttp.config();
        let low = config.cr * config.offset_bid(5);
        let high = config.cr * config.offset_bid(90);
        let point =
            MaskedPoint::mask(&ttp.bidder_keys().gb[0], config.transformed_bits(), high).unwrap();
        let sealed = SealedValue::seal(&ttp.bidder_keys().gc, u64::from(low), &mut rng);
        let req = ChargeRequest { channel: ChannelId(0), sealed, point };
        assert_eq!(ttp.open_charge(&req), Err(LppaError::ChargeManipulated));
    }

    #[test]
    fn foreign_seal_key_fails_authentication() {
        let (ttp, mut rng) = setup();
        let config = *ttp.config();
        let transformed = config.cr * config.offset_bid(5);
        let point =
            MaskedPoint::mask(&ttp.bidder_keys().gb[0], config.transformed_bits(), transformed)
                .unwrap();
        let foreign = SealKey::random(&mut rng);
        let sealed = SealedValue::seal(&foreign, u64::from(transformed), &mut rng);
        let req = ChargeRequest { channel: ChannelId(0), sealed, point };
        assert_eq!(ttp.open_charge(&req), Err(LppaError::ChargeAuthentication));
    }

    #[test]
    fn unknown_channel_is_rejected() {
        let (ttp, mut rng) = setup();
        let req = genuine_request(&ttp, ChannelId(1), 3, &mut rng);
        let bad = ChargeRequest { channel: ChannelId(9), ..req };
        assert!(matches!(ttp.open_charge(&bad), Err(LppaError::ChannelCountMismatch { .. })));
    }

    #[test]
    fn batch_processes_in_order() {
        let (ttp, mut rng) = setup();
        let reqs = vec![
            genuine_request(&ttp, ChannelId(0), 10, &mut rng),
            genuine_request(&ttp, ChannelId(1), 0, &mut rng),
            genuine_request(&ttp, ChannelId(2), 77, &mut rng),
        ];
        let decisions = ttp.open_charges(&reqs).unwrap();
        assert_eq!(
            decisions,
            vec![
                ChargeDecision::Valid { raw_price: 10 },
                ChargeDecision::InvalidZero,
                ChargeDecision::Valid { raw_price: 77 },
            ]
        );
    }

    #[test]
    fn tolerant_batch_isolates_bad_requests() {
        let (ttp, mut rng) = setup();
        let good = genuine_request(&ttp, ChannelId(0), 12, &mut rng);
        let unknown = ChargeRequest { channel: ChannelId(9), ..good.clone() };
        let verdicts = ttp.open_charges_tolerant(&[good.clone(), unknown, good]);
        assert_eq!(verdicts.len(), 3);
        assert_eq!(verdicts[0], Ok(ChargeDecision::Valid { raw_price: 12 }));
        assert!(matches!(verdicts[1], Err(LppaError::ChannelCountMismatch { .. })));
        assert_eq!(verdicts[2], Ok(ChargeDecision::Valid { raw_price: 12 }));
        // The strict batch interface still fails wholesale.
        let bad = ChargeRequest {
            channel: ChannelId(9),
            ..genuine_request(&ttp, ChannelId(0), 1, &mut rng)
        };
        assert!(ttp.open_charges(&[bad]).is_err());
    }

    #[test]
    fn charge_decisions_are_idempotent_under_duplication() {
        // A retransmitting auctioneer link may deliver the same request
        // several times; every copy must draw the identical verdict.
        let (ttp, mut rng) = setup();
        let reqs = vec![
            genuine_request(&ttp, ChannelId(0), 10, &mut rng),
            genuine_request(&ttp, ChannelId(1), 0, &mut rng),
            genuine_request(&ttp, ChannelId(2), 77, &mut rng),
        ];
        let baseline = ttp.open_charges_tolerant(&reqs);
        // Duplicate every request three times, interleaved.
        let mut duplicated = Vec::new();
        for _ in 0..3 {
            duplicated.extend(reqs.iter().cloned());
        }
        let verdicts = ttp.open_charges_tolerant(&duplicated);
        for (i, v) in verdicts.iter().enumerate() {
            assert_eq!(*v, baseline[i % reqs.len()], "copy {i} diverged");
        }
    }

    #[test]
    fn charge_decisions_are_order_independent() {
        // Reordering a batch must permute the verdicts and change nothing
        // else — no decision may depend on its neighbours or position.
        let (ttp, mut rng) = setup();
        let reqs: Vec<ChargeRequest> = (0..6)
            .map(|i| genuine_request(&ttp, ChannelId(i % 4), (i as u32) * 13 % 120, &mut rng))
            .collect();
        let baseline = ttp.open_charges_tolerant(&reqs);
        for rotation in 1..reqs.len() {
            let mut rotated = reqs.clone();
            rotated.rotate_left(rotation);
            let verdicts = ttp.open_charges_tolerant(&rotated);
            for (i, v) in verdicts.iter().enumerate() {
                assert_eq!(*v, baseline[(i + rotation) % reqs.len()], "rotation {rotation}");
            }
        }
    }

    /// Seals the true transformed value of raw bid `raw`, the way a
    /// conflicting loser's submission carries it.
    fn loser_seal(ttp: &Ttp, raw: u32, rng: &mut StdRng) -> SealedValue {
        let config = ttp.config();
        let offset = if raw == 0 { rng.gen_range(0..=config.rd) } else { config.offset_bid(raw) };
        let transformed = config.cr * offset + rng.gen_range(0..config.cr);
        SealedValue::seal(&ttp.bidder_keys().gc, u64::from(transformed), rng)
    }

    #[test]
    fn vickrey_prices_at_the_critical_losing_bid() {
        let (ttp, mut rng) = setup();
        let winner = genuine_request(&ttp, ChannelId(1), 90, &mut rng);
        let losers: Vec<SealedValue> =
            [10u32, 77, 40].iter().map(|&raw| loser_seal(&ttp, raw, &mut rng)).collect();
        assert_eq!(
            ttp.open_vickrey(&winner, &losers).unwrap(),
            ChargeDecision::Valid { raw_price: 77 }
        );
    }

    #[test]
    fn vickrey_unopposed_winner_is_charged_zero() {
        let (ttp, mut rng) = setup();
        let winner = genuine_request(&ttp, ChannelId(0), 15, &mut rng);
        assert_eq!(ttp.open_vickrey(&winner, &[]).unwrap(), ChargeDecision::Valid { raw_price: 0 });
    }

    #[test]
    fn vickrey_losing_disguised_zeros_contribute_their_true_price() {
        // Disguised-zero losers presented a positive value but their
        // sealed truth is the zero band: the critical price must ignore
        // the disguise.
        let (ttp, mut rng) = setup();
        let winner = genuine_request(&ttp, ChannelId(2), 60, &mut rng);
        let losers = vec![
            loser_seal(&ttp, 0, &mut rng),
            loser_seal(&ttp, 33, &mut rng),
            loser_seal(&ttp, 0, &mut rng),
        ];
        assert_eq!(
            ttp.open_vickrey(&winner, &losers).unwrap(),
            ChargeDecision::Valid { raw_price: 33 }
        );
        // All-zero opposition is the same as no opposition.
        let zeros = vec![loser_seal(&ttp, 0, &mut rng), loser_seal(&ttp, 0, &mut rng)];
        assert_eq!(
            ttp.open_vickrey(&winner, &zeros).unwrap(),
            ChargeDecision::Valid { raw_price: 0 }
        );
    }

    #[test]
    fn vickrey_invalid_zero_winner_stays_invalid() {
        let (ttp, mut rng) = setup();
        let winner = genuine_request(&ttp, ChannelId(0), 0, &mut rng);
        let losers = vec![loser_seal(&ttp, 50, &mut rng)];
        assert_eq!(ttp.open_vickrey(&winner, &losers).unwrap(), ChargeDecision::InvalidZero);
    }

    #[test]
    fn vickrey_still_detects_winner_manipulation_and_bad_loser_seals() {
        let (ttp, mut rng) = setup();
        let config = *ttp.config();
        // Manipulated winner: sealed low, presented high.
        let low = config.cr * config.offset_bid(5);
        let high = config.cr * config.offset_bid(90);
        let point =
            MaskedPoint::mask(&ttp.bidder_keys().gb[0], config.transformed_bits(), high).unwrap();
        let sealed = SealedValue::seal(&ttp.bidder_keys().gc, u64::from(low), &mut rng);
        let manipulated = ChargeRequest { channel: ChannelId(0), sealed, point };
        assert_eq!(
            ttp.open_vickrey(&manipulated, &[loser_seal(&ttp, 1, &mut rng)]),
            Err(LppaError::ChargeManipulated)
        );
        // A loser seal under a foreign key fails authentication.
        let winner = genuine_request(&ttp, ChannelId(0), 40, &mut rng);
        let foreign = SealKey::random(&mut rng);
        let bad_loser = SealedValue::seal(&foreign, 12, &mut rng);
        assert_eq!(ttp.open_vickrey(&winner, &[bad_loser]), Err(LppaError::ChargeAuthentication));
    }

    #[test]
    fn zero_channels_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(Ttp::new(0, LppaConfig::default(), &mut rng).is_err());
    }
}
