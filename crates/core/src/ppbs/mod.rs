//! Privacy Preserving Bid Submission (PPBS): masked locations and masked,
//! transformed bids (§IV of the paper).

pub mod bid;
pub mod location;
