//! Private Location Submission (§IV.A of the paper).
//!
//! Each bidder submits, per axis, the masked prefix family of its
//! coordinate and the masked cover of its interference range. The
//! auctioneer declares two bidders conflicting iff the point of one lies
//! in the range of the other on **both** axes — exactly the plaintext
//! predicate `|Δx| < 2λ ∧ |Δy| < 2λ`, computed without seeing any
//! coordinate.
//!
//! The transmitted interference range is `[x − (2λ−1), x + (2λ−1)]`
//! (clamped to the domain): with integer coordinates, membership in that
//! closed range is exactly the paper's strict `|Δ| < 2λ` test.

use lppa_auction::bidder::Location;
use lppa_auction::conflict::ConflictGraph;
use lppa_crypto::keys::HmacKey;
use lppa_prefix::{FrozenTagIndex, MaskScratch, MaskedPoint, MaskedRange};
use lppa_rng::Rng;

use crate::config::LppaConfig;
use crate::error::LppaError;

/// A bidder's masked location submission.
///
/// # Examples
///
/// ```
/// use lppa::ppbs::location::LocationSubmission;
/// use lppa::LppaConfig;
/// use lppa_auction::bidder::Location;
/// use lppa_crypto::keys::HmacKey;
/// use lppa_rng::SeedableRng;
///
/// # fn main() -> Result<(), lppa::LppaError> {
/// let g0 = HmacKey::from_bytes([7u8; 32]);
/// let config = LppaConfig::default();
/// let mut rng = lppa_rng::rngs::StdRng::seed_from_u64(1);
/// let a = LocationSubmission::build(Location::new(10, 10), &g0, &config, &mut rng)?;
/// let b = LocationSubmission::build(Location::new(12, 11), &g0, &config, &mut rng)?;
/// assert!(a.conflicts_with(&b)); // both gaps < 2λ = 6
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct LocationSubmission {
    point_x: MaskedPoint,
    range_x: MaskedRange,
    point_y: MaskedPoint,
    range_y: MaskedRange,
}

impl LocationSubmission {
    /// Masks `location` under the shared key `g0`.
    ///
    /// # Errors
    ///
    /// Returns [`LppaError::LocationOutOfRange`] if a coordinate does not
    /// fit the configured domain, or a config/prefix error.
    pub fn build<R: Rng + ?Sized>(
        location: Location,
        g0: &HmacKey,
        config: &LppaConfig,
        rng: &mut R,
    ) -> Result<Self, LppaError> {
        Self::build_in(location, g0, config, rng, &mut MaskScratch::new())
    }

    /// [`LocationSubmission::build`] staging through a pooled
    /// [`MaskScratch`]: bit-identical output, allocation-free once the
    /// pool is warm.
    ///
    /// # Errors
    ///
    /// As for [`LocationSubmission::build`].
    pub fn build_in<R: Rng + ?Sized>(
        location: Location,
        g0: &HmacKey,
        config: &LppaConfig,
        rng: &mut R,
        scratch: &mut MaskScratch,
    ) -> Result<Self, LppaError> {
        config.validate()?;
        let max = config.loc_max();
        for coordinate in [location.x, location.y] {
            if coordinate > max {
                return Err(LppaError::LocationOutOfRange { coordinate, max });
            }
        }
        let w = config.loc_bits;
        let half = 2 * config.lambda - 1; // closed-range radius for strict < 2λ
        let build_axis = |value: u32,
                          rng: &mut R,
                          scratch: &mut MaskScratch|
         -> Result<(MaskedPoint, MaskedRange), LppaError> {
            let lo = value.saturating_sub(half);
            let hi = (value + half).min(max);
            Ok((
                MaskedPoint::mask_in(g0, w, value, scratch)?,
                MaskedRange::mask_padded_in(g0, w, lo, hi, rng, scratch)?,
            ))
        };
        let (point_x, range_x) = build_axis(location.x, rng, scratch)?;
        let (point_y, range_y) = build_axis(location.y, rng, scratch)?;
        Ok(Self { point_x, range_x, point_y, range_y })
    }

    /// Consumes exactly the RNG draws [`build_in`](Self::build_in) would
    /// for `location`, computing no HMAC.
    ///
    /// A revise that keeps the bidder's location and seed can reuse the
    /// resident masked location verbatim (same key + same draws ⇒ the
    /// re-mask is bit-identical) and call this to advance the bidder's
    /// seeded stream to where the bid build starts, keeping the cheap
    /// path bit-aligned with a full re-mask. Mirrors `build_in`'s
    /// validation and interference-range derivation exactly; the
    /// draw-count argument is
    /// [`MaskedRange::replay_padding_draws`]'s.
    ///
    /// # Errors
    ///
    /// As for [`LocationSubmission::build`].
    pub fn replay_build_draws<R: Rng + ?Sized>(
        location: Location,
        config: &LppaConfig,
        rng: &mut R,
        scratch: &mut MaskScratch,
    ) -> Result<(), LppaError> {
        config.validate()?;
        let max = config.loc_max();
        for coordinate in [location.x, location.y] {
            if coordinate > max {
                return Err(LppaError::LocationOutOfRange { coordinate, max });
            }
        }
        let w = config.loc_bits;
        let half = 2 * config.lambda - 1;
        for value in [location.x, location.y] {
            let lo = value.saturating_sub(half);
            let hi = (value + half).min(max);
            MaskedRange::replay_padding_draws(w, lo, hi, rng, scratch)?;
        }
        Ok(())
    }

    /// Retires this submission, recycling its four tag sets into
    /// `scratch` for the next [`build_in`](Self::build_in).
    pub fn reclaim(self, scratch: &mut MaskScratch) {
        scratch.reclaim_point(self.point_x);
        scratch.reclaim_range(self.range_x);
        scratch.reclaim_point(self.point_y);
        scratch.reclaim_range(self.range_y);
    }

    /// The auctioneer's conflict test: does `self`'s point fall inside
    /// `other`'s interference range on both axes?
    ///
    /// Symmetric for submissions built with the same `λ`, since the
    /// ranges have equal radius.
    pub fn conflicts_with(&self, other: &LocationSubmission) -> bool {
        self.point_x.in_range(&other.range_x) && self.point_y.in_range(&other.range_y)
    }

    /// The masked x-axis point family (probe material for the conflict
    /// index).
    pub fn point_x(&self) -> &MaskedPoint {
        &self.point_x
    }

    /// The masked x-axis range cover (index material for the conflict
    /// index).
    pub fn range_x(&self) -> &MaskedRange {
        &self.range_x
    }

    /// The masked y-axis point family.
    pub fn point_y(&self) -> &MaskedPoint {
        &self.point_y
    }

    /// The masked y-axis range cover.
    pub fn range_y(&self) -> &MaskedRange {
        &self.range_y
    }

    /// Reassembles a submission from its four masked components, as a
    /// wire decoder does after parsing the tag groups.
    ///
    /// No structural validation happens here — the auctioneer runs
    /// [`validate`](Self::validate) on every received submission, exactly
    /// as it does for submissions that arrived through the typed
    /// transport.
    pub fn from_parts(
        point_x: MaskedPoint,
        range_x: MaskedRange,
        point_y: MaskedPoint,
        range_y: MaskedRange,
    ) -> Self {
        Self { point_x, range_x, point_y, range_y }
    }

    /// Transmission size in bytes (both axes, points and ranges).
    pub fn wire_len(&self) -> usize {
        self.point_x.wire_len()
            + self.range_x.wire_len()
            + self.point_y.wire_len()
            + self.range_y.wire_len()
    }

    /// Structural validation of a *received* submission against the
    /// auction's configuration: every axis must carry a full prefix
    /// family (`loc_bits + 1` point tags) and a fully padded cover
    /// (`max_cover_len(loc_bits)` range tags).
    ///
    /// Genuine bidders always satisfy this by construction; a failure
    /// means transport truncation or tampering, and the auctioneer should
    /// quarantine the sender rather than let a partial tag set silently
    /// erase conflicts.
    ///
    /// # Errors
    ///
    /// Returns [`LppaError::MalformedSubmission`] naming the broken axis.
    pub fn validate(&self, config: &LppaConfig) -> Result<(), LppaError> {
        let want_point = usize::from(config.loc_bits) + 1;
        let want_range = lppa_prefix::max_cover_len(config.loc_bits);
        let checks = [
            ("x point", self.point_x.len(), want_point),
            ("x range", self.range_x.len(), want_range),
            ("y point", self.point_y.len(), want_point),
            ("y range", self.range_y.len(), want_range),
        ];
        for (axis, got, want) in checks {
            if got != want {
                return Err(LppaError::MalformedSubmission {
                    reason: format!("location {axis} has {got} tags, expected {want}"),
                });
            }
        }
        Ok(())
    }

    /// An order-independent digest of every transmitted tag, used as the
    /// transport integrity checksum. Reveals nothing beyond the wire
    /// bytes themselves.
    pub fn checksum(&self) -> u64 {
        self.point_x
            .fingerprint()
            .rotate_left(1)
            .wrapping_add(self.range_x.fingerprint())
            .rotate_left(1)
            .wrapping_add(self.point_y.fingerprint())
            .rotate_left(1)
            .wrapping_add(self.range_y.fingerprint())
    }
}

/// Builds the full conflict graph from all bidders' masked submissions —
/// what the curious auctioneer actually computes.
///
/// Implemented with an inverted tag index instead of the naive pairwise
/// loop (see [`build_conflict_graph_pairwise`]): every bidder's x-axis
/// range tags go into a [`FrozenTagIndex`], each bidder's x-axis point tags
/// are probed against it, and only the resulting candidate pairs — those
/// whose x-sets actually intersect — are confirmed on the y axis. The
/// pairwise loop spends `O(n² · w)` hash probes; the index spends
/// `O(n · w)` plus one y-test per x-conflicting pair, which for sparse
/// interference graphs is close to linear in `n`.
///
/// The probing phase is split across worker threads (`lppa_par`); the
/// edge set is reassembled in bidder order, so the result is identical
/// for every `LPPA_THREADS` value — and identical to the pairwise
/// reference, since a probe hit *is* the x-axis half of
/// [`LocationSubmission::conflicts_with`].
pub fn build_conflict_graph(submissions: &[LocationSubmission]) -> ConflictGraph {
    let n = submissions.len();
    let mut graph = ConflictGraph::disconnected(n);
    if n < 2 {
        return graph;
    }

    // Index every bidder's x-axis range cover. The dense build freezes
    // straight into the flat-CSR form: three allocations total instead
    // of one potential SmallVec spill per shared tag, and packed
    // owner rows for the probe loop below. Probe results are
    // byte-identical to the incremental TagIndex (pinned by the prefix
    // crate's property suite).
    let tags_per_range = submissions[0].range_x.len();
    let index = FrozenTagIndex::freeze(n * tags_per_range, || {
        submissions
            .iter()
            .enumerate()
            .flat_map(|(j, s)| s.range_x.iter().map(move |t| (t, j as u32)))
    });

    // Probe every bidder's x-axis point family and confirm candidates on
    // the y axis. A candidate pair is reported at most once per probe
    // pass: a point family is a nested prefix chain and a genuine cover
    // is a set of disjoint prefixes, so they share at most one tag
    // (random padding tags collide only with negligible probability, and
    // `add_conflict` is idempotent regardless).
    let chunk_size = n.div_ceil(lppa_par::thread_count() * 4).max(1);
    let edge_lists = lppa_par::par_chunks(submissions, chunk_size, |chunk_idx, chunk| {
        let base = chunk_idx * chunk_size;
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (offset, s) in chunk.iter().enumerate() {
            let i = base + offset;
            for tag in s.point_x.iter() {
                for &owner in index.owners(tag) {
                    let j = owner as usize;
                    // Only the i < j direction, exactly like the
                    // pairwise reference; the probe hit already proves
                    // `point_x(i) ∩ range_x(j) ≠ ∅`, so only the y axis
                    // remains to be checked.
                    if j > i && s.point_y.in_range(&submissions[j].range_y) {
                        edges.push((i, j));
                    }
                }
            }
        }
        edges
    });
    for edges in edge_lists {
        for (i, j) in edges {
            graph.add_conflict(i.into(), j.into());
        }
    }
    graph
}

/// Reference `O(n² · w)` conflict-graph construction: one
/// [`LocationSubmission::conflicts_with`] test per bidder pair.
///
/// Kept as the semantic specification of [`build_conflict_graph`]; the
/// property suite asserts the two produce identical graphs.
pub fn build_conflict_graph_pairwise(submissions: &[LocationSubmission]) -> ConflictGraph {
    let n = submissions.len();
    let mut graph = ConflictGraph::disconnected(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if submissions[i].conflicts_with(&submissions[j]) {
                graph.add_conflict(i.into(), j.into());
            }
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use lppa_rng::rngs::StdRng;
    use lppa_rng::SeedableRng;

    fn setup() -> (HmacKey, LppaConfig, StdRng) {
        (HmacKey::from_bytes([3u8; 32]), LppaConfig::default(), StdRng::seed_from_u64(5))
    }

    #[test]
    fn masked_conflicts_match_plaintext_predicate() {
        let (g0, config, mut rng) = setup();
        let base = Location::new(50, 50);
        let a = LocationSubmission::build(base, &g0, &config, &mut rng).unwrap();
        // Sweep the whole neighbourhood around the 2λ boundary.
        for dx in 0..=8u32 {
            for dy in 0..=8u32 {
                let other = Location::new(50 + dx, 50 + dy);
                let b = LocationSubmission::build(other, &g0, &config, &mut rng).unwrap();
                let expected = base.conflicts_with(&other, config.lambda);
                assert_eq!(a.conflicts_with(&b), expected, "d=({dx},{dy})");
                assert_eq!(b.conflicts_with(&a), expected, "symmetry d=({dx},{dy})");
            }
        }
    }

    #[test]
    fn graph_matches_plaintext_graph() {
        let (g0, config, mut rng) = setup();
        use lppa_rng::Rng as _;
        let locations: Vec<Location> = (0..25)
            .map(|_| Location::new(rng.gen_range(0..=127), rng.gen_range(0..=127)))
            .collect();
        let submissions: Vec<LocationSubmission> = locations
            .iter()
            .map(|&l| LocationSubmission::build(l, &g0, &config, &mut rng).unwrap())
            .collect();
        let masked = build_conflict_graph(&submissions);
        let plain = ConflictGraph::from_locations(&locations, config.lambda);
        assert_eq!(masked, plain);
    }

    #[test]
    fn boundary_coordinates_clamp_cleanly() {
        let (g0, config, mut rng) = setup();
        let corner =
            LocationSubmission::build(Location::new(0, 0), &g0, &config, &mut rng).unwrap();
        let far = LocationSubmission::build(
            Location::new(config.loc_max(), config.loc_max()),
            &g0,
            &config,
            &mut rng,
        )
        .unwrap();
        assert!(!corner.conflicts_with(&far));
        assert!(corner.conflicts_with(&corner));
    }

    #[test]
    fn out_of_domain_location_is_rejected() {
        let (g0, config, mut rng) = setup();
        let err =
            LocationSubmission::build(Location::new(500, 0), &g0, &config, &mut rng).unwrap_err();
        assert!(matches!(err, LppaError::LocationOutOfRange { coordinate: 500, .. }));
    }

    #[test]
    fn different_keys_never_conflict() {
        // Submissions masked under different keys are mutually opaque —
        // the structural reason an eavesdropper without g0 learns nothing.
        let (_, config, mut rng) = setup();
        let k1 = HmacKey::from_bytes([1u8; 32]);
        let k2 = HmacKey::from_bytes([2u8; 32]);
        let a = LocationSubmission::build(Location::new(9, 9), &k1, &config, &mut rng).unwrap();
        let b = LocationSubmission::build(Location::new(9, 9), &k2, &config, &mut rng).unwrap();
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn validate_accepts_genuine_and_rejects_truncated() {
        let (g0, config, mut rng) = setup();
        let sub = LocationSubmission::build(Location::new(9, 9), &g0, &config, &mut rng).unwrap();
        assert!(sub.validate(&config).is_ok());
        // Truncate the x point: validation must name the damage.
        let mut broken = sub.clone();
        let kept: Vec<_> = broken.point_x.iter().copied().take(2).collect();
        broken.point_x = MaskedPoint::from_tags(kept).unwrap();
        let err = broken.validate(&config).unwrap_err();
        assert!(matches!(err, LppaError::MalformedSubmission { .. }), "{err}");
        assert!(err.to_string().contains("x point"));
    }

    #[test]
    fn checksum_is_stable_and_damage_sensitive() {
        let (g0, config, mut rng) = setup();
        let sub = LocationSubmission::build(Location::new(30, 40), &g0, &config, &mut rng).unwrap();
        assert_eq!(sub.checksum(), sub.clone().checksum());
        // Swapping the axes changes the digest (rotation breaks XOR
        // symmetry), as does any tag-level damage.
        let mut swapped = sub.clone();
        std::mem::swap(&mut swapped.point_x, &mut swapped.point_y);
        std::mem::swap(&mut swapped.range_x, &mut swapped.range_y);
        assert_ne!(sub.checksum(), swapped.checksum());
    }

    #[test]
    fn wire_len_is_uniform_across_locations() {
        // Padding makes every submission the same size: the auctioneer
        // cannot distinguish edge users by submission length.
        let (g0, config, mut rng) = setup();
        let sizes: std::collections::HashSet<usize> = [
            Location::new(0, 0),
            Location::new(1, 127),
            Location::new(64, 64),
            Location::new(127, 0),
        ]
        .into_iter()
        .map(|l| LocationSubmission::build(l, &g0, &config, &mut rng).unwrap().wire_len())
        .collect();
        assert_eq!(sizes.len(), 1, "submission sizes leak location: {sizes:?}");
    }
}
